"""Topology-aware communication tuning (Section 3.1 / Table 1 / Fig. 4).

Compares the flat global ring against the topology-aware double ring on
clusters of different shapes, using *measured traffic* from the simulated
communicator (who crossed which link) and the Table 1 timing formulas —
the analysis behind BurstAttention's ring design.

Run:  python examples/topology_tuning.py
"""

import numpy as np

from repro.attention import get_method
from repro.comm import SimCommunicator, double_ring_schedule, global_ring_schedule
from repro.masks import CausalMask
from repro.perf.cost import table1_comm_times
from repro.topology import LinkClass, a800_node, make_cluster
from repro.utils import format_bytes, format_table


def measured_traffic(topology, schedule_name: str):
    """Run a real BurstAttention pass and split traffic by link class."""
    g = topology.world_size
    rng = np.random.default_rng(0)
    q, k, v, do = (rng.normal(size=(2, g * 16, 8)) for _ in range(4))
    method = get_method(
        "burst" if schedule_name == "double" else "megatron-cp", block_size=16
    )
    res = method.run(topology, q, k, v, mask=CausalMask(), do=do)
    log = res.comm.log
    return (
        log.total_bytes(link=LinkClass.INTRA),
        log.total_bytes(link=LinkClass.INTER),
    )


def main() -> None:
    shapes = [(2, 4), (4, 8), (8, 8)]
    rows = []
    for nodes, gpn in shapes:
        topology = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        flat_intra, flat_inter = measured_traffic(topology, "flat")
        dbl_intra, dbl_inter = measured_traffic(topology, "double")
        rows.append([
            f"{nodes}x{gpn}",
            format_bytes(flat_inter), format_bytes(dbl_inter),
            f"{flat_inter / max(dbl_inter, 1):.1f}x",
        ])
    print("inter-node traffic of one attention layer pass (fwd+bwd):")
    print(format_table(
        ["cluster", "flat ring", "double ring", "reduction"], rows
    ))

    print("\nprojected communication time (Table 1 formulas, 14B config, 1M):")
    rows = []
    for nodes, gpn in shapes:
        topology = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        t = table1_comm_times(topology, 1 << 20, 5120)
        rows.append([
            f"{nodes}x{gpn}",
            f"{t['ring'] * 1e3:.1f}", f"{t['double_ring'] * 1e3:.1f}",
            f"{t['burst'] * 1e3:.1f}",
            f"{t['ring'] / t['burst']:.2f}x",
        ])
    print(format_table(
        ["cluster", "ring ms", "double ms", "burst ms", "ring/burst"], rows
    ))

    print("\nring schedules on a 2x4 cluster (transition link classes):")
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    for name, sched in (
        ("flat", global_ring_schedule(topology)),
        ("double", double_ring_schedule(topology)),
    ):
        classes = [
            sched.transition_link_class(t).value[:5]
            for t in range(len(sched.transitions))
        ]
        print(f"  {name:7s} {' '.join(classes)}")


if __name__ == "__main__":
    main()
