"""Quickstart: train a tiny LLaMA-style model with BurstEngine on a
simulated 2-node x 4-GPU cluster.

Demonstrates the full stack working together numerically:
BurstAttention (Algorithm 2 backward) over the topology-aware double
ring, sequence-level selective checkpointing, the fused LM head + loss,
and FSDP traffic accounting — and that the loss actually goes down.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.engine import BurstEngine, EngineConfig
from repro.nn import CheckpointPolicy, TransformerConfig
from repro.nn.checkpoint import CheckpointMode
from repro.topology import a800_node, make_cluster
from repro.utils import format_bytes


def main() -> None:
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    print(f"cluster: {topology.describe()}")

    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128,
            dim=32,
            n_layers=2,
            n_heads=4,
            ffn_hidden=64,
            max_seq_len=128,
            attn_block_size=32,
        ),
        method="burst",
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
        lr=3e-3,
    )
    engine = BurstEngine(config, topology=topology)
    print(
        f"model: {engine.model.num_parameters():,} parameters, "
        f"method: {config.method}, checkpoint: {config.checkpoint.mode.value}"
    )

    rng = np.random.default_rng(0)
    ids = rng.integers(0, 128, size=64)
    targets = np.roll(ids, -1)

    print("\nstep  loss     attn-comm/step  peak-activations")
    for step in range(10):
        result = engine.train_step(ids, targets)
        print(
            f"{step:4d}  {result.loss:7.4f}  "
            f"{format_bytes(result.step_comm_bytes):>14s}  "
            f"{format_bytes(result.peak_activation_bytes):>14s}"
        )

    log = engine.comm.log
    print("\ncommunication by phase (whole run):")
    print(log.summary())
    print(
        "\nBurstAttention backward moved "
        f"{log.total_elems(phase='attn-bwd'):,} elements "
        "(3Nd + 2N per GPU per layer pass — 25% below RingAttention's 4Nd)"
    )


if __name__ == "__main__":
    main()
