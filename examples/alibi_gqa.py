"""Modern attention variants on the distributed stack: ALiBi + GQA.

Demonstrates two extensions beyond the paper:

1. **ALiBi position bias** — encoded as a mask-with-bias, so the ring
   circulation, balanced partitions, and checkpointing all support it
   without special cases; the distributed output is verified against the
   dense reference live.
2. **Grouped-query attention** — fewer KV heads shrink the ring's KV
   payload, flipping the Algorithm 1 / Algorithm 2 trade-off the paper
   optimised for MHA.  The adaptive engine measures both and picks.

Run:  python examples/alibi_gqa.py
"""

import numpy as np

from repro.attention import get_method
from repro.attention.gqa import backward_comm_elems, choose_backward_algorithm
from repro.engine import BurstEngine, EngineConfig, Trainer
from repro.kernels import attention_reference
from repro.masks import ALiBiMask
from repro.nn import TransformerConfig, WarmupCosineLR
from repro.topology import a800_node, make_cluster
from repro.utils import format_table


def alibi_demo() -> None:
    print("== ALiBi through the distributed ring ==")
    topo = make_cluster(8, node=a800_node(gpus_per_node=4))
    h, n, d = 4, 64, 8
    rng = np.random.default_rng(0)
    q, k, v = (rng.normal(size=(h, n, d)) for _ in range(3))
    mask = ALiBiMask(h)
    res = get_method("burst", block_size=16).run(topo, q, k, v, mask=mask)
    o_ref, _ = attention_reference(q, k, v, mask=mask.dense(n),
                                   bias=mask.dense_bias(n))
    print(f"slopes: {np.round(mask.slopes, 4)}")
    print(f"distributed vs dense max error: {np.abs(res.o - o_ref).max():.2e}")


def gqa_tradeoff_demo() -> None:
    print("\n== GQA flips the backward-payload trade-off ==")
    rows = []
    for hq, hkv in [(32, 32), (32, 8), (64, 8), (32, 1)]:
        alg1 = backward_comm_elems("alg1", 1 << 20, 128, hq, hkv)
        alg2 = backward_comm_elems("alg2", 1 << 20, 128, hq, hkv)
        rows.append([
            f"{hq}q/{hkv}kv", f"{alg1 / 1e9:.2f}", f"{alg2 / 1e9:.2f}",
            choose_backward_algorithm(128, hq, hkv),
        ])
    print(format_table(
        ["heads", "Alg.1 Gelem", "Alg.2 (burst) Gelem", "adaptive pick"], rows
    ))


def gqa_training_demo() -> None:
    print("\n== training a GQA + ALiBi model distributed ==")
    topo = make_cluster(4, node=a800_node(gpus_per_node=4))
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=64, dim=32, n_layers=2, n_heads=8, n_kv_heads=2,
            ffn_hidden=48, max_seq_len=64, attn_block_size=16,
            mask=ALiBiMask(8),
        ),
        method="burst",
        method_kwargs={"adaptive_backward": True},
        lr=3e-3,
    )
    engine = BurstEngine(config, topology=topo)
    rng = np.random.default_rng(1)
    ids = rng.integers(0, 64, size=32)
    trainer = Trainer(
        engine, schedule=WarmupCosineLR(3e-3, warmup_steps=3, total_steps=20)
    )
    trainer.fit([(ids, np.roll(ids, -1))], steps=20)
    first, last = trainer.history[0], trainer.history[-1]
    print(f"loss {first.loss:.3f} -> {last.loss:.3f} over 20 steps "
          f"(lr {first.lr:.2e} -> {last.lr:.2e})")
    bwd = engine.comm.log.total_elems(phase="attn-bwd")
    print(f"backward ring traffic (adaptive Alg.1 under 4x GQA): {bwd:,} elements")


if __name__ == "__main__":
    alibi_demo()
    gqa_tradeoff_demo()
    gqa_training_demo()
