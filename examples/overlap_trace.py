"""Visualising communication-computation overlap (Fig. 5).

Builds the DES task graphs behind the attention timing model for
BurstAttention's delayed-gradient scheme vs LoongTrain's serialized
gradient drain, prints the timelines, and exports Chrome traces you can
open at chrome://tracing or https://ui.perfetto.dev — plus an *observed*
trace of a real burst backward pass on the simulated cluster, so the
predicted and executed ring schedules sit side by side in the viewer
(the DES rows load as pid 1, the observed rows as pid 2).

Run:  python examples/overlap_trace.py
"""

import os

import numpy as np

from repro.attention import get_method
from repro.comm import SimCommunicator
from repro.obs import spans_to_chrome_json, use_tracing
from repro.perf.cost import link_time
from repro.perf.des import Simulator
from repro.perf.schedules.attention import _pipelined_ring, _transition_durations
from repro.perf.trace import trace_to_chrome_json
from repro.topology import a800_node, make_cluster


def build(grad_overlapped: bool) -> Simulator:
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    payload = 64e6  # one circulating gradient bundle, bytes
    step_compute = 6e-3
    transitions = _transition_durations(topology, payload, flat=False)
    sim = Simulator()
    if grad_overlapped:
        _pipelined_ring(sim, "b", transitions, step_compute, grad_dependent=True)
    else:
        # LoongTrain: compute first, then drain the gradient ring serially.
        _pipelined_ring(sim, "b", transitions, step_compute, grad_dependent=False)
        prev = f"bc{len(transitions)}"
        for i, (res, dur) in enumerate(transitions):
            sim.add(f"drain{i}", dur, resources=(res,), deps=[prev])
            prev = f"drain{i}"
    sim.run()
    return sim


def show(label: str, sim: Simulator) -> None:
    makespan = max(t.end for t in sim.timeline())
    print(f"\n{label}: makespan {makespan * 1e3:.2f} ms")
    for task in sim.timeline():
        res = task.resources[0] if task.resources else "-"
        bar_start = int(task.start * 4e3)
        bar_len = max(1, int(task.duration * 4e3))
        print(f"  {task.name:10s} [{res:7s}] "
              + " " * bar_start + "#" * bar_len)


def observed(out_dir: str) -> None:
    """Execute the same burst fwd+bwd pass for real and export its spans."""
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    method = get_method("burst")
    rng = np.random.default_rng(0)
    q, k, v = (rng.standard_normal((4, 128, 16)) for _ in range(3))
    do = rng.standard_normal((4, 128, 16))
    with use_tracing() as tracer:
        method.run(topology, q, k, v, do=do,
                   comm=SimCommunicator(topology))
    path = os.path.join(out_dir, "burst.observed.json")
    spans_to_chrome_json(tracer.spans(), path, metadata={"method": "burst"})
    print(f"wrote {path} ({len(tracer.spans())} observed spans — load next "
          "to the DES traces to compare rings)")


def main() -> None:
    overlapped = build(grad_overlapped=True)
    serialized = build(grad_overlapped=False)
    show("BurstAttention (delayed double buffer)", overlapped)
    show("DoubleRing (serialized gradient drain)", serialized)

    out_dir = os.path.join(os.path.dirname(__file__), "traces")
    os.makedirs(out_dir, exist_ok=True)
    for name, sim in (("burst", overlapped), ("doublering", serialized)):
        path = os.path.join(out_dir, f"{name}.json")
        trace_to_chrome_json(sim, path)
        print(f"\nwrote {path} (open in chrome://tracing)")
    observed(out_dir)


if __name__ == "__main__":
    main()
