"""Sparse attention integration: sliding-window and block-sparse masks
with block-wise workload balance (Section 3.4 / Fig. 11 / Table 3).

Shows three things on real numerics:

1. distributed BurstAttention with a sliding-window mask produces exactly
   the single-device result;
2. the block-wise partition balances the sparse workload across devices
   (contiguous partitions leave devices idle);
3. skipping fully-masked tiles turns mask sparsity into real compute
   savings — measured in attention FLOPs, and projected to training
   throughput by the Table 3 model.

Run:  python examples/sparse_attention.py
"""

import numpy as np

from repro.attention import get_method
from repro.kernels import attention_reference
from repro.masks import SlidingWindowMask, sliding_window_block_mask
from repro.partition import (
    BlockwisePartitioner,
    ContiguousPartitioner,
    workload_per_device,
)
from repro.partition.workload import balance_report
from repro.topology import a800_node, make_cluster


def main() -> None:
    n, d, heads, g = 512, 16, 4, 8
    block_size = 64
    topology = make_cluster(g, node=a800_node(gpus_per_node=4))
    mask = sliding_window_block_mask(
        seq_len=n, block_size=block_size, window_blocks=4
    )
    print(f"sequence: {n} tokens, SWA mask: {block_size}-token blocks, "
          f"2-block window, {mask.block_density() * 100:.0f}% of block pairs")

    # 1. exact distributed numerics under the sparse mask
    rng = np.random.default_rng(1)
    q, k, v = (rng.normal(size=(heads, n, d)) for _ in range(3))
    method = get_method(
        "burst", partitioner=BlockwisePartitioner(block_size=block_size),
        block_size=16,
    )
    result = method.run(topology, q, k, v, mask=mask)
    o_ref, _ = attention_reference(q, k, v, mask=mask.dense(n))
    err = np.abs(result.o - o_ref).max()
    print(f"\ndistributed vs single-device max error: {err:.2e}")

    # 2. workload balance across devices
    print("\nallowed attention pairs per device:")
    for part in (ContiguousPartitioner(), BlockwisePartitioner(block_size)):
        work = workload_per_device(mask, part, n, g)
        print(f"  {part.name:10s} min={work.min():5d} max={work.max():5d} "
              f"imbalance={work.max() / work.mean():.3f}")

    report = balance_report(
        mask, [ContiguousPartitioner(), BlockwisePartitioner(block_size)], n, g
    )
    speedup = report["blockwise"]["speedup_vs_worst"]
    print(f"\nbarrier-bounded speedup of block-wise balance: {speedup:.2f}x")

    # 3. projected training throughput (Table 3 model)
    from repro.models import LLAMA_14B
    from repro.perf import end_to_end_step

    topo8 = make_cluster(8)
    kw = dict(method="burst", checkpoint="sequence_level", head_mode="fused",
              optimizer_offload=True)
    dense = end_to_end_step(LLAMA_14B, topo8, 262144, **kw)
    swa = end_to_end_step(LLAMA_14B, topo8, 262144,
                          sparsity=2 * 32768 / 262144, **kw)
    print(f"\nprojected 14B training on 8 x A800 at 256K tokens:")
    print(f"  causal attention: {dense.tgs:7.1f} tokens/s/GPU")
    print(f"  32K-window SWA:   {swa.tgs:7.1f} tokens/s/GPU "
          f"({swa.tgs / dense.tgs:.2f}x)")


if __name__ == "__main__":
    main()
