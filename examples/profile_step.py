"""Profile the communication of a real training step.

Runs one BurstEngine step on the simulated cluster with span tracing on,
then turns the measured traffic log into a per-phase, per-link report
(bytes, transfer counts, busiest-rank time on each link) — the workflow
for answering "where does my step's communication actually go?" — and
exports the observed execution as a Chrome trace next to the report.

Run:  python examples/profile_step.py
"""

import os

import numpy as np

from repro.engine import BurstEngine, EngineConfig
from repro.nn import TransformerConfig
from repro.obs import spans_to_chrome_json, use_tracing
from repro.perf.profile import profile_report, profile_traffic
from repro.topology import a800_node, make_cluster
from repro.utils import format_bytes


def main() -> None:
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    engine = BurstEngine(
        EngineConfig(
            model=TransformerConfig(
                vocab_size=128, dim=32, n_layers=3, n_heads=4,
                ffn_hidden=64, max_seq_len=128, attn_block_size=32,
            ),
        ),
        topology=topology,
    )
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 128, size=64)
    with use_tracing() as tracer:
        result = engine.train_step(ids, np.roll(ids, -1))
    print(f"cluster: {topology.describe()}")
    print(f"one step: loss={result.loss:.4f}, "
          f"total comm={format_bytes(result.step_comm_bytes)}\n")

    print(profile_report(engine.comm.log, topology))

    profiles = profile_traffic(engine.comm.log, topology)
    if not profiles:
        print("\n(no traffic recorded)")
    else:
        print("\ncommunication-bound lower bounds per phase:")
        for phase, prof in sorted(profiles.items()):
            print(f"  {phase:10s} {prof.bound_time * 1e3:8.3f} ms "
                  f"({format_bytes(prof.total_bytes)})")
        dominant = max(profiles.values(), key=lambda p: p.total_bytes)
        print(f"\ndominant phase by volume: {dominant.phase} — at small scale "
              "FSDP parameter movement dwarfs attention traffic, which is the "
              "paper's end-to-end observation in miniature")

    out_dir = os.path.join(os.path.dirname(__file__), "traces")
    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "profile_step.observed.json")
    spans_to_chrome_json(tracer.spans(), trace_path,
                         metadata={"method": "burst"})
    print(f"\nwrote {trace_path} ({len(tracer.spans())} spans; open in "
          "https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
