"""Long-range recall: prove the distributed stack actually learns to use
its context window.

Trains a tiny model with BurstEngine on two synthetic tasks whose labels
are impossible to predict without long-range attention — a copy task
(second half repeats the first) and needle-in-a-haystack retrieval — and
reports recall accuracy before/after training.

Run:  python examples/long_range_recall.py
"""

import numpy as np

from repro.data import (
    copy_task,
    copy_task_recall_positions,
    needle_task,
    recall_accuracy,
)
from repro.engine import BurstEngine, EngineConfig
from repro.nn import TransformerConfig
from repro.nn.tensor import no_grad
from repro.topology import a800_node, make_cluster


def make_engine(vocab: int, seq: int) -> BurstEngine:
    return BurstEngine(
        EngineConfig(
            model=TransformerConfig(
                vocab_size=vocab, dim=32, n_layers=2, n_heads=4,
                ffn_hidden=48, max_seq_len=seq, attn_block_size=16,
            ),
            lr=5e-3,
        ),
        topology=make_cluster(4, node=a800_node(gpus_per_node=4)),
    )


def run_copy() -> None:
    vocab, seq = 16, 32
    engine = make_engine(vocab, seq)
    ids, targets = copy_task(seq, vocab, seed=7)
    positions = copy_task_recall_positions(seq)
    print("== copy task ==")
    print(f"predicting the copy region requires attending {seq // 2} tokens back")
    acc = recall_accuracy(engine.model, ids, targets, positions)
    print(f"step   0: loss=?       recall={acc * 100:5.1f}% (chance {100 / vocab:.1f}%)")
    for step in range(1, 81):
        res = engine.train_step(ids, targets)
        if step % 20 == 0:
            acc = recall_accuracy(engine.model, ids, targets, positions)
            print(f"step {step:3d}: loss={res.loss:6.3f} recall={acc * 100:5.1f}%")


def run_needle() -> None:
    vocab, seq = 16, 32
    engine = make_engine(vocab, seq)
    print("\n== needle in a haystack ==")
    cases = [needle_task(seq, vocab, needle_pos=p, seed=p) for p in (1, 3, 5)]
    for step in range(121):
        for ids, targets, _ in cases:
            engine.train_step(ids, targets)
        if step % 40 == 0:
            hits = 0
            for ids, targets, value in cases:
                with no_grad():
                    pred = engine.model.logits(ids).data[-1].argmax()
                hits += int(pred == value)
            print(f"step {step:3d}: retrieved {hits}/{len(cases)} needles")


def main() -> None:
    np.random.seed(0)
    run_copy()
    run_needle()


if __name__ == "__main__":
    main()
