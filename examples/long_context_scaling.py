"""Long-context scaling study: which system trains a 14B model on 1M+
token sequences fastest, and what fits in memory?

Uses the performance model (DES overlap schedules + analytic memory) to
sweep methods x sequence lengths on a 4-node A800 cluster — the workflow
a practitioner would run before committing to a parallelism strategy.

Run:  python examples/long_context_scaling.py
"""

from repro.experiments import BASELINE_CONFIGS, METHOD_LABELS
from repro.models import LLAMA_14B
from repro.perf import end_to_end_step
from repro.topology import make_cluster
from repro.utils import format_table


SEQ_LENS = [262144, 524288, 1048576, 2097152]
METHODS = ["megatron-cp", "ulysses", "loongtrain-double", "usp", "burst"]


def main() -> None:
    topology = make_cluster(32)
    print(f"cluster: {topology.describe()}")
    print(f"model:   {LLAMA_14B.name} ({LLAMA_14B.n_params / 1e9:.1f}B params)\n")

    rows = []
    for seq in SEQ_LENS:
        for method in METHODS:
            cfg = dict(BASELINE_CONFIGS[method])
            fsdp = cfg.pop("fsdp")
            try:
                r = end_to_end_step(
                    LLAMA_14B, topology, seq, method=method, fsdp=fsdp, **cfg
                )
            except ValueError as exc:
                rows.append([f"{seq // 1024}K", METHOD_LABELS[method],
                             "infeasible", "-", "-", str(exc)[:40]])
                continue
            status = "OOM" if r.oom else ""
            rows.append([
                f"{seq // 1024}K", METHOD_LABELS[method],
                f"{r.tgs:.1f}", f"{r.mfu * 100:.1f}",
                f"{r.memory.total_gb:.1f}", status,
            ])
    print(format_table(
        ["seq", "method", "TGS", "MFU%", "mem GB", ""], rows
    ))

    print("\nwhere the time goes at 1M tokens (BurstEngine):")
    r = end_to_end_step(LLAMA_14B, topology, 1048576, method="burst",
                        checkpoint="sequence_level", head_mode="fused")
    for part, seconds in sorted(r.breakdown.items(), key=lambda kv: -kv[1]):
        share = seconds / r.step_time * 100
        print(f"  {part:15s} {seconds:7.2f}s  {share:5.1f}%")
    print(f"  {'total step':15s} {r.step_time:7.2f}s")


if __name__ == "__main__":
    main()
