"""Tests for cost formulas, the memory model, and end-to-end shapes.

These encode the *reproduction targets*: the orderings and rough factors
of the paper's evaluation must come out of the models (who wins, where
OOMs happen, how scaling behaves).
"""

import pytest

from repro.models import LLAMA_7B, LLAMA_14B, MODEL_SPECS
from repro.perf import (
    MemoryModel,
    TrainingSetup,
    attention_pass_time,
    end_to_end_step,
    matmul_time,
    table1_comm_times,
)
from repro.perf.cost import attention_step_sizes
from repro.perf.memory import checkpoint_memory_curve, logits_memory_bytes, ulysses_effective_degree
from repro.perf.schedules.attention import AttentionWorkload
from repro.topology import make_cluster


TOPO32 = make_cluster(32)
TOPO8 = make_cluster(8)
SEQ_1M = 1 << 20


class TestModelSpecs:
    def test_param_counts_match_names(self):
        assert LLAMA_7B.n_params == pytest.approx(7e9, rel=0.08)
        assert LLAMA_14B.n_params == pytest.approx(14e9, rel=0.08)

    def test_70b_gqa_spec(self):
        from repro.models import LLAMA_70B_GQA

        assert LLAMA_70B_GQA.n_params == pytest.approx(70e9, rel=0.05)
        assert LLAMA_70B_GQA.kv_ratio == pytest.approx(1 / 8)
        # GQA narrows the KV projections: fewer params than the MHA twin
        import dataclasses

        mha_twin = dataclasses.replace(LLAMA_70B_GQA, n_kv_heads=None)
        assert LLAMA_70B_GQA.n_params < mha_twin.n_params

    def test_attention_fraction_grows_with_sequence(self):
        """Fig. 2: attention share grows from minor to dominant."""
        f8k = LLAMA_7B.attention_fraction(8192)
        f128k = LLAMA_7B.attention_fraction(131072)
        f1m = LLAMA_7B.attention_fraction(SEQ_1M)
        assert f8k < 0.25
        assert f128k > 0.5       # past 128K attention dominates
        assert f1m > 0.9
        assert f8k < f128k < f1m

    def test_flops_per_token_monotone(self):
        assert LLAMA_7B.flops_per_token(SEQ_1M) > LLAMA_7B.flops_per_token(8192)


class TestCostFormulas:
    def test_step_sizes_match_algorithms(self):
        sizes = attention_step_sizes(1024, 64, 8, bytes_per_elem=2)
        shard = 1024 / 8
        assert sizes["fwd"] == 2 * shard * 64 * 2
        assert sizes["bwd_alg1"] == 4 * shard * 64 * 2
        assert sizes["bwd_alg2"] == (3 * 64 + 2) * shard * 2

    def test_alg2_payload_is_25pct_smaller(self):
        sizes = attention_step_sizes(SEQ_1M, 5120, 32)
        saving = 1 - sizes["bwd_alg2"] / sizes["bwd_alg1"]
        assert saving == pytest.approx(0.25, abs=0.01)

    def test_table1_ordering(self):
        """burst < double_ring < ring on a multi-node cluster."""
        times = table1_comm_times(TOPO32, SEQ_1M, 5120)
        assert times["burst"] < times["double_ring"] < times["ring"]

    def test_table1_single_node_converges(self):
        """On one node there is no inter-node link to exploit: the gap
        between methods shrinks to the payload difference."""
        times = table1_comm_times(TOPO8, 262144, 5120)
        assert times["burst"] < times["ring"]
        # ring/burst ratio ~ 6/5 payload rounds (plus lockstep effects)
        assert times["ring"] / times["burst"] < 1.5

    def test_matmul_time_validation(self):
        with pytest.raises(ValueError):
            matmul_time(1e9, 0.0)
        with pytest.raises(ValueError):
            matmul_time(1e9, 1e12, efficiency=1.5)


class TestAttentionPassTimes:
    WL = AttentionWorkload(seq_len=SEQ_1M, hidden=5120, n_heads=40)

    def _total(self, method):
        return attention_pass_time(method, TOPO32, self.WL) + attention_pass_time(
            method, TOPO32, self.WL, backward=True
        )

    def test_fig14_ordering(self):
        """Burst fastest; Megatron-CP worst (lockstep inter-gated ring)."""
        t = {m: self._total(m) for m in
             ("burst", "usp", "loongtrain-double", "megatron-cp")}
        assert t["burst"] <= t["usp"]
        assert t["burst"] < t["loongtrain-double"]
        assert t["loongtrain-double"] < t["megatron-cp"]

    def test_fig14_factors(self):
        """Rough factors: USP within ~10% of Burst, Megatron >= 1.15x."""
        t_burst = self._total("burst")
        assert self._total("usp") / t_burst < 1.10
        assert self._total("megatron-cp") / t_burst > 1.15

    def test_backward_slower_than_forward(self):
        for m in ("burst", "megatron-cp"):
            fwd = attention_pass_time(m, TOPO32, self.WL)
            bwd = attention_pass_time(m, TOPO32, self.WL, backward=True)
            assert bwd > fwd

    def test_sparsity_reduces_time(self):
        dense = attention_pass_time("burst", TOPO32, self.WL)
        sparse_wl = AttentionWorkload(
            seq_len=SEQ_1M, hidden=5120, n_heads=40, sparsity=0.1
        )
        assert attention_pass_time("burst", TOPO32, sparse_wl) < dense / 3

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            attention_pass_time("bogus", TOPO32, self.WL)

    def test_gqa_workload_shrinks_kv_payload_not_compute(self):
        mha = AttentionWorkload(seq_len=SEQ_1M, hidden=8192, n_heads=64)
        gqa = AttentionWorkload(seq_len=SEQ_1M, hidden=8192, n_heads=64,
                                kv_ratio=1 / 8)
        assert gqa.kv_shard_bytes(32) == pytest.approx(mha.kv_shard_bytes(32) / 8)
        assert gqa.fwd_flops_per_gpu(32) == mha.fwd_flops_per_gpu(32)

    def test_burst_adaptive_never_slower(self):
        for ratio in (1.0, 0.5, 1 / 8):
            wl = AttentionWorkload(seq_len=262144, hidden=8192, n_heads=64,
                                   kv_ratio=ratio)
            fixed = attention_pass_time("burst", TOPO32, wl, backward=True)
            adaptive = attention_pass_time("burst-adaptive", TOPO32, wl,
                                           backward=True)
            assert adaptive <= fixed * 1.0001

    def test_single_gpu_has_no_comm(self):
        topo1 = make_cluster(1)
        wl = AttentionWorkload(seq_len=32768, hidden=5120, n_heads=40)
        t = attention_pass_time("burst", topo1, wl)
        # pure compute: flops / (peak * eff)
        from repro.perf.schedules.attention import ATTENTION_EFFICIENCY

        expected = wl.fwd_flops_per_gpu(1) / (
            topo1.node.gpu.peak_flops * ATTENTION_EFFICIENCY
        )
        assert t == pytest.approx(expected, rel=1e-9)


class TestMemoryModel:
    def test_megatron_oom_from_replicated_states(self):
        """Fig. 13: Megatron-CP (no FSDP) exceeds 80 GB on states alone."""
        setup = TrainingSetup(model=LLAMA_14B, seq_len=SEQ_1M, world=32,
                              method="megatron-cp", fsdp=False)
        bd = MemoryModel().breakdown(setup)
        assert bd.oom
        assert bd.params + bd.grads + bd.optimizer > 80e9

    def test_ulysses_14b_oom_from_head_limit(self):
        """Fig. 13: 40 heads on 32 GPUs -> degree 8 -> 4x activations -> OOM."""
        assert ulysses_effective_degree(40, 32) == 8
        setup = TrainingSetup(model=LLAMA_14B, seq_len=SEQ_1M, world=32,
                              method="ulysses", checkpoint="full",
                              head_mode="naive")
        assert MemoryModel().breakdown(setup).oom

    def test_ulysses_7b_fits(self):
        assert ulysses_effective_degree(32, 32) == 32
        setup = TrainingSetup(model=LLAMA_7B, seq_len=2 * SEQ_1M, world=32,
                              method="ulysses", checkpoint="full",
                              head_mode="naive")
        assert not MemoryModel().breakdown(setup).oom

    def test_burst_saves_vs_best_baseline_14b(self):
        """Fig. 13 headline: ~24% saving at 14B/1M/32 GPUs."""
        mm = MemoryModel()
        burst = mm.breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=SEQ_1M, world=32,
            checkpoint="sequence_level", head_mode="fused"))
        baseline = mm.breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=SEQ_1M, world=32,
            checkpoint="selective_pp", head_mode="naive"))
        saving = 1 - burst.total / baseline.total
        assert 0.15 < saving < 0.45

    def test_checkpoint_curve_ordering(self):
        """Fig. 7: full < sequence-level < selective++ < none, linear in S."""
        seqs = [65536, 131072, 262144]
        curves = {
            p: checkpoint_memory_curve(LLAMA_7B, seqs, 32, p)
            for p in ("full", "sequence_level", "selective_pp", "none")
        }
        for i in range(len(seqs)):
            assert (curves["full"][i] < curves["sequence_level"][i]
                    < curves["selective_pp"][i] < curves["none"][i])
        # sequence-level stores exactly half of selective++'s extra
        extra_seq = curves["sequence_level"][0] - curves["full"][0]
        extra_spp = curves["selective_pp"][0] - curves["full"][0]
        assert extra_seq == pytest.approx(extra_spp / 2, rel=1e-9)

    def test_logits_memory_fig8(self):
        """Fig. 8: LLaMA-3's 128K vocab is ~4x LLaMA-2's logits memory."""
        m2 = logits_memory_bytes(SEQ_1M, 32_000)
        m3 = logits_memory_bytes(SEQ_1M, 128_256)
        assert m3 / m2 == pytest.approx(128_256 / 32_000)
        assert m3 > 250e9  # hundreds of GB at 1M tokens

    def test_offload_removes_optimizer_memory(self):
        on = MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=262144, world=8, optimizer_offload=True))
        off = MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=262144, world=8, optimizer_offload=False))
        assert on.optimizer == 0
        assert off.optimizer > 0
        assert on.total < off.total

    def test_memory_as_dict(self):
        bd = MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_7B, seq_len=262144, world=8))
        d = bd.as_dict()
        assert set(d) >= {"params_gb", "activations_gb", "total_gb", "oom"}


class TestEndToEndShapes:
    BASE = dict(checkpoint="full", head_mode="naive")

    def test_fig12_burst_speedup_over_usp(self):
        """Headline: ~1.2x end-to-end speedup over LoongTrain-USP."""
        usp = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="usp", **self.BASE)
        burst = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="burst",
                                checkpoint="sequence_level", head_mode="fused")
        speedup = burst.tgs / usp.tgs
        assert 1.10 < speedup < 1.35

    def test_fig12_burst_mfu_near_paper(self):
        """Paper Table 2 row 5: MFU 47.7%, TGS 108.8 (14B, 1M, 32 GPUs)."""
        r = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="burst",
                            checkpoint="sequence_level", head_mode="fused")
        assert 0.40 < r.mfu < 0.55
        assert 90 < r.tgs < 125

    def test_table4_mfu_stable_across_nodes(self):
        """Inter-node scaling: MFU stays flat as nodes x sequence grow."""
        mfus = []
        for nodes in (2, 4, 8):
            topo = make_cluster(nodes * 8)
            r = end_to_end_step(LLAMA_14B, topo, nodes * 8 * 32768,
                                method="burst", checkpoint="sequence_level",
                                head_mode="fused")
            mfus.append(r.mfu)
        assert max(mfus) - min(mfus) < 0.02

    def test_table4_tgs_halves_as_sequence_doubles(self):
        tgs = {}
        for nodes in (2, 4):
            topo = make_cluster(nodes * 8)
            tgs[nodes] = end_to_end_step(
                LLAMA_14B, topo, nodes * 8 * 32768, method="burst",
                checkpoint="sequence_level", head_mode="fused").tgs
        assert tgs[2] / tgs[4] == pytest.approx(2.0, rel=0.1)

    def test_table5_mfu_rises_with_cp(self):
        """Intra-node: longer sequences amortise fixed costs -> MFU rises."""
        mfus = []
        for cp in (1, 2, 4, 8):
            topo = make_cluster(cp)
            r = end_to_end_step(LLAMA_14B, topo, cp * 32768, method="burst",
                                checkpoint="sequence_level", head_mode="fused",
                                optimizer_offload=True)
            mfus.append(r.mfu)
        assert mfus == sorted(mfus)
        assert mfus[-1] > 0.40

    def test_table3_sparse_speedups(self):
        """Causal balance ~1.7-2x; SWA ~3.5-5x over unbalanced masking."""
        kw = dict(checkpoint="sequence_level", head_mode="fused",
                  optimizer_offload=True)
        masking = end_to_end_step(LLAMA_14B, TOPO8, 262144, method="burst",
                                  workload_balanced=False, **kw)
        causal = end_to_end_step(LLAMA_14B, TOPO8, 262144, method="burst", **kw)
        swa = end_to_end_step(LLAMA_14B, TOPO8, 262144, method="burst",
                              sparsity=2 * 32768 / 262144, **kw)
        assert 1.5 < causal.tgs / masking.tgs < 2.2
        assert 3.0 < swa.tgs / masking.tgs < 5.5

    def test_table2_ablation_monotone(self):
        """Each added optimisation must not hurt TGS; memory moves per
        paper: fused head saves, seq-ckpt costs some back vs full."""
        rows = [
            ("megatron-cp", "full", "naive"),
            ("burst-flat", "full", "naive"),
            ("burst", "full", "naive"),
            ("burst", "full", "fused"),
            ("burst", "sequence_level", "fused"),
        ]
        tgs = [
            end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method=m,
                            checkpoint=c, head_mode=h).tgs
            for m, c, h in rows
        ]
        for a, b in zip(tgs, tgs[1:]):
            assert b >= a * 0.995
        assert tgs[-1] / tgs[0] > 1.3  # paper: 1.4x base -> full stack

    def test_ablation_spp_trades_memory_for_speed(self):
        seq = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="burst",
                              checkpoint="sequence_level", head_mode="fused")
        spp = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="burst",
                              checkpoint="selective_pp", head_mode="fused")
        assert spp.tgs > seq.tgs
        assert spp.memory.total > seq.memory.total

    def test_breakdown_sums_consistently(self):
        r = end_to_end_step(LLAMA_14B, TOPO32, SEQ_1M, method="burst",
                            checkpoint="sequence_level", head_mode="fused")
        assert sum(r.breakdown.values()) <= r.step_time * 1.001
        assert r.breakdown["attention_bwd"] > r.breakdown["attention_fwd"]
