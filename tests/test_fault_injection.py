"""Fault injection: corrupt the communication layer and confirm the
verification machinery catches it.

A reproduction's tests are only as good as their ability to *fail*.  The
fault models now live in :mod:`repro.testing.faults` (see
``tests/test_testing_harness.py`` for the full method × fault acceptance
matrix); this file keeps the narrative burst-specific scenarios — where in
Algorithm 2's schedule each bug bites — using the promoted classes.
"""

import numpy as np

from repro.attention import get_method
from repro.attention.verify import verify_method
from repro.comm import SimCommunicator
from repro.masks import CausalMask
from repro.testing.faults import (
    CorruptPayloadComm,
    DropTransferComm,
    MisrouteHopComm,
    StaleBufferComm,
)
from repro.topology import a800_node, make_cluster


TOPO = make_cluster(4, node=a800_node(gpus_per_node=4))


def run_with_comm(comm):
    rng = np.random.default_rng(0)
    q, k, v, do = (rng.normal(size=(2, 32, 8)) for _ in range(4))
    method = get_method("burst", block_size=8)
    res = method.run(TOPO, q, k, v, mask=CausalMask(), do=do, comm=comm)
    ref = get_method("burst", block_size=8).run(
        TOPO, q, k, v, mask=CausalMask(), do=do
    )
    return res, ref


class TestFaultsAreDetected:
    def test_clean_run_matches(self):
        res, ref = run_with_comm(SimCommunicator(TOPO))
        np.testing.assert_allclose(res.o, ref.o, rtol=1e-12)
        np.testing.assert_allclose(res.dq, ref.dq, rtol=1e-12)

    def test_corrupted_transfer_changes_output(self):
        comm = CorruptPayloadComm(TOPO, op="ring_shift", at_call=1)
        res, ref = run_with_comm(comm)
        assert not np.allclose(res.o, ref.o, rtol=1e-9)

    def test_late_corruption_only_hits_backward(self):
        """Corrupting the first backward transfer leaves the output intact
        but poisons gradients."""
        comm = CorruptPayloadComm(TOPO, op="ring_shift", phase="attn-bwd")
        res, ref = run_with_comm(comm)
        np.testing.assert_allclose(res.o, ref.o, rtol=1e-12)
        assert not np.allclose(res.dq, ref.dq, rtol=1e-9)

    def test_dropped_gradient_return_detected(self):
        # Algorithm 2 returns dQ via the final exchange: losing it must show
        comm = DropTransferComm(TOPO, op="exchange", tag="return")
        res, ref = run_with_comm(comm)
        assert not np.allclose(res.dq, ref.dq, rtol=1e-9)

    def test_misrouting_detected(self):
        comm = MisrouteHopComm(TOPO, op="ring_shift", at_call=1)
        res, ref = run_with_comm(comm)
        assert not np.allclose(res.o, ref.o, rtol=1e-6)

    def test_stale_kv_buffer_detected(self):
        """Reusing the previous ring step's KV bundle (double-buffering bug)
        corrupts the merged softmax states."""
        comm = StaleBufferComm(TOPO, op="ring_shift", tag="kv", at_call=2)
        res, ref = run_with_comm(comm)
        assert not np.allclose(res.o, ref.o, rtol=1e-6)
        assert not np.allclose(res.lse, ref.lse, rtol=1e-6)

    def test_verify_method_flags_noisy_tolerance(self):
        """The verification report fails when errors exceed tolerance."""
        report = verify_method("burst", num_gpus=4, gpus_per_node=4,
                               seq_len=32, n_heads=4, tolerance=1e-30)
        assert not report.passed  # float64 noise > 1e-30
        assert "FAIL" in report.summary()

    def test_verify_method_passes_at_sane_tolerance(self):
        report = verify_method("burst", num_gpus=4, gpus_per_node=4,
                               seq_len=32, n_heads=4)
        assert report.passed
