"""Fault injection: corrupt the communication layer and confirm the
verification machinery catches it.

A reproduction's tests are only as good as their ability to *fail*.  These
meta-tests inject realistic distributed-systems bugs — a corrupted
transfer, a dropped gradient return, a misrouted ring hop — and assert the
dense-reference comparisons detect every one.
"""

import numpy as np
import pytest

from repro.attention import get_method
from repro.attention.verify import verify_method
from repro.comm import SimCommunicator
from repro.masks import CausalMask
from repro.topology import a800_node, make_cluster
from repro.utils.pytree import tree_map


TOPO = make_cluster(4, node=a800_node(gpus_per_node=4))


class CorruptingCommunicator(SimCommunicator):
    """Perturbs the payload of the Nth ring transfer."""

    def __init__(self, topology, corrupt_at: int, noise: float = 1e-3):
        super().__init__(topology)
        self.corrupt_at = corrupt_at
        self.noise = noise
        self._count = 0

    def ring_shift(self, bufs, ring, *, phase, tag=""):
        out = super().ring_shift(bufs, ring, phase=phase, tag=tag)
        self._count += 1
        if self._count == self.corrupt_at:
            out = list(out)
            out[ring[0]] = tree_map(
                lambda a: a + self.noise if a.dtype.kind == "f" else a,
                out[ring[0]],
            )
        return out


class DroppingCommunicator(SimCommunicator):
    """Silently zeroes the gradient-return exchange (a lost message)."""

    def exchange(self, bufs, dest_of, *, phase, tag=""):
        out = super().exchange(bufs, dest_of, phase=phase, tag=tag)
        if "return" in tag:
            out = [tree_map(np.zeros_like, b) for b in out]
        return out


class MisroutingCommunicator(SimCommunicator):
    """Sends ring traffic in the wrong direction (a routing bug).

    Note a *rotated* ring list would be the same cyclic ring — the
    successor map is what matters — so the bug reverses it instead.
    """

    def ring_shift(self, bufs, ring, *, phase, tag=""):
        return super().ring_shift(bufs, list(ring)[::-1], phase=phase, tag=tag)


def run_with_comm(comm):
    rng = np.random.default_rng(0)
    q, k, v, do = (rng.normal(size=(2, 32, 8)) for _ in range(4))
    method = get_method("burst", block_size=8)
    res = method.run(TOPO, q, k, v, mask=CausalMask(), do=do, comm=comm)
    ref = get_method("burst", block_size=8).run(
        TOPO, q, k, v, mask=CausalMask(), do=do
    )
    return res, ref


class TestFaultsAreDetected:
    def test_clean_run_matches(self):
        res, ref = run_with_comm(SimCommunicator(TOPO))
        np.testing.assert_allclose(res.o, ref.o, rtol=1e-12)
        np.testing.assert_allclose(res.dq, ref.dq, rtol=1e-12)

    def test_corrupted_transfer_changes_output(self):
        res, ref = run_with_comm(CorruptingCommunicator(TOPO, corrupt_at=1))
        assert not np.allclose(res.o, ref.o, rtol=1e-9)

    def test_late_corruption_only_hits_backward(self):
        """Corrupting a transfer after the forward's 3 transitions leaves
        the output intact but poisons gradients."""
        comm = CorruptingCommunicator(TOPO, corrupt_at=4)
        res, ref = run_with_comm(comm)
        np.testing.assert_allclose(res.o, ref.o, rtol=1e-12)
        assert not np.allclose(res.dq, ref.dq, rtol=1e-9)

    def test_dropped_gradient_return_detected(self):
        res, ref = run_with_comm(DroppingCommunicator(TOPO))
        # Algorithm 2 returns dQ via the final exchange: zeroing it must show
        assert not np.allclose(res.dq, ref.dq, rtol=1e-9)

    def test_misrouting_detected(self):
        res, ref = run_with_comm(MisroutingCommunicator(TOPO))
        assert not np.allclose(res.o, ref.o, rtol=1e-6)

    def test_verify_method_flags_noisy_tolerance(self):
        """The verification report fails when errors exceed tolerance."""
        report = verify_method("burst", num_gpus=4, gpus_per_node=4,
                               seq_len=32, n_heads=4, tolerance=1e-30)
        assert not report.passed  # float64 noise > 1e-30
        assert "FAIL" in report.summary()

    def test_verify_method_passes_at_sane_tolerance(self):
        report = verify_method("burst", num_gpus=4, gpus_per_node=4,
                               seq_len=32, n_heads=4)
        assert report.passed
