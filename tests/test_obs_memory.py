"""Memory observability: timelines, attribution, the memdiff gate, budgets.

The pin tests run *real* training steps on the quickstart model and
require the observed peak saved bytes to equal the closed forms of
:mod:`repro.perf.memory` **byte-for-byte** per method × checkpoint
policy — the same gate ``python -m repro.obs memdiff`` enforces in CI.
Adversarial tests feed the validators damaged artifacts — truncated
timelines, negative watermarks, counter samples outside their step span,
tampered oom bundles — and require a loud ``ValueError``.
"""

import json
import subprocess
import sys
import threading

import pytest

from repro.nn.memory import (
    MemoryTracker,
    ReleaseError,
    get_tracker,
    reset_tracker,
    set_strict_release,
)
from repro.obs import (
    FlightRecorder,
    MemEvent,
    MemoryBudget,
    MemoryBudgetExceeded,
    dump_oom_postmortem,
    get_registry,
    leak_report,
    memory_scope,
    peak_attribution,
    spans_to_chrome_json,
    timeline_json,
    transient_scope,
    use_memory_budget,
    use_memory_timeline,
    validate_chrome_trace,
    validate_memdiff_json,
    validate_memory_timeline,
    validate_oom_postmortem,
)
from repro.obs.__main__ import _memdiff_cell, _site_peak
from repro.obs.metrics import MetricsRegistry
from repro.perf.memory import (
    predict_checkpoint_policy_curve,
    predict_step_peak_saved_bytes,
    swiglu_chunked_transient_bytes,
)

# ---------------------------------------------------------------------------
# tracker thread-safety + strict release (the two fixed bugs)
# ---------------------------------------------------------------------------


def test_tracker_concurrent_register_release():
    """Concurrent register/release must not tear the watermark gauges."""
    tracker = MemoryTracker(registry=MetricsRegistry())
    n_threads, n_ops, nbytes = 8, 400, 1024
    errors = []

    def worker():
        try:
            handles = [tracker.register(nbytes) for _ in range(n_ops)]
            for h in handles:
                tracker.release(h)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert tracker.current_saved_bytes == 0
    assert tracker.live_handles == 0
    # peak is at least one thread's full working set, at most all of them
    assert n_ops * nbytes <= tracker.peak_saved_bytes <= n_threads * n_ops * nbytes
    assert tracker._release_errors.value() == 0


def test_double_release_raises_under_strict():
    tracker = MemoryTracker(registry=MetricsRegistry())
    handle = tracker.register(100)
    tracker.release(handle)
    with pytest.raises(ReleaseError):
        tracker.release(handle)
    assert tracker._release_errors.value() == 1


def test_release_errors_counted_not_raised_in_production():
    tracker = MemoryTracker(registry=MetricsRegistry())
    prev = set_strict_release(False)
    try:
        tracker.release(12345)  # never issued: counted, not raised
        tracker.release(12345)
    finally:
        set_strict_release(prev)
    assert tracker._release_errors.value() == 2
    assert tracker.current_saved_bytes == 0


def test_stale_handle_after_reset_is_legal_teardown():
    """Releasing a handle orphaned by reset() must stay silent even strict."""
    tracker = MemoryTracker(registry=MetricsRegistry())
    handle = tracker.register(100)
    tracker.reset()
    tracker.release(handle)  # must not raise, must not count
    assert tracker._release_errors.value() == 0
    new = tracker.register(50)
    tracker.release(new)
    with pytest.raises(ReleaseError):
        tracker.release(new)  # post-reset handles are strict again


# ---------------------------------------------------------------------------
# timelines: recording, replay validation, truncation, attribution scopes
# ---------------------------------------------------------------------------


def test_timeline_records_and_validates():
    tracker = MemoryTracker(registry=MetricsRegistry())
    with use_memory_timeline() as timeline:
        a = tracker.register(1000, site="x")
        b = tracker.register(500, site="y")
        tracker.release(a)
        tracker.release(b)
    events = timeline.events()
    assert [e.kind for e in events] == ["alloc", "alloc", "free", "free"]
    assert [e.current for e in events] == [1000, 1500, 500, 0]
    doc = validate_memory_timeline(timeline_json(timeline))
    assert doc["schema"] == "memory-timeline/v1"
    assert len(doc["events"]) == 4


def test_timeline_truncation_keeps_prefix_replayable():
    tracker = MemoryTracker(registry=MetricsRegistry())
    with use_memory_timeline(capacity=3) as timeline:
        handles = [tracker.register(10) for _ in range(4)]
        for h in handles:
            tracker.release(h)
    assert len(timeline) == 3
    assert timeline.truncated == 5  # 8 events total, 3 retained
    validate_memory_timeline(timeline_json(timeline))  # prefix still replays


def test_validate_timeline_rejects_damage():
    with pytest.raises(ValueError, match="truncated or corrupt"):
        validate_memory_timeline('{"schema": "memory-timeline/v1", "ev')
    with pytest.raises(ValueError, match="schema"):
        validate_memory_timeline({"schema": "nope/v1", "events": []})
    base = {
        "ts": 0.0, "series": "saved", "kind": "alloc",
        "delta": 100, "current": 100, "handle": 0,
    }
    with pytest.raises(ValueError, match="negative watermark"):
        validate_memory_timeline({
            "schema": "memory-timeline/v1",
            "events": [dict(base, delta=-100, current=-100, kind="free")],
        })
    with pytest.raises(ValueError, match="does not replay"):
        validate_memory_timeline({
            "schema": "memory-timeline/v1",
            "events": [base, dict(base, handle=1, current=150)],
        })


def test_memory_scope_attribution_innermost_wins():
    tracker = MemoryTracker(registry=MetricsRegistry())
    with use_memory_timeline() as timeline:
        with memory_scope(layer=3, method="burst"):
            with memory_scope(layer=7):
                tracker.register(100, site="inner")
            tracker.register(100, site="outer")
    inner, outer = timeline.events()
    assert inner.owner["layer"] == 7
    assert inner.owner["method"] == "burst"
    assert inner.owner["mem_phase"] == "fwd"  # default phase
    assert outer.owner["layer"] == 3


def test_peak_attribution_and_leak_report_synthetic():
    events = [
        MemEvent(0.0, "saved", "alloc", 100, 100, 0, "a", {"layer": 0}),
        MemEvent(1.0, "saved", "alloc", 900, 1000, 1, "b",
                 {"layer": 1, "span": "ckpt.replay"}),
        MemEvent(2.0, "saved", "free", -900, 100, 1, "b", {}),
    ]
    attr = peak_attribution(events)
    assert attr["peak_bytes"] == 1000
    assert attr["span"] == "ckpt.replay"
    assert attr["owner"]["layer"] == 1
    assert attr["live_allocations"] == 2
    assert attr["top"][0]["site"] == "b"
    leaks = leak_report(events)
    assert len(leaks) == 1 and leaks[0]["site"] == "a"


# ---------------------------------------------------------------------------
# Chrome counter tracks ("ph": "C") and their strict validation
# ---------------------------------------------------------------------------


def _step_span(**args):
    return {"name": "train.step", "ph": "X", "ts": 0.0, "dur": 100.0,
            "pid": 2, "tid": 1, "args": args}


def test_counter_events_validate_inside_step_span():
    doc = {"traceEvents": [
        _step_span(step=0),
        {"name": "memory.saved_bytes", "ph": "C", "ts": 50.0,
         "pid": 2, "tid": 0, "args": {"bytes": 1024, "step": 0}},
    ]}
    validate_chrome_trace(doc)


def test_counter_sample_outside_step_span_rejected():
    doc = {"traceEvents": [
        _step_span(step=0),
        {"name": "memory.saved_bytes", "ph": "C", "ts": 500.0,
         "pid": 2, "tid": 0, "args": {"bytes": 1024, "step": 0}},
    ]}
    with pytest.raises(ValueError, match="outside its step-0 span"):
        validate_chrome_trace(doc)


def test_negative_counter_sample_rejected():
    doc = {"traceEvents": [
        _step_span(step=0),
        {"name": "memory.saved_bytes", "ph": "C", "ts": 50.0,
         "pid": 2, "tid": 0, "args": {"bytes": -5}},
    ]}
    with pytest.raises(ValueError, match="negative counter sample"):
        validate_chrome_trace(doc)


def test_counter_event_needs_numeric_args():
    for bad_args in ({}, {"bytes": "many"}):
        doc = {"traceEvents": [
            _step_span(step=0),
            {"name": "memory.saved_bytes", "ph": "C", "ts": 50.0,
             "pid": 2, "tid": 0, "args": bad_args},
        ]}
        with pytest.raises(ValueError, match="numeric args"):
            validate_chrome_trace(doc)
    doc = {"traceEvents": [
        _step_span(step=0),
        {"name": "memory.saved_bytes", "ph": "C", "ts": 50.0,
         "pid": 2, "tid": 0},
    ]}
    with pytest.raises(ValueError, match="missing 'args'"):
        validate_chrome_trace(doc)


# ---------------------------------------------------------------------------
# the gate: observed peaks == closed forms, byte for byte
# ---------------------------------------------------------------------------

QUICKSTART = dict(seq_len=128, dim=32, n_layers=2, n_heads=4,
                  ffn_hidden=64, vocab=128, head_impl="fused")


@pytest.mark.parametrize(
    "method,policy,expected",
    [
        ("burst", "none", 2_215_168),
        ("burst", "full", 1_073_664),
        ("burst", "selective_pp", 1_110_528),
        ("burst", "sequence_level", 1_092_096),
        ("megatron-cp", "full", 1_073_664),
        ("ulysses", "none", 2_485_504),
        ("ulysses", "sequence_level", 1_208_832),
    ],
)
def test_observed_peak_matches_closed_form(method, policy, expected):
    cell = _memdiff_cell(method, policy, "unidirectional", 128)
    assert cell["observed"] == expected
    assert cell["predicted"]["peak_saved_bytes"] == expected
    assert not cell["leaks"], "saved series must drain to zero by step end"


def test_peak_owning_span_is_deepest_replay():
    """Checkpointed peak lands in the last layer's recompute, under the
    ``ckpt.replay`` span — the timeline must name it."""
    cell = _memdiff_cell("burst", "sequence_level", "unidirectional", 128)
    attr = cell["attribution"]
    assert attr["span"] == "ckpt.replay"
    assert attr["owner"]["layer"] == 1
    assert attr["owner"]["mem_phase"] == "recompute"
    assert attr["top"], "top-K live-allocation table must not be empty"
    # the exported trace carries the counter tracks and still validates
    payload = spans_to_chrome_json(
        cell["spans"], memory_events=cell["events"]
    )
    doc = validate_chrome_trace(payload)
    assert any(e.get("ph") == "C" for e in doc["traceEvents"])


def test_policy_curve_matches_observed():
    predicted = predict_checkpoint_policy_curve(**QUICKSTART)
    for policy, pred in predicted.items():
        cell = _memdiff_cell("burst", policy, "unidirectional", 128)
        assert cell["observed"] == pred, policy


def test_chunked_mlp_transient_site_matches_closed_form():
    cell = _memdiff_cell("burst", "sequence_level", "unidirectional", 128,
                         chunk=32)
    assert cell["observed"] == 731_648  # fused-MLP saved set shrinks too
    assert cell["observed"] == cell["predicted"]["peak_saved_bytes"]
    observed = _site_peak(cell["events"], "mlp.chunked_bwd")
    assert observed == swiglu_chunked_transient_bytes(128, 32, 64, 32)
    assert observed == 327_680


def test_transient_scope_accounting():
    reset_tracker()
    with use_memory_timeline() as timeline:
        with transient_scope(1000, site="test.outer"):
            with transient_scope(500, site="test.inner"):
                pass
    assert _site_peak(timeline.events(), "test.") == 1500
    gauge = get_registry().gauge("memory.transient_bytes")
    assert gauge.value() == 0.0


# ---------------------------------------------------------------------------
# budget watchdog + oom/v1 bundles
# ---------------------------------------------------------------------------


def test_budget_breach_dumps_validated_oom_bundle(tmp_path):
    tracker = MemoryTracker(registry=MetricsRegistry())
    budget = MemoryBudget(limit_bytes=1000)
    breaches = get_registry().counter("memory.budget_breaches").value()
    with FlightRecorder(out_dir=str(tmp_path), prefix="oom-"):
        with use_memory_timeline() as timeline:
            with use_memory_budget(budget):
                tracker.register(800)
                assert not budget.breached
                tracker.register(800)  # 1600 > 1000
                assert budget.breached
                first_bundle = budget.bundle_path
                tracker.register(800)  # one-shot: no second bundle
                assert budget.bundle_path == first_bundle
    assert first_bundle is not None
    with open(first_bundle) as fh:
        doc = validate_oom_postmortem(fh.read())
    assert doc["budget"]["limit_bytes"] == 1000
    assert doc["budget"]["watermark_bytes"] > 1000
    # the bundle snapshots the timeline at breach time: two live allocs
    assert doc["peak_attribution"]["peak_bytes"] == 1600
    assert len(doc["leaks"]) == 2
    assert get_registry().counter("memory.budget_breaches").value() == breaches + 1
    budget.reset()
    assert not budget.breached and budget.bundle_path is None


def test_budget_raise_on_breach():
    tracker = MemoryTracker(registry=MetricsRegistry())
    budget = MemoryBudget(limit_bytes=100, raise_on_breach=True)
    with use_memory_budget(budget):
        with pytest.raises(MemoryBudgetExceeded):
            tracker.register(101)
    assert budget.breached
    assert budget.bundle_path is None  # no recorder installed


def test_trainer_memory_budget_integration():
    """Trainer(memory_budget=...) aborts the step on breach."""
    import numpy as np

    from repro.engine import BurstEngine, EngineConfig
    from repro.engine.trainer import Trainer
    from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
    from repro.nn.modules import TransformerConfig
    from repro.topology import a800_node, make_cluster

    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=128, attn_block_size=32,
        ),
        method="burst",
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, make_cluster(8, node=a800_node(gpus_per_node=4)))
    rng = np.random.default_rng(0)
    batch = (rng.integers(0, 128, 128), rng.integers(0, 128, 128))
    budget = MemoryBudget(limit_bytes=512_000, raise_on_breach=True)
    trainer = Trainer(engine=engine, memory_budget=budget)
    with pytest.raises(MemoryBudgetExceeded):
        trainer.fit([batch], steps=1)
    assert budget.watermark_bytes > 512_000


def test_oom_bundle_validation_rejects_tampering(tmp_path):
    with FlightRecorder(out_dir=str(tmp_path)):
        path = dump_oom_postmortem(
            reason={"kind": "test", "watermark_bytes": 2000},
        )
    with open(path) as fh:
        doc = json.load(fh)
    validate_oom_postmortem(dict(doc))
    bad = dict(doc)
    bad["budget"] = dict(doc["budget"], limit_bytes=5000, watermark_bytes=100)
    with pytest.raises(ValueError, match="watermark"):
        validate_oom_postmortem(bad)
    bad = {k: v for k, v in doc.items() if k != "budget"}
    with pytest.raises(ValueError, match="budget"):
        validate_oom_postmortem(bad)
    with pytest.raises(ValueError, match="schema"):
        validate_oom_postmortem(dict(doc, schema="postmortem/v1"))


def test_validate_memdiff_rejects_damage():
    cell = {
        "method": "burst", "policy": "full", "observed_peak_bytes": 1,
        "predicted_peak_bytes": 1, "match": True, "peak_span": "x",
        "leaks": 0,
    }
    good = {"schema": "obs-memdiff/v1", "cells": [cell], "curve": {},
            "transient": {}, "ok": True}
    validate_memdiff_json(good)
    with pytest.raises(ValueError, match="schema"):
        validate_memdiff_json(dict(good, schema="nope"))
    with pytest.raises(ValueError, match="no cells"):
        validate_memdiff_json(dict(good, cells=[]))
    with pytest.raises(ValueError, match="missing keys"):
        validate_memdiff_json(
            dict(good, cells=[{k: v for k, v in cell.items() if k != "leaks"}])
        )
    with pytest.raises(ValueError, match="claims match"):
        validate_memdiff_json(
            dict(good, cells=[dict(cell, observed_peak_bytes=2)])
        )


# ---------------------------------------------------------------------------
# CLI: the gate itself
# ---------------------------------------------------------------------------


def _run_memdiff(tmp_path, *extra):
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", "memdiff",
         "--out-dir", str(tmp_path), *extra],
        capture_output=True, text=True,
    )


def test_cli_memdiff_gate_passes(tmp_path):
    proc = _run_memdiff(tmp_path, "--policies", "sequence_level")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    with open(tmp_path / "memdiff.json") as fh:
        doc = validate_memdiff_json(json.load(fh))
    assert doc["ok"]
    assert {c["method"] for c in doc["cells"]} == {
        "burst", "megatron-cp", "ulysses"
    }
    assert all(c["match"] and c["leaks"] == 0 for c in doc["cells"])
    assert doc["transient"]["match"]
    with open(tmp_path / "memory-timeline.json") as fh:
        validate_memory_timeline(fh.read())


def test_cli_memdiff_seeded_leak_fails_loudly(tmp_path):
    proc = _run_memdiff(tmp_path, "--inject", "leak")
    assert proc.returncode != 0, proc.stdout + proc.stderr
    assert "leak detected" in proc.stdout
    bundles = list(tmp_path.glob("oom-*.json"))
    assert len(bundles) == 1
    doc = validate_oom_postmortem(bundles[0].read_text())
    assert doc["reason"]["kind"] == "seeded-leak"
    assert any(l["site"] == "injected.leak" for l in doc["leaks"])


def test_cli_memdiff_budget_breach_fails_loudly(tmp_path):
    proc = _run_memdiff(tmp_path, "--inject", "budget")
    assert proc.returncode != 0, proc.stdout + proc.stderr
    assert "budget breach detected" in proc.stdout
    bundles = list(tmp_path.glob("oom-*.json"))
    assert len(bundles) == 1
    doc = validate_oom_postmortem(bundles[0].read_text())
    assert doc["budget"]["watermark_bytes"] > doc["budget"]["limit_bytes"]
