"""Public-API smoke tests: top-level exports, README snippets, and the
remaining accessor edges."""

import numpy as np
import pytest


class TestTopLevelExports:
    def test_all_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestReadmeSnippets:
    def test_quickstart_snippet(self):
        """The README's first code block, verbatim semantics."""
        import numpy as np
        from repro.engine import BurstEngine, EngineConfig
        from repro.nn import TransformerConfig
        from repro.topology import make_cluster, a800_node

        engine = BurstEngine(
            EngineConfig(model=TransformerConfig(
                vocab_size=128, dim=32, n_layers=2, n_heads=4,
                ffn_hidden=64, max_seq_len=128)),
            topology=make_cluster(8, node=a800_node(gpus_per_node=4)),
        )
        ids = np.random.default_rng(0).integers(0, 128, size=64)
        result = engine.train_step(ids, np.roll(ids, -1))
        assert np.isfinite(result.loss)
        assert result.step_comm_bytes > 0
        assert result.peak_activation_bytes > 0

    def test_method_snippet(self):
        from repro.attention import get_method
        from repro.masks import CausalMask
        from repro.topology import make_cluster

        rng = np.random.default_rng(1)
        q, k, v, grad_out = (rng.normal(size=(8, 64, 8)) for _ in range(4))
        method = get_method("burst", block_size=16)
        res = method.run(make_cluster(8), q, k, v, mask=CausalMask(),
                         do=grad_out)
        assert res.o.shape == q.shape
        assert res.dq is not None
        assert "attn-fwd" in res.comm.log.summary()
        assert res.traffic is res.comm.log

    def test_perf_snippet(self):
        from repro.models import LLAMA_14B
        from repro.perf import end_to_end_step
        from repro.topology import make_cluster

        r = end_to_end_step(LLAMA_14B, make_cluster(32), 1 << 20,
                            method="burst", checkpoint="sequence_level",
                            head_mode="fused")
        # the README's headline numbers
        assert r.tgs == pytest.approx(106.1, rel=0.02)
        assert r.mfu == pytest.approx(0.465, rel=0.02)
        assert r.memory.total_gb == pytest.approx(34.8, rel=0.02)


class TestRemainingAccessors:
    def test_engine_config_resolved_model(self):
        from repro.engine import EngineConfig
        from repro.nn import CheckpointPolicy, TransformerConfig
        from repro.nn.checkpoint import CheckpointMode

        cfg = EngineConfig(
            model=TransformerConfig(head_impl="naive"),
            checkpoint=CheckpointPolicy(CheckpointMode.FULL),
            head_impl="fused",
        )
        resolved = cfg.resolved_model()
        assert resolved.head_impl == "fused"
        assert resolved.checkpoint.mode is CheckpointMode.FULL
        # original untouched
        assert cfg.model.head_impl == "naive"

    def test_step_result_fsdp_matches_formula(self):
        from repro.engine import BurstEngine, EngineConfig, fsdp_step_traffic
        from repro.nn import TransformerConfig
        from repro.topology import a800_node, make_cluster

        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        engine = BurstEngine(
            EngineConfig(model=TransformerConfig(
                vocab_size=32, dim=16, n_layers=1, n_heads=2, ffn_hidden=24,
                max_seq_len=32, attn_block_size=16)),
            topology=topo,
        )
        ids = np.arange(16) % 32
        res = engine.train_step(ids, np.roll(ids, -1))
        expected = fsdp_step_traffic(engine.param_bytes, 4, gather_passes=2)
        assert res.fsdp.allgather_bytes == expected.allgather_bytes
        assert res.fsdp.reduce_scatter_bytes == expected.reduce_scatter_bytes

    def test_model_spec_ffn_sizing(self):
        from repro.models import LLAMA_7B, ModelSpec

        assert LLAMA_7B.ffn == 11008  # LLaMA-1 7B's actual FFN width
        explicit = ModelSpec(name="x", n_layers=1, n_heads=2, hidden=64,
                             vocab=10, ffn_hidden=123)
        assert explicit.ffn == 123

    def test_trace_timeline_sorted(self):
        from repro.perf.des import Simulator

        sim = Simulator()
        sim.add("b", 1.0, resources=["r"])
        sim.add("a", 1.0, resources=["r"], deps=["b"])
        sim.run()
        timeline = sim.timeline()
        assert [t.name for t in timeline] == ["b", "a"]
        assert timeline[0].start <= timeline[1].start
