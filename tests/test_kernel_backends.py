"""Kernel backend registry: selection API, bitwise identity, spans.

The registry contract is that a backend is an *implementation* choice,
never a *semantics* choice: every registered backend must be
bitwise-indistinguishable from ``reference`` on every input the kernels
accept (dense masks, additive bias, tile plans, ragged block edges).
These tests pin that contract for the ``threaded`` worker-pool backend,
plus the selection plumbing (env var, ``set_backend``, nested
``use_backend``) and the observability satellite (``backend``-labelled
kernel spans feeding the per-backend report breakdown).
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.kernels.backend as backend_mod
from repro.kernels import (
    KernelWorkspace,
    ReferenceBackend,
    ThreadedBackend,
    TilePlan,
    available_backends,
    counters,
    current_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.kernels.backend import BACKEND_ENV_VAR, WORKERS_ENV_VAR
from repro.masks import ALiBiMask, CausalMask
from repro.masks.patterns import SlidingWindowMask
from repro.obs import spans_to_chrome_json, use_tracing
from repro.obs.report import kernel_time_by_backend
from repro.testing.differential import FuzzCase, check_case, fuzz, shrink_case


class TestRegistry:
    def test_reference_is_first_and_threaded_registered(self):
        names = available_backends()
        assert names[0] == "reference"
        assert "threaded" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("no-such-backend")

    def test_duplicate_registration_rejected_unless_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("reference", ReferenceBackend)
        register_backend("reference", ReferenceBackend, replace=True)
        assert get_backend("reference").name == "reference"

    def test_named_lookup_does_not_change_active(self):
        set_backend("reference")
        assert get_backend("threaded").name == "threaded"
        assert current_backend_name() == "reference"

    def test_use_backend_nests_and_restores(self):
        set_backend("reference")
        with use_backend("threaded"):
            assert current_backend_name() == "threaded"
            with use_backend("reference"):
                assert current_backend_name() == "reference"
            assert current_backend_name() == "threaded"
        assert current_backend_name() == "reference"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded")
        monkeypatch.setattr(backend_mod, "_active", None)
        assert get_backend().name == "threaded"

    def test_workers_env_var_and_validation(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert ThreadedBackend().workers == 2
        with pytest.raises(ValueError, match="workers"):
            ThreadedBackend(workers=0)


def _qkvdo(rng, heads, seq, dim):
    return (rng.normal(size=(heads, seq, dim)) for _ in range(4))


def _run_flash(backend, q, k, v, do, **kw):
    ws = KernelWorkspace()
    o, lse = backend.flash_forward(q, k, v, workspace=ws, **kw)
    dq, dk, dv = backend.flash_backward(q, k, v, o, lse, do, workspace=ws, **kw)
    return o, lse, dq, dk, dv


class TestBitwiseIdentity:
    """threaded must reproduce reference bit for bit, not approximately."""

    @pytest.mark.parametrize("case", [
        {"name": "plain", "seq": 100, "heads": 3, "dim": 16},
        {"name": "dense-causal", "seq": 96, "heads": 2, "dim": 8,
         "mask": "causal"},
        {"name": "dense-window", "seq": 96, "heads": 2, "dim": 8,
         "mask": "window"},
        {"name": "alibi-bias", "seq": 80, "heads": 4, "dim": 8,
         "mask": "causal", "bias": True},
        {"name": "planned-causal", "seq": 128, "heads": 2, "dim": 16,
         "plan": "causal"},
        {"name": "ragged-tail", "seq": 70, "heads": 2, "dim": 8},
    ], ids=lambda c: c["name"])
    def test_flash_matches_reference(self, case):
        rng = np.random.default_rng(11)
        s, h, d = case["seq"], case["heads"], case["dim"]
        q, k, v, do = _qkvdo(rng, h, s, d)
        kw = {"block_q": 32, "block_k": 32}
        if case.get("mask") == "causal":
            kw["mask"] = CausalMask().dense(s)
        elif case.get("mask") == "window":
            kw["mask"] = SlidingWindowMask(window=s // 4).dense(s)
        if case.get("bias"):
            idx = np.arange(s)
            kw["bias"] = ALiBiMask(n_heads=h).bias_block(idx, idx)
        if case.get("plan") == "causal":
            idx = np.arange(s)
            kw = {"plan": TilePlan.build(CausalMask(), idx, idx, 32, 32)}
        ref = _run_flash(get_backend("reference"), q, k, v, do, **kw)
        thr = _run_flash(get_backend("threaded"), q, k, v, do, **kw)
        for name, a, b in zip(("o", "lse", "dq", "dk", "dv"), ref, thr):
            assert np.array_equal(a, b), f"{case['name']}: {name} diverged"

    def test_single_block_and_single_worker_fallbacks(self):
        rng = np.random.default_rng(5)
        q, k, v, do = _qkvdo(rng, 2, 24, 8)  # one 32-row q block
        ref = _run_flash(get_backend("reference"), q, k, v, do)
        thr = _run_flash(get_backend("threaded"), q, k, v, do)
        solo = ThreadedBackend(workers=1)
        try:
            one = _run_flash(solo, q, k, v, do)
        finally:
            solo.close()
        for a, b, c in zip(ref, thr, one):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_tile_counters_match_reference(self):
        rng = np.random.default_rng(7)
        q, k, v, do = _qkvdo(rng, 2, 128, 8)
        idx = np.arange(128)
        plan = TilePlan.build(CausalMask(), idx, idx, 32, 32)

        def counted(backend):
            counters.reset()
            _run_flash(backend, q, k, v, do, plan=plan)
            snap = counters.snapshot()
            return {k_: snap[k_] for k_ in (
                "tiles_computed", "tiles_skipped", "computed_pairs",
            )}

        assert counted(get_backend("reference")) == \
            counted(get_backend("threaded"))


class TestSpanLabels:
    def test_kernel_spans_carry_backend_and_report_groups_them(self):
        rng = np.random.default_rng(3)
        q, k, v, do = _qkvdo(rng, 2, 96, 8)
        x = rng.normal(size=(64, 16))
        wg = rng.normal(size=(48, 16))
        wu = rng.normal(size=(48, 16))
        wd = rng.normal(size=(16, 48))
        with use_tracing() as tracer:
            _run_flash(get_backend("reference"), q, k, v, do)
            _run_flash(get_backend("threaded"), q, k, v, do)
            get_backend("reference").mlp_forward(x, wg, wu, wd)
            get_backend("threaded").mlp_forward(x, wg, wu, wd, chunk_size=16)
        spans = tracer.spans()
        kernel = [s for s in spans
                  if s.name.startswith(("flash.", "mlp."))]
        assert kernel, "no kernel spans recorded"
        assert all("backend" in s.attrs for s in kernel)
        payload = spans_to_chrome_json(spans)
        by_backend = kernel_time_by_backend(payload)
        assert set(by_backend) == {"reference", "threaded"}
        for per in by_backend.values():
            assert per["total"] > 0.0
        assert "flash.fwd" in by_backend["threaded"]
        assert "mlp.fwd" in by_backend["reference"]


class TestFuzzBackendAxis:
    BASE = FuzzCase(
        method="burst", mask="causal", nodes=1, gpn=2,
        seq_len=16, head_dim=4, n_heads=2,
    )

    def test_spec_roundtrip_keeps_backend(self):
        case = replace(self.BASE, backend="threaded")
        assert "backend=threaded" in case.spec()
        assert FuzzCase.parse(case.spec()) == case
        # default backend stays out of the spec (stable repro strings)
        assert "backend" not in self.BASE.spec()

    def test_check_case_runs_under_requested_backend(self):
        passed, detail = check_case(replace(self.BASE, backend="threaded"))
        assert passed, detail

    def test_shrinker_tries_reference_backend_first(self):
        seen = []

        def fails(c):
            seen.append(c)
            return False

        case = replace(self.BASE, backend="threaded")
        assert shrink_case(case, fails) == case  # nothing simpler fails
        assert seen[0].backend == "reference"

    def test_fuzz_smoke_forced_onto_threaded(self):
        result = fuzz(seed=3, budget=4, smoke=True, backend="threaded")
        assert result.cases_run == 4
        assert not result.failures, result.summary()
