"""Tests for mask patterns and block-sparse masks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.masks import (
    BlockSparseMask,
    CausalMask,
    DilatedMask,
    FullMask,
    LocalGlobalMask,
    SlidingWindowMask,
    sliding_window_block_mask,
)


class TestBasicPatterns:
    def test_full_mask_allows_everything(self):
        m = FullMask()
        assert m.dense(5).all()
        assert m.num_allowed(np.arange(3), np.arange(4)) == 12

    def test_causal_dense(self):
        m = CausalMask().dense(4)
        np.testing.assert_array_equal(m, np.tril(np.ones((4, 4), dtype=bool)))

    def test_causal_total_allowed_closed_form(self):
        m = CausalMask()
        assert m.total_allowed(10) == 55
        assert m.total_allowed(10) == int(m.dense(10).sum())

    def test_causal_cross_shard_blocks(self):
        m = CausalMask()
        # queries at positions [4,5] vs keys at [0,1]: all allowed
        assert m.tile_state(np.array([4, 5]), np.array([0, 1])) == "full"
        # queries [0,1] vs keys [4,5]: all masked
        assert m.tile_state(np.array([0, 1]), np.array([4, 5])) == "empty"
        # diagonal tile: partial
        assert m.tile_state(np.array([0, 1]), np.array([0, 1])) == "partial"

    def test_sliding_window(self):
        m = SlidingWindowMask(window=3)
        d = m.dense(6)
        assert d[5, 3] and d[5, 5]
        assert not d[5, 2]          # outside window
        assert not d[0, 1]          # future
        with pytest.raises(ValueError):
            SlidingWindowMask(0)

    def test_sliding_window_row_counts(self):
        m = SlidingWindowMask(window=4)
        d = m.dense(10)
        # after warm-up, every row has exactly `window` allowed keys
        assert (d[4:].sum(axis=1) == 4).all()

    def test_dilated(self):
        m = DilatedMask(dilation=2)
        d = m.dense(6)
        assert d[4, 4] and d[4, 2] and d[4, 0]
        assert not d[4, 3]
        assert not d[2, 4]

    def test_dilated_with_window(self):
        m = DilatedMask(dilation=2, window=2)
        d = m.dense(8)
        assert d[6, 6] and d[6, 4]
        assert not d[6, 2]  # beyond window*dilation reach

    def test_local_global(self):
        m = LocalGlobalMask(window=2, num_global=1)
        d = m.dense(6)
        assert d[5, 0]              # global token
        assert d[5, 4] and d[5, 5]  # local window
        assert not d[5, 2]
        assert not d[0, 5]          # causality preserved


class TestBlockSparse:
    def test_block_mask_shape_validation(self):
        with pytest.raises(ValueError):
            BlockSparseMask(4, np.ones((2, 3), dtype=bool))

    def test_block_structure(self):
        bm = np.array([[1, 0], [1, 1]], dtype=bool)
        m = BlockSparseMask(block_size=2, block_mask=bm, intra_block_causal=False)
        d = m.dense(4)
        assert d[0, 0] and d[1, 1] and not d[0, 2]
        assert d[2, 0] and d[3, 3]

    def test_intra_block_causal(self):
        bm = np.ones((2, 2), dtype=bool)
        m = BlockSparseMask(block_size=2, block_mask=bm, intra_block_causal=True)
        d = m.dense(4)
        np.testing.assert_array_equal(d, np.tril(np.ones((4, 4), dtype=bool)))

    def test_out_of_range_index_rejected(self):
        m = BlockSparseMask(2, np.ones((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            m.block(np.array([5]), np.array([0]))

    def test_sliding_window_block_mask_matches_expectation(self):
        m = sliding_window_block_mask(seq_len=8, block_size=2, window_blocks=2)
        # block i attends blocks {i-1, i}; token-causal inside.
        d = m.dense(8)
        assert d[4, 2]      # previous block
        assert not d[4, 1]  # two blocks back
        assert d[4, 4] and not d[4, 5]

    def test_block_density(self):
        m = sliding_window_block_mask(seq_len=16, block_size=2, window_blocks=1)
        assert m.block_density() == pytest.approx(1 / 8)

    def test_swa_block_equals_token_window_when_aligned(self):
        # window_blocks=1 means "attend within own block only".
        m = sliding_window_block_mask(seq_len=12, block_size=4, window_blocks=1)
        d = m.dense(12)
        assert d[5, 4] and not d[5, 3]

    @settings(deadline=None, max_examples=20)
    @given(
        n_blocks=st.integers(1, 5),
        block_size=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_block_tile_consistency_property(self, n_blocks, block_size, seed):
        """block() on sub-index arrays must agree with dense()."""
        rng = np.random.default_rng(seed)
        bm = rng.random((n_blocks, n_blocks)) > 0.5
        m = BlockSparseMask(block_size, bm, intra_block_causal=True)
        n = n_blocks * block_size
        dense = m.dense(n)
        q_idx = rng.choice(n, size=min(3, n), replace=False)
        k_idx = rng.choice(n, size=min(3, n), replace=False)
        tile = m.block(q_idx, k_idx)
        np.testing.assert_array_equal(tile, dense[np.ix_(q_idx, k_idx)])
