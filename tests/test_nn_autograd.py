"""Tests for the autograd engine: op gradients vs finite differences,
graph mechanics, and grad-mode handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, no_grad, ops
from repro.nn.memory import get_tracker, reset_tracker


RNG = np.random.default_rng(42)


def finite_diff(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_unary(op, np_fn, shape=(3, 4), positive=False):
    x = np.abs(RNG.normal(size=shape)) + 0.5 if positive else RNG.normal(size=shape)
    t = Tensor(x, requires_grad=True)
    out = op(t)
    np.testing.assert_allclose(out.data, np_fn(x), rtol=1e-10)
    out.sum().backward()
    fd = finite_diff(lambda a: np_fn(a).sum(), x)
    np.testing.assert_allclose(t.grad, fd, rtol=1e-5, atol=1e-8)


class TestElementwiseOps:
    def test_exp(self):
        check_unary(ops.exp, np.exp)

    def test_log(self):
        check_unary(ops.log, np.log, positive=True)

    def test_tanh(self):
        check_unary(ops.tanh, np.tanh)

    def test_silu(self):
        check_unary(ops.silu, lambda a: a / (1 + np.exp(-a)))

    def test_gelu_gradient(self):
        x = RNG.normal(size=(2, 3))
        t = Tensor(x, requires_grad=True)
        ops.gelu(t).sum().backward()
        c = np.sqrt(2 / np.pi)
        ref = lambda a: (0.5 * a * (1 + np.tanh(c * (a + 0.044715 * a**3)))).sum()
        np.testing.assert_allclose(t.grad, finite_diff(ref, x), rtol=1e-5, atol=1e-8)

    def test_pow(self):
        x = np.abs(RNG.normal(size=(4,))) + 0.1
        t = Tensor(x, requires_grad=True)
        (t ** -0.5).sum().backward()
        np.testing.assert_allclose(
            t.grad, finite_diff(lambda a: (a**-0.5).sum(), x), rtol=1e-5
        )


class TestBinaryOps:
    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_broadcast_keepdim(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 1)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (3, 4)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=1, keepdims=True))

    def test_sub_and_div(self):
        a = Tensor(np.array([4.0, 9.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        ((a - b) / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2)

    def test_matmul_grads(self):
        a_np = RNG.normal(size=(3, 4))
        b_np = RNG.normal(size=(4, 5))
        a = Tensor(a_np, requires_grad=True)
        b = Tensor(b_np, requires_grad=True)
        (a @ b).sum().backward()
        g = np.ones((3, 5))
        np.testing.assert_allclose(a.grad, g @ b_np.T)
        np.testing.assert_allclose(b.grad, a_np.T @ g)

    def test_batched_matmul_broadcast(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)


class TestShapeOps:
    def test_reshape_swapaxes_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        y = x.reshape((2, 3, 2)).swapaxes(0, 1)
        assert y.shape == (3, 2, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 6)))

    def test_getitem_scatter_grad(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_concat_splits_grad(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=0)
        grad = RNG.normal(size=(6, 3))
        out.backward(grad)
        np.testing.assert_allclose(a.grad, grad[:2])
        np.testing.assert_allclose(b.grad, grad[2:])

    def test_sum_axis_keepdims(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        x.sum(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean_grad(self):
        x = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        x.mean(axis=-1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 0.2))

    def test_embedding_accumulates_repeated_ids(self):
        table = Tensor(RNG.normal(size=(10, 4)), requires_grad=True)
        out = ops.embedding(table, np.array([1, 1, 3]))
        out.sum().backward()
        assert table.grad[1, 0] == pytest.approx(2.0)
        assert table.grad[3, 0] == pytest.approx(1.0)
        assert table.grad[0, 0] == 0.0


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # x used three times
        y.backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(2 * 2.0 + 1.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a + b).backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(7.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._ctx is None
        assert not y.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_nograd_tensor_raises(self):
        x = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad

    def test_saved_bytes_released_after_backward(self):
        reset_tracker()
        x = Tensor(RNG.normal(size=(64, 64)), requires_grad=True)
        y = ops.exp(x) @ ops.exp(x.swapaxes(0, 1))
        assert get_tracker().current_saved_bytes > 0
        y.sum().backward()
        assert get_tracker().current_saved_bytes == 0
        assert get_tracker().peak_saved_bytes > 0

    def test_rms_norm_matches_reference(self):
        x_np = RNG.normal(size=(5, 8))
        w_np = RNG.normal(size=(8,))
        x = Tensor(x_np, requires_grad=True)
        w = Tensor(w_np, requires_grad=True)
        out = ops.rms_norm(x, w)
        ref = x_np / np.sqrt((x_np**2).mean(-1, keepdims=True) + 1e-6) * w_np
        np.testing.assert_allclose(out.data, ref, rtol=1e-12)
        out.sum().backward()
        fd = finite_diff(
            lambda a: (a / np.sqrt((a**2).mean(-1, keepdims=True) + 1e-6) * w_np).sum(),
            x_np,
        )
        np.testing.assert_allclose(x.grad, fd, rtol=1e-5, atol=1e-8)

    @settings(deadline=None, max_examples=20)
    @given(
        m=st.integers(1, 5), k=st.integers(1, 5), n=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_matmul_grad_property(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a_np, b_np = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        g = rng.normal(size=(m, n))
        a, b = Tensor(a_np, requires_grad=True), Tensor(b_np, requires_grad=True)
        (a @ b).backward(g)
        np.testing.assert_allclose(a.grad, g @ b_np.T, rtol=1e-10)
        np.testing.assert_allclose(b.grad, a_np.T @ g, rtol=1e-10)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        y = ops.dropout(x, p=0.5, training=False)
        np.testing.assert_array_equal(y.data, x.data)

    def test_train_mode_zeroes_and_rescales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)), requires_grad=True)
        y = ops.dropout(x, p=0.25, training=True, rng=rng)
        kept = y.data != 0
        assert 0.70 < kept.mean() < 0.80          # ~75% survive
        np.testing.assert_allclose(y.data[kept], 1 / 0.75)
        assert y.data.mean() == pytest.approx(1.0, abs=0.02)  # unbiased

    def test_backward_uses_same_mask(self):
        rng = np.random.default_rng(1)
        x = Tensor(RNG.normal(size=(50, 50)), requires_grad=True)
        y = ops.dropout(x, p=0.5, training=True, rng=rng)
        y.sum().backward()
        zero_out = y.data == 0
        assert (x.grad[zero_out] == 0).all()
        np.testing.assert_allclose(x.grad[~zero_out], 2.0)

    def test_seeded_determinism(self):
        x = Tensor(RNG.normal(size=(10, 10)))
        a = ops.dropout(x, p=0.3, rng=np.random.default_rng(7)).data
        b = ops.dropout(x, p=0.3, rng=np.random.default_rng(7)).data
        np.testing.assert_array_equal(a, b)

    def test_invalid_p(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            ops.dropout(x, p=1.0)
        with pytest.raises(ValueError):
            ops.dropout(x, p=-0.1, training=False)
