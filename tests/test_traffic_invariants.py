"""Traffic invariants: simulated bytes must equal the paper's closed forms.

This is the regression fence around Table 1: the ``3Nd + 2N`` vs ``4Nd``
backward-volume claim is asserted against what the simulator *actually
sends*, for several topologies including non-power-of-two world sizes, and
``table1_comm_times`` is re-derived from observed per-hop payloads.  A
communication refactor that changes what any ring method puts on the wire
fails here even if the analytic formulas still agree with each other.
"""

import numpy as np
import pytest

from repro.attention import get_method
from repro.comm import SimCommunicator
from repro.perf.cost import attention_step_sizes, bidirectional_direction_bytes
from repro.testing import (
    check_all_invariants,
    check_table1_consistency,
    check_traffic_invariants,
    expected_backward_elems,
)
from repro.topology import a800_node, make_cluster


def topo(nodes, gpn):
    return make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))


#: >= 3 topologies, as the issue requires — single-node, the paper's 2x4,
#: and two non-power-of-two shapes.
TOPOLOGIES = [topo(1, 4), topo(2, 4), topo(2, 3), topo(3, 3)]


class TestBackwardVolumePinned:
    """The headline claim, pinned to raw simulated element counts."""

    def _per_rank_bwd(self, method_name, topology, n, d):
        rng = np.random.default_rng(0)
        q, k, v, do = (rng.normal(size=(1, n, d)) for _ in range(4))
        method = get_method(method_name, block_size=max(4, n // 8))
        comm = SimCommunicator(topology)
        method.run(topology, q, k, v, mask=None, do=do, comm=comm)
        return comm.log.per_rank_send_elems(phase="attn-bwd")

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    def test_burst_backward_is_3nd_plus_2n(self, topology):
        g = topology.world_size
        n, d = 8 * g, 4
        per_rank = self._per_rank_bwd("burst", topology, n, d)
        assert all(v == 3 * n * d + 2 * n for v in per_rank.values())

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    def test_flat_ring_backward_is_4nd(self, topology):
        g = topology.world_size
        n, d = 8 * g, 4
        per_rank = self._per_rank_bwd("megatron-cp", topology, n, d)
        assert all(v == 4 * n * d for v in per_rank.values())

    def test_expected_elems_helpers_match_paper(self):
        assert expected_backward_elems("alg1", 64, 8) == 4 * 64 * 8
        assert expected_backward_elems("alg2", 64, 8) == 3 * 64 * 8 + 2 * 64
        with pytest.raises(ValueError, match="unknown algorithm"):
            expected_backward_elems("alg3", 64, 8)


class TestBidirectionalVolumePinned:
    """Per-direction byte totals of ``ring_mode="bidirectional"``, pinned
    to the closed forms in :func:`bidirectional_direction_bytes` on the
    same four topologies as the unidirectional ``4Nd`` / ``3Nd + 2N``
    pins."""

    def _run(self, method_name, topology, n, d):
        rng = np.random.default_rng(0)
        q, k, v, do = (rng.normal(size=(1, n, d)) for _ in range(4))
        method = get_method(
            method_name, block_size=max(4, n // 8), ring_mode="bidirectional"
        )
        comm = SimCommunicator(topology)
        method.run(topology, q, k, v, mask=None, do=do, comm=comm)
        return comm.log

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    @pytest.mark.parametrize("method,bwd_key", [
        ("megatron-cp", "bwd_alg1"),
        ("loongtrain-double", "bwd_alg1"),
        ("burst", "bwd_alg2"),
    ])
    def test_per_direction_elems_match_closed_forms(
        self, method, bwd_key, topology
    ):
        g = topology.world_size
        n, d = 8 * g, 4
        log = self._run(method, topology, n, d)
        pred = bidirectional_direction_bytes(n, d, g, bytes_per_elem=1)
        for phase, key in [("attn-fwd", "fwd"), ("attn-bwd", bwd_key)]:
            for channel in ("fwd", "rev"):
                per_rank = log.per_rank_send_elems(
                    phase=phase, channel=channel
                )
                want = pred[key][channel]
                got = [per_rank.get(r, 0) for r in range(g)]
                assert got == [want] * g, (phase, channel, got, want)

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    def test_bidirectional_moves_fewer_total_elems(self, topology):
        """The read-only parts skip the long way round, so bidirectional
        strictly undercuts the unidirectional ``3Nd + 2N`` total."""
        g = topology.world_size
        n, d = 8 * g, 4
        log = self._run("burst", topology, n, d)
        per_rank = log.per_rank_send_elems(phase="attn-bwd")
        assert all(v < 3 * n * d + 2 * n for v in per_rank.values())

    def test_per_channel_split_accounts_for_everything(self):
        topology = topo(2, 2)
        n, d = 32, 4
        log = self._run("burst", topology, n, d)
        for phase in ("attn-fwd", "attn-bwd"):
            by_channel = log.per_channel_elems(phase=phase)
            total = sum(
                log.per_rank_send_elems(phase=phase).values()
            )
            assert sum(by_channel.values()) == total
            assert set(by_channel) == {"fwd", "rev"}


class TestInvariantCrossChecks:
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    @pytest.mark.parametrize("method", ["megatron-cp", "loongtrain-double",
                                        "burst"])
    def test_traffic_matches_cost_model(self, method, topology):
        report = check_traffic_invariants(
            method, topology, seq_len=6 * topology.world_size, head_dim=4
        )
        assert report.passed, report.summary()

    def test_multi_head_generalisation(self):
        report = check_traffic_invariants(
            "burst", topo(2, 2), seq_len=24, head_dim=4, n_heads=3
        )
        assert report.passed, report.summary()

    def test_masked_runs_move_the_same_bytes(self):
        """Ring communication is mask-oblivious: causal masking skips
        compute tiles, never transfers."""
        from repro.masks import CausalMask

        report = check_traffic_invariants(
            "burst", topo(2, 2), seq_len=24, head_dim=4, mask=CausalMask()
        )
        assert report.passed, report.summary()

    def test_non_ring_method_rejected(self):
        with pytest.raises(ValueError, match="ring-family"):
            check_traffic_invariants("ulysses", topo(1, 4), seq_len=32)


class TestTable1TiedToSimulatedBytes:
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    def test_table1_rederives_from_observed_traffic(self, topology):
        report = check_table1_consistency(
            topology, seq_len=6 * topology.world_size, hidden=16
        )
        assert report.passed, report.summary()

    def test_observed_hop_bytes_equal_step_sizes(self):
        """The per-transition bundle sizes the cost model assumes are the
        bundles the implementations actually send (float64 sim bytes)."""
        topology = topo(2, 2)
        g, n, hidden = 4, 24, 8
        sizes = attention_step_sizes(n, hidden, g, bytes_per_elem=8)
        rng = np.random.default_rng(1)
        q, k, v, do = (rng.normal(size=(1, n, hidden)) for _ in range(4))
        for name, key in [("megatron-cp", "bwd_alg1"), ("burst", "bwd_alg2")]:
            comm = SimCommunicator(topology)
            get_method(name, block_size=4).run(
                topology, q, k, v, mask=None, do=do, comm=comm
            )
            fwd = {r.nbytes for r in comm.log.records if r.phase == "attn-fwd"}
            bwd = {r.nbytes for r in comm.log.records if r.phase == "attn-bwd"}
            assert fwd == {int(sizes["fwd"])}
            assert bwd == {int(sizes[key])}

    def test_check_all_invariants_sweep(self):
        reports = check_all_invariants([topo(1, 4), topo(2, 2)])
        assert all(r.passed for r in reports)
        assert len(reports) == 8  # 3 methods + table1, per topology

    def test_report_summary_shows_failures(self):
        from repro.testing import InvariantReport

        report = InvariantReport(name="demo")
        report.record(True, "fine")
        report.record(False, "bytes diverged")
        assert not report.passed
        assert "FAIL" in report.summary()
        assert "bytes diverged" in report.summary()
