"""End-to-end engine tests: distributed training equals single-device
training, every method trains, ablation flags behave, FSDP accounting."""

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig, fsdp_step_traffic
from repro.nn import CheckpointPolicy, TransformerConfig, TransformerLM, Adam
from repro.nn.checkpoint import CheckpointMode
from repro.topology import a800_node, make_cluster


def model_cfg(**overrides) -> TransformerConfig:
    base = dict(
        vocab_size=61, dim=16, n_layers=2, n_heads=4, ffn_hidden=24,
        max_seq_len=64, attn_block_size=16, seed=5,
    )
    base.update(overrides)
    return TransformerConfig(**base)


def batch(s=32, vocab=61, seed=2):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, vocab, size=s)
    return ids, np.roll(ids, -1)


TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


class TestDistributedEqualsLocal:
    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("megatron-cp", {}),
            ("loongtrain-double", {}),
            ("burst", {}),
            ("ulysses", {}),
            ("usp", {"ulysses_degree": 2}),
        ],
        ids=lambda m: m if isinstance(m, str) else "",
    )
    def test_loss_and_grads_match_single_device(self, method, kwargs):
        ids, targets = batch(s=32)
        ckpt = CheckpointPolicy(CheckpointMode.NONE)
        heads = 8 if method == "ulysses" else 4  # Ulysses needs H % G == 0

        local = TransformerLM(model_cfg(checkpoint=ckpt, n_heads=heads))
        loss_local = local(ids, targets)
        loss_local.backward()
        local_grads = {n: p.grad.copy() for n, p in local.named_parameters()}

        engine = BurstEngine(
            EngineConfig(
                model=model_cfg(n_heads=heads), method=method,
                method_kwargs=kwargs, checkpoint=ckpt, fsdp=False,
            ),
            topology=TOPO,
        )
        loss_dist = engine.model(ids, targets)
        loss_dist.backward()

        assert loss_dist.item() == pytest.approx(loss_local.item(), rel=1e-10)
        for name, p in engine.model.named_parameters():
            np.testing.assert_allclose(
                p.grad, local_grads[name], rtol=1e-8, atol=1e-10,
                err_msg=f"{method}:{name}",
            )

    def test_distributed_training_with_all_optimizations(self):
        """Full BurstEngine (Alg.2 + topo ring + fused head + seq ckpt)
        trains to the same loss as the plain single-device model."""
        ids, targets = batch(s=32)
        local = TransformerLM(model_cfg())
        opt = Adam(local.parameters(), lr=1e-3)
        for _ in range(4):
            opt.zero_grad()
            ref_loss = local(ids, targets)
            ref_loss.backward()
            opt.step()

        engine = BurstEngine(EngineConfig(model=model_cfg()), topology=TOPO)
        losses = engine.train(ids, targets, steps=4)
        assert losses[-1] == pytest.approx(ref_loss.item(), rel=1e-9)

    def test_loss_decreases_under_training(self):
        ids, targets = batch(s=32)
        engine = BurstEngine(EngineConfig(model=model_cfg(), lr=3e-3), topology=TOPO)
        losses = engine.train(ids, targets, steps=15)
        assert losses[-1] < losses[0] * 0.8


class TestEngineAccounting:
    def test_step_result_fields(self):
        ids, targets = batch(s=32)
        engine = BurstEngine(EngineConfig(model=model_cfg()), topology=TOPO)
        res = engine.train_step(ids, targets)
        assert res.step_comm_bytes > 0
        assert res.peak_activation_bytes > 0
        assert res.fsdp is not None and res.fsdp.total_bytes > 0
        assert np.isfinite(res.loss)

    def test_burst_step_moves_fewer_attention_bytes_than_ring(self):
        ids, targets = batch(s=32)
        volumes = {}
        for method in ("megatron-cp", "burst"):
            engine = BurstEngine(
                EngineConfig(model=model_cfg(), method=method, fsdp=False,
                             checkpoint=CheckpointPolicy(CheckpointMode.NONE)),
                topology=TOPO,
            )
            engine.train_step(ids, targets)
            volumes[method] = engine.comm.log.total_elems(phase="attn-bwd")
        assert volumes["burst"] < volumes["megatron-cp"]

    def test_checkpointing_reduces_peak_activation(self):
        ids, targets = batch(s=32)
        peaks = {}
        for name, policy in {
            "none": CheckpointPolicy(CheckpointMode.NONE),
            "seq": CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
            "spp": CheckpointPolicy(CheckpointMode.SELECTIVE_PP),
        }.items():
            engine = BurstEngine(
                EngineConfig(model=model_cfg(), checkpoint=policy, fsdp=False),
                topology=TOPO,
            )
            peaks[name] = engine.train_step(ids, targets).peak_activation_bytes
        assert peaks["seq"] < peaks["spp"] < peaks["none"]

    def test_selective_pp_skips_recompute_comm(self):
        """With selective++ the recompute pass must not redo attention
        communication: attention fwd traffic equals exactly one pass."""
        ids, targets = batch(s=32)
        engine_ckpt = BurstEngine(
            EngineConfig(model=model_cfg(),
                         checkpoint=CheckpointPolicy(CheckpointMode.SELECTIVE_PP),
                         fsdp=False),
            topology=TOPO,
        )
        engine_ckpt.train_step(ids, targets)
        fwd_ckpt = engine_ckpt.comm.log.total_elems(phase="attn-fwd")

        engine_full = BurstEngine(
            EngineConfig(model=model_cfg(),
                         checkpoint=CheckpointPolicy(CheckpointMode.FULL),
                         fsdp=False),
            topology=TOPO,
        )
        engine_full.train_step(ids, targets)
        fwd_full = engine_full.comm.log.total_elems(phase="attn-fwd")
        # full checkpointing re-runs attention (and its ring) once more
        assert fwd_full == 2 * fwd_ckpt

    def test_fsdp_traffic_formula(self):
        t = fsdp_step_traffic(param_bytes=800, world_size=8, gather_passes=2)
        assert t.allgather_bytes == int(2 * (7 / 8) * 800)
        assert t.reduce_scatter_bytes == int((7 / 8) * 800)

    def test_fsdp_single_gpu_is_free(self):
        t = fsdp_step_traffic(param_bytes=800, world_size=1)
        assert t.total_bytes == 0

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="divisible"):
            BurstEngine(
                EngineConfig(model=model_cfg(max_seq_len=30)), topology=TOPO
            )
        with pytest.raises(ValueError, match="infeasible"):
            BurstEngine(
                EngineConfig(model=model_cfg(n_heads=4), method="ulysses"),
                topology=make_cluster(8, node=a800_node(gpus_per_node=8)),
            )
