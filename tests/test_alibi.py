"""Tests for ALiBi / additive score bias through the whole stack."""

import numpy as np
import pytest

from repro.attention import get_method
from repro.kernels import (
    attention_reference,
    attention_reference_backward,
    flash_attention_backward,
    flash_attention_forward,
)
from repro.masks import ALiBiMask, CausalMask
from repro.nn import Tensor, TransformerConfig, TransformerLM, Adam
from repro.nn.attention_fn import flash_attention
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(77)
TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


def inputs(n=48, d=8, h=4):
    return tuple(RNG.normal(size=(h, n, d)) for _ in range(4))


class TestALiBiMask:
    def test_slopes_geometric(self):
        m = ALiBiMask(8)
        ratios = m.slopes[1:] / m.slopes[:-1]
        np.testing.assert_allclose(ratios, ratios[0])
        assert m.slopes[0] == pytest.approx(2 ** (-1.0))

    def test_bias_is_negative_distance(self):
        m = ALiBiMask(2)
        b = m.bias_block(np.array([5]), np.array([2, 5]))
        assert b.shape == (2, 1, 2)
        assert b[0, 0, 0] == pytest.approx(-m.slopes[0] * 3)
        assert b[0, 0, 1] == 0.0

    def test_mask_part_is_causal(self):
        m = ALiBiMask(2)
        np.testing.assert_array_equal(m.dense(6), CausalMask().dense(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            ALiBiMask(0)


class TestKernelBias:
    def test_reference_with_bias_matches_manual(self):
        q, k, v, _ = inputs(n=12, h=2)
        bias = RNG.normal(size=(2, 12, 12))
        o, lse = attention_reference(q, k, v, bias=bias)
        scale = 1 / np.sqrt(8)
        s = np.matmul(q, np.swapaxes(k, -1, -2)) * scale + bias
        p = np.exp(s - s.max(-1, keepdims=True))
        p /= p.sum(-1, keepdims=True)
        np.testing.assert_allclose(o, np.matmul(p, v), rtol=1e-12)

    def test_flash_with_bias_matches_reference(self):
        q, k, v, _ = inputs(n=33, h=2)
        mask = ALiBiMask(2)
        dense, bias = mask.dense(33), mask.dense_bias(33)
        o_ref, lse_ref = attention_reference(q, k, v, mask=dense, bias=bias)
        o, lse = flash_attention_forward(q, k, v, mask=dense, bias=bias,
                                         block_q=8, block_k=8)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-10)

    def test_flash_backward_with_bias(self):
        q, k, v, do = inputs(n=24, h=2)
        mask = ALiBiMask(2)
        dense, bias = mask.dense(24), mask.dense_bias(24)
        o, lse = flash_attention_forward(q, k, v, mask=dense, bias=bias,
                                         block_q=8, block_k=8)
        dq, dk, dv = flash_attention_backward(
            q, k, v, o, lse, do, mask=dense, bias=bias, block_q=8, block_k=8
        )
        dq_ref, dk_ref, dv_ref = attention_reference_backward(
            q, k, v, o, lse, do, mask=dense, bias=bias
        )
        np.testing.assert_allclose(dq, dq_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dk, dk_ref, rtol=1e-9, atol=1e-11)


class TestDistributedALiBi:
    @pytest.mark.parametrize(
        "method,kwargs",
        [("megatron-cp", {}), ("loongtrain-double", {}), ("burst", {}),
         ("ulysses", {})],
        ids=lambda m: m if isinstance(m, str) else "",
    )
    def test_distributed_matches_dense(self, method, kwargs):
        h = 8  # ulysses-feasible
        q, k, v, do = inputs(n=64, h=h)
        mask = ALiBiMask(h)
        m = get_method(method, block_size=16, **kwargs)
        res = m.run(TOPO, q, k, v, mask=mask, do=do)
        dense, bias = mask.dense(64), mask.dense_bias(64)
        o_ref, lse_ref = attention_reference(q, k, v, mask=dense, bias=bias)
        dq_ref, dk_ref, dv_ref = attention_reference_backward(
            q, k, v, o_ref, lse_ref, do, mask=dense, bias=bias
        )
        np.testing.assert_allclose(res.o, o_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(res.dk, dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(res.dv, dv_ref, rtol=1e-8, atol=1e-10)

    def test_usp_rejects_bias(self):
        q, k, v, _ = inputs(n=64, h=8)
        m = get_method("usp", ulysses_degree=2, block_size=16)
        with pytest.raises(NotImplementedError):
            m.run(TOPO, q, k, v, mask=ALiBiMask(8))

    def test_alibi_breaks_translation_blindness(self):
        """With ALiBi, the same token content at different distances gets
        different attention — unlike pure causal."""
        n, h, d = 16, 2, 4
        q = np.tile(RNG.normal(size=(h, 1, d)), (1, n, 1))
        k = np.tile(RNG.normal(size=(h, 1, d)), (1, n, 1))
        v = RNG.normal(size=(h, n, d))
        mask = ALiBiMask(h)
        o, _ = attention_reference(
            q, k, v, mask=mask.dense(n), bias=mask.dense_bias(n)
        )
        o_plain, _ = attention_reference(q, k, v, mask=mask.dense(n))
        # plain causal with identical q/k attends uniformly; ALiBi skews
        # toward recent positions, so the outputs must differ.
        assert not np.allclose(o, o_plain)


class TestALiBiModel:
    def test_model_with_alibi_trains(self):
        cfg = TransformerConfig(
            vocab_size=32, dim=16, n_layers=1, n_heads=2, ffn_hidden=24,
            max_seq_len=32, attn_block_size=16, mask=ALiBiMask(2), seed=3,
        )
        model = TransformerLM(cfg)
        opt = Adam(model.parameters(), lr=3e-3)
        ids = RNG.integers(0, 32, size=24)
        targets = np.roll(ids, -1)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_alibi_grad_check(self):
        """Bias path gradients via autograd match finite differences."""
        mask = ALiBiMask(2)
        q = Tensor(RNG.normal(size=(2, 8, 4)), requires_grad=True)
        k = Tensor(RNG.normal(size=(2, 8, 4)), requires_grad=True)
        v = Tensor(RNG.normal(size=(2, 8, 4)), requires_grad=True)
        flash_attention(q, k, v, mask=mask, block_size=4).sum().backward()
        eps = 1e-6

        def loss(k_np):
            o, _ = attention_reference(
                q.data, k_np, v.data, mask=mask.dense(8),
                bias=mask.dense_bias(8),
            )
            return o.sum()

        kp = k.data.copy(); kp[1, 2, 3] += eps
        km = k.data.copy(); km[1, 2, 3] -= eps
        fd = (loss(kp) - loss(km)) / (2 * eps)
        assert k.grad[1, 2, 3] == pytest.approx(fd, rel=1e-5)
