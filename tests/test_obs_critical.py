"""Cross-rank causal tracing, critical-path attribution, post-mortems.

The attribution tests run *real* traced training steps per method and
ring mode, so the conservation gate (compute + exposed comm + overlapped
+ idle == step wall, per rank, to 1e-9 relative) is exercised against
every instrumented row, and the exposed-comm pins are checked against the
same DES graphs and closed forms the predictions come from.  Adversarial
tests feed the validators damaged artifacts — dangling flow ids,
overlapping same-track spans, truncated post-mortem bundles — and require
a loud ``ValueError``, never a silent pass.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.comm import FailureDetector
from repro.engine import BurstEngine, EngineConfig
from repro.engine.trainer import Trainer
from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
from repro.nn.modules import TransformerConfig
from repro.obs import (
    FlightRecorder,
    attribute_steps,
    attribute_trace,
    check_conservation,
    critical_spans,
    derive_flows,
    flow_key,
    get_active_recorder,
    notify_failure,
    spans_to_chrome_json,
    straggler_ranking,
    use_tracing,
    validate_attribution_json,
    validate_chrome_trace,
    validate_flow_events,
    validate_postmortem,
)
from repro.obs.critical import step_windows
from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP, Histogram
from repro.obs.tracer import Span
from repro.resilience.rank_faults import StragglerRankComm
from repro.topology import a800_node, make_cluster

REPO = Path(__file__).resolve().parents[1]

#: Every engine-supported attribution cell: ring-family methods in both
#: circulation modes, plus the all-to-all method (bucket attribution only).
CELLS = [
    ("burst", "unidirectional"),
    ("burst", "bidirectional"),
    ("megatron-cp", "unidirectional"),
    ("megatron-cp", "bidirectional"),
    ("ulysses", "unidirectional"),
]

#: Cells where the exposed-comm pin (DES replay + closed forms) must hold.
PINNED_CELLS = [c for c in CELLS if c[0] != "ulysses"]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=600,
    )


def _traced_payload(method: str, ring_mode: str, comm=None) -> dict:
    """One traced training step as a parsed Chrome-trace payload.

    Ulysses needs ``heads % world == 0`` so it runs on 4 GPUs; the ring
    methods use the quickstart shape (8 GPUs over 2 nodes).
    """
    gpus = 4 if method == "ulysses" else 8
    topology = make_cluster(gpus, node=a800_node(gpus_per_node=4))
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4,
            ffn_hidden=64, max_seq_len=128, attn_block_size=32,
        ),
        method=method,
        method_kwargs=(
            {"ring_mode": ring_mode} if ring_mode != "unidirectional" else {}
        ),
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    if comm is not None:
        engine = BurstEngine(config, comm=comm)
    else:
        engine = BurstEngine(config, topology=topology)
    rng = np.random.default_rng(0)
    batch = (rng.integers(0, 128, 128), rng.integers(0, 128, 128))
    trainer = Trainer(engine=engine)
    with use_tracing() as tracer:
        trainer.fit([batch], steps=1)
    return json.loads(spans_to_chrome_json(
        tracer.spans(),
        metadata={
            "method": method, "world_size": gpus, "gpus_per_node": 4,
            "seq_len": 128, "hidden": 32, "n_heads": 4,
            "steps": 1, "ring_mode": ring_mode,
        },
    ))


_PAYLOADS: dict[tuple[str, str], dict] = {}


def traced_payload(method: str, ring_mode: str) -> dict:
    key = (method, ring_mode)
    if key not in _PAYLOADS:
        _PAYLOADS[key] = _traced_payload(method, ring_mode)
    return _PAYLOADS[key]


def _span(name, phase, ts, dur, *, tid=0, rank=None, **attrs):
    return Span(name=name, phase=phase, ts=ts, dur=dur, tid=tid, depth=0,
                rank=rank, attrs=attrs)


class TestFlowEvents:
    def test_flow_key_shape(self):
        assert flow_key("attn-fwd", "kv", "rev") == "attn-fwd|kv|rev"

    def test_chains_by_key_in_call_order(self):
        spans = [
            _span("comm.ring_shift", "comm", 0.0, 1e-6,
                  logical="attn-fwd", tag="kv", channel="fwd", call=1),
            _span("comm.ring_shift", "comm", 2e-6, 1e-6,
                  logical="attn-fwd", tag="kv", channel="fwd", call=3),
            # different channel => separate chain, no edge to the above
            _span("comm.exchange", "comm", 1e-6, 1e-6,
                  logical="attn-fwd", tag="kv", channel="rev", call=2),
            # non-comm span: never a flow endpoint
            _span("flash.fwd", "compute", 0.0, 1e-6),
        ]
        edges = derive_flows(spans)
        assert [(e.src, e.dst) for e in edges] == [(0, 1)]
        assert edges[0].key == "attn-fwd|kv|fwd"

    def test_real_trace_flow_events_validate(self):
        payload = traced_payload("burst", "unidirectional")
        flows = [e for e in payload["traceEvents"] if e.get("ph") in ("s", "f")]
        assert flows, "traced step produced no flow events"
        pairs = validate_flow_events(flows)
        assert len(pairs) == len(flows) // 2

    def test_dangling_start_rejected(self):
        ev = {"name": "dep", "ph": "s", "id": 7, "ts": 1.0, "pid": 2, "tid": 1}
        with pytest.raises(ValueError, match="dangling"):
            validate_flow_events([ev])

    def test_duplicate_id_rejected(self):
        s = {"name": "dep", "ph": "s", "id": 1, "ts": 1.0, "pid": 2, "tid": 1}
        f = {"name": "dep", "ph": "f", "id": 1, "ts": 2.0, "pid": 2, "tid": 1}
        with pytest.raises(ValueError, match="duplicate"):
            validate_flow_events([s, dict(s), f])

    def test_backwards_flow_rejected(self):
        s = {"name": "dep", "ph": "s", "id": 1, "ts": 5.0, "pid": 2, "tid": 1}
        f = {"name": "dep", "ph": "f", "id": 1, "ts": 1.0, "pid": 2, "tid": 1}
        with pytest.raises(ValueError, match="backwards"):
            validate_flow_events([s, f])

    def test_missing_field_rejected(self):
        s = {"name": "dep", "ph": "s", "id": 1, "ts": 1.0, "pid": 2}
        with pytest.raises(ValueError, match="missing"):
            validate_flow_events([s])


class TestAttributionBuckets:
    def _synthetic(self):
        spans = [
            _span("train.step", "step", 0.0, 100e-6, step=0),
            _span("mlp", "compute", 0.0, 50e-6, tid=1),
            _span("comm.ring_shift", "comm", 40e-6, 30e-6, tid=2),
        ]
        return json.loads(spans_to_chrome_json(spans))

    def test_hand_computed_buckets(self):
        steps = attribute_steps(self._synthetic())
        assert len(steps) == 1
        b = steps[0]["ranks"]["all"]
        assert b["compute_us"] == pytest.approx(40.0)
        assert b["overlapped_us"] == pytest.approx(10.0)
        assert b["comm_exposed_us"] == pytest.approx(20.0)
        assert b["idle_us"] == pytest.approx(30.0)

    def test_step_windows_sorted_by_time(self):
        spans = [
            _span("train.step", "step", 5e-6, 1e-6, step=1),
            _span("train.step", "step", 0.0, 1e-6, step=0),
        ]
        windows = step_windows(json.loads(spans_to_chrome_json(spans)))
        assert [w[0] for w in windows] == [0, 1]

    def test_out_of_order_events_attribute_identically(self):
        payload = self._synthetic()
        shuffled = dict(payload)
        shuffled["traceEvents"] = list(reversed(payload["traceEvents"]))
        assert attribute_steps(shuffled) == attribute_steps(payload)

    def test_rank_scoped_span_charges_one_rank(self):
        spans = [
            _span("train.step", "step", 0.0, 100e-6, step=0),
            _span("wait", "comm", 0.0, 100e-6, tid=2, rank=1),
        ]
        payload = json.loads(spans_to_chrome_json(spans))
        payload["metadata"] = {"world_size": 2}
        ranks = attribute_steps(payload)[0]["ranks"]
        assert ranks["1"]["comm_exposed_us"] == pytest.approx(100.0)
        assert ranks["0"]["comm_exposed_us"] == 0.0
        assert ranks["0"]["idle_us"] == pytest.approx(100.0)

    @pytest.mark.parametrize("method,ring_mode", CELLS)
    def test_conservation_on_real_step(self, method, ring_mode):
        payload = traced_payload(method, ring_mode)
        steps = attribute_steps(payload)
        assert steps, "no train.step window in trace"
        world = payload["metadata"]["world_size"]
        assert set(steps[0]["ranks"]) == {str(r) for r in range(world)}
        ok, max_err = check_conservation(steps)
        assert ok, f"buckets leak wall time: max rel err {max_err}"

    def test_overlapping_same_tid_spans_rejected(self):
        # Partial overlap on one track is neither nested nor disjoint.
        payload = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 2, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 2, "tid": 1},
        ]}
        with pytest.raises(ValueError, match="overlaps"):
            validate_chrome_trace(payload)


class TestExposedCommPins:
    @pytest.mark.parametrize("method,ring_mode", PINNED_CELLS)
    def test_pins_hold_on_healthy_run(self, method, ring_mode):
        doc = attribute_trace(traced_payload(method, ring_mode))
        validate_attribution_json(doc)
        assert doc["conservation_ok"]
        assert doc["straggler_ok"]
        for logical in ("attn-fwd", "attn-bwd"):
            pin = doc["pins"][logical]
            assert pin.get("error") is None, pin
            assert pin["frac_ok"], pin
            assert pin["closed_form_ok"], pin
        assert doc["ok"]

    @pytest.mark.parametrize("method,ring_mode", PINNED_CELLS)
    def test_unidirectional_closed_form_is_near_exact(self, method, ring_mode):
        if ring_mode != "unidirectional":
            pytest.skip("closed forms are unidirectional-only")
        doc = attribute_trace(traced_payload(method, ring_mode))
        for pin in doc["pins"].values():
            assert pin["replay_comm_s"] == pytest.approx(
                pin["closed_form_comm_s"], rel=5e-3
            )

    def test_ulysses_skips_pin_but_attributes(self):
        doc = attribute_trace(traced_payload("ulysses", "unidirectional"))
        assert doc["pins"] == {}
        assert "no ring-family DES pass graph" in doc["pin_skipped"]
        assert doc["pin_ok"] and doc["ok"]

    def test_missing_metadata_skips_pin(self):
        payload = dict(traced_payload("burst", "unidirectional"))
        payload["metadata"] = {"method": "burst"}
        doc = attribute_trace(payload)
        assert doc["pins"] == {}
        assert "metadata missing" in doc["pin_skipped"]


class TestStragglerAttribution:
    @pytest.fixture(scope="class")
    def straggler_payload(self):
        topo = make_cluster(8, node=a800_node(gpus_per_node=4))
        comm = FailureDetector(
            StragglerRankComm(topo, rank=1, at_step=0, at_call=1)
        )
        return _traced_payload("burst", "unidirectional", comm=comm)

    def test_straggler_ranking_names_victim(self, straggler_payload):
        ranking = straggler_ranking(straggler_payload)
        assert ranking and ranking[0]["rank"] == 1
        assert ranking[0]["stall_s"] > 0
        assert ranking[0]["extensions"] >= 1

    def test_straggler_fails_overall_gate(self, straggler_payload):
        doc = attribute_trace(straggler_payload)
        # Buckets and pins still hold (stall-adjusted); the straggler
        # check is what fails the document.
        assert doc["conservation_ok"]
        assert not doc["straggler_ok"]
        assert not doc["ok"]

    def test_critical_spans_lead_with_sim_waits(self, straggler_payload):
        top = critical_spans(straggler_payload, k=3)
        assert top[0]["kind"] == "sim-wait"
        assert top[0]["rank"] == 1

    def test_attribute_cli_exits_nonzero_naming_rank(
        self, straggler_payload, tmp_path
    ):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(straggler_payload))
        proc = run_cli("repro.obs", "attribute", str(trace))
        assert proc.returncode != 0
        assert "rank 1" in proc.stdout
        assert "attribution: FAIL" in proc.stdout


class TestHistogramPercentiles:
    def test_pinned_percentiles_1_to_100(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        stats = h.stats()
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0
        assert stats["p99"] == 99.0
        assert stats["count"] == 100

    def test_single_sample_and_labels(self):
        h = Histogram("lat")
        h.observe(7.0, op="send")
        stats = h.stats(op="send")
        assert stats["p50"] == stats["p99"] == 7.0

    def test_sampling_is_bounded_but_stats_exact(self):
        h = Histogram("lat")
        n = HISTOGRAM_SAMPLE_CAP + 100
        for v in range(n):
            h.observe(float(v))
        stats = h.stats()
        assert stats["count"] == n
        assert stats["max"] == float(n - 1)
        assert len(h._samples[""]) == HISTOGRAM_SAMPLE_CAP
        assert "p99" in stats

    def test_snapshot_carries_percentiles(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.snapshot()["p50"] == 2.0


class TestFlightRecorder:
    def test_capacity_ring(self):
        rec = FlightRecorder(capacity=2)
        for i in range(5):
            rec(_span(f"s{i}", "compute", float(i), 1.0))
        assert [s.name for s in rec.spans()] == ["s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_notify_without_recorder_is_noop(self):
        assert get_active_recorder() is None
        assert notify_failure({"kind": "crash"}) is None

    def test_survives_tracer_restarts(self, tmp_path):
        with FlightRecorder(capacity=16, out_dir=str(tmp_path)) as rec:
            with use_tracing():
                from repro.obs import trace_span
                with trace_span("first", phase="compute"):
                    pass
            with use_tracing():
                from repro.obs import trace_span
                with trace_span("second", phase="compute"):
                    pass
            names = {s.name for s in rec.spans()}
        assert {"first", "second"} <= names
        assert get_active_recorder() is None

    def test_dump_roundtrips_validation(self, tmp_path):
        rec = FlightRecorder(capacity=8, out_dir=str(tmp_path), prefix="t-")
        rec(_span("work", "compute", 0.0, 1e-6))
        path = rec.dump(reason={"kind": "test", "rank": 0})
        bundle = validate_postmortem(Path(path).read_text())
        assert bundle["n_spans"] == 1
        assert bundle["reason"]["kind"] == "test"
        assert bundle["capacity"] == 8

    def test_truncated_dump_rejected(self, tmp_path):
        rec = FlightRecorder(capacity=8, out_dir=str(tmp_path))
        rec(_span("work", "compute", 0.0, 1e-6))
        path = rec.dump(reason={"kind": "test"})
        text = Path(path).read_text()
        with pytest.raises(ValueError, match="truncated or corrupt"):
            validate_postmortem(text[: len(text) // 2])

    def test_reason_must_name_kind(self, tmp_path):
        rec = FlightRecorder(capacity=8, out_dir=str(tmp_path))
        path = rec.dump(reason={"kind": "x"})
        bundle = json.loads(Path(path).read_text())
        bundle["reason"] = {}
        with pytest.raises(ValueError, match="kind"):
            validate_postmortem(bundle)

    def test_span_count_mismatch_rejected(self, tmp_path):
        rec = FlightRecorder(capacity=8, out_dir=str(tmp_path))
        rec(_span("work", "compute", 0.0, 1e-6))
        path = rec.dump(reason={"kind": "x"})
        bundle = json.loads(Path(path).read_text())
        bundle["n_spans"] = 99
        with pytest.raises(ValueError, match="n_spans"):
            validate_postmortem(bundle)


class TestChaosPostmortem:
    def test_crash_cell_emits_valid_bundle(self, tmp_path):
        from repro.resilience.chaos import run_rank_fault_scenario

        result = run_rank_fault_scenario(
            "crash", "burst", postmortem_dir=str(tmp_path)
        )
        assert result.postmortem is not None
        assert result.postmortem_ok
        assert result.ok, result.summary()
        bundle = validate_postmortem(Path(result.postmortem).read_text())
        assert bundle["reason"]["rank"] == 1
        assert bundle["lease"] is not None
        assert bundle["lease"]["config"]["max_extensions"] is not None
        # The critical path must name the dead rank.
        assert any(e.get("rank") == 1 for e in bundle["critical_path"])
        assert "postmortem=valid" in result.summary()

    def test_scenario_without_dir_skips_recording(self):
        from repro.resilience.chaos import run_rank_fault_scenario

        result = run_rank_fault_scenario("crash", "burst")
        assert result.postmortem is None
        assert result.postmortem_ok
        assert result.ok


class TestJsonCli:
    @pytest.fixture(scope="class")
    def traced_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs-cli")
        proc = run_cli(
            "repro.obs", "trace-step", "--out-dir", str(out), "--seq", "128"
        )
        assert proc.returncode == 0, proc.stderr
        return out

    def test_report_json_validates(self, traced_dir):
        from repro.obs import validate_report_json

        proc = run_cli(
            "repro.obs", "report", str(traced_dir / "trace.json"),
            "--metrics", str(traced_dir / "metrics.jsonl"), "--json",
        )
        assert proc.returncode == 0, proc.stderr
        doc = validate_report_json(json.loads(proc.stdout))
        assert doc["schema"] == "obs-report/v1"
        assert doc["spans"] > 0
        assert doc["metrics"] is not None

    def test_report_json_critical_embeds_attribution(self, traced_dir):
        proc = run_cli(
            "repro.obs", "report", str(traced_dir / "trace.json"),
            "--json", "--critical",
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["attribution"]["steps"]
        assert doc["attribution"]["stragglers"] == []

    def test_report_critical_text(self, traced_dir):
        proc = run_cli(
            "repro.obs", "report", str(traced_dir / "trace.json"), "--critical"
        )
        assert proc.returncode == 0, proc.stderr
        assert "critical-path attribution" in proc.stdout
        assert "conservation: OK" in proc.stdout

    def test_diff_json_validates(self, traced_dir):
        from repro.obs import validate_diff_json

        proc = run_cli(
            "repro.obs", "diff", str(traced_dir / "trace.json"),
            "--predicted", str(traced_dir / "predicted.json"), "--json",
        )
        assert proc.returncode == 0, proc.stderr
        doc = validate_diff_json(json.loads(proc.stdout))
        assert doc["ok"] is True
        assert doc["lines"]

    def test_attribute_cli_writes_validated_json(self, traced_dir, tmp_path):
        out = tmp_path / "attribution.json"
        proc = run_cli(
            "repro.obs", "attribute", str(traced_dir / "trace.json"),
            "--json", str(out),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = validate_attribution_json(out.read_text())
        assert doc["ok"] is True
        assert doc["pins"]["attn-fwd"]["closed_form_ok"]

    def test_chaos_cli_postmortem_dir_requires_rank_faults(self):
        proc = run_cli(
            "repro.resilience.chaos", "--postmortem-dir", "/tmp/x"
        )
        assert proc.returncode != 0
        assert "--rank-faults" in proc.stderr
