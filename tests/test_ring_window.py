"""The inner-ring window-size ablation (LoongTrain's tunable; the paper's
node-aligned choice should be optimal)."""

import numpy as np
import pytest

from repro.attention.ring import ring_attention_forward
from repro.comm import SimCommunicator, double_ring_schedule
from repro.kernels import attention_reference
from repro.masks import CausalMask
from repro.partition import StripedPartitioner
from repro.perf.schedules.attention import AttentionWorkload, attention_pass_time
from repro.topology import LinkClass, a800_node, make_cluster


TOPO = make_cluster(16, node=a800_node(gpus_per_node=4))


class TestWindowedSchedules:
    @pytest.mark.parametrize("window", [1, 2, 4, 8, 16])
    def test_any_divisor_window_is_valid_cover(self, window):
        sched = double_ring_schedule(TOPO, window=window)
        sched.validate()
        assert sched.num_steps == 16

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            double_ring_schedule(TOPO, window=3)
        with pytest.raises(ValueError):
            double_ring_schedule(TOPO, window=0)

    def test_window_world_equals_global_ring(self):
        sched = double_ring_schedule(TOPO, window=16)
        # every transition is the single global ring
        for rings in sched.transitions:
            assert len(rings) == 1 and len(rings[0]) == 16

    @pytest.mark.parametrize("window", [2, 4, 8])
    def test_numerics_correct_for_any_window(self, window):
        """Correctness must be schedule-independent."""
        rng = np.random.default_rng(0)
        n, d, h = 64, 8, 2
        q, k, v = (rng.normal(size=(h, n, d)) for _ in range(3))
        part = StripedPartitioner()
        idxs = part.indices(n, 16)
        comm = SimCommunicator(TOPO)
        os, _ = ring_attention_forward(
            comm, double_ring_schedule(TOPO, window=window),
            part.scatter(q, 16), part.scatter(k, 16), part.scatter(v, 16),
            idxs, mask=CausalMask(), block_size=8,
        )
        o_ref, _ = attention_reference(q, k, v, mask=CausalMask().dense(n))
        np.testing.assert_allclose(part.gather(os), o_ref, rtol=1e-9,
                                   atol=1e-11)

    def test_node_window_minimises_inter_traffic(self):
        """Measured inter-node bytes across window sizes: node-aligned (4)
        is the minimum; smaller windows cross nodes more often, larger
        ones put inner hops on the inter link."""
        rng = np.random.default_rng(1)
        n, d = 64, 8
        q, k, v = (rng.normal(size=(1, n, d)) for _ in range(3))
        part = StripedPartitioner()
        idxs = part.indices(n, 16)
        inter = {}
        for window in (1, 2, 4, 8, 16):
            comm = SimCommunicator(TOPO)
            ring_attention_forward(
                comm, double_ring_schedule(TOPO, window=window),
                part.scatter(q, 16), part.scatter(k, 16),
                part.scatter(v, 16), idxs, block_size=8,
            )
            inter[window] = comm.log.total_bytes(link=LinkClass.INTER)
        assert inter[4] == min(inter.values())
        assert inter[1] > inter[4]
        assert inter[16] > inter[4]

    def test_node_window_fastest_in_des(self):
        """DES pass time across windows: the node-aligned window wins."""
        wl = AttentionWorkload(seq_len=1 << 20, hidden=5120, n_heads=40)
        topo = make_cluster(32)
        times = {
            w: attention_pass_time("burst", topo, wl, backward=True,
                                   ring_window=w)
            for w in (2, 4, 8, 16, 32)
        }
        assert times[8] == min(times.values())  # gpus_per_node == 8
