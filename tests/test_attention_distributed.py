"""Distributed attention: numerics vs dense reference + traffic volumes.

These tests verify the load-bearing claims of the paper at exact precision:

* every method (RingAttention/Megatron-CP, DoubleRing, BurstAttention,
  Ulysses, USP) produces the same outputs and gradients as single-device
  dense attention, for full / causal / sliding-window masks;
* Algorithm 1's backward moves exactly ``4Nd`` elements per GPU while
  Algorithm 2 (Burst) moves ``3Nd + 2N`` — the ~25 % saving;
* the topology-aware double ring reduces inter-node traffic vs the flat
  global ring.
"""

import numpy as np
import pytest

from repro.attention import get_method
from repro.comm import SimCommunicator, double_ring_schedule, global_ring_schedule
from repro.kernels import attention_reference, attention_reference_backward
from repro.masks import CausalMask, SlidingWindowMask, sliding_window_block_mask
from repro.partition import StripedPartitioner, ZigzagPartitioner, BlockwisePartitioner
from repro.topology import LinkClass, a800_node, make_cluster


RNG = np.random.default_rng(7)


def make_inputs(n=64, d=8, heads=2):
    q = RNG.normal(size=(heads, n, d))
    k = RNG.normal(size=(heads, n, d))
    v = RNG.normal(size=(heads, n, d))
    do = RNG.normal(size=(heads, n, d))
    return q, k, v, do


def reference(q, k, v, do, mask=None):
    m = mask.dense(q.shape[-2]) if mask is not None else None
    o, lse = attention_reference(q, k, v, mask=m)
    dq, dk, dv = attention_reference_backward(q, k, v, o, lse, do, mask=m)
    return o, lse, dq, dk, dv


TOPO_2x4 = make_cluster(8, node=a800_node(gpus_per_node=4))
TOPO_1x4 = make_cluster(4, node=a800_node(gpus_per_node=4))

METHODS = [
    ("megatron-cp", {}),
    ("loongtrain-double", {}),
    ("burst", {}),
    ("ulysses", {}),
    ("usp", {"ulysses_degree": 2}),
]

MASKS = [None, CausalMask(), SlidingWindowMask(window=24)]


class TestCorrectnessAllMethods:
    @pytest.mark.parametrize("mask", MASKS, ids=["full", "causal", "swa"])
    @pytest.mark.parametrize("name,kwargs", METHODS, ids=[m[0] for m in METHODS])
    def test_matches_dense_reference(self, name, kwargs, mask):
        q, k, v, do = make_inputs(n=64, d=8, heads=8)  # 8 heads: Ulysses-feasible on 8 GPUs
        method = get_method(name, block_size=16, **kwargs)
        res = method.run(TOPO_2x4, q, k, v, mask=mask, do=do)
        o_ref, lse_ref, dq_ref, dk_ref, dv_ref = reference(q, k, v, do, mask)
        np.testing.assert_allclose(res.o, o_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(res.lse, lse_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(res.dk, dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(res.dv, dv_ref, rtol=1e-8, atol=1e-10)

    def test_burst_with_zigzag_partitioner(self):
        q, k, v, do = make_inputs(n=64, d=8)
        method = get_method("burst", partitioner=ZigzagPartitioner(), block_size=16)
        res = method.run(TOPO_2x4, q, k, v, mask=CausalMask(), do=do)
        _, _, dq_ref, dk_ref, dv_ref = reference(q, k, v, do, CausalMask())
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-8, atol=1e-10)

    def test_burst_blocksparse_mask_with_blockwise_partition(self):
        """Sparse attention integration: block-balanced partition + SWA mask."""
        n = 64
        mask = sliding_window_block_mask(seq_len=n, block_size=16, window_blocks=2)
        q, k, v, do = make_inputs(n=n, d=8)
        method = get_method(
            "burst", partitioner=BlockwisePartitioner(block_size=16), block_size=8
        )
        res = method.run(TOPO_1x4, q, k, v, mask=mask, do=do)
        o_ref, _, dq_ref, dk_ref, dv_ref = reference(q, k, v, do, mask)
        np.testing.assert_allclose(res.o, o_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(res.dk, dk_ref, rtol=1e-8, atol=1e-10)

    def test_single_node_topology(self):
        q, k, v, do = make_inputs(n=32, d=4)
        method = get_method("burst", block_size=8)
        res = method.run(TOPO_1x4, q, k, v, mask=CausalMask(), do=do)
        _, _, dq_ref, _, _ = reference(q, k, v, do, CausalMask())
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-8, atol=1e-10)

    def test_usp_with_burst_backward(self):
        q, k, v, do = make_inputs(n=64, d=8, heads=4)
        method = get_method("usp", ulysses_degree=4, use_burst_backward=True,
                            block_size=16)
        res = method.run(TOPO_2x4, q, k, v, mask=CausalMask(), do=do)
        _, _, dq_ref, dk_ref, dv_ref = reference(q, k, v, do, CausalMask())
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(res.dv, dv_ref, rtol=1e-8, atol=1e-10)

    def test_ulysses_rejects_indivisible_heads(self):
        q, k, v, _ = make_inputs(n=64, d=8, heads=3)  # 3 heads, 8 GPUs
        method = get_method("ulysses", block_size=16)
        with pytest.raises(ValueError, match="infeasible"):
            method.run(TOPO_2x4, q, k, v)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_method("nonexistent")


class TestCommunicationVolumes:
    """The paper's headline communication accounting, asserted exactly."""

    N, D, H, G = 64, 8, 1, 8  # single head so formulas match the paper's Nd

    def _run(self, name, **kwargs):
        q, k, v, do = make_inputs(n=self.N, d=self.D, heads=self.H)
        method = get_method(name, block_size=16, **kwargs)
        res = method.run(TOPO_2x4, q, k, v, mask=None, do=do)
        return res.comm.log

    def test_forward_volume_is_2nd(self):
        """Forward: each GPU sends (G-1)/G * 2Nd elements (K and V once)."""
        log = self._run("burst")
        per_rank = log.per_rank_send_elems(phase="attn-fwd")
        expected = (self.G - 1) * 2 * (self.N // self.G) * self.D
        assert all(v == expected for v in per_rank.values())

    def test_ring_backward_volume_is_4nd(self):
        """Algorithm 1: exactly 4Nd elements sent per GPU."""
        log = self._run("megatron-cp")
        per_rank = log.per_rank_send_elems(phase="attn-bwd")
        expected = 4 * self.N * self.D
        assert all(v == expected for v in per_rank.values())

    def test_burst_backward_volume_is_3nd_plus_2n(self):
        """Algorithm 2: exactly 3Nd + 2N elements sent per GPU."""
        log = self._run("burst")
        per_rank = log.per_rank_send_elems(phase="attn-bwd")
        expected = 3 * self.N * self.D + 2 * self.N
        assert all(v == expected for v in per_rank.values())

    def test_burst_saves_about_25_percent(self):
        ring = 4 * self.N * self.D
        burst = 3 * self.N * self.D + 2 * self.N
        saving = 1 - burst / ring
        assert saving == pytest.approx(0.25 - 2 / (4 * self.D), abs=1e-9)
        assert saving > 0.17  # ~25% for realistic d >> 2

    def test_double_ring_reduces_inter_node_traffic(self):
        log_flat = self._run("megatron-cp")
        log_dbl = self._run("loongtrain-double")
        inter_flat = log_flat.total_bytes(phase="attn-fwd", link=LinkClass.INTER)
        inter_dbl = log_dbl.total_bytes(phase="attn-fwd", link=LinkClass.INTER)
        assert inter_dbl < inter_flat

    def test_ulysses_volume_scales_as_n_over_g(self):
        """Ulysses per-rank volume ~ 4 * (N/G) * d * (G-1)/G per pass —
        far below ring methods' O(Nd)."""
        q, k, v, do = make_inputs(n=self.N, d=self.D, heads=8)
        method = get_method("ulysses", block_size=16)
        res = method.run(TOPO_2x4, q, k, v, do=do)
        log = res.comm.log
        shard_elems = 8 * (self.N // self.G) * self.D  # H * S/G * D
        per_rank_fwd = log.per_rank_send_elems(phase="attn-fwd")
        # forward: q,k,v out + o,lse back -> (3 + 1) * shard * (G-1)/G + lse
        lse_elems = 8 * (self.N // self.G)
        expected_fwd = (shard_elems * 4 + lse_elems) * (self.G - 1) // self.G
        assert all(v == expected_fwd for v in per_rank_fwd.values())
        ring_fwd = (self.G - 1) * 2 * (self.N // self.G) * self.D * 8
        assert expected_fwd < ring_fwd

    def test_ring_neighbours_only(self):
        """Flat ring traffic flows only between ring neighbours."""
        log = self._run("megatron-cp")
        for rec in log.records:
            assert (rec.dst - rec.src) % self.G in (1, self.G - 1)


class TestScheduleEquivalence:
    """Algorithm 1 and Algorithm 2 must agree on any schedule."""

    def test_alg1_alg2_identical_gradients(self):
        from repro.attention.ring import ring_attention_forward, ring_attention_backward_kv
        from repro.attention.burst import burst_attention_backward
        from repro.partition import StripedPartitioner

        topo = TOPO_2x4
        g = topo.world_size
        n, d, h = 64, 8, 2
        q, k, v, do = make_inputs(n=n, d=d, heads=h)
        part = StripedPartitioner()
        idxs = part.indices(n, g)
        qs, ks, vs = part.scatter(q, g), part.scatter(k, g), part.scatter(v, g)
        dos = part.scatter(do, g)
        mask = CausalMask()

        for sched_fn in (global_ring_schedule, double_ring_schedule):
            comm = SimCommunicator(topo)
            sched = sched_fn(topo)
            os, lses = ring_attention_forward(comm, sched, qs, ks, vs, idxs,
                                              mask=mask, block_size=16)
            dq1, dk1, dv1 = ring_attention_backward_kv(
                comm, sched, qs, ks, vs, os, lses, dos, idxs, mask=mask,
                block_size=16)
            dq2, dk2, dv2 = burst_attention_backward(
                comm, sched, qs, ks, vs, os, lses, dos, idxs, mask=mask,
                block_size=16)
            for a, b in zip(dq1 + dk1 + dv1, dq2 + dk2 + dv2):
                np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    def test_forward_schedule_invariance(self):
        """Output must not depend on the communication schedule."""
        from repro.attention.ring import ring_attention_forward

        topo = TOPO_2x4
        g = topo.world_size
        q, k, v, _ = make_inputs(n=64, d=8)
        part = StripedPartitioner()
        idxs = part.indices(64, g)
        qs, ks, vs = part.scatter(q, g), part.scatter(k, g), part.scatter(v, g)
        outs = []
        for sched_fn in (global_ring_schedule, double_ring_schedule):
            comm = SimCommunicator(topo)
            os, _ = ring_attention_forward(
                comm, sched_fn(topo), qs, ks, vs, idxs,
                mask=CausalMask(), block_size=16)
            outs.append(np.concatenate(os, axis=-2))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-12)
