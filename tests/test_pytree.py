"""Tests for the pytree helpers used by the simulated communicator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.pytree import (
    tree_flatten,
    tree_map,
    tree_nbytes,
    tree_nelems,
    tree_unflatten,
)


def test_flatten_single_array():
    a = np.arange(6.0)
    leaves, spec = tree_flatten(a)
    assert len(leaves) == 1
    rebuilt = tree_unflatten(spec, leaves)
    np.testing.assert_array_equal(rebuilt, a)


def test_flatten_nested_structure():
    tree = {"kv": (np.zeros((2, 3)), np.ones(4)), "meta": [np.arange(2)]}
    leaves, spec = tree_flatten(tree)
    assert len(leaves) == 3
    rebuilt = tree_unflatten(spec, leaves)
    assert set(rebuilt) == {"kv", "meta"}
    np.testing.assert_array_equal(rebuilt["kv"][1], np.ones(4))


def test_dict_keys_sorted_deterministically():
    t1 = {"b": np.array([1.0]), "a": np.array([2.0])}
    leaves, _ = tree_flatten(t1)
    # 'a' first regardless of insertion order
    assert leaves[0][0] == 2.0


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        tree_flatten({"x": "not-an-array"})


def test_leftover_leaves_raise():
    a = np.zeros(3)
    _, spec = tree_flatten(a)
    with pytest.raises(ValueError):
        tree_unflatten(spec, [a, a])


def test_tree_map_copies():
    tree = (np.arange(3.0), [np.ones(2)])
    mapped = tree_map(np.copy, tree)
    mapped[0][0] = 99.0
    assert tree[0][0] == 0.0


def test_nbytes_and_nelems():
    tree = (np.zeros((2, 3)), np.zeros(4, dtype=np.float32))
    assert tree_nelems(tree) == 10
    assert tree_nbytes(tree) == 6 * 8 + 4 * 4


@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
    )
)
def test_roundtrip_property(shapes):
    tree = tuple(np.random.default_rng(0).normal(size=s) for s in shapes)
    leaves, spec = tree_flatten(tree)
    rebuilt = tree_unflatten(spec, leaves)
    for orig, new in zip(tree, rebuilt):
        np.testing.assert_array_equal(orig, new)
