"""RoPE: rotation algebra, relative-position property, model integration,
and distributed correctness."""

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig
from repro.nn import Adam, CheckpointPolicy, Tensor, TransformerConfig, TransformerLM
from repro.nn.checkpoint import CheckpointMode
from repro.nn.rope import apply_rope, rope_angles, rotate_half_split
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(23)


def rope_cfg(**kw):
    base = dict(vocab_size=32, dim=16, n_layers=2, n_heads=2, ffn_hidden=24,
                max_seq_len=64, attn_block_size=16, seed=4,
                position_encoding="rope")
    base.update(kw)
    return TransformerConfig(**base)


class TestRotationAlgebra:
    def test_rotation_preserves_norm(self):
        x = RNG.normal(size=(2, 10, 8))
        cos, sin = rope_angles(np.arange(10), 8)
        y = rotate_half_split(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(y, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-12
        )

    def test_inverse_rotation_roundtrips(self):
        x = RNG.normal(size=(2, 6, 8))
        cos, sin = rope_angles(np.arange(6), 8)
        y = rotate_half_split(rotate_half_split(x, cos, sin), cos, sin,
                              inverse=True)
        np.testing.assert_allclose(y, x, rtol=1e-12)

    def test_position_zero_is_identity(self):
        x = RNG.normal(size=(1, 1, 8))
        cos, sin = rope_angles(np.array([0]), 8)
        np.testing.assert_allclose(rotate_half_split(x, cos, sin), x)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(np.arange(4), 7)

    def test_relative_position_property(self):
        """<R_m q, R_n k> depends only on m - n (RoPE's defining trait)."""
        q = RNG.normal(size=8)
        k = RNG.normal(size=8)

        def score(m, n):
            cq, sq_ = rope_angles(np.array([m]), 8)
            ck, sk_ = rope_angles(np.array([n]), 8)
            qr = rotate_half_split(q[None, :], cq, sq_)
            kr = rotate_half_split(k[None, :], ck, sk_)
            return (qr @ kr.T).item()

        assert score(5, 2) == pytest.approx(score(105, 102), rel=1e-9)
        assert score(7, 7) == pytest.approx(score(0, 0), rel=1e-9)

    def test_autograd_backward_is_inverse_rotation(self):
        x = Tensor(RNG.normal(size=(2, 5, 8)), requires_grad=True)
        y = apply_rope(x, np.arange(5))
        g = RNG.normal(size=(2, 5, 8))
        y.backward(g)
        cos, sin = rope_angles(np.arange(5), 8)
        np.testing.assert_allclose(
            x.grad, rotate_half_split(g, cos, sin, inverse=True), rtol=1e-12
        )

    def test_gradient_finite_difference(self):
        x_np = RNG.normal(size=(1, 3, 4))
        x = Tensor(x_np, requires_grad=True)
        (apply_rope(x, np.array([1, 5, 9])) ** 2.0).sum().backward()
        eps = 1e-6
        for idx in [(0, 0, 0), (0, 2, 3), (0, 1, 2)]:
            xp = x_np.copy(); xp[idx] += eps
            xm = x_np.copy(); xm[idx] -= eps
            from repro.nn.rope import RoPEFn

            up = (RoPEFn().forward(xp, np.array([1, 5, 9])) ** 2).sum()
            dn = (RoPEFn().forward(xm, np.array([1, 5, 9])) ** 2).sum()
            fd = (up - dn) / (2 * eps)
            assert x.grad[idx] == pytest.approx(fd, rel=1e-5)


class TestModelIntegration:
    def test_rope_model_has_position_sensitivity(self):
        """Without learned positions, RoPE must still make the model
        order-sensitive: permuting the prompt changes the last logits."""
        model = TransformerLM(rope_cfg())
        ids = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        a = model.logits(ids).data[-1]
        b = model.logits(ids[::-1].copy()).data[-1]
        assert not np.allclose(a, b)

    def test_rope_model_trains(self):
        model = TransformerLM(rope_cfg())
        opt = Adam(model.parameters(), lr=3e-3)
        ids = RNG.integers(0, 32, size=32)
        targets = np.roll(ids, -1)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.85

    def test_odd_head_dim_rejected_at_block(self):
        with pytest.raises(ValueError, match="even head"):
            TransformerLM(rope_cfg(dim=6, n_heads=2))  # head_dim 3


class TestDistributedRoPE:
    def test_distributed_rope_matches_local(self):
        ids = RNG.integers(0, 32, size=32)
        targets = np.roll(ids, -1)
        ckpt = CheckpointPolicy(CheckpointMode.NONE)

        local = TransformerLM(rope_cfg(checkpoint=ckpt))
        loss_ref = local(ids, targets)
        loss_ref.backward()
        # pos_emb is unused under RoPE: its grad stays None in both models
        ref = {
            n: (p.grad.copy() if p.grad is not None else None)
            for n, p in local.named_parameters()
        }

        engine = BurstEngine(
            EngineConfig(model=rope_cfg(), checkpoint=ckpt, fsdp=False),
            topology=make_cluster(8, node=a800_node(gpus_per_node=4)),
        )
        loss = engine.model(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-10)
        for name, p in engine.model.named_parameters():
            if ref[name] is None:
                assert p.grad is None, name
                continue
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-8,
                                       atol=1e-10, err_msg=name)

    def test_rope_with_gqa_and_checkpointing(self):
        ids = RNG.integers(0, 32, size=32)
        engine = BurstEngine(
            EngineConfig(model=rope_cfg(n_heads=4, n_kv_heads=2)),
            topology=make_cluster(4, node=a800_node(gpus_per_node=4)),
        )
        losses = engine.train(ids, np.roll(ids, -1), steps=5)
        assert losses[-1] < losses[0]
