"""Tests for the synthetic long-context tasks, including the integration
test that a model trained through the full distributed stack actually
*acquires* long-range recall."""

import numpy as np
import pytest

from repro.data import (
    copy_task,
    copy_task_recall_positions,
    lm_task,
    needle_task,
    recall_accuracy,
)
from repro.engine import BurstEngine, EngineConfig
from repro.nn import TransformerConfig
from repro.topology import a800_node, make_cluster


class TestGenerators:
    def test_copy_task_structure(self):
        ids, targets = copy_task(16, vocab=8, seed=1)
        np.testing.assert_array_equal(ids[:8], ids[8:])
        np.testing.assert_array_equal(targets[:-1], ids[1:])

    def test_copy_task_validation(self):
        with pytest.raises(ValueError):
            copy_task(15, 8)
        with pytest.raises(ValueError):
            copy_task(16, 1)

    def test_copy_task_deterministic_by_seed(self):
        a, _ = copy_task(16, 8, seed=3)
        b, _ = copy_task(16, 8, seed=3)
        c, _ = copy_task(16, 8, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_recall_positions_in_copy_region(self):
        pos = copy_task_recall_positions(16)
        assert pos.min() == 8 and pos.max() == 14

    def test_needle_task_structure(self):
        ids, targets, value = needle_task(32, vocab=16, needle_pos=3, seed=0)
        key = 15
        assert ids[3] == key and ids[4] == value
        assert ids[-1] == key
        assert targets[-1] == value

    def test_needle_task_validation(self):
        with pytest.raises(ValueError):
            needle_task(32, 2)
        with pytest.raises(ValueError):
            needle_task(32, 16, needle_pos=31)

    def test_lm_task_is_learnable_markov(self):
        ids, targets = lm_task(512, vocab=6, order=1, seed=0)
        # order-1 with 90% determinism: the same context mostly repeats
        # its preferred successor
        from collections import Counter, defaultdict

        succ = defaultdict(Counter)
        for a, b in zip(ids[:-1], ids[1:]):
            succ[int(a)][int(b)] += 1
        top_frac = np.mean([
            c.most_common(1)[0][1] / sum(c.values()) for c in succ.values()
        ])
        assert top_frac > 0.6

    def test_lm_task_validation(self):
        with pytest.raises(ValueError):
            lm_task(16, 4, order=0)


class TestLongRangeLearning:
    def test_model_learns_copy_task_through_distributed_stack(self):
        """End-to-end: BurstEngine training on the copy task raises recall
        accuracy in the copy region far above chance."""
        vocab = 16
        seq = 32
        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        engine = BurstEngine(
            EngineConfig(
                model=TransformerConfig(
                    vocab_size=vocab, dim=32, n_layers=2, n_heads=4,
                    ffn_hidden=48, max_seq_len=seq, attn_block_size=16,
                ),
                lr=5e-3,
            ),
            topology=topo,
        )
        ids, targets = copy_task(seq, vocab, seed=7)
        positions = copy_task_recall_positions(seq)
        before = recall_accuracy(engine.model, ids, targets, positions)
        for _ in range(60):
            engine.train_step(ids, targets)
        after = recall_accuracy(engine.model, ids, targets, positions)
        assert after > max(before, 2.0 / vocab) + 0.4
        assert after > 0.8
