"""CLI smoke tests: the harness entry points behave as documented.

Exit codes are part of the contract — CI wires these commands directly,
so 0-on-pass / 1-on-injected-failure is asserted through real subprocess
invocations, PYTHONPATH and all.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=600,
    )


class TestVerifyCLI:
    def test_single_method_passes(self):
        proc = run_cli("repro.attention.verify", "burst")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "[PASS] burst" in proc.stdout


class TestFuzzCLI:
    def test_smoke_sweep_exits_zero(self):
        proc = run_cli("repro.testing.fuzz", "--smoke", "--seed", "0",
                       "--budget", "6", "--quiet")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 failure(s)" in proc.stdout

    def test_injected_fault_exits_one_with_repro(self):
        proc = run_cli("repro.testing.fuzz", "--smoke", "--seed", "0",
                       "--budget", "2", "--fault", "corrupt", "--quiet")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "repro: python -m repro.testing.fuzz --case" in proc.stdout

    def test_case_replay_round_trip(self):
        """A repro line printed by the fuzzer replays to the same verdict."""
        proc = run_cli("repro.testing.fuzz", "--smoke", "--seed", "0",
                       "--budget", "2", "--fault", "drop", "--quiet")
        assert proc.returncode == 1
        repro_line = next(
            line for line in proc.stdout.splitlines() if "repro:" in line
        )
        spec = repro_line.split('"')[1]
        replay = run_cli("repro.testing.fuzz", "--case", spec,
                         "--fault", "drop")
        assert replay.returncode == 1, replay.stdout + replay.stderr
        # and without the fault the same case is clean
        clean = run_cli("repro.testing.fuzz", "--case", spec)
        assert clean.returncode == 0, clean.stdout + clean.stderr

    def test_unknown_fault_rejected(self):
        proc = run_cli("repro.testing.fuzz", "--fault", "gamma-ray")
        assert proc.returncode == 2  # argparse usage error


class TestGoldenCLI:
    def test_check_passes_against_fixtures(self):
        proc = run_cli("repro.testing.golden", "burst", "ulysses")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "[PASS] golden burst" in proc.stdout

    def test_update_writes_to_alternate_dir(self, tmp_path):
        proc = run_cli("repro.testing.golden", "burst", "--update",
                       "--dir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert (tmp_path / "burst.npz").exists()
