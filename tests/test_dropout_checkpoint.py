"""Dropout x checkpointing: the RNG-replay machinery must make recomputed
dropout masks identical, or gradients are silently wrong."""

import numpy as np
import pytest

from repro.nn import Adam, CheckpointPolicy, TransformerConfig, TransformerLM
from repro.nn.checkpoint import CheckpointMode
from repro.nn.rng import current_rng, draw_seed, scoped_rng, set_seed


def drop_cfg(**kw):
    base = dict(vocab_size=32, dim=16, n_layers=2, n_heads=2, ffn_hidden=24,
                max_seq_len=32, attn_block_size=16, seed=9, dropout_p=0.2)
    base.update(kw)
    return TransformerConfig(**base)


class TestRNGScoping:
    def test_scoped_rng_is_deterministic(self):
        with scoped_rng(42):
            a = current_rng().random(5)
        with scoped_rng(42):
            b = current_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_nested_scopes(self):
        with scoped_rng(1):
            with scoped_rng(2):
                inner = current_rng().random()
            outer = current_rng().random()
        with scoped_rng(2):
            assert current_rng().random() == inner
        assert outer != inner

    def test_none_scope_is_passthrough(self):
        set_seed(123)
        with scoped_rng(None):
            a = draw_seed()
        set_seed(123)
        b = draw_seed()
        assert a == b

    def test_draw_seed_advances(self):
        set_seed(0)
        assert draw_seed() != draw_seed()


class TestDropoutModel:
    def test_eval_mode_is_deterministic(self):
        model = TransformerLM(drop_cfg()).eval()
        ids = np.arange(16) % 32
        a = model.logits(ids).data
        b = model.logits(ids).data
        np.testing.assert_array_equal(a, b)

    def test_train_mode_is_stochastic(self):
        set_seed(7)
        model = TransformerLM(drop_cfg())
        ids = np.arange(16) % 32
        targets = np.roll(ids, -1)
        a = model(ids, targets).item()
        b = model(ids, targets).item()
        assert a != b  # different masks drawn from the global stream

    def test_train_eval_recursive_flag(self):
        model = TransformerLM(drop_cfg())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    @pytest.mark.parametrize(
        "policy",
        [CheckpointMode.FULL, CheckpointMode.SELECTIVE_PP,
         CheckpointMode.SEQUENCE_LEVEL],
        ids=lambda m: m.value,
    )
    def test_checkpointed_dropout_matches_plain(self, policy):
        """Same global seed => identical loss AND gradients whether or not
        the layer is checkpointed: recompute replays the masks exactly."""
        ids = np.arange(24) % 32
        targets = np.roll(ids, -1)

        set_seed(1234)
        plain = TransformerLM(drop_cfg(checkpoint=CheckpointPolicy(CheckpointMode.NONE)))
        loss_ref = plain(ids, targets)
        loss_ref.backward()
        ref = {n: p.grad.copy() for n, p in plain.named_parameters()}

        set_seed(1234)
        ckpt = TransformerLM(drop_cfg(checkpoint=CheckpointPolicy(policy, 0.5)))
        loss = ckpt(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-12)
        for name, p in ckpt.named_parameters():
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-9,
                                       atol=1e-11, err_msg=f"{policy}:{name}")

    def test_dropout_model_trains(self):
        set_seed(5)
        model = TransformerLM(drop_cfg(dropout_p=0.1))
        opt = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 32, size=24)
        targets = np.roll(ids, -1)
        first = last = None
        for i in range(25):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            if i == 0:
                first = loss.item()
            last = loss.item()
        assert last < first

    def test_invalid_dropout_p(self):
        with pytest.raises(ValueError):
            TransformerLM(drop_cfg(dropout_p=1.0))
