"""Tests for the vocab-parallel fused LM head."""

import numpy as np
import pytest

from repro.comm import SimCommunicator
from repro.lmhead import naive_lm_head_loss
from repro.lmhead.distributed import (
    shard_vocab,
    vocab_parallel_fused_loss,
    vocab_parallel_head_result,
)
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(55)
TOPO = make_cluster(4, node=a800_node(gpus_per_node=4))


def make_case(n=40, d=8, v=32):
    h = RNG.normal(size=(n, d))
    w = RNG.normal(size=(v, d)) * 0.3
    y = RNG.integers(0, v, size=n)
    return h, w, y


class TestSharding:
    def test_shard_vocab_shapes(self):
        w = RNG.normal(size=(32, 8))
        shards = shard_vocab(w, 4)
        assert len(shards) == 4 and shards[0].shape == (8, 8)
        np.testing.assert_array_equal(np.concatenate(shards), w)

    def test_indivisible_vocab_rejected(self):
        with pytest.raises(ValueError):
            shard_vocab(RNG.normal(size=(30, 8)), 4)

    def test_wrong_shard_count_rejected(self):
        h, w, y = make_case()
        comm = SimCommunicator(TOPO)
        with pytest.raises(ValueError):
            vocab_parallel_fused_loss(comm, h, shard_vocab(w, 2), y)


class TestNumerics:
    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    def test_matches_single_device_fused_head(self, reduction):
        h, w, y = make_case()
        comm = SimCommunicator(TOPO)
        res = vocab_parallel_head_result(comm, h, w, y, reduction=reduction,
                                         block_seq=16)
        ref = naive_lm_head_loss(h, w, y, reduction=reduction)
        assert res.loss == pytest.approx(ref.loss, rel=1e-12)
        np.testing.assert_allclose(res.dh, ref.dh, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(res.dw, ref.dw, rtol=1e-10, atol=1e-12)

    def test_targets_on_every_shard(self):
        """Targets spanning all vocab shards are each handled by exactly
        one rank's correction term."""
        h, w, _ = make_case(n=8, v=32)
        y = np.array([0, 8, 16, 24, 7, 15, 23, 31])  # two per shard
        comm = SimCommunicator(TOPO)
        res = vocab_parallel_head_result(comm, h, w, y, block_seq=4)
        ref = naive_lm_head_loss(h, w, y)
        assert res.loss == pytest.approx(ref.loss, rel=1e-12)
        np.testing.assert_allclose(res.dw, ref.dw, rtol=1e-10, atol=1e-12)

    def test_communication_independent_of_vocab(self):
        """The point of vocab parallelism: comm volume scales with N and
        N*d, never with v."""
        volumes = {}
        for v in (32, 128):
            h, w, y = make_case(n=24, d=8, v=v)
            comm = SimCommunicator(TOPO)
            vocab_parallel_head_result(comm, h, w, y, block_seq=8)
            volumes[v] = comm.log.total_elems(phase="lmhead")
        assert volumes[32] == volumes[128]

    def test_temp_memory_scales_with_shard(self):
        h, w, y = make_case(v=32)
        comm = SimCommunicator(TOPO)
        res = vocab_parallel_head_result(comm, h, w, y, block_seq=8)
        # one seq block x one vocab shard (32/4 = 8 columns)
        assert res.stats.peak_temp_bytes == 8 * 8 * 8


class TestEngineIntegration:
    def test_engine_with_vocab_parallel_head_matches_fused(self):
        """Full engine step with the vocab-sharded head: identical loss and
        gradients to the replicated fused head."""
        from repro.engine import BurstEngine, EngineConfig
        from repro.nn import CheckpointPolicy, TransformerConfig
        from repro.nn.checkpoint import CheckpointMode

        cfg = TransformerConfig(
            vocab_size=64, dim=16, n_layers=2, n_heads=2, ffn_hidden=24,
            max_seq_len=32, attn_block_size=16, seed=3,
        )
        ids = RNG.integers(0, 64, size=32)
        targets = np.roll(ids, -1)
        ckpt = CheckpointPolicy(CheckpointMode.NONE)

        ref_engine = BurstEngine(
            EngineConfig(model=cfg, head_impl="fused", checkpoint=ckpt,
                         fsdp=False), topology=TOPO)
        loss_ref = ref_engine.model(ids, targets)
        loss_ref.backward()
        ref = {n: p.grad.copy() for n, p in ref_engine.model.named_parameters()}

        vp_engine = BurstEngine(
            EngineConfig(model=cfg, head_impl="vocab-parallel",
                         checkpoint=ckpt, fsdp=False), topology=TOPO)
        loss = vp_engine.model(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-12)
        for name, p in vp_engine.model.named_parameters():
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-9,
                                       atol=1e-11, err_msg=name)
        # and the head's collectives were logged
        assert vp_engine.comm.log.total_elems(phase="lmhead") > 0

    def test_engine_vocab_parallel_trains(self):
        from repro.engine import BurstEngine, EngineConfig
        from repro.nn import TransformerConfig

        cfg = TransformerConfig(
            vocab_size=64, dim=16, n_layers=1, n_heads=2, ffn_hidden=24,
            max_seq_len=32, attn_block_size=16,
        )
        engine = BurstEngine(
            EngineConfig(model=cfg, head_impl="vocab-parallel", lr=3e-3),
            topology=TOPO,
        )
        ids = RNG.integers(0, 64, size=32)
        losses = engine.train(ids, np.roll(ids, -1), steps=8)
        assert losses[-1] < losses[0]

    def test_engine_vocab_divisibility_validated(self):
        from repro.engine import BurstEngine, EngineConfig
        from repro.nn import TransformerConfig

        cfg = TransformerConfig(
            vocab_size=61, dim=16, n_layers=1, n_heads=2, ffn_hidden=24,
            max_seq_len=32, attn_block_size=16,
        )
        with pytest.raises(ValueError, match="vocab-parallel"):
            BurstEngine(EngineConfig(model=cfg, head_impl="vocab-parallel"),
                        topology=TOPO)
