"""Property tests: the O(1) `tile_state` fast paths must never contradict
the dense tile.

`empty` and `full` verdicts gate real behaviour (skipped compute, dropped
mask handling), so they must be *exact*; `partial` is always safe.  These
tests draw random index sets and check every verdict against the
materialised tile.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.masks import BlockSparseMask, CausalMask, SlidingWindowMask


def classify_dense(mask, q_idx, k_idx) -> str:
    tile = mask.block(q_idx, k_idx)
    if tile.all():
        return "full"
    if not tile.any():
        return "empty"
    return "partial"


def check_consistency(mask, q_idx, k_idx) -> None:
    fast = mask.tile_state(q_idx, k_idx)
    exact = classify_dense(mask, q_idx, k_idx)
    if fast == "full":
        assert exact == "full"
    elif fast == "empty":
        assert exact == "empty"
    # 'partial' is conservative: any exact verdict is acceptable


idx_sets = st.lists(
    st.integers(0, 63), min_size=1, max_size=8, unique=True
).map(lambda xs: np.array(sorted(xs)))


class TestFastPathSoundness:
    @settings(deadline=None, max_examples=60)
    @given(q_idx=idx_sets, k_idx=idx_sets)
    def test_causal(self, q_idx, k_idx):
        check_consistency(CausalMask(), q_idx, k_idx)

    @settings(deadline=None, max_examples=60)
    @given(q_idx=idx_sets, k_idx=idx_sets, window=st.integers(1, 80))
    def test_sliding_window(self, q_idx, k_idx, window):
        check_consistency(SlidingWindowMask(window), q_idx, k_idx)

    @settings(deadline=None, max_examples=40)
    @given(
        q_idx=idx_sets,
        k_idx=idx_sets,
        seed=st.integers(0, 1000),
        causal=st.booleans(),
    )
    def test_block_sparse(self, q_idx, k_idx, seed, causal):
        rng = np.random.default_rng(seed)
        bm = rng.random((8, 8)) > 0.4
        mask = BlockSparseMask(8, bm, intra_block_causal=causal)
        check_consistency(mask, q_idx, k_idx)

    def test_fastpath_catches_the_common_shard_cases(self):
        """The cases the distributed layer relies on must be *exact*, not
        merely conservative: contiguous shards under causal masking."""
        m = CausalMask()
        assert m.tile_state(np.arange(32, 40), np.arange(0, 8)) == "full"
        assert m.tile_state(np.arange(0, 8), np.arange(32, 40)) == "empty"
        assert m.tile_state(np.arange(0, 8), np.arange(0, 8)) == "partial"

    def test_window_fastpath_exact_for_contiguous_shards(self):
        m = SlidingWindowMask(8)
        assert m.tile_state(np.arange(16, 24), np.arange(16, 24)) == "partial"
        assert m.tile_state(np.arange(16, 24), np.arange(0, 8)) == "empty"
        # perfectly inside the window
        assert m.tile_state(np.array([20]), np.array([16, 17])) == "full"


class TestTilePlanClassification:
    """TilePlan.build is just tile_state applied per sub-tile, so its
    state grid must carry the same soundness guarantee: FULL/EMPTY
    verdicts are exact against the dense tile, PARTIAL is conservative."""

    @staticmethod
    def check_plan(mask, q_idx, k_idx, block_q, block_k):
        from repro.kernels import EMPTY, FULL, TilePlan

        plan = TilePlan.build(mask, q_idx, k_idx, block_q, block_k)
        for i in range(plan.n_q_blocks):
            q0, q1 = plan.q_range(i)
            for j in range(plan.n_k_blocks):
                k0, k1 = plan.k_range(j)
                exact = classify_dense(mask, q_idx[q0:q1], k_idx[k0:k1])
                state = plan.state(i, j)
                if state == FULL:
                    assert exact == "full"
                elif state == EMPTY:
                    assert exact == "empty"
                # PARTIAL: any exact verdict is acceptable

    @settings(deadline=None, max_examples=40)
    @given(
        q_idx=idx_sets, k_idx=idx_sets,
        block_q=st.sampled_from([2, 3, 5]),
        block_k=st.sampled_from([2, 3, 5]),
    )
    def test_causal_plan(self, q_idx, k_idx, block_q, block_k):
        self.check_plan(CausalMask(), q_idx, k_idx, block_q, block_k)

    @settings(deadline=None, max_examples=40)
    @given(
        q_idx=idx_sets, k_idx=idx_sets, window=st.integers(1, 80),
        block_q=st.sampled_from([2, 3, 5]),
        block_k=st.sampled_from([2, 3, 5]),
    )
    def test_window_plan(self, q_idx, k_idx, window, block_q, block_k):
        self.check_plan(
            SlidingWindowMask(window), q_idx, k_idx, block_q, block_k
        )

    @settings(deadline=None, max_examples=30)
    @given(
        q_idx=idx_sets, k_idx=idx_sets, seed=st.integers(0, 1000),
        causal=st.booleans(),
        block_q=st.sampled_from([2, 3, 5]),
        block_k=st.sampled_from([2, 3, 5]),
    )
    def test_block_sparse_plan(
        self, q_idx, k_idx, seed, causal, block_q, block_k
    ):
        rng = np.random.default_rng(seed)
        bm = rng.random((8, 8)) > 0.4
        mask = BlockSparseMask(8, bm, intra_block_causal=causal)
        self.check_plan(mask, q_idx, k_idx, block_q, block_k)

    def test_contiguous_shard_plan_is_exact(self):
        """The bread-and-butter case: a contiguous causal shard pair must
        classify with zero conservatism — every tile verdict exact."""
        from repro.kernels import PARTIAL, TilePlan

        idx = np.arange(64)
        plan = TilePlan.build(CausalMask(), idx, idx, 16, 16)
        for i in range(plan.n_q_blocks):
            for j in range(plan.n_k_blocks):
                q0, q1 = plan.q_range(i)
                k0, k1 = plan.k_range(j)
                exact = classify_dense(CausalMask(), idx[q0:q1], idx[k0:k1])
                got = plan.state(i, j)
                want = {"empty": 0, "partial": PARTIAL, "full": 2}[exact]
                assert got == want, (i, j, exact, got)
