"""Property tests: the O(1) `tile_state` fast paths must never contradict
the dense tile.

`empty` and `full` verdicts gate real behaviour (skipped compute, dropped
mask handling), so they must be *exact*; `partial` is always safe.  These
tests draw random index sets and check every verdict against the
materialised tile.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.masks import BlockSparseMask, CausalMask, SlidingWindowMask


def classify_dense(mask, q_idx, k_idx) -> str:
    tile = mask.block(q_idx, k_idx)
    if tile.all():
        return "full"
    if not tile.any():
        return "empty"
    return "partial"


def check_consistency(mask, q_idx, k_idx) -> None:
    fast = mask.tile_state(q_idx, k_idx)
    exact = classify_dense(mask, q_idx, k_idx)
    if fast == "full":
        assert exact == "full"
    elif fast == "empty":
        assert exact == "empty"
    # 'partial' is conservative: any exact verdict is acceptable


idx_sets = st.lists(
    st.integers(0, 63), min_size=1, max_size=8, unique=True
).map(lambda xs: np.array(sorted(xs)))


class TestFastPathSoundness:
    @settings(deadline=None, max_examples=60)
    @given(q_idx=idx_sets, k_idx=idx_sets)
    def test_causal(self, q_idx, k_idx):
        check_consistency(CausalMask(), q_idx, k_idx)

    @settings(deadline=None, max_examples=60)
    @given(q_idx=idx_sets, k_idx=idx_sets, window=st.integers(1, 80))
    def test_sliding_window(self, q_idx, k_idx, window):
        check_consistency(SlidingWindowMask(window), q_idx, k_idx)

    @settings(deadline=None, max_examples=40)
    @given(
        q_idx=idx_sets,
        k_idx=idx_sets,
        seed=st.integers(0, 1000),
        causal=st.booleans(),
    )
    def test_block_sparse(self, q_idx, k_idx, seed, causal):
        rng = np.random.default_rng(seed)
        bm = rng.random((8, 8)) > 0.4
        mask = BlockSparseMask(8, bm, intra_block_causal=causal)
        check_consistency(mask, q_idx, k_idx)

    def test_fastpath_catches_the_common_shard_cases(self):
        """The cases the distributed layer relies on must be *exact*, not
        merely conservative: contiguous shards under causal masking."""
        m = CausalMask()
        assert m.tile_state(np.arange(32, 40), np.arange(0, 8)) == "full"
        assert m.tile_state(np.arange(0, 8), np.arange(32, 40)) == "empty"
        assert m.tile_state(np.arange(0, 8), np.arange(0, 8)) == "partial"

    def test_window_fastpath_exact_for_contiguous_shards(self):
        m = SlidingWindowMask(8)
        assert m.tile_state(np.arange(16, 24), np.arange(16, 24)) == "partial"
        assert m.tile_state(np.arange(16, 24), np.arange(0, 8)) == "empty"
        # perfectly inside the window
        assert m.tile_state(np.array([20]), np.array([16, 17])) == "full"
