"""Cross-cutting property-based tests (hypothesis).

These stress the core invariants on randomly drawn configurations:
topology shapes, masks, partitions, DES task graphs, and the memory
model's monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.burst import burst_attention_backward
from repro.attention.ring import ring_attention_backward_kv, ring_attention_forward
from repro.attention.verify import verify_method
from repro.comm import SimCommunicator, double_ring_schedule, global_ring_schedule
from repro.masks import CausalMask, SlidingWindowMask
from repro.models import LLAMA_7B
from repro.partition import StripedPartitioner, ZigzagPartitioner
from repro.perf.des import Simulator
from repro.perf.memory import MemoryModel, TrainingSetup
from repro.topology import a800_node, make_cluster


topo_shapes = st.sampled_from([(1, 4), (2, 2), (2, 4), (4, 2), (3, 3)])


class TestScheduleProperties:
    @settings(deadline=None, max_examples=10)
    @given(shape=topo_shapes)
    def test_double_ring_is_complete_cover(self, shape):
        nodes, gpn = shape
        topo = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        sched = double_ring_schedule(topo)
        sched.validate()
        origins = sched.origins()
        g = topo.world_size
        for rank in range(g):
            assert sorted(origins[t][rank] for t in range(g)) == list(range(g))

    @settings(deadline=None, max_examples=10)
    @given(shape=topo_shapes)
    def test_return_permutation_is_permutation(self, shape):
        nodes, gpn = shape
        topo = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        for sched in (global_ring_schedule(topo), double_ring_schedule(topo)):
            perm = sched.return_permutation()
            assert sorted(perm) == list(range(topo.world_size))

    @settings(deadline=None, max_examples=8)
    @given(shape=topo_shapes, seed=st.integers(0, 100))
    def test_ring_buffers_return_home(self, shape, seed):
        """After all transitions + the return permutation, every buffer is
        back at its owner — the invariant Algorithms 1 and 2 rely on."""
        nodes, gpn = shape
        topo = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        comm = SimCommunicator(topo)
        sched = double_ring_schedule(topo)
        g = topo.world_size
        bufs = [np.array([float(r)]) for r in range(g)]
        for t in range(len(sched.transitions)):
            bufs = sched.apply(comm, bufs, t, phase="p")
        bufs = comm.exchange(bufs, sched.return_permutation(), phase="p")
        for r in range(g):
            assert bufs[r][0] == float(r)


class TestAlgorithmEquivalenceProperty:
    @settings(deadline=None, max_examples=6)
    @given(
        seed=st.integers(0, 2**16),
        window=st.sampled_from([None, 8, 24]),
        heads=st.sampled_from([1, 2]),
    )
    def test_alg1_equals_alg2_random_problems(self, seed, window, heads):
        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        g = 4
        n, d = 32, 4
        rng = np.random.default_rng(seed)
        q, k, v, do = (rng.normal(size=(heads, n, d)) for _ in range(4))
        mask = SlidingWindowMask(window) if window else CausalMask()
        part = StripedPartitioner()
        idxs = part.indices(n, g)
        sh = lambda x: part.scatter(x, g)
        comm = SimCommunicator(topo)
        sched = global_ring_schedule(topo)
        os, lses = ring_attention_forward(
            comm, sched, sh(q), sh(k), sh(v), idxs, mask=mask, block_size=8
        )
        out1 = ring_attention_backward_kv(
            comm, sched, sh(q), sh(k), sh(v), os, lses, sh(do), idxs,
            mask=mask, block_size=8)
        out2 = burst_attention_backward(
            comm, sched, sh(q), sh(k), sh(v), os, lses, sh(do), idxs,
            mask=mask, block_size=8)
        for a_list, b_list in zip(out1, out2):
            for a, b in zip(a_list, b_list):
                np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    @settings(deadline=None, max_examples=5)
    @given(
        method=st.sampled_from(["burst", "megatron-cp", "loongtrain-double"]),
        seed=st.integers(0, 1000),
    )
    def test_verify_method_random_seeds(self, method, seed):
        report = verify_method(method, num_gpus=4, gpus_per_node=2,
                               seq_len=32, n_heads=4, seed=seed)
        assert report.passed, report.summary()

    # Bounded example budgets keep these inside the tier-1 time envelope
    # while still sweeping the awkward corners: sequence lengths that are
    # odd multiples of the shard size, and grouped-query head ratios.

    @settings(deadline=None, max_examples=6)
    @given(
        method=st.sampled_from(["burst", "megatron-cp", "loongtrain-double"]),
        shape=st.sampled_from([(1, 2), (1, 3), (2, 2)]),
        mult=st.sampled_from([1, 3, 5]),  # uneven: 3x and 5x the min shard
        mask=st.sampled_from(["causal", "swa", "full"]),
        seed=st.integers(0, 500),
    )
    def test_verify_uneven_sequence_lengths(self, method, shape, mult, mask,
                                            seed):
        nodes, gpn = shape
        g = nodes * gpn
        report = verify_method(
            method, num_gpus=g, gpus_per_node=gpn, seq_len=2 * g * mult,
            n_heads=2, head_dim=4, mask=mask, seed=seed, block_size=8,
        )
        assert report.passed, report.summary()

    @settings(deadline=None, max_examples=6)
    @given(
        method=st.sampled_from(["burst", "megatron-cp", "loongtrain-double"]),
        heads=st.sampled_from([(2, 1), (4, 2), (4, 1), (6, 3), (6, 2)]),
        mask=st.sampled_from(["causal", "full"]),
        seed=st.integers(0, 500),
    )
    def test_verify_gqa_head_ratios(self, method, heads, mask, seed):
        n_heads, n_kv_heads = heads
        report = verify_method(
            method, num_gpus=4, gpus_per_node=2, seq_len=32,
            n_heads=n_heads, n_kv_heads=n_kv_heads, head_dim=4, mask=mask,
            seed=seed, block_size=8,
        )
        assert report.passed, report.summary()

    # The same awkward corners under bidirectional transport: the mode must
    # stay correct (and bitwise equal to unidirectional) for sequence
    # lengths that are odd multiples of the shard and for GQA head ratios,
    # not just on the aligned configurations the pinned tests use.

    @settings(deadline=None, max_examples=6)
    @given(
        method=st.sampled_from(["burst", "megatron-cp", "loongtrain-double"]),
        shape=st.sampled_from([(1, 2), (1, 3), (2, 2)]),
        mult=st.sampled_from([1, 3, 5]),
        mask=st.sampled_from(["causal", "swa", "full"]),
        seed=st.integers(0, 500),
    )
    def test_verify_uneven_sequence_lengths_bidirectional(
        self, method, shape, mult, mask, seed
    ):
        nodes, gpn = shape
        g = nodes * gpn
        report = verify_method(
            method, num_gpus=g, gpus_per_node=gpn, seq_len=2 * g * mult,
            n_heads=2, head_dim=4, mask=mask, seed=seed, block_size=8,
            ring_mode="bidirectional",
        )
        assert report.passed, report.summary()

    @settings(deadline=None, max_examples=6)
    @given(
        method=st.sampled_from(["burst", "megatron-cp", "loongtrain-double"]),
        heads=st.sampled_from([(2, 1), (4, 2), (4, 1), (6, 3), (6, 2)]),
        mask=st.sampled_from(["causal", "full"]),
        seed=st.integers(0, 500),
    )
    def test_verify_gqa_head_ratios_bidirectional(self, method, heads, mask,
                                                  seed):
        n_heads, n_kv_heads = heads
        report = verify_method(
            method, num_gpus=4, gpus_per_node=2, seq_len=32,
            n_heads=n_heads, n_kv_heads=n_kv_heads, head_dim=4, mask=mask,
            seed=seed, block_size=8, ring_mode="bidirectional",
        )
        assert report.passed, report.summary()


class TestCollectiveProperties:
    @settings(deadline=None, max_examples=10)
    @given(shape=topo_shapes, seed=st.integers(0, 1000))
    def test_all_gather_reduce_scatter_duality(self, shape, seed):
        """reduce_scatter of all-gathered shards recovers G * shard."""
        nodes, gpn = shape
        topo = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        comm = SimCommunicator(topo)
        g = topo.world_size
        rng = np.random.default_rng(seed)
        shards = [rng.normal(size=(2,)) for _ in range(g)]
        gathered = comm.all_gather(shards, phase="t")
        contributions = [
            [gathered[r][2 * j : 2 * j + 2] for j in range(g)] for r in range(g)
        ]
        out = comm.reduce_scatter(contributions, phase="t")
        for j in range(g):
            np.testing.assert_allclose(out[j], g * shards[j], rtol=1e-12)

    @settings(deadline=None, max_examples=10)
    @given(shape=topo_shapes, seed=st.integers(0, 1000))
    def test_all_to_all_involution(self, shape, seed):
        """Applying all-to-all twice returns every chunk to its origin."""
        nodes, gpn = shape
        topo = make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))
        comm = SimCommunicator(topo)
        g = topo.world_size
        rng = np.random.default_rng(seed)
        chunks = [[rng.normal(size=(2,)) for _ in range(g)] for _ in range(g)]
        once = comm.all_to_all(chunks, phase="t")
        twice = comm.all_to_all(once, phase="t")
        for r in range(g):
            for j in range(g):
                np.testing.assert_array_equal(twice[r][j], chunks[r][j])


class TestDESProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8),
        share_resource=st.booleans(),
        seed=st.integers(0, 100),
    )
    def test_makespan_bounds(self, durations, share_resource, seed):
        """makespan >= critical path AND >= per-resource total load;
        for a single shared resource makespan == sum of durations."""
        rng = np.random.default_rng(seed)
        sim = Simulator()
        prev = None
        for i, dur in enumerate(durations):
            res = ("r",) if share_resource else (f"r{i}",)
            deps = []
            if prev is not None and rng.random() < 0.5:
                deps = [prev]
            sim.add(f"t{i}", dur, resources=res, deps=deps)
            prev = f"t{i}"
        makespan = sim.run()
        assert makespan >= sim.critical_path_lower_bound() - 1e-9
        if share_resource:
            assert makespan == pytest.approx(sum(durations), rel=1e-9, abs=1e-9)

    @settings(deadline=None, max_examples=10)
    @given(n=st.integers(1, 6), ta=st.floats(0.1, 5), tb=st.floats(0.1, 5))
    def test_two_stage_pipeline_formula(self, n, ta, tb):
        sim = Simulator()
        for i in range(n):
            deps_a = [f"a{i-1}"] if i else []
            sim.add(f"a{i}", ta, resources=["A"], deps=deps_a)
            sim.add(f"b{i}", tb, resources=["B"], deps=[f"a{i}"] + ([f"b{i-1}"] if i else []))
        expected = ta + max((n - 1) * ta, (n - 1) * tb) + tb
        assert sim.run() == pytest.approx(expected, rel=1e-9)


class TestMemoryModelProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        seq=st.sampled_from([65536, 131072, 262144]),
        world=st.sampled_from([8, 16, 32]),
    )
    def test_activation_memory_linear_in_sequence(self, seq, world):
        mm = MemoryModel()
        a = mm.activation_bytes(TrainingSetup(model=LLAMA_7B, seq_len=seq,
                                              world=world))
        b = mm.activation_bytes(TrainingSetup(model=LLAMA_7B, seq_len=2 * seq,
                                              world=world))
        assert b == pytest.approx(2 * a, rel=1e-9)

    @settings(deadline=None, max_examples=15)
    @given(
        seq=st.sampled_from([65536, 262144]),
        world=st.sampled_from([8, 32]),
        offload=st.booleans(),
        head=st.sampled_from(["naive", "tiled", "fused"]),
    )
    def test_total_decomposes_and_positive(self, seq, world, offload, head):
        mm = MemoryModel()
        bd = mm.breakdown(TrainingSetup(
            model=LLAMA_7B, seq_len=seq, world=world,
            optimizer_offload=offload, head_mode=head,
        ))
        parts = (bd.params + bd.grads + bd.optimizer + bd.activations
                 + bd.lm_head + bd.transient)
        assert bd.total == pytest.approx(parts)
        assert bd.total > 0

    @settings(deadline=None, max_examples=10)
    @given(seq=st.sampled_from([65536, 262144]))
    def test_fused_head_never_worse(self, seq):
        mm = MemoryModel()
        fused = mm.breakdown(TrainingSetup(model=LLAMA_7B, seq_len=seq,
                                           world=8, head_mode="fused"))
        naive = mm.breakdown(TrainingSetup(model=LLAMA_7B, seq_len=seq,
                                           world=8, head_mode="naive"))
        assert fused.total <= naive.total
