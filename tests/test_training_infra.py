"""Tests for LR schedules, grad clipping, serialization, and the Trainer."""

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig
from repro.engine.trainer import Trainer
from repro.nn import Tensor, TransformerConfig, TransformerLM
from repro.nn.schedule import (
    ConstantLR,
    InverseSqrtLR,
    WarmupCosineLR,
    clip_grad_norm,
    grad_global_norm,
)
from repro.nn.serialization import load_model, save_model
from repro.topology import a800_node, make_cluster


def tiny_cfg(**kw):
    base = dict(vocab_size=32, dim=16, n_layers=1, n_heads=2, ffn_hidden=24,
                max_seq_len=32, attn_block_size=16, seed=1)
    base.update(kw)
    return TransformerConfig(**base)


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).lr_at(0) == ConstantLR(0.1).lr_at(1000) == 0.1

    def test_warmup_cosine_shape(self):
        sched = WarmupCosineLR(1.0, warmup_steps=10, total_steps=100, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(99) == pytest.approx(0.1, abs=0.01)
        # monotone up through warmup, down after
        warm = [sched.lr_at(s) for s in range(10)]
        decay = [sched.lr_at(s) for s in range(10, 100)]
        assert warm == sorted(warm)
        assert decay == sorted(decay, reverse=True)

    def test_warmup_cosine_clamps_past_total(self):
        sched = WarmupCosineLR(1.0, 5, 50, min_lr=0.2)
        assert sched.lr_at(10_000) == pytest.approx(0.2)

    def test_inverse_sqrt(self):
        sched = InverseSqrtLR(1.0, warmup_steps=4)
        peak_step = 3  # s = warmup
        assert sched.lr_at(peak_step) >= sched.lr_at(0)
        assert sched.lr_at(100) < sched.lr_at(peak_step)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            WarmupCosineLR(1.0, 10, 10)
        with pytest.raises(ValueError):
            InverseSqrtLR(1.0, warmup_steps=0)

    def test_apply_sets_optimizer_lr(self):
        from repro.nn import SGD

        p = Tensor(np.zeros(2), requires_grad=True)
        opt = SGD([p], lr=1.0)
        WarmupCosineLR(0.5, 2, 10).apply(opt, 1)
        assert opt.lr == pytest.approx(0.5)


class TestClipping:
    def test_norm_computation(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        a.grad = np.array([3.0, 0.0, 0.0])
        b.grad = np.array([0.0, 4.0, 0.0, 0.0])
        assert grad_global_norm([a, b]) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        a.grad = np.array([6.0, 8.0])  # norm 10
        pre = clip_grad_norm([a], max_norm=1.0)
        assert pre == pytest.approx(10.0)
        assert grad_global_norm([a]) == pytest.approx(1.0)

    def test_clip_leaves_small_grads(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        a.grad = np.array([0.3, 0.4])
        clip_grad_norm([a], max_norm=1.0)
        np.testing.assert_allclose(a.grad, [0.3, 0.4])

    def test_none_grads_tolerated(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        assert grad_global_norm([a]) == 0.0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "ckpt.npz")
        count = save_model(model, path)
        assert count == model.num_parameters()

        model2 = TransformerLM(tiny_cfg(seed=99))  # different init
        ids = np.arange(8) % 32
        before = model2.logits(ids).data.copy()
        load_model(model2, path)
        after = model2.logits(ids).data
        expected = model.logits(ids).data
        np.testing.assert_allclose(after, expected, rtol=1e-12)
        assert not np.allclose(before, after)

    def test_strict_shape_mismatch(self, tmp_path):
        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)
        other = TransformerLM(tiny_cfg(dim=32, ffn_hidden=48))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_model(other, path)
        skipped = load_model(other, path, strict=False)
        assert skipped  # mismatches reported, not fatal

    def test_strict_missing_param(self, tmp_path):
        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)
        bigger = TransformerLM(tiny_cfg(n_layers=2))
        with pytest.raises(KeyError):
            load_model(bigger, path)

    def test_save_is_atomic_on_crash(self, tmp_path, monkeypatch):
        """A crash mid-save must never truncate the previous checkpoint:
        the write goes to a tmp file and only an intact file is renamed
        over the target."""
        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "best.npz")
        save_model(model, path)
        good = {n: p.data.copy() for n, p in model.named_parameters()}

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            save_model(model, path)
        monkeypatch.undo()

        # The original checkpoint is intact and no tmp litter remains.
        other = TransformerLM(tiny_cfg(seed=99))
        load_model(other, path)
        for name, p in other.named_parameters():
            np.testing.assert_array_equal(p.data, good[name])
        assert [f.name for f in tmp_path.iterdir()] == ["best.npz"]

    def test_load_detects_corruption(self, tmp_path):
        """Flipping bytes in a saved checkpoint fails the manifest checksum
        with a clear error instead of loading garbage weights."""
        from repro.nn.serialization import CHECKSUM_KEY, CheckpointError

        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)

        with np.load(path) as data:
            entries = {name: data[name] for name in data.files}
        victim = next(k for k in entries if k != CHECKSUM_KEY)
        entries[victim] = entries[victim] + 1.0  # bit rot
        np.savez(path, **entries)  # keeps the stale checksum

        with pytest.raises(CheckpointError, match="checksum"):
            load_model(model, path)

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path):
        """Pre-manifest checkpoints (plain npz of parameters) still load."""
        model = TransformerLM(tiny_cfg())
        path = str(tmp_path / "legacy.npz")
        np.savez(path, **{n: p.data for n, p in model.named_parameters()})
        fresh = TransformerLM(tiny_cfg(seed=99))
        assert load_model(fresh, path) == []
        for (_, a), (_, b) in zip(sorted(model.named_parameters()),
                                  sorted(fresh.named_parameters())):
            np.testing.assert_array_equal(a.data, b.data)


class TestTrainStateSnapshot:
    def test_roundtrip_and_corruption(self, tmp_path):
        from repro.nn import Adam
        from repro.nn.serialization import (
            CheckpointError, load_train_state, save_train_state,
        )

        model = TransformerLM(tiny_cfg())
        opt = Adam(model.parameters(), lr=1e-3)
        ids = np.arange(8) % 32
        loss = model(ids, np.roll(ids, -1))
        loss.backward()
        opt.step()

        path = str(tmp_path / "state.npz")
        save_train_state(
            path, model, opt, step=1, micro=1,
            history=[{"step": 0, "loss": 3.5, "lr": 1e-3,
                      "grad_norm": 0.9, "eval_loss": None}],
            best_eval=3.5,
        )

        model2 = TransformerLM(tiny_cfg(seed=99))
        opt2 = Adam(model2.parameters(), lr=1e-3)
        meta = load_train_state(path, model2, opt2)
        assert meta["step"] == 1
        assert meta["best_eval"] == 3.5
        assert meta["history"][0]["loss"] == 3.5
        assert opt2.t == opt.t
        for a, b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(a, b)
        for (_, a), (_, b) in zip(sorted(model.named_parameters()),
                                  sorted(model2.named_parameters())):
            np.testing.assert_array_equal(a.data, b.data)

        # Model-only checkpoints are not train-state snapshots.
        model_only = str(tmp_path / "model.npz")
        save_model(model, model_only)
        with pytest.raises(CheckpointError, match="train-state"):
            load_train_state(model_only, model2, opt2)

    def test_rng_stream_roundtrip(self, tmp_path):
        from repro.nn import Adam
        from repro.nn.rng import draw_seed, get_rng_state, set_seed
        from repro.nn.serialization import load_train_state, save_train_state

        model = TransformerLM(tiny_cfg())
        opt = Adam(model.parameters(), lr=1e-3)
        set_seed(123)
        draw_seed()  # advance the stream
        expected_next = get_rng_state()
        path = str(tmp_path / "state.npz")
        save_train_state(path, model, opt, step=0)

        set_seed(999)  # scramble
        load_train_state(path, model, opt)
        assert get_rng_state() == expected_next

    def test_optimizer_kind_mismatch_rejected(self, tmp_path):
        from repro.nn import SGD, Adam
        from repro.nn.serialization import load_train_state, save_train_state

        model = TransformerLM(tiny_cfg())
        opt = Adam(model.parameters(), lr=1e-3)
        path = str(tmp_path / "state.npz")
        save_train_state(path, model, opt, step=0)
        sgd = SGD(model.parameters(), lr=1e-2)
        with pytest.raises(ValueError, match="Adam"):
            load_train_state(path, model, sgd)


class TestTrainer:
    def make_engine(self):
        return BurstEngine(
            EngineConfig(model=tiny_cfg(), lr=3e-3),
            topology=make_cluster(4, node=a800_node(gpus_per_node=4)),
        )

    def batches(self, k=2, s=16):
        rng = np.random.default_rng(0)
        out = []
        for _ in range(k):
            ids = rng.integers(0, 32, size=s)
            out.append((ids, np.roll(ids, -1)))
        return out

    def test_fit_records_history_and_learns(self):
        trainer = Trainer(self.make_engine(), clip_norm=1.0)
        history = trainer.fit(self.batches(), steps=20)
        assert len(history) == 20
        assert history[-1].loss < history[0].loss
        assert all(np.isfinite(r.grad_norm) for r in history)

    def test_schedule_applied_per_step(self):
        from repro.nn.schedule import WarmupCosineLR

        trainer = Trainer(
            self.make_engine(),
            schedule=WarmupCosineLR(1e-2, warmup_steps=5, total_steps=20),
        )
        trainer.fit(self.batches(), steps=10)
        lrs = [r.lr for r in trainer.history]
        assert lrs[:5] == sorted(lrs[:5])       # warmup rising
        assert lrs[4] == pytest.approx(1e-2)

    def test_eval_and_best_checkpoint(self, tmp_path):
        ids, targets = self.batches(k=1)[0]
        path = str(tmp_path / "best.npz")

        def eval_fn(model):
            from repro.nn.tensor import no_grad

            with no_grad():
                return model(ids, targets).item()

        trainer = Trainer(
            self.make_engine(), eval_fn=eval_fn, eval_every=5,
            checkpoint_path=path,
        )
        trainer.fit([(ids, targets)], steps=15)
        evals = [r.eval_loss for r in trainer.history if r.eval_loss is not None]
        assert len(evals) == 3
        assert trainer.best_eval == min(evals)
        import os

        assert os.path.exists(path)

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            Trainer(self.make_engine()).fit([], steps=1)

    def test_grad_accumulation_matches_mean_gradient(self):
        """One accumulated step over two micro-batches must equal a single
        step on the averaged gradient (same parameters afterwards)."""
        batches = self.batches(k=2)

        def run(accum):
            engine = self.make_engine()
            trainer = Trainer(engine, clip_norm=None, grad_accumulation=accum)
            if accum == 1:
                # manual equivalent: average grads over the two batches
                engine.optimizer.zero_grad()
                for ids, targets in batches:
                    loss = engine.model(ids, targets)
                    loss.backward(np.asarray(0.5))
                engine.optimizer.step()
            else:
                trainer.fit(batches, steps=1)
            return {n: p.data.copy() for n, p in engine.model.named_parameters()}

        manual = run(1)
        accum = run(2)
        for name in manual:
            np.testing.assert_allclose(accum[name], manual[name], rtol=1e-12,
                                       err_msg=name)

    def test_grad_accumulation_validation(self):
        trainer = Trainer(self.make_engine(), grad_accumulation=0)
        with pytest.raises(ValueError):
            trainer.fit(self.batches(), steps=1)
