"""Tests for single-device kernels: softmax/LSE, dense reference attention,
and the blockwise FlashAttention-style implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    attention_reference,
    attention_reference_backward,
    flash_attention_forward,
    flash_attention_backward,
    logsumexp,
    merge_lse,
    merge_states,
    softmax,
)
from repro.kernels.softmax import empty_state
from repro.masks import CausalMask, SlidingWindowMask


RNG = np.random.default_rng(1234)


def rand_qkv(s=32, d=8, heads=None, sk=None):
    shape_q = (s, d) if heads is None else (heads, s, d)
    sk = sk or s
    shape_k = (sk, d) if heads is None else (heads, sk, d)
    q = RNG.normal(size=shape_q)
    k = RNG.normal(size=shape_k)
    v = RNG.normal(size=shape_k)
    return q, k, v


class TestSoftmaxPrimitives:
    def test_logsumexp_matches_naive(self):
        x = RNG.normal(size=(5, 7))
        np.testing.assert_allclose(
            logsumexp(x), np.log(np.exp(x).sum(axis=-1)), rtol=1e-12
        )

    def test_logsumexp_stable_for_large_values(self):
        x = np.array([[1000.0, 1000.0]])
        assert np.isfinite(logsumexp(x)).all()

    def test_logsumexp_all_masked_row(self):
        x = np.array([[-np.inf, -np.inf], [0.0, 0.0]])
        out = logsumexp(x)
        assert np.isneginf(out[0])
        assert out[1] == pytest.approx(np.log(2.0))

    def test_softmax_rows_sum_to_one(self):
        x = RNG.normal(size=(4, 9))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-12)

    def test_softmax_fully_masked_row_is_zero(self):
        x = np.array([[-np.inf, -np.inf]])
        np.testing.assert_array_equal(softmax(x), np.zeros((1, 2)))

    def test_merge_states_equals_joint_softmax(self):
        q, k, v = rand_qkv(s=16, d=4, sk=24)
        k1, k2 = k[:10], k[10:]
        v1, v2 = v[:10], v[10:]
        o1, l1 = attention_reference(q, k1, v1)
        o2, l2 = attention_reference(q, k2, v2)
        o, lse = merge_states(o1, l1, o2, l2)
        o_ref, lse_ref = attention_reference(q, k, v)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-10)

    def test_merge_with_empty_state_is_identity(self):
        q, k, v = rand_qkv(s=8, d=4)
        o, lse = attention_reference(q, k, v)
        o0, l0 = empty_state(o.shape)
        o2, l2 = merge_states(o0, l0, o, lse)
        np.testing.assert_allclose(o2, o, rtol=1e-12)
        np.testing.assert_allclose(l2, lse, rtol=1e-12)

    def test_merge_is_commutative(self):
        q, k, v = rand_qkv(s=8, d=4, sk=16)
        o1, l1 = attention_reference(q, k[:8], v[:8])
        o2, l2 = attention_reference(q, k[8:], v[8:])
        oa, la = merge_states(o1, l1, o2, l2)
        ob, lb = merge_states(o2, l2, o1, l1)
        np.testing.assert_allclose(oa, ob, rtol=1e-12)
        np.testing.assert_allclose(la, lb, rtol=1e-12)

    @settings(deadline=None, max_examples=25)
    @given(split=st.integers(1, 23), seed=st.integers(0, 2**16))
    def test_merge_property_any_split(self, split, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(6, 4))
        k = rng.normal(size=(24, 4))
        v = rng.normal(size=(24, 4))
        o1, l1 = attention_reference(q, k[:split], v[:split])
        o2, l2 = attention_reference(q, k[split:], v[split:])
        o, lse = merge_states(o1, l1, o2, l2)
        o_ref, lse_ref = attention_reference(q, k, v)
        np.testing.assert_allclose(o, o_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-9)


class TestReferenceAttention:
    def test_matches_naive_softmax_attention(self):
        q, k, v = rand_qkv(s=12, d=4)
        scale = 1.0 / np.sqrt(4)
        s = q @ k.T * scale
        p = np.exp(s - s.max(axis=-1, keepdims=True))
        p /= p.sum(axis=-1, keepdims=True)
        o, _ = attention_reference(q, k, v)
        np.testing.assert_allclose(o, p @ v, rtol=1e-12)

    def test_causal_mask_blocks_future(self):
        q, k, v = rand_qkv(s=8, d=4)
        mask = CausalMask().dense(8)
        o, _ = attention_reference(q, k, v, mask=mask)
        # Row 0 attends only to key 0 -> output equals v[0].
        np.testing.assert_allclose(o[0], v[0], rtol=1e-12)

    def test_backward_matches_finite_differences(self):
        q, k, v = rand_qkv(s=6, d=3)
        mask = CausalMask().dense(6)
        o, lse = attention_reference(q, k, v, mask=mask)
        do = RNG.normal(size=o.shape)
        dq, dk, dv = attention_reference_backward(q, k, v, o, lse, do, mask=mask)

        def loss(q_, k_, v_):
            o_, _ = attention_reference(q_, k_, v_, mask=mask)
            return float(np.sum(o_ * do))

        eps = 1e-6
        for arr, grad, which in ((q, dq, 0), (k, dk, 1), (v, dv, 2)):
            it = np.nditer(arr, flags=["multi_index"])
            for _ in range(5):  # spot-check a few coordinates
                idx = tuple(
                    RNG.integers(0, dim) for dim in arr.shape
                )
                args = [q.copy(), k.copy(), v.copy()]
                args[which][idx] += eps
                up = loss(*args)
                args[which][idx] -= 2 * eps
                down = loss(*args)
                fd = (up - down) / (2 * eps)
                assert grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_multi_head_batching(self):
        q, k, v = rand_qkv(s=10, d=4, heads=3)
        o, lse = attention_reference(q, k, v)
        assert o.shape == (3, 10, 4)
        assert lse.shape == (3, 10)
        o0, _ = attention_reference(q[0], k[0], v[0])
        np.testing.assert_allclose(o[0], o0, rtol=1e-12)


class TestFlashAttention:
    @pytest.mark.parametrize("block", [4, 7, 16, 64])
    def test_forward_matches_reference(self, block):
        q, k, v = rand_qkv(s=33, d=8)
        o_ref, lse_ref = attention_reference(q, k, v)
        o, lse = flash_attention_forward(q, k, v, block_q=block, block_k=block)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-10)

    @pytest.mark.parametrize("mask_cls", [CausalMask, lambda: SlidingWindowMask(5)])
    def test_forward_masked_matches_reference(self, mask_cls):
        q, k, v = rand_qkv(s=29, d=4)
        mask = mask_cls().dense(29)
        o_ref, lse_ref = attention_reference(q, k, v, mask=mask)
        o, lse = flash_attention_forward(q, k, v, mask=mask, block_q=8, block_k=8)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-10)

    def test_backward_matches_reference(self):
        q, k, v = rand_qkv(s=31, d=4)
        mask = CausalMask().dense(31)
        o, lse = flash_attention_forward(q, k, v, mask=mask, block_q=8, block_k=8)
        do = RNG.normal(size=o.shape)
        dq, dk, dv = flash_attention_backward(
            q, k, v, o, lse, do, mask=mask, block_q=8, block_k=8
        )
        dq_ref, dk_ref, dv_ref = attention_reference_backward(
            q, k, v, o, lse, do, mask=mask
        )
        np.testing.assert_allclose(dq, dq_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dk, dk_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dv, dv_ref, rtol=1e-9, atol=1e-11)

    def test_sliding_window_skips_empty_tiles(self):
        # With a tiny window and aligned blocks, far-off-diagonal tiles are
        # empty and must be skipped without corrupting the result.
        q, k, v = rand_qkv(s=64, d=4)
        mask = SlidingWindowMask(4).dense(64)
        o_ref, _ = attention_reference(q, k, v, mask=mask)
        o, _ = flash_attention_forward(q, k, v, mask=mask, block_q=8, block_k=8)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)

    def test_multi_head(self):
        q, k, v = rand_qkv(s=16, d=4, heads=2)
        o_ref, _ = attention_reference(q, k, v)
        o, _ = flash_attention_forward(q, k, v, block_q=8, block_k=8)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10)

    @settings(deadline=None, max_examples=20)
    @given(
        s=st.integers(2, 40),
        d=st.sampled_from([2, 4, 8]),
        block=st.integers(2, 16),
        seed=st.integers(0, 2**16),
    )
    def test_flash_equals_reference_property(self, s, d, block, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(s, d))
        k = rng.normal(size=(s, d))
        v = rng.normal(size=(s, d))
        mask = CausalMask().dense(s)
        o_ref, lse_ref = attention_reference(q, k, v, mask=mask)
        o, lse = flash_attention_forward(
            q, k, v, mask=mask, block_q=block, block_k=block
        )
        np.testing.assert_allclose(o, o_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(lse, lse_ref, rtol=1e-9)
