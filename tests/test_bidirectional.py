"""Acceptance tests for the bidirectional ring mode.

The contract under test: ``ring_mode="bidirectional"`` changes *only* the
transport — the compute loop, visit order, online-softmax merge order, and
gradient accumulation order are untouched — so its outputs are **bitwise
identical** to the unidirectional path for every ring-family method, mask,
and head layout.  Alongside the end-to-end pins, this file unit-tests the
schedule primitives the mode is built from (the reverse seed permutation,
the forward/reverse split, :class:`BidirectionalFlow` delivery timing) and
the differential-test plumbing (``FuzzCase.ring_mode`` round-trip and
validation).
"""

import numpy as np
import pytest

from repro.attention import get_method
from repro.attention.verify import verify_method
from repro.comm import SimCommunicator
from repro.comm.ring import (
    RING_MODES,
    BidirectionalFlow,
    bidirectional_split,
    check_ring_mode,
    double_ring_schedule,
    global_ring_schedule,
)
from repro.masks import ALiBiMask, CausalMask
from repro.topology import a800_node, make_cluster


def topo(nodes, gpn):
    return make_cluster(nodes * gpn, node=a800_node(gpus_per_node=gpn))


RING_METHODS = ["megatron-cp", "loongtrain-double", "burst"]
TOPOLOGIES = [topo(1, 4), topo(2, 4), topo(2, 3), topo(3, 3)]
ARRAYS = ("o", "lse", "dq", "dk", "dv")


def run_mode(method_name, topology, mode, *, mask, n_heads=2, n_kv_heads=None,
             seq_mult=8, head_dim=4, seed=0):
    g = topology.world_size
    n = seq_mult * g
    h_kv = n_kv_heads if n_kv_heads is not None else n_heads
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(n_heads, n, head_dim))
    k = rng.normal(size=(h_kv, n, head_dim))
    v = rng.normal(size=(h_kv, n, head_dim))
    do = rng.normal(size=(n_heads, n, head_dim))
    method = get_method(method_name, block_size=8, ring_mode=mode)
    comm = SimCommunicator(topology)
    return method.run(topology, q, k, v, mask=mask, do=do, comm=comm)


class TestBitwiseIdentity:
    """The acceptance criterion, asserted with ``==`` — no tolerance."""

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    @pytest.mark.parametrize("method", RING_METHODS)
    @pytest.mark.parametrize("mask_name", ["causal", "alibi", "full"])
    def test_modes_bitwise_identical(self, method, mask_name, topology):
        mask = {"causal": CausalMask(), "alibi": ALiBiMask(2),
                "full": None}[mask_name]
        uni = run_mode(method, topology, "unidirectional", mask=mask)
        bidir = run_mode(method, topology, "bidirectional", mask=mask)
        for name in ARRAYS:
            a, b = getattr(uni, name), getattr(bidir, name)
            assert np.array_equal(a, b), f"{name} diverged under {mask_name}"

    @pytest.mark.parametrize("method", RING_METHODS)
    @pytest.mark.parametrize("heads", [(4, 2), (4, 1), (6, 3)])
    def test_gqa_bitwise_identical(self, method, heads):
        n_heads, n_kv_heads = heads
        topology = topo(2, 2)
        uni = run_mode(method, topology, "unidirectional", mask=CausalMask(),
                       n_heads=n_heads, n_kv_heads=n_kv_heads)
        bidir = run_mode(method, topology, "bidirectional", mask=CausalMask(),
                         n_heads=n_heads, n_kv_heads=n_kv_heads)
        for name in ARRAYS:
            assert np.array_equal(getattr(uni, name), getattr(bidir, name))

    @pytest.mark.parametrize("method", RING_METHODS)
    def test_bidirectional_matches_dense_reference(self, method):
        report = verify_method(
            method, num_gpus=4, gpus_per_node=2, seq_len=32, n_heads=4,
            ring_mode="bidirectional",
        )
        assert report.passed, report.summary()


class TestSchedulePrimitives:
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: f"{t.num_nodes}x{t.gpus_per_node}")
    @pytest.mark.parametrize("make", [global_ring_schedule,
                                      double_ring_schedule])
    def test_reverse_seed_is_inverse_of_return(self, make, topology):
        sched = make(topology)
        perm = sched.return_permutation()
        inv = sched.reverse_seed_permutation()
        g = topology.world_size
        assert sorted(inv) == list(range(g))
        assert [perm[inv[r]] for r in range(g)] == list(range(g))

    def test_bidirectional_split_halves_the_chain(self):
        for s in range(2, 16):
            fwd, rev = bidirectional_split(s)
            assert fwd + rev == s - 1  # all non-home placements served
            assert 0 <= fwd - rev <= 1  # forward serves the odd one out

    @pytest.mark.parametrize("make", [global_ring_schedule,
                                      double_ring_schedule])
    def test_flow_delivers_on_time_and_in_visit_order(self, make):
        """Reverse delivery for compute step t equals the forward stream's
        placement at step t: same origins, earlier arrival."""
        topology = topo(2, 3)
        sched = make(topology)
        g = topology.world_size
        comm = SimCommunicator(topology)
        bufs = [np.array([float(r)]) for r in range(g)]
        flow = BidirectionalFlow(comm, sched, bufs, phase="p", tag="t")
        origins = sched.origins()
        fwd = list(bufs)
        for t in range(sched.num_steps - 1):
            fwd = sched.apply(comm, fwd, t, phase="p")
            flow.poststep(t)
            ro = flow.delivered(t + 1)
            if t + 1 > flow.forward_transitions:
                assert ro is not None
                for r in range(g):
                    assert ro[r][0] == float(origins[t + 1][r])
                    assert ro[r][0] == fwd[r][0]
            else:
                assert ro is None

    def test_reverse_traffic_lands_on_rev_channel(self):
        topology = topo(2, 3)
        sched = global_ring_schedule(topology)
        comm = SimCommunicator(topology)
        bufs = [np.ones(2) for _ in range(topology.world_size)]
        flow = BidirectionalFlow(comm, sched, bufs, phase="p")
        for t in range(sched.num_steps - 1):
            flow.poststep(t)
        by_channel = comm.log.per_channel_elems(phase="p")
        assert by_channel.get("rev", 0) > 0
        assert by_channel.get("fwd", 0) == 0

    def test_check_ring_mode(self):
        assert check_ring_mode("unidirectional") == "unidirectional"
        assert check_ring_mode("bidirectional") == "bidirectional"
        with pytest.raises(ValueError, match="unknown ring_mode"):
            check_ring_mode("diagonal")
        with pytest.raises(ValueError, match="unknown ring_mode"):
            get_method("burst", ring_mode="diagonal")

    def test_non_ring_method_rejects_ring_mode(self):
        with pytest.raises(TypeError):
            get_method("ulysses", ring_mode="bidirectional")


def fuzz_case(**overrides):
    from repro.testing.differential import FuzzCase

    base = dict(method="burst", mask="causal", nodes=2, gpn=2, seq_len=32,
                head_dim=4, n_heads=4)
    base.update(overrides)
    return FuzzCase(**base)


class TestFuzzerAxis:
    def test_ring_mode_spec_round_trip(self):
        from repro.testing.differential import FuzzCase

        case = fuzz_case(ring_mode="bidirectional")
        parsed = FuzzCase.parse(case.spec())
        assert parsed.ring_mode == "bidirectional"
        assert parsed == case

    def test_default_mode_omitted_from_spec(self):
        from repro.testing.differential import FuzzCase

        case = fuzz_case()
        assert "ring_mode" not in case.spec()
        assert FuzzCase.parse(case.spec()).ring_mode == "unidirectional"

    def test_validate_rejects_bad_combinations(self):
        with pytest.raises(ValueError):
            fuzz_case(ring_mode="sideways").validate()
        with pytest.raises(ValueError):
            fuzz_case(method="ulysses", ring_mode="bidirectional").validate()

    def test_shrinker_reduces_to_unidirectional(self):
        """A failure that persists regardless of mode shrinks to the
        simpler unidirectional repro."""
        from repro.testing.differential import shrink_case

        case = fuzz_case(ring_mode="bidirectional")
        shrunk = shrink_case(case, fails=lambda c: True)
        assert shrunk.ring_mode == "unidirectional"

    def test_registry_exports_modes(self):
        assert RING_MODES == ("unidirectional", "bidirectional")
