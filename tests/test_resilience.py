"""Recovery tests: the resilient communicator heals every PR-1 fault class,
persistent damage fails structurally, and interrupted training runs resume
into bitwise-identical histories."""

import os

import numpy as np
import pytest

from repro.attention.verify import verify_method
from repro.comm import SimCommunicator
from repro.engine import BurstEngine, EngineConfig, Trainer
from repro.nn import TransformerConfig
from repro.nn.rng import set_seed
from repro.resilience import (
    CommFailure,
    FaultEscalation,
    FaultMonitor,
    ResilientCommunicator,
    RetryPolicy,
    tree_checksum,
)
from repro.resilience.chaos import SimulatedCrash, run_chaos
from repro.testing.faults import FAULT_REGISTRY, make_fault
from repro.topology import a800_node, make_cluster


def topo4():
    return make_cluster(4, node=a800_node(gpus_per_node=4))


#: "ring" in the recovery matrix is the flat-ring method (megatron-cp).
MATRIX_METHODS = ["burst", "megatron-cp", "ulysses"]


class TestChecksum:
    def test_identical_trees_match(self):
        a = np.arange(12.0).reshape(3, 4)
        assert tree_checksum((a, [a * 2])) == tree_checksum((a.copy(), [a * 2]))

    def test_any_bit_flip_changes_digest(self):
        a = np.arange(12.0)
        b = a.copy()
        b[7] = np.nextafter(b[7], np.inf)  # one ULP
        assert tree_checksum(a) != tree_checksum(b)

    def test_shape_and_dtype_salted(self):
        a = np.zeros(4)
        assert tree_checksum(a) != tree_checksum(a.reshape(2, 2))
        assert tree_checksum(a) != tree_checksum(a.astype(np.float32))

    def test_none_entries_supported(self):
        assert tree_checksum([None, np.ones(2)]) == tree_checksum([None, np.ones(2)])


class TestRecoveryMatrix:
    """All five fault classes × {burst, ring, ulysses}: a single injected
    fault is detected, retransmitted, and the final outputs match the
    fault-free reference."""

    @pytest.mark.parametrize("fault_name", sorted(FAULT_REGISTRY))
    @pytest.mark.parametrize("method", MATRIX_METHODS)
    def test_single_fault_recovered(self, method, fault_name):
        inner = make_fault(fault_name, topo4(), at_call=2)
        comm = ResilientCommunicator(inner)
        report = verify_method(
            method, num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=comm,
        )
        assert inner.injections >= 1, "fault never fired"
        assert comm.monitor.total_faults >= 1, "fault not detected"
        assert comm.monitor.total_recoveries >= 1, "fault not recovered"
        assert report.passed, report.summary()

    @pytest.mark.parametrize("fault_name", sorted(FAULT_REGISTRY))
    def test_unprotected_comm_stays_broken(self, fault_name):
        """Sanity inverse: without the resilient wrapper the same faults
        corrupt the run (so the matrix above is not vacuous)."""
        inner = make_fault(fault_name, topo4(), at_call=2)
        report = verify_method(
            "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=inner,
        )
        assert not report.passed


class TestBidirectionalRecovery:
    """The reverse channel of ``ring_mode="bidirectional"`` is covered by
    the same five fault classes, and the resilient layer heals it: the
    recovered run still matches the dense reference."""

    @pytest.mark.parametrize("fault_name", sorted(FAULT_REGISTRY))
    def test_reverse_channel_fault_recovered(self, fault_name):
        inner = make_fault(fault_name, topo4(), at_call=1, channel="rev")
        comm = ResilientCommunicator(inner)
        report = verify_method(
            "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=comm, ring_mode="bidirectional",
        )
        assert inner.injections >= 1, "reverse-channel fault never fired"
        assert comm.monitor.total_faults >= 1, "fault not detected"
        assert comm.monitor.total_recoveries >= 1, "fault not recovered"
        assert report.passed, report.summary()

    @pytest.mark.parametrize("fault_name", sorted(FAULT_REGISTRY))
    def test_unprotected_reverse_channel_stays_broken(self, fault_name):
        """Without the resilient wrapper a reverse-channel fault corrupts
        the bidirectional run, so the matrix above is not vacuous."""
        inner = make_fault(fault_name, topo4(), at_call=1, channel="rev")
        report = verify_method(
            "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=inner, ring_mode="bidirectional",
        )
        assert not report.passed

    @pytest.mark.parametrize("method", ["burst", "megatron-cp"])
    def test_matrix_extends_to_bidirectional(self, method):
        """The original recovery matrix holds with the mode flipped:
        an untargeted mid-run fault still heals under bidirectional."""
        inner = make_fault("corrupt", topo4(), at_call=2)
        comm = ResilientCommunicator(inner)
        report = verify_method(
            method, num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=comm, ring_mode="bidirectional",
        )
        assert inner.injections >= 1
        assert comm.monitor.total_recoveries >= 1
        assert report.passed, report.summary()


class TestStructuredFailure:
    def test_persistent_fault_raises_commfailure(self):
        comm = ResilientCommunicator(
            make_fault("corrupt", topo4(), at_call=None),
            retry=RetryPolicy(max_retries=2),
        )
        with pytest.raises(CommFailure) as exc_info:
            verify_method(
                "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
                comm=comm,
            )
        failure = exc_info.value
        assert failure.op == "ring_shift"
        assert failure.phase == "attn-fwd"
        assert failure.call_index == 1
        assert failure.ranks == [0]
        assert failure.attempts == 3
        # The failure names everything a supervisor needs to fence the run.
        msg = str(failure)
        for needle in ("ring_shift", "attn-fwd", "call #1", "3 attempts"):
            assert needle in msg

    def test_persistent_stale_buffer_recovers(self):
        """A permanently stale double-buffer heals on every retry: the
        retransmission lands the delivery the buffer missed."""
        comm = ResilientCommunicator(make_fault("stale", topo4(), at_call=None))
        report = verify_method(
            "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
            comm=comm,
        )
        assert report.passed
        assert comm.monitor.total_recoveries >= 1

    def test_retries_appear_in_traffic_log(self):
        """Retransmissions are real traffic: the recovered run logs more
        bytes than the clean one."""
        clean = SimCommunicator(topo4())
        verify_method("burst", num_gpus=4, gpus_per_node=4, seq_len=32,
                      n_heads=4, comm=clean)
        faulty = ResilientCommunicator(make_fault("corrupt", topo4(), at_call=1))
        verify_method("burst", num_gpus=4, gpus_per_node=4, seq_len=32,
                      n_heads=4, comm=faulty)
        assert faulty.log.total_bytes() > clean.log.total_bytes()


class TestFaultMonitor:
    def test_per_rank_counters(self):
        monitor = FaultMonitor()
        monitor.record_fault(op="send", phase="p", tag="t", call_index=1,
                             ranks=[2], backoff_s=0.05)
        monitor.record_fault(op="send", phase="p", tag="t", call_index=2,
                             ranks=[2, 3], backoff_s=0.10)
        assert monitor.faults_by_rank == {2: 2, 3: 1}
        assert monitor.total_faults == 2
        assert monitor.total_backoff_s == pytest.approx(0.15)
        assert "r2:2" in monitor.summary()

    def test_escalation_past_threshold(self):
        monitor = FaultMonitor(escalate_threshold=2)
        comm = ResilientCommunicator(
            make_fault("drop", topo4(), at_call=None), monitor=monitor
        )
        with pytest.raises(FaultEscalation) as exc_info:
            verify_method(
                "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
                comm=comm,
            )
        assert exc_info.value.count == 3
        assert exc_info.value.threshold == 2

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(max_retries=3, base_backoff_s=0.1, multiplier=2.0)
        assert [policy.delay(a) for a in range(3)] == [0.1, 0.2, 0.4]


class TestResilientPassthrough:
    def test_unguarded_collectives_delegate(self):
        comm = ResilientCommunicator(SimCommunicator(topo4()))
        bufs = [np.full(4, float(r)) for r in range(4)]
        out = comm.all_reduce(bufs, phase="p")
        np.testing.assert_allclose(out[0], np.full(4, 6.0))
        assert comm.world_size == 4
        assert comm.log is comm.inner.log

    def test_clean_deliveries_cost_no_retries(self):
        comm = ResilientCommunicator(SimCommunicator(topo4()))
        bufs = [np.full(2, float(r)) for r in range(4)]
        out = comm.ring_shift(bufs, [0, 1, 2, 3], phase="p")
        np.testing.assert_allclose(out[1], bufs[0])
        assert comm.monitor.total_faults == 0
        assert comm.monitor.total_recoveries == 0


def tiny_engine(comm=None):
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=32, dim=16, n_layers=1, n_heads=4, ffn_hidden=24,
            max_seq_len=32, attn_block_size=8, seed=1,
        ),
        num_gpus=4, gpus_per_node=4, lr=3e-3,
    )
    if comm is not None:
        return BurstEngine(config, comm=comm)
    return BurstEngine(config, topology=topo4())


def batches(seed=0, n=2, seq=32):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        ids = rng.integers(0, 32, size=seq)
        out.append((ids, np.roll(ids, -1)))
    return out


class TestEngineCommInjection:
    def test_engine_adopts_comm_topology(self):
        comm = SimCommunicator(topo4())
        engine = tiny_engine(comm=comm)
        assert engine.comm is comm
        assert engine.topology is comm.topology

    def test_mismatched_topology_rejected(self):
        comm = SimCommunicator(topo4())
        other = make_cluster(4, node=a800_node(gpus_per_node=4))
        with pytest.raises(ValueError):
            BurstEngine(
                EngineConfig(model=TransformerConfig(
                    vocab_size=32, dim=16, n_layers=1, n_heads=4,
                    ffn_hidden=24, max_seq_len=32, attn_block_size=8)),
                topology=other, comm=comm,
            )

    def test_training_through_resilient_comm_matches_clean(self):
        data = batches()
        set_seed(0)
        clean = Trainer(tiny_engine(), clip_norm=1.0)
        clean.fit(data, steps=3)
        set_seed(0)
        resilient = Trainer(
            tiny_engine(comm=ResilientCommunicator(
                make_fault("misroute", topo4(), at_call=4))),
            clip_norm=1.0,
        )
        resilient.fit(data, steps=3)
        assert resilient.losses() == clean.losses()


class TestCrashResume:
    def test_interrupted_run_reproduces_history_bitwise(self, tmp_path):
        """Crash at an arbitrary step, resume from the last snapshot, and
        the full TrainRecord history equals the uninterrupted run's."""
        data = batches()
        steps, crash_after = 6, 4
        state = str(tmp_path / "state.npz")

        set_seed(0)
        uninterrupted = Trainer(tiny_engine(), clip_norm=1.0)
        uninterrupted.fit(data, steps)

        def crash(trainer, record):
            if record.step == crash_after:
                raise SimulatedCrash("boom")

        set_seed(0)
        doomed = Trainer(tiny_engine(), clip_norm=1.0, state_path=state,
                         save_every=2, on_step_end=crash)
        with pytest.raises(SimulatedCrash):
            doomed.fit(data, steps)

        set_seed(424242)  # scrambled: the snapshot must restore the stream
        resumed = Trainer(tiny_engine(), clip_norm=1.0)
        resumed.fit(data, steps, resume_from=state)

        assert len(resumed.history) == steps
        assert resumed.history == uninterrupted.history  # bitwise: float eq

    def test_resume_restores_best_eval_and_history(self, tmp_path):
        """Satellite fix: best_eval and history survive a restart, so the
        best-checkpoint logic doesn't re-save on a worse eval."""
        data = batches(n=1)
        ids, targets = data[0]
        state = str(tmp_path / "state.npz")
        best = str(tmp_path / "best.npz")

        def eval_fn(model):
            from repro.nn.tensor import no_grad

            with no_grad():
                return model(ids, targets).item()

        set_seed(0)
        first = Trainer(tiny_engine(), clip_norm=1.0, eval_fn=eval_fn,
                        eval_every=2, checkpoint_path=best,
                        state_path=state, save_every=2)
        first.fit(data, steps=4)
        assert np.isfinite(first.best_eval)

        resumed = Trainer(tiny_engine(), clip_norm=1.0, eval_fn=eval_fn,
                          eval_every=2, checkpoint_path=best)
        start = resumed.load_state(state)
        assert start == 4
        assert resumed.best_eval == first.best_eval
        assert resumed.history == first.history
        assert resumed.micro == first.micro

    def test_resume_restores_engine_step_count(self, tmp_path):
        data = batches()
        state = str(tmp_path / "state.npz")
        trainer = Trainer(tiny_engine(), clip_norm=1.0, state_path=state,
                          save_every=3)
        trainer.fit(data, steps=3)
        assert trainer.engine.step_count == 3

        fresh = Trainer(tiny_engine(), clip_norm=1.0)
        fresh.load_state(state)
        assert fresh.engine.step_count == 3

    def test_optimizer_moments_roundtrip(self, tmp_path):
        data = batches()
        state = str(tmp_path / "state.npz")
        trainer = Trainer(tiny_engine(), clip_norm=1.0)
        trainer.fit(data, steps=2)
        trainer.save_state(state)

        fresh = Trainer(tiny_engine(), clip_norm=1.0)
        fresh.load_state(state)
        src, dst = trainer.engine.optimizer, fresh.engine.optimizer
        assert dst.t == src.t
        for a, b in zip(src._m, dst._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(src._v, dst._v):
            np.testing.assert_array_equal(a, b)


class TestChaosRunner:
    def test_chaos_fixture_recovers_everything(self, chaos_report):
        assert chaos_report.ok, chaos_report.summary()
        assert chaos_report.scenarios
        assert all(s.injections >= 1 for s in chaos_report.scenarios)
        assert chaos_report.crash is not None
        assert chaos_report.crash.records_match

    def test_chaos_seeds_are_reproducible(self):
        a = run_chaos(seed=7, n_faults=2, steps=2, crash=False)
        b = run_chaos(seed=7, n_faults=2, steps=2, crash=False)
        assert [s.description for s in a.scenarios] == \
            [s.description for s in b.scenarios]
        assert a.baseline_losses == b.baseline_losses

    def test_chaos_cli_smoke(self):
        from repro.resilience.chaos import main

        assert main(["--seed", "0", "--faults", "1", "--steps", "2",
                     "--skip-crash"]) == 0

    def test_chaos_bidirectional_entry(self):
        """The bidirectional entry strikes the reverse channel (fault #2
        of each pair) and every scenario still recovers bitwise."""
        report = run_chaos(seed=3, n_faults=2, steps=2, crash=False,
                           ring_mode="bidirectional")
        assert report.ok, report.summary()
        assert all(s.injections >= 1 for s in report.scenarios)


class TestChannelContext:
    """PR-6's bidirectional channel is part of the failure context: both
    the structured ``CommFailure`` and ``FaultMonitor`` events name the
    direction the damage rode on."""

    def test_fault_event_records_channel(self):
        monitor = FaultMonitor()
        monitor.record_fault(op="ring_shift", phase="attn-fwd", tag="t",
                             call_index=1, ranks=[2], attempt=1,
                             channel="rev")
        assert monitor.events[-1].channel == "rev"

    def test_fault_event_channel_defaults_forward(self):
        monitor = FaultMonitor()
        monitor.record_fault(op="send", phase="p", tag="t", call_index=1,
                             ranks=[0], attempt=1)
        assert monitor.events[-1].channel == "fwd"

    def test_commfailure_names_reverse_channel(self):
        comm = ResilientCommunicator(
            make_fault("corrupt", topo4(), at_call=None, channel="rev"),
            retry=RetryPolicy(max_retries=1),
        )
        with pytest.raises(CommFailure) as exc_info:
            verify_method(
                "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
                comm=comm, ring_mode="bidirectional",
            )
        failure = exc_info.value
        assert failure.channel == "rev"
        assert "channel='rev'" in str(failure)

    def test_forward_commfailure_keeps_default_channel(self):
        comm = ResilientCommunicator(
            make_fault("corrupt", topo4(), at_call=None),
            retry=RetryPolicy(max_retries=1),
        )
        with pytest.raises(CommFailure) as exc_info:
            verify_method(
                "burst", num_gpus=4, gpus_per_node=4, seq_len=32, n_heads=4,
                comm=comm,
            )
        assert exc_info.value.channel == "fwd"


class TestRetryPolicyOverflow:
    """Unbounded ``multiplier ** attempt`` overflows float for adversarial
    attempt counts; the exponent saturates at ``max_exponent`` instead."""

    def test_delay_saturates_at_max_exponent(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=2.0)
        capped = policy.delay(policy.max_exponent)
        assert policy.delay(policy.max_exponent + 1) == capped
        assert policy.delay(10**6) == capped
        assert np.isfinite(policy.delay(10**9))

    def test_cap_is_pinned(self):
        # 2**60 s is already beyond any real schedule; the pin documents
        # the saturation point so a change is a deliberate decision.
        assert RetryPolicy().max_exponent == 60
        assert RetryPolicy(base_backoff_s=1.0, multiplier=2.0).delay(10**6) \
            == 2.0**60

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_exponent=-1)
