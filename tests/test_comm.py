"""Tests for the simulated communicator: numerics and traffic accounting."""

import numpy as np
import pytest

from repro.comm import (
    SimCommunicator,
    double_ring_schedule,
    global_ring_schedule,
)
from repro.topology import LinkClass, a800_node, make_cluster, ClusterTopology


def comm_for(num_gpus: int, gpus_per_node: int = 4) -> SimCommunicator:
    return SimCommunicator(make_cluster(num_gpus, node=a800_node(gpus_per_node=gpus_per_node)))


class TestRingShift:
    def test_shift_moves_data_around_ring(self):
        comm = comm_for(4)
        bufs = [np.full(3, float(r)) for r in range(4)]
        out = comm.ring_shift(bufs, [0, 1, 2, 3], phase="t")
        # rank r receives from predecessor (r - 1) % 4
        for r in range(4):
            np.testing.assert_array_equal(out[r], np.full(3, float((r - 1) % 4)))

    def test_shift_copies_buffers(self):
        comm = comm_for(2)
        bufs = [np.zeros(2), np.ones(2)]
        out = comm.ring_shift(bufs, [0, 1], phase="t")
        out[0][0] = 42.0
        assert bufs[1][0] == 1.0

    def test_partial_ring_leaves_others_untouched(self):
        comm = comm_for(4)
        bufs = [np.full(1, float(r)) for r in range(4)]
        out = comm.ring_shift(bufs, [0, 1], phase="t")
        assert out[2][0] == 2.0 and out[3][0] == 3.0
        assert out[0][0] == 1.0 and out[1][0] == 0.0

    def test_pytree_buffers(self):
        comm = comm_for(2)
        bufs = [
            {"k": np.full(2, 0.0), "v": np.full(2, 10.0)},
            {"k": np.full(2, 1.0), "v": np.full(2, 11.0)},
        ]
        out = comm.ring_shift(bufs, [0, 1], phase="t")
        assert out[0]["k"][0] == 1.0 and out[0]["v"][0] == 11.0

    def test_duplicate_ring_rejected(self):
        comm = comm_for(4)
        bufs = [np.zeros(1)] * 4
        with pytest.raises(ValueError):
            comm.ring_shift(bufs, [0, 1, 1], phase="t")

    def test_traffic_logged_with_link_class(self):
        # 2 nodes x 2 GPUs; ring 0-1-2-3 has 2 intra and 2 inter hops.
        comm = comm_for(8, gpus_per_node=4)
        topo = comm.topology
        bufs = [np.zeros(10) for _ in range(8)]
        comm.ring_shift(bufs, list(range(8)), phase="fwd")
        intra = comm.log.num_transfers(phase="fwd", link=LinkClass.INTRA)
        inter = comm.log.num_transfers(phase="fwd", link=LinkClass.INTER)
        assert intra == 6  # 3 per node
        assert inter == 2  # node boundary + wraparound
        assert comm.log.total_elems(phase="fwd") == 8 * 10


class TestCollectives:
    def test_all_gather_concatenates(self):
        comm = comm_for(4)
        shards = [np.full((2, 3), float(r)) for r in range(4)]
        out = comm.all_gather(shards, axis=0, phase="ag")
        assert out[0].shape == (8, 3)
        for r in range(4):
            np.testing.assert_array_equal(out[2][2 * r : 2 * r + 2], shards[r])

    def test_all_gather_ring_traffic_volume(self):
        g = 4
        comm = comm_for(g)
        shards = [np.zeros(5) for _ in range(g)]
        comm.all_gather(shards, phase="ag")
        # ring all-gather: every rank sends G-1 shards
        per_rank = comm.log.per_rank_send_elems(phase="ag")
        assert all(v == (g - 1) * 5 for v in per_rank.values())

    def test_reduce_scatter_sums(self):
        g = 3
        comm = comm_for(g, gpus_per_node=3)
        contributions = [
            [np.full(2, float(r * 10 + j)) for j in range(g)] for r in range(g)
        ]
        out = comm.reduce_scatter(contributions, phase="rs")
        for j in range(g):
            expected = sum(float(r * 10 + j) for r in range(g))
            np.testing.assert_allclose(out[j], np.full(2, expected))

    def test_all_reduce_matches_sum_and_logs_2x_volume(self):
        g = 4
        comm = comm_for(g)
        bufs = [np.full(8, float(r)) for r in range(g)]
        out = comm.all_reduce(bufs, phase="ar")
        np.testing.assert_allclose(out[0], np.full(8, 0.0 + 1 + 2 + 3))
        # ring all-reduce volume: 2 * (G-1)/G * nelems per rank
        per_rank = comm.log.per_rank_send_elems(phase="ar")
        assert all(v == 2 * (g - 1) * (8 // g) for v in per_rank.values())

    def test_all_to_all_transposes(self):
        g = 3
        comm = comm_for(g, gpus_per_node=3)
        chunks = [
            [np.array([float(src * 10 + dst)]) for dst in range(g)]
            for src in range(g)
        ]
        out = comm.all_to_all(chunks, phase="a2a")
        for dst in range(g):
            for src in range(g):
                assert out[dst][src][0] == float(src * 10 + dst)

    def test_broadcast(self):
        comm = comm_for(4)
        out = comm.broadcast(np.arange(3.0), root=2, phase="bc")
        for buf in out:
            np.testing.assert_array_equal(buf, np.arange(3.0))
        assert comm.log.num_transfers(phase="bc") == 3

    def test_exchange_requires_permutation(self):
        comm = comm_for(2)
        with pytest.raises(ValueError):
            comm.exchange([np.zeros(1), np.zeros(1)], [0, 0], phase="x")


class TestRingSchedules:
    @pytest.mark.parametrize("num_gpus,gpn", [(4, 4), (8, 4), (8, 2), (16, 4)])
    def test_global_schedule_valid(self, num_gpus, gpn):
        topo = make_cluster(num_gpus, node=a800_node(gpus_per_node=gpn))
        global_ring_schedule(topo).validate()

    @pytest.mark.parametrize("num_gpus,gpn", [(4, 4), (8, 4), (8, 2), (16, 4), (6, 3)])
    def test_double_ring_schedule_valid(self, num_gpus, gpn):
        topo = make_cluster(num_gpus, node=a800_node(gpus_per_node=gpn))
        double_ring_schedule(topo).validate()

    def test_double_ring_single_node_is_all_intra(self):
        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        sched = double_ring_schedule(topo)
        for t in range(len(sched.transitions)):
            assert sched.transition_link_class(t) is LinkClass.INTRA

    def test_double_ring_transition_pattern(self):
        # 2 nodes x 4 GPUs: transitions 1,2,3 intra; 4 inter; 5,6,7 intra.
        topo = make_cluster(8, node=a800_node(gpus_per_node=4))
        sched = double_ring_schedule(topo)
        classes = [sched.transition_link_class(t) for t in range(7)]
        expected = [
            LinkClass.INTRA, LinkClass.INTRA, LinkClass.INTRA,
            LinkClass.INTER,
            LinkClass.INTRA, LinkClass.INTRA, LinkClass.INTRA,
        ]
        assert classes == expected

    def test_double_ring_fewer_inter_transitions_than_global(self):
        topo = make_cluster(16, node=a800_node(gpus_per_node=4))
        dbl = double_ring_schedule(topo)
        n_inter_dbl = sum(
            1
            for t in range(len(dbl.transitions))
            if dbl.transition_link_class(t) is LinkClass.INTER
        )
        # DoubleRing: num_nodes - 1 inter transitions; global ring pays the
        # inter-node latency on *every* transition (lockstep).
        assert n_inter_dbl == topo.num_nodes - 1

    def test_apply_matches_origin_tracking(self):
        topo = make_cluster(8, node=a800_node(gpus_per_node=4))
        comm = SimCommunicator(topo)
        sched = double_ring_schedule(topo)
        bufs = [np.array([float(r)]) for r in range(8)]
        origins = sched.origins()
        for t in range(len(sched.transitions)):
            bufs = sched.apply(comm, bufs, t, phase="ring")
            for rank in range(8):
                assert bufs[rank][0] == float(origins[t + 1][rank])

    def test_inter_transitions_use_parallel_nic_rings(self):
        topo = make_cluster(8, node=a800_node(gpus_per_node=4))
        comm = SimCommunicator(topo)
        sched = double_ring_schedule(topo)
        bufs = [np.zeros(4) for _ in range(8)]
        sched.apply(comm, bufs, 3, phase="inter-step")  # transition 4 is inter
        recs = [r for r in comm.log.records if r.phase == "inter-step"]
        assert all(r.link is LinkClass.INTER for r in recs)
        # one ring per local rank -> every rank participates
        assert sorted({r.src for r in recs}) == list(range(8))
