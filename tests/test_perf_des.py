"""Tests for the discrete-event simulator."""

import pytest

from repro.perf.des import Simulator
from repro.perf.trace import trace_to_chrome_json


class TestSimulatorBasics:
    def test_single_task(self):
        sim = Simulator()
        sim.add("a", 2.0)
        assert sim.run() == pytest.approx(2.0)

    def test_serial_chain(self):
        sim = Simulator()
        sim.add("a", 1.0)
        sim.add("b", 2.0, deps=["a"])
        sim.add("c", 3.0, deps=["b"])
        assert sim.run() == pytest.approx(6.0)

    def test_parallel_independent_tasks(self):
        sim = Simulator()
        sim.add("a", 5.0, resources=["r1"])
        sim.add("b", 3.0, resources=["r2"])
        assert sim.run() == pytest.approx(5.0)

    def test_resource_contention_serialises(self):
        sim = Simulator()
        sim.add("a", 2.0, resources=["gpu"])
        sim.add("b", 2.0, resources=["gpu"])
        assert sim.run() == pytest.approx(4.0)

    def test_diamond_dependencies(self):
        sim = Simulator()
        sim.add("src", 1.0)
        sim.add("left", 2.0, deps=["src"], resources=["r1"])
        sim.add("right", 5.0, deps=["src"], resources=["r2"])
        sim.add("sink", 1.0, deps=["left", "right"])
        assert sim.run() == pytest.approx(7.0)

    def test_fifo_tiebreak(self):
        sim = Simulator()
        sim.add("first", 1.0, resources=["r"])
        sim.add("second", 1.0, resources=["r"])
        sim.run()
        assert sim.tasks["first"].start < sim.tasks["second"].start

    def test_pipeline_overlap(self):
        """Classic 2-stage pipeline: makespan = first + N * max(stage)."""
        sim = Simulator()
        n, ta, tb = 4, 1.0, 2.0
        for i in range(n):
            deps_a = [f"a{i-1}"] if i else []
            sim.add(f"a{i}", ta, resources=["A"], deps=deps_a)
            sim.add(f"b{i}", tb, resources=["B"], deps=[f"a{i}"])
        assert sim.run() == pytest.approx(ta + n * tb)

    def test_zero_duration_tasks(self):
        sim = Simulator()
        sim.add("a", 0.0)
        sim.add("b", 0.0, deps=["a"])
        sim.add("c", 1.0, deps=["b"])
        assert sim.run() == pytest.approx(1.0)


class TestSimulatorValidation:
    def test_duplicate_name_rejected(self):
        sim = Simulator()
        sim.add("a", 1.0)
        with pytest.raises(ValueError):
            sim.add("a", 1.0)

    def test_unknown_dependency_rejected(self):
        sim = Simulator()
        sim.add("a", 1.0, deps=["ghost"])
        with pytest.raises(ValueError, match="unknown"):
            sim.run()

    def test_cycle_detected(self):
        sim = Simulator()
        sim.add("a", 1.0, deps=["b"])
        sim.add("b", 1.0, deps=["a"])
        with pytest.raises(ValueError, match="cycle|deadlock"):
            sim.run()

    def test_negative_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.add("a", -1.0)

    def test_critical_path_bound(self):
        sim = Simulator()
        sim.add("a", 1.0, resources=["r"])
        sim.add("b", 2.0, deps=["a"], resources=["r"])
        sim.add("c", 4.0, resources=["r"])
        lower = sim.critical_path_lower_bound()
        assert lower == pytest.approx(4.0)
        assert sim.run() >= lower


class TestTraceExport:
    def test_chrome_trace_json(self, tmp_path):
        import json

        sim = Simulator()
        sim.add("compute0", 1.0, resources=["compute"])
        sim.add("comm0", 0.5, resources=["intra"], deps=["compute0"])
        sim.run()
        path = tmp_path / "trace.json"
        payload = trace_to_chrome_json(sim, str(path))
        data = json.loads(payload)
        names = [e["name"] for e in data["traceEvents"]]
        assert "compute0" in names and "comm0" in names
        assert path.exists()
