"""Tensor parallelism: numerics vs plain layers, traffic volumes, and the
long-context scaling analysis."""

import numpy as np
import pytest

from repro.comm import SimCommunicator
from repro.masks import CausalMask, SlidingWindowMask
from repro.models import LLAMA_14B
from repro.nn import Adam, Tensor, TransformerConfig, TransformerLM
from repro.topology import a800_node, make_cluster
from repro.tp import (
    build_tp_model,
    shard_columns,
    shard_rows,
    tp_attention,
    tp_layer_comm_bytes,
    tp_mlp,
    tp_scaling_analysis,
)


RNG = np.random.default_rng(13)
TOPO = make_cluster(4, node=a800_node(gpus_per_node=4))


def cfg(**kw):
    base = dict(vocab_size=32, dim=16, n_layers=2, n_heads=4, ffn_hidden=24,
                max_seq_len=32, attn_block_size=16, seed=2)
    base.update(kw)
    return TransformerConfig(**base)


class TestShardHelpers:
    def test_row_and_column_shards_cover(self):
        w = RNG.normal(size=(8, 6))
        np.testing.assert_array_equal(np.concatenate(shard_rows(w, 4)), w)
        np.testing.assert_array_equal(
            np.concatenate(shard_columns(w, 3), axis=1), w
        )

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            shard_rows(RNG.normal(size=(7, 4)), 4)
        with pytest.raises(ValueError):
            shard_columns(RNG.normal(size=(4, 7)), 4)


class TestTPLayersNumerics:
    def test_tp_mlp_matches_plain(self):
        s, d, f = 12, 8, 16
        x_np = RNG.normal(size=(s, d))
        wg = RNG.normal(size=(f, d))
        wu = RNG.normal(size=(f, d))
        wd = RNG.normal(size=(d, f))

        def plain(x_):
            h = (x_ @ wg.T) / (1 + np.exp(-(x_ @ wg.T))) * (x_ @ wu.T)
            return h @ wd.T

        comm = SimCommunicator(TOPO)
        x = Tensor(x_np, requires_grad=True)
        y = tp_mlp(x, Tensor(wg, requires_grad=True),
                   Tensor(wu, requires_grad=True),
                   Tensor(wd, requires_grad=True), comm)
        np.testing.assert_allclose(y.data, plain(x_np), rtol=1e-10, atol=1e-12)

    def test_tp_mlp_gradients_match_finite_differences(self):
        s, d, f = 6, 4, 8
        x_np = RNG.normal(size=(s, d))
        wg = Tensor(RNG.normal(size=(f, d)), requires_grad=True)
        wu = Tensor(RNG.normal(size=(f, d)), requires_grad=True)
        wd = Tensor(RNG.normal(size=(d, f)), requires_grad=True)
        comm = SimCommunicator(TOPO)
        x = Tensor(x_np, requires_grad=True)
        tp_mlp(x, wg, wu, wd, comm).sum().backward()

        eps = 1e-6
        for tensor, name in ((x, "x"), (wg, "wg"), (wd, "wd")):
            for _ in range(3):
                idx = tuple(RNG.integers(0, s_) for s_ in tensor.shape)
                orig = tensor.data[idx]
                tensor.data[idx] = orig + eps
                up = tp_mlp(Tensor(x_np), Tensor(wg.data), Tensor(wu.data),
                            Tensor(wd.data), comm).data.sum()
                tensor.data[idx] = orig - eps
                dn = tp_mlp(Tensor(x_np), Tensor(wg.data), Tensor(wu.data),
                            Tensor(wd.data), comm).data.sum()
                tensor.data[idx] = orig
                fd = (up - dn) / (2 * eps)
                assert tensor.grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-7), name

    @pytest.mark.parametrize(
        "mask",
        # note: the module defaults mask=None to causal, so pass FullMask
        # explicitly for the unmasked comparison
        [__import__("repro.masks", fromlist=["FullMask"]).FullMask(),
         CausalMask(), SlidingWindowMask(8)],
        ids=["full", "causal", "swa"],
    )
    def test_tp_attention_matches_plain_module(self, mask):
        from repro.nn.modules import CausalSelfAttention

        s, d, h = 16, 16, 4
        x_np = RNG.normal(size=(s, d))
        rng = np.random.default_rng(9)
        plain = CausalSelfAttention(d, h, rng, mask=mask, block_size=8)
        y_ref = plain(Tensor(x_np))
        y_ref.sum().backward()
        ref_grads = {n: p.grad.copy() for n, p in plain.named_parameters()}

        comm = SimCommunicator(TOPO)
        x = Tensor(x_np, requires_grad=True)
        y = tp_attention(
            x, plain.wq.weight, plain.wk.weight, plain.wv.weight,
            plain.wo.weight, comm, h, mask=mask, block_size=8,
        )
        np.testing.assert_allclose(y.data, y_ref.data, rtol=1e-9, atol=1e-11)
        plain.zero_grad()
        y.sum().backward()
        for name, p in plain.named_parameters():
            np.testing.assert_allclose(p.grad, ref_grads[name], rtol=1e-8,
                                       atol=1e-10, err_msg=name)

    def test_heads_divisibility_enforced(self):
        x = Tensor(RNG.normal(size=(8, 6)))
        w = Tensor(RNG.normal(size=(6, 6)))
        comm = SimCommunicator(TOPO)
        with pytest.raises(ValueError, match="divisible"):
            tp_attention(x, w, w, w, w, comm, n_heads=3)


class TestTPModel:
    def test_tp_model_equals_plain_model(self):
        ids = RNG.integers(0, 32, size=16)
        targets = np.roll(ids, -1)
        plain = TransformerLM(cfg())
        loss_ref = plain(ids, targets)
        loss_ref.backward()
        ref = {n: p.grad.copy() for n, p in plain.named_parameters()}

        comm = SimCommunicator(TOPO)
        tp = build_tp_model(cfg(), comm)
        loss = tp(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-10)
        for name, p in tp.named_parameters():
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-8,
                                       atol=1e-10, err_msg=name)

    def test_tp_model_trains(self):
        comm = SimCommunicator(TOPO)
        model = build_tp_model(cfg(), comm)
        opt = Adam(model.parameters(), lr=3e-3)
        ids = RNG.integers(0, 32, size=16)
        targets = np.roll(ids, -1)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8

    def test_gqa_rejected(self):
        comm = SimCommunicator(TOPO)
        with pytest.raises(ValueError, match="MHA"):
            build_tp_model(cfg(n_kv_heads=2), comm)

    def test_traffic_volume_matches_formula(self):
        """Per step: 4 all-reduces per layer of S x D elements; ring
        all-reduce sends 2 * (G-1)/G * elems per rank."""
        comm = SimCommunicator(TOPO)
        model = build_tp_model(cfg(), comm)
        ids = RNG.integers(0, 32, size=16)
        loss = model(ids, np.roll(ids, -1))
        loss.backward()
        g = TOPO.world_size
        elems = 16 * 16  # S x D
        per_ar_per_rank = 2 * (g - 1) * (elems // g)
        layers = 2
        expected = layers * 4 * per_ar_per_rank  # attn fwd/bwd + mlp fwd/bwd
        for phase in ("tp-attn", "tp-mlp"):
            vol = comm.log.per_rank_send_elems(phase=phase)
            assert all(v == expected // 2 for v in vol.values()), phase


class TestScalingAnalysis:
    def test_comm_scales_linearly_with_sequence(self):
        assert tp_layer_comm_bytes(2 << 20, 5120) == pytest.approx(
            2 * tp_layer_comm_bytes(1 << 20, 5120)
        )

    def test_tp_cannot_reach_1m_tokens(self):
        """The motivational claim: pure TP OOMs long before 1M tokens."""
        rows = tp_scaling_analysis(LLAMA_14B, [65536, 262144, 1 << 20],
                                   tp_degree=8)
        assert rows[0].fits_80gb            # 64K still fits
        assert not rows[-1].fits_80gb       # 1M cannot (activations alone)
        assert rows[-1].activation_gb_per_gpu > 150

    def test_adding_tp_ranks_does_not_help_activations(self):
        a = tp_scaling_analysis(LLAMA_14B, [1 << 20], tp_degree=8)[0]
        b = tp_scaling_analysis(LLAMA_14B, [1 << 20], tp_degree=64)[0]
        # stored activations dominate and are TP-degree independent
        assert b.activation_gb_per_gpu > 0.9 * a.activation_gb_per_gpu
