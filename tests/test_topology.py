"""Tests for cluster topology: rank placement, link classes, ring helpers."""

import pytest

from repro.topology import (
    A800_GPU,
    ClusterTopology,
    LinkClass,
    a800_node,
    a100_node,
    make_cluster,
)


class TestGeometry:
    def test_world_size(self):
        topo = ClusterTopology(num_nodes=4, node=a800_node())
        assert topo.world_size == 32
        assert topo.gpus_per_node == 8

    def test_node_and_local_rank(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        assert topo.node_of(0) == 0
        assert topo.node_of(3) == 0
        assert topo.node_of(4) == 1
        assert topo.local_rank(5) == 1
        assert topo.local_rank(7) == 3

    def test_rank_bounds_checked(self):
        topo = ClusterTopology(num_nodes=1, node=a800_node(gpus_per_node=2))
        with pytest.raises(ValueError):
            topo.node_of(2)
        with pytest.raises(ValueError):
            topo.link_class(0, -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0, node=a800_node())


class TestLinkClass:
    def test_local_intra_inter(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        assert topo.link_class(1, 1) is LinkClass.LOCAL
        assert topo.link_class(0, 3) is LinkClass.INTRA
        assert topo.link_class(3, 4) is LinkClass.INTER
        assert topo.link_class(7, 0) is LinkClass.INTER

    def test_transfer_time_monotone_in_bytes(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        t_small = topo.transfer_time(1e6, LinkClass.INTER)
        t_big = topo.transfer_time(1e9, LinkClass.INTER)
        assert t_big > t_small > 0

    def test_intra_faster_than_inter(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        nbytes = 100e6
        assert topo.transfer_time(nbytes, LinkClass.INTRA) < topo.transfer_time(
            nbytes, LinkClass.INTER
        )

    def test_local_transfer_free(self):
        topo = ClusterTopology(num_nodes=1, node=a800_node(gpus_per_node=2))
        assert topo.transfer_time(1e9, LinkClass.LOCAL) == 0.0


class TestRings:
    def test_global_ring_covers_all(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        assert topo.global_ring() == list(range(8))

    def test_intra_node_rings(self):
        topo = ClusterTopology(num_nodes=2, node=a800_node(gpus_per_node=4))
        rings = topo.intra_node_rings()
        assert rings == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_inter_node_ring_per_local_index(self):
        topo = ClusterTopology(num_nodes=3, node=a800_node(gpus_per_node=4))
        assert topo.inter_node_ring(0) == [0, 4, 8]
        assert topo.inter_node_ring(3) == [3, 7, 11]
        with pytest.raises(ValueError):
            topo.inter_node_ring(4)


class TestMakeCluster:
    def test_full_nodes(self):
        topo = make_cluster(32)
        assert topo.num_nodes == 4
        assert topo.world_size == 32

    def test_partial_node(self):
        topo = make_cluster(4)
        assert topo.num_nodes == 1
        assert topo.gpus_per_node == 4

    def test_partial_node_preserves_gpu_type(self):
        topo = make_cluster(4, node=a100_node())
        assert topo.node.gpu.name.startswith("A100")

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            make_cluster(12, node=a800_node(gpus_per_node=8))

    def test_describe_mentions_hardware(self):
        topo = make_cluster(16)
        desc = topo.describe()
        assert "A800" in desc and "2 node" in desc

    def test_a800_specs_match_paper(self):
        # 312 TFLOPS bf16, 80 GB HBM — the paper's A800-SXM4-80GB.
        assert A800_GPU.peak_flops == pytest.approx(312e12)
        assert A800_GPU.memory_bytes == pytest.approx(80e9)
