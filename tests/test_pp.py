"""Pipeline parallelism: numeric equivalence, boundary traffic, and the
GPipe / 1F1B timing models."""

import numpy as np
import pytest

from repro.comm import SimCommunicator
from repro.nn import Adam, TransformerConfig, TransformerLM
from repro.pp import (
    PipelinedLM,
    gpipe_bubble_fraction,
    in_flight_microbatches,
    pipeline_step_time,
)
from repro.pp.schedule import pipeline_efficiency
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(41)
TOPO = make_cluster(4, node=a800_node(gpus_per_node=4))


def cfg(**kw):
    base = dict(vocab_size=32, dim=16, n_layers=4, n_heads=2, ffn_hidden=24,
                max_seq_len=32, attn_block_size=16, seed=6)
    base.update(kw)
    return TransformerConfig(**base)


def batch(s=16, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 32, size=s)
    return ids, np.roll(ids, -1)


class TestNumericPipeline:
    def test_loss_and_grads_equal_unsharded(self):
        ids, targets = batch()
        plain = TransformerLM(cfg())
        loss_ref = plain(ids, targets)
        loss_ref.backward()
        ref = {n: p.grad.copy() for n, p in plain.named_parameters()}

        model = TransformerLM(cfg())
        pipe = PipelinedLM(model, SimCommunicator(TOPO), num_stages=4)
        loss = pipe.forward(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-12)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-10,
                                       atol=1e-12, err_msg=name)

    def test_train_step_equals_grad_accumulation(self):
        micro = [batch(seed=i) for i in range(3)]

        plain = TransformerLM(cfg())
        opt = Adam(plain.parameters(), lr=1e-3)
        opt.zero_grad()
        for ids, targets in micro:
            plain(ids, targets).backward(np.asarray(1.0 / 3))
        opt.step()
        ref = {n: p.data.copy() for n, p in plain.named_parameters()}

        model = TransformerLM(cfg())
        pipe = PipelinedLM(model, SimCommunicator(TOPO), num_stages=2)
        opt2 = Adam(model.parameters(), lr=1e-3)
        pipe.train_step(micro, opt2)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, ref[name], rtol=1e-12,
                                       err_msg=name)

    def test_boundary_traffic_volume(self):
        ids, targets = batch(s=16)
        comm = SimCommunicator(TOPO)
        pipe = PipelinedLM(TransformerLM(cfg()), comm, num_stages=4)
        loss = pipe.forward(ids, targets)
        loss.backward()
        # 3 boundaries x (S x D) activations, forward and backward each
        expected = 3 * 16 * 16
        assert comm.log.total_elems(phase="pp-fwd") == expected
        assert comm.log.total_elems(phase="pp-bwd") == expected

    def test_stage_partition_validation(self):
        model = TransformerLM(cfg(n_layers=4))
        with pytest.raises(ValueError, match="divisible"):
            PipelinedLM(model, SimCommunicator(TOPO), num_stages=3)
        model8 = TransformerLM(cfg(n_layers=8))
        with pytest.raises(ValueError, match="ranks"):
            PipelinedLM(model8, SimCommunicator(TOPO), num_stages=8)

    def test_empty_microbatches_rejected(self):
        pipe = PipelinedLM(TransformerLM(cfg()), SimCommunicator(TOPO),
                           num_stages=2)
        with pytest.raises(ValueError):
            pipe.train_step([], Adam(pipe.model.parameters()))


class TestScheduleModels:
    def test_bubble_formula(self):
        assert gpipe_bubble_fraction(4, 1) == pytest.approx(3 / 4)
        assert gpipe_bubble_fraction(4, 16) == pytest.approx(3 / 19)
        assert gpipe_bubble_fraction(1, 8) == 0.0

    def test_des_matches_bubble_formula_gpipe(self):
        """With equal fwd/bwd chunks and no comm, the DES makespan equals
        (M + P - 1) slots of (fwd+bwd) work spread per the formula."""
        p, m, t = 4, 8, 1.0
        makespan = pipeline_step_time(p, m, t, t, 0.0, schedule="gpipe")
        ideal = m * 2 * t
        eff = ideal / makespan
        assert eff == pytest.approx(1 - gpipe_bubble_fraction(p, m), rel=0.01)

    def test_1f1b_same_makespan_less_memory(self):
        p, m, t = 4, 8, 1.0
        t_gpipe = pipeline_step_time(p, m, t, t, 0.0, schedule="gpipe")
        t_1f1b = pipeline_step_time(p, m, t, t, 0.0, schedule="1f1b")
        assert t_1f1b <= t_gpipe * 1.01
        assert in_flight_microbatches(p, m, "1f1b") == 4
        assert in_flight_microbatches(p, m, "gpipe") == 8

    def test_more_microbatches_higher_efficiency(self):
        effs = [pipeline_efficiency(4, m, 1.0) for m in (1, 4, 16)]
        assert effs == sorted(effs)
        assert effs[0] == pytest.approx(0.25, rel=0.05)  # 1 microbatch: 1/P

    def test_comm_reduces_efficiency(self):
        fast = pipeline_efficiency(4, 8, 1.0, t_comm=0.0)
        slow = pipeline_efficiency(4, 8, 1.0, t_comm=0.5)
        assert slow < fast

    def test_single_stage_no_bubble(self):
        assert pipeline_efficiency(1, 4, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gpipe_bubble_fraction(0, 4)
        with pytest.raises(ValueError):
            pipeline_step_time(2, 2, 1.0, schedule="2f2b")
        with pytest.raises(ValueError):
            in_flight_microbatches(2, 2, "nope")

    def test_long_context_implication(self):
        """One 1M-token sequence = one microbatch: pipeline efficiency
        collapses to ~1/P — the reason the paper shards the sequence."""
        eff = pipeline_efficiency(8, 1, 1.0)
        assert eff == pytest.approx(1 / 8, rel=0.05)
