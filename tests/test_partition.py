"""Tests for sequence partitioners and workload-balance analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.masks import CausalMask, FullMask, sliding_window_block_mask
from repro.partition import (
    BlockwisePartitioner,
    ContiguousPartitioner,
    StripedPartitioner,
    ZigzagPartitioner,
    imbalance_ratio,
    workload_per_device,
)
from repro.partition.workload import balance_report, effective_step_work, step_workloads


ALL_PARTITIONERS = [
    ContiguousPartitioner(),
    ZigzagPartitioner(),
    StripedPartitioner(),
    BlockwisePartitioner(block_size=8),
]


class TestPartitionInvariants:
    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: p.name)
    @pytest.mark.parametrize("n,g", [(16, 2), (32, 4), (64, 8)])
    def test_cover_and_disjoint(self, part, n, g):
        idxs = part.indices(n, g)
        assert len(idxs) == g
        flat = np.concatenate(idxs)
        assert sorted(flat.tolist()) == list(range(n))
        for idx in idxs:
            assert len(idx) == n // g
            assert (np.diff(idx) > 0).all()  # sorted ascending

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: p.name)
    def test_scatter_gather_roundtrip(self, part):
        x = np.random.default_rng(0).normal(size=(3, 32, 5))
        parts = part.scatter(x, 4, axis=-2)
        back = part.gather(parts, axis=-2)
        np.testing.assert_array_equal(back, x)

    def test_indivisible_length_rejected(self):
        with pytest.raises(ValueError):
            ContiguousPartitioner().indices(10, 4)

    def test_zigzag_needs_2g_chunks(self):
        # n=12, g=8 -> divisible by g? no -> base check fires; use n=24, g=8:
        # 24 % 16 != 0 so the zigzag-specific check fires.
        with pytest.raises(ValueError):
            ZigzagPartitioner().indices(24, 8)

    def test_zigzag_structure(self):
        idxs = ZigzagPartitioner().indices(8, 2)
        np.testing.assert_array_equal(idxs[0], [0, 1, 6, 7])
        np.testing.assert_array_equal(idxs[1], [2, 3, 4, 5])

    def test_striped_structure(self):
        idxs = StripedPartitioner().indices(8, 4)
        np.testing.assert_array_equal(idxs[1], [1, 5])

    def test_blockwise_structure(self):
        idxs = BlockwisePartitioner(block_size=4).indices(8, 2)
        np.testing.assert_array_equal(idxs[0], [0, 2, 4, 6])
        np.testing.assert_array_equal(idxs[1], [1, 3, 5, 7])

    def test_blockwise_requires_block_multiple_of_g(self):
        with pytest.raises(ValueError):
            BlockwisePartitioner(block_size=6).indices(24, 4)


class TestWorkloadBalance:
    def test_full_mask_always_balanced(self):
        for part in ALL_PARTITIONERS:
            assert imbalance_ratio(FullMask(), part, 32, 4) == pytest.approx(1.0)

    def test_contiguous_causal_imbalance(self):
        """Last device does ~2x average work under a contiguous causal split."""
        ratio = imbalance_ratio(CausalMask(), ContiguousPartitioner(), 256, 8)
        assert ratio > 1.7

    def test_zigzag_balances_causal(self):
        ratio = imbalance_ratio(CausalMask(), ZigzagPartitioner(), 256, 8)
        assert ratio == pytest.approx(1.0, abs=0.01)

    def test_striped_balances_causal(self):
        # Raw striped placement leaves a +-1-key-per-step skew that Eq. (14)'s
        # shifted-view trick removes inside the kernel; the placement itself
        # is balanced to ~3% already (vs ~2x for contiguous).
        ratio = imbalance_ratio(CausalMask(), StripedPartitioner(), 256, 8)
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_total_work_is_partition_independent(self):
        n, g = 128, 4
        totals = {
            part.name: workload_per_device(CausalMask(), part, n, g).sum()
            for part in ALL_PARTITIONERS
        }
        assert len(set(totals.values())) == 1
        assert list(totals.values())[0] == CausalMask().total_allowed(n)

    def test_blockwise_balances_swa(self):
        """Fig. 11: striping within blocks balances block-sparse masks."""
        mask = sliding_window_block_mask(seq_len=256, block_size=32, window_blocks=2)
        balanced = imbalance_ratio(mask, BlockwisePartitioner(block_size=32), 256, 4)
        naive = imbalance_ratio(mask, ContiguousPartitioner(), 256, 4)
        assert balanced < 1.05
        assert naive > 1.08
        assert naive > balanced

    def test_effective_step_work_barrier_bound(self):
        """Per-step max >= per-device mean: barriers cost extra iff imbalanced."""
        n, g = 128, 4
        eff_contig = effective_step_work(CausalMask(), ContiguousPartitioner(), n, g)
        eff_striped = effective_step_work(CausalMask(), StripedPartitioner(), n, g)
        assert eff_striped < eff_contig
        total = CausalMask().total_allowed(n)
        assert eff_striped >= total / g  # cannot beat perfect balance

    def test_step_workloads_shape(self):
        sw = step_workloads(CausalMask(), StripedPartitioner(), 64, 4)
        assert sw.shape == (4, 4)
        assert sw.sum() == CausalMask().total_allowed(64)

    def test_balance_report_speedups(self):
        report = balance_report(
            CausalMask(),
            [ContiguousPartitioner(), StripedPartitioner()],
            128,
            4,
        )
        assert report["striped"]["speedup_vs_worst"] > 1.3
        assert report["contiguous"]["speedup_vs_worst"] == pytest.approx(1.0)

    @settings(deadline=None, max_examples=15)
    @given(
        g=st.sampled_from([2, 4, 8]),
        mult=st.integers(2, 6),
    )
    def test_zigzag_striped_balance_property(self, g, mult):
        n = 2 * g * mult
        for part in (ZigzagPartitioner(), StripedPartitioner()):
            work = workload_per_device(CausalMask(), part, n, g)
            # max deviation from mean at most g tokens' worth of keys
            assert work.max() - work.min() <= n
