"""Tests for the extensions: GQA support (and the Alg.1/Alg.2 payload
crossover it creates) and sparsity-aware selective communication."""

import numpy as np
import pytest

from repro.attention.gqa import (
    backward_comm_elems,
    choose_backward_algorithm,
    fold_kv_grad,
    gqa_attention_reference,
    gqa_attention_reference_backward,
    gqa_burst_backward,
    gqa_ring_backward_kv,
    gqa_ring_forward,
    repeat_kv,
)
from repro.attention.selective import (
    communication_savings,
    selective_attention_backward,
    selective_attention_forward,
    selective_vs_ring_volume,
    tile_dependency_matrix,
)
from repro.comm import SimCommunicator, double_ring_schedule
from repro.kernels import attention_reference, attention_reference_backward
from repro.masks import CausalMask, SlidingWindowMask, sliding_window_block_mask
from repro.partition import ContiguousPartitioner, StripedPartitioner
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(17)
TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


def gqa_inputs(n=64, d=8, hq=8, hkv=2):
    q = RNG.normal(size=(hq, n, d))
    k = RNG.normal(size=(hkv, n, d))
    v = RNG.normal(size=(hkv, n, d))
    do = RNG.normal(size=(hq, n, d))
    return q, k, v, do


class TestGQAPrimitives:
    def test_repeat_and_fold_roundtrip(self):
        x = RNG.normal(size=(2, 5, 3))
        expanded = repeat_kv(x, 4)
        assert expanded.shape == (8, 5, 3)
        # folding the expansion of ones-grad gives groups * original
        np.testing.assert_allclose(fold_kv_grad(expanded, 4), 4 * x)

    def test_repeat_groups_one_identity(self):
        x = RNG.normal(size=(3, 4, 2))
        assert repeat_kv(x, 1) is x

    def test_invalid_head_ratio(self):
        q, k, v, _ = gqa_inputs(hq=6, hkv=4)
        with pytest.raises(ValueError):
            gqa_attention_reference(q, k, v)

    def test_reference_matches_expanded_mha(self):
        q, k, v, do = gqa_inputs()
        o, lse = gqa_attention_reference(q, k, v)
        o_ref, lse_ref = attention_reference(q, repeat_kv(k, 4), repeat_kv(v, 4))
        np.testing.assert_allclose(o, o_ref, rtol=1e-12)

    def test_reference_backward_folds_grads(self):
        q, k, v, do = gqa_inputs()
        mask = CausalMask().dense(64)
        o, lse = gqa_attention_reference(q, k, v, mask=mask)
        dq, dk, dv = gqa_attention_reference_backward(q, k, v, o, lse, do, mask=mask)
        assert dk.shape == k.shape and dv.shape == v.shape
        # finite-difference spot check on a KV entry (uses group summing)
        eps = 1e-6

        def loss(k_):
            o_, _ = gqa_attention_reference(q, k_, v, mask=mask)
            return float((o_ * do).sum())

        kp = k.copy(); kp[1, 3, 2] += eps
        km = k.copy(); km[1, 3, 2] -= eps
        fd = (loss(kp) - loss(km)) / (2 * eps)
        assert dk[1, 3, 2] == pytest.approx(fd, rel=1e-5)


class TestGQADistributed:
    def _setup(self, hq=8, hkv=2, n=64, d=8):
        q, k, v, do = gqa_inputs(n=n, d=d, hq=hq, hkv=hkv)
        part = StripedPartitioner()
        g = TOPO.world_size
        idxs = part.indices(n, g)
        shards = lambda x: part.scatter(x, g)
        return q, k, v, do, idxs, shards, part, g

    @pytest.mark.parametrize("mask", [None, CausalMask()], ids=["full", "causal"])
    def test_gqa_ring_forward_matches_reference(self, mask):
        q, k, v, do, idxs, shards, part, g = self._setup()
        comm = SimCommunicator(TOPO)
        sched = double_ring_schedule(TOPO)
        os, lses = gqa_ring_forward(
            comm, sched, shards(q), shards(k), shards(v), idxs, groups=4,
            mask=mask, block_size=16,
        )
        dense = mask.dense(64) if mask else None
        o_ref, lse_ref = gqa_attention_reference(q, k, v, mask=dense)
        np.testing.assert_allclose(part.gather(os), o_ref, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("backward", ["alg1", "alg2"])
    def test_gqa_distributed_backward_matches_reference(self, backward):
        q, k, v, do, idxs, shards, part, g = self._setup()
        mask = CausalMask()
        comm = SimCommunicator(TOPO)
        sched = double_ring_schedule(TOPO)
        os, lses = gqa_ring_forward(
            comm, sched, shards(q), shards(k), shards(v), idxs, groups=4,
            mask=mask, block_size=16,
        )
        fn = gqa_ring_backward_kv if backward == "alg1" else gqa_burst_backward
        dqs, dks, dvs = fn(
            comm, sched, shards(q), shards(k), shards(v), os, lses,
            shards(do), idxs, 4, mask=mask, block_size=16,
        )
        dense = mask.dense(64)
        o_ref, lse_ref = gqa_attention_reference(q, k, v, mask=dense)
        dq_ref, dk_ref, dv_ref = gqa_attention_reference_backward(
            q, k, v, o_ref, lse_ref, do, mask=dense
        )
        np.testing.assert_allclose(part.gather(dqs), dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(part.gather(dks), dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(part.gather(dvs), dv_ref, rtol=1e-8, atol=1e-10)

    def test_alg1_circulates_less_than_alg2_under_gqa(self):
        """The extension's headline: with 4x grouped KV heads, Algorithm 1
        moves less backward data than BurstAttention's Algorithm 2."""
        q, k, v, do, idxs, shards, part, g = self._setup(hq=8, hkv=2)
        volumes = {}
        for name, fn in (("alg1", gqa_ring_backward_kv), ("alg2", gqa_burst_backward)):
            comm = SimCommunicator(TOPO)
            sched = double_ring_schedule(TOPO)
            os, lses = gqa_ring_forward(
                comm, sched, shards(q), shards(k), shards(v), idxs, 4,
                block_size=16,
            )
            comm.log.clear()
            fn(comm, sched, shards(q), shards(k), shards(v), os, lses,
               shards(do), idxs, 4, block_size=16)
            volumes[name] = comm.log.total_elems(phase="attn-bwd")
        assert volumes["alg1"] < volumes["alg2"]

    def test_comm_formula_matches_measured(self):
        q, k, v, do, idxs, shards, part, g = self._setup(hq=8, hkv=2)
        comm = SimCommunicator(TOPO)
        sched = double_ring_schedule(TOPO)
        os, lses = gqa_ring_forward(
            comm, sched, shards(q), shards(k), shards(v), idxs, 4, block_size=16
        )
        comm.log.clear()
        gqa_ring_backward_kv(
            comm, sched, shards(q), shards(k), shards(v), os, lses,
            shards(do), idxs, 4, block_size=16,
        )
        per_rank = comm.log.per_rank_send_elems(phase="attn-bwd")
        expected = backward_comm_elems("alg1", 64, 8, 8, 2)
        assert all(v == expected for v in per_rank.values())


class TestAdaptiveSelection:
    def test_mha_prefers_alg2(self):
        assert choose_backward_algorithm(128, 32, 32) == "alg2"

    def test_gqa_prefers_alg1(self):
        # LLaMA-3 70B style: 64 query heads, 8 KV heads
        assert choose_backward_algorithm(128, 64, 8) == "alg1"

    def test_crossover_at_4_3(self):
        # group factor 4/3 is the break-even (ignoring the small 2N term)
        d = 1024  # large d so the 2N term is negligible
        alg1_g1 = backward_comm_elems("alg1", 100, d, 12, 12)
        alg2 = backward_comm_elems("alg2", 100, d, 12, 12)
        assert alg1_g1 > alg2  # MHA: alg2 wins
        alg1_g2 = backward_comm_elems("alg1", 100, d, 12, 6)
        assert alg1_g2 < alg2  # group 2: alg1 wins

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            backward_comm_elems("alg3", 1, 1, 1, 1)


class TestSelectiveCommunication:
    N, D, H = 64, 8, 2

    def _mha_inputs(self):
        q = RNG.normal(size=(self.H, self.N, self.D))
        k = RNG.normal(size=(self.H, self.N, self.D))
        v = RNG.normal(size=(self.H, self.N, self.D))
        do = RNG.normal(size=(self.H, self.N, self.D))
        return q, k, v, do

    def test_dependency_matrix_causal_contiguous(self):
        idxs = ContiguousPartitioner().indices(self.N, 8)
        need = tile_dependency_matrix(CausalMask(), idxs)
        # lower-triangular: rank i needs shards j <= i
        np.testing.assert_array_equal(need, np.tril(np.ones((8, 8), dtype=bool)))

    def test_savings_sliding_window(self):
        idxs = ContiguousPartitioner().indices(self.N, 8)
        # window of one shard: each rank needs only itself and predecessor
        savings = communication_savings(SlidingWindowMask(self.N // 8), idxs)
        assert savings == pytest.approx(1 - 7 / 56)

    def test_striped_partition_kills_savings(self):
        """Balance vs locality trade-off: striped shards touch everything."""
        idxs = StripedPartitioner().indices(self.N, 8)
        assert communication_savings(SlidingWindowMask(16), idxs) == 0.0

    @pytest.mark.parametrize(
        "mask", [None, CausalMask(), SlidingWindowMask(16)],
        ids=["full", "causal", "swa"],
    )
    def test_selective_forward_matches_reference(self, mask):
        q, k, v, do = self._mha_inputs()
        part = ContiguousPartitioner()
        idxs = part.indices(self.N, 8)
        comm = SimCommunicator(TOPO)
        os, lses = selective_attention_forward(
            comm, part.scatter(q, 8), part.scatter(k, 8), part.scatter(v, 8),
            idxs, mask=mask, block_size=16,
        )
        dense = mask.dense(self.N) if mask else None
        o_ref, _ = attention_reference(q, k, v, mask=dense)
        np.testing.assert_allclose(part.gather(os), o_ref, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize(
        "mask", [CausalMask(), SlidingWindowMask(16)], ids=["causal", "swa"]
    )
    def test_selective_backward_matches_reference(self, mask):
        q, k, v, do = self._mha_inputs()
        part = ContiguousPartitioner()
        idxs = part.indices(self.N, 8)
        comm = SimCommunicator(TOPO)
        sh = lambda x: part.scatter(x, 8)
        os, lses = selective_attention_forward(
            comm, sh(q), sh(k), sh(v), idxs, mask=mask, block_size=16
        )
        dqs, dks, dvs = selective_attention_backward(
            comm, sh(q), sh(k), sh(v), os, lses, sh(do), idxs, mask=mask,
            block_size=16,
        )
        dense = mask.dense(self.N)
        o_ref, lse_ref = attention_reference(q, k, v, mask=dense)
        dq_ref, dk_ref, dv_ref = attention_reference_backward(
            q, k, v, o_ref, lse_ref, do, mask=dense
        )
        np.testing.assert_allclose(part.gather(dqs), dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(part.gather(dks), dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(part.gather(dvs), dv_ref, rtol=1e-8, atol=1e-10)

    def test_selective_moves_less_than_ring_for_swa(self):
        q, k, v, do = self._mha_inputs()
        part = ContiguousPartitioner()
        idxs = part.indices(self.N, 8)
        mask = SlidingWindowMask(self.N // 8)

        comm_sel = SimCommunicator(TOPO)
        selective_attention_forward(
            comm_sel, part.scatter(q, 8), part.scatter(k, 8),
            part.scatter(v, 8), idxs, mask=mask, block_size=16,
        )
        sel = comm_sel.log.total_elems(phase="attn-fwd")

        from repro.attention import get_method

        method = get_method("burst", partitioner=part, block_size=16)
        res = method.run(TOPO, q, k, v, mask=mask)
        ring = res.comm.log.total_elems(phase="attn-fwd")
        assert sel < ring / 4  # window spans 1 shard -> ~7/56 of ring volume

    def test_volume_formula(self):
        idxs = ContiguousPartitioner().indices(self.N, 8)
        out = selective_vs_ring_volume(SlidingWindowMask(self.N // 8), idxs, 100)
        assert out["selective"] == 7 * 2 * 100
        assert out["ring"] == 8 * 7 * 2 * 100
        assert out["savings"] == pytest.approx(1 - 7 / 56)
