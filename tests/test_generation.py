"""Tests for autoregressive generation."""

import numpy as np
import pytest

from repro.data import copy_task
from repro.engine import BurstEngine, EngineConfig
from repro.nn import TransformerConfig, TransformerLM
from repro.topology import a800_node, make_cluster


def cfg(**kw):
    base = dict(vocab_size=16, dim=32, n_layers=2, n_heads=4, ffn_hidden=48,
                max_seq_len=32, attn_block_size=16, seed=1)
    base.update(kw)
    return TransformerConfig(**base)


class TestGenerate:
    def test_greedy_is_deterministic(self):
        model = TransformerLM(cfg())
        prompt = np.array([1, 2, 3])
        a = model.generate(prompt, 5)
        b = model.generate(prompt, 5)
        np.testing.assert_array_equal(a, b)
        assert len(a) == 8

    def test_sampling_respects_seed(self):
        model = TransformerLM(cfg())
        prompt = np.array([1, 2, 3])
        a = model.generate(prompt, 5, temperature=1.0,
                           rng=np.random.default_rng(7))
        b = model.generate(prompt, 5, temperature=1.0,
                           rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_stops_at_max_seq_len(self):
        model = TransformerLM(cfg(max_seq_len=8))
        out = model.generate(np.arange(6), 100)
        assert len(out) == 8

    def test_validation(self):
        model = TransformerLM(cfg())
        with pytest.raises(ValueError):
            model.generate(np.array([1]), -1)
        with pytest.raises(ValueError):
            model.generate(np.array([1]), 1, temperature=-0.5)

    def test_trained_model_continues_the_copy(self):
        """After training on the copy task, greedy decoding from the first
        half + a few copied tokens reproduces the rest of the copy."""
        vocab, seq = 16, 32
        engine = BurstEngine(
            EngineConfig(model=cfg(), lr=5e-3),
            topology=make_cluster(4, node=a800_node(gpus_per_node=4)),
        )
        ids, targets = copy_task(seq, vocab, seed=7)
        for _ in range(80):
            engine.train_step(ids, targets)
        prompt_len = seq // 2 + 4  # first half + 4 copied tokens
        out = engine.model.generate(ids[:prompt_len], seq - prompt_len)
        matches = (out[prompt_len:] == ids[prompt_len:]).mean()
        assert matches > 0.8
