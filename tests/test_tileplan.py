"""Tile planning: plan-driven kernels vs the dense-mask reference.

The TilePlan path changes *how* the flash kernels see the mask (per-block
classification, lazy partial tiles, skipped empties, workspace reuse) but
must not change a single bit of the numerics.  These tests pin that:

* property tests draw random ``BlockSparseMask`` configurations and
  zigzag/striped shard pairs — including uneven block edges and GQA-shaped
  batches — and require exact agreement with the dense-mask kernels;
* the causal acceptance floor (>= 40 % of sub-tiles skipped) is asserted;
* the bench harness's smoke mode and its regression gate are exercised.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.ring import _resolve_tiles
from repro.kernels import (
    EMPTY,
    FULL,
    PARTIAL,
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    counters,
    flash_attention_backward,
    flash_attention_forward,
    use_planning,
)
from repro.masks import (
    ALiBiMask,
    BlockSparseMask,
    CausalMask,
    SlidingWindowMask,
    sliding_window_block_mask,
)
from repro.partition import StripedPartitioner, ZigzagPartitioner


def _dense_for(mask, q_idx, k_idx):
    return mask.block(q_idx, k_idx)


def _run_both(q, k, v, do, mask, q_idx, k_idx, block_q, block_k):
    """Dense-path and plan-path fwd+bwd outputs for one shard pair."""
    dense = mask.block(q_idx, k_idx)
    bias = mask.bias_block(q_idx, k_idx)
    o0, l0 = flash_attention_forward(
        q, k, v, mask=dense, bias=bias, block_q=block_q, block_k=block_k
    )
    g0 = flash_attention_backward(
        q, k, v, o0, l0, do, mask=dense, bias=bias,
        block_q=block_q, block_k=block_k,
    )
    plan = TilePlan.build(
        mask, q_idx, k_idx, block_q, block_k, bias_cache=BiasTileCache()
    )
    ws = KernelWorkspace()
    o1, l1 = flash_attention_forward(q, k, v, plan=plan, workspace=ws)
    g1 = flash_attention_backward(
        q, k, v, o1, l1, do, plan=plan, workspace=ws
    )
    return (o0, l0, *g0), (o1, l1, *g1), plan


class TestPlanClassification:
    def test_states_never_contradict_dense_tiles(self):
        mask = CausalMask()
        idx = np.arange(96)
        plan = TilePlan.build(mask, idx, idx, 32, 32)
        for i in range(plan.n_q_blocks):
            for j in range(plan.n_k_blocks):
                q0, q1 = plan.q_range(i)
                k0, k1 = plan.k_range(j)
                tile = _dense_for(mask, idx[q0:q1], idx[k0:k1])
                state = plan.state(i, j)
                if state == FULL:
                    assert tile.all()
                elif state == EMPTY:
                    assert not tile.any()
                else:
                    assert state == PARTIAL

    def test_causal_contiguous_census(self):
        plan = TilePlan.build(CausalMask(), np.arange(128), np.arange(128),
                              32, 32)
        # 4x4 grid: diagonal partial, below full, above empty.
        assert plan.num_partial == 4
        assert plan.num_full == 6
        assert plan.num_empty == 6

    def test_assume_full_short_circuits(self):
        plan = TilePlan.build(
            CausalMask(), np.arange(64, 96), np.arange(0, 32), 8, 8,
            assume_full=True,
        )
        assert plan.num_full == plan.num_tiles

    def test_uneven_edges_cover_all_tokens(self):
        idx = np.arange(100)  # not a multiple of the 32-block
        plan = TilePlan.build(CausalMask(), idx, idx, 32, 32)
        assert plan.q_range(plan.n_q_blocks - 1) == (96, 100)
        computed, skipped = plan.pair_counts()
        assert computed + skipped == 100 * 100

    def test_plan_rejects_mismatched_geometry(self):
        plan = TilePlan.build(CausalMask(), np.arange(64), np.arange(64),
                              16, 16)
        q = np.zeros((2, 32, 8))
        with pytest.raises(ValueError, match="plan covers"):
            flash_attention_forward(q, q, q, plan=plan)

    def test_plan_and_dense_mask_are_mutually_exclusive(self):
        idx = np.arange(32)
        plan = TilePlan.build(CausalMask(), idx, idx, 16, 16)
        q = np.zeros((2, 32, 8))
        with pytest.raises(ValueError, match="not both"):
            flash_attention_forward(
                q, q, q, mask=np.ones((32, 32), bool), plan=plan
            )


class TestPlanNumericsMatchDense:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n_blocks=st.integers(2, 6),
        mask_block=st.sampled_from([8, 12, 16]),
        causal=st.booleans(),
        block_q=st.sampled_from([8, 16, 24]),
        block_k=st.sampled_from([8, 16, 24]),
    )
    def test_random_block_sparse(
        self, seed, n_blocks, mask_block, causal, block_q, block_k
    ):
        rng = np.random.default_rng(seed)
        bm = rng.random((n_blocks, n_blocks)) > 0.4
        mask = BlockSparseMask(mask_block, bm, intra_block_causal=causal)
        n = n_blocks * mask_block
        idx = np.arange(n)
        q, k, v, do = (rng.normal(size=(2, n, 8)) for _ in range(4))
        dense_out, plan_out, _ = _run_both(
            q, k, v, do, mask, idx, idx, block_q, block_k
        )
        for a, b in zip(dense_out, plan_out):
            np.testing.assert_array_equal(a, b)

    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(0, 10_000),
        partitioner=st.sampled_from(["zigzag", "striped"]),
        g=st.sampled_from([2, 4]),
        r1=st.integers(0, 3),
        r2=st.integers(0, 3),
        window=st.sampled_from([0, 24]),
    )
    def test_zigzag_striped_shard_pairs(
        self, seed, partitioner, g, r1, r2, window
    ):
        """Plan path equals dense path on real (non-contiguous) shard
        index pairs — the tiles the distributed ring actually resolves."""
        r1, r2 = r1 % g, r2 % g
        n = 16 * g
        part = (
            ZigzagPartitioner() if partitioner == "zigzag"
            else StripedPartitioner()
        )
        idxs = part.indices(n, g)
        mask = SlidingWindowMask(window) if window else CausalMask()
        rng = np.random.default_rng(seed)
        s_q, s_k = len(idxs[r1]), len(idxs[r2])
        q = rng.normal(size=(2, s_q, 8))
        do = rng.normal(size=(2, s_q, 8))
        k = rng.normal(size=(2, s_k, 8))
        v = rng.normal(size=(2, s_k, 8))
        dense_out, plan_out, _ = _run_both(
            q, k, v, do, mask, idxs[r1], idxs[r2], 8, 8
        )
        for a, b in zip(dense_out, plan_out):
            np.testing.assert_array_equal(a, b)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10_000), groups=st.sampled_from([2, 4]))
    def test_gqa_expanded_heads(self, seed, groups):
        """GQA runs the kernels on repeat_kv-expanded KV; the plan path
        must agree on those head-expanded batches too."""
        from repro.attention.gqa import repeat_kv

        rng = np.random.default_rng(seed)
        n, d, h_kv = 48, 8, 2
        q = rng.normal(size=(h_kv * groups, n, d))
        do = rng.normal(size=(h_kv * groups, n, d))
        k = repeat_kv(rng.normal(size=(h_kv, n, d)), groups)
        v = repeat_kv(rng.normal(size=(h_kv, n, d)), groups)
        idx = np.arange(n)
        dense_out, plan_out, _ = _run_both(
            q, k, v, do, ALiBiMask(h_kv * groups), idx, idx, 16, 16
        )
        for a, b in zip(dense_out, plan_out):
            np.testing.assert_array_equal(a, b)

    def test_uneven_block_edges_match(self):
        rng = np.random.default_rng(3)
        n = 90  # 90 / 32 leaves a 26-wide edge tile
        idx = np.arange(n)
        q, k, v, do = (rng.normal(size=(2, n, 8)) for _ in range(4))
        dense_out, plan_out, _ = _run_both(
            q, k, v, do, CausalMask(), idx, idx, 32, 32
        )
        for a, b in zip(dense_out, plan_out):
            np.testing.assert_array_equal(a, b)


class TestSkipAccounting:
    def test_causal_skips_at_least_40_percent(self):
        """The repo's acceptance floor: causal single-device fwd+bwd must
        skip >= 40 % of sub-tiles."""
        rng = np.random.default_rng(0)
        n = 512
        q, k, v, do = (rng.normal(size=(2, n, 16)) for _ in range(4))
        idx = np.arange(n)
        plan = TilePlan.build(CausalMask(), idx, idx, 64, 64)
        ws = KernelWorkspace()
        counters.reset()
        o, lse = flash_attention_forward(q, k, v, plan=plan, workspace=ws)
        flash_attention_backward(q, k, v, o, lse, do, plan=plan, workspace=ws)
        assert counters.skip_fraction >= 0.4
        assert counters.computed > 0

    def test_alibi_bias_tiles_cached_across_ring_steps(self):
        """Ring passes over a contiguous partition share ALiBi tiles:
        every off-diagonal step reuses the same relative-offset tiles."""
        from repro.attention.ring import ring_attention_forward
        from repro.comm import SimCommunicator
        from repro.comm.ring import global_ring_schedule
        from repro.partition import ContiguousPartitioner
        from repro.topology import make_cluster

        g, n, h, d = 4, 64, 2, 8
        topo = make_cluster(g, gpus_per_node=g)
        comm = SimCommunicator(topo)
        schedule = global_ring_schedule(topo)
        part = ContiguousPartitioner()
        idxs = part.indices(n, g)
        rng = np.random.default_rng(0)
        mask = ALiBiMask(h)
        qs = [rng.normal(size=(h, n // g, d)) for _ in range(g)]
        ks = [rng.normal(size=(h, n // g, d)) for _ in range(g)]
        vs = [rng.normal(size=(h, n // g, d)) for _ in range(g)]
        counters.reset()
        ring_attention_forward(
            comm, schedule, qs, ks, vs, idxs, mask=mask, block_size=8
        )
        assert counters.bias_tiles_reused > 0
        # Distinct relative offsets are far fewer than resolved tiles.
        assert counters.bias_tiles_built < counters.bias_tiles_reused

    def test_use_planning_toggle_restores_dense_resolution(self):
        mask = CausalMask()
        idx_q = np.arange(32)
        idx_k = np.arange(16)
        with use_planning(False):
            skip, plan, tile, bias = _resolve_tiles(mask, idx_q, idx_k, 8)
            assert plan is None and tile is not None
        skip, plan, tile, bias = _resolve_tiles(mask, idx_q, idx_k, 8)
        assert plan is not None and tile is None


class TestDistributedPathsPlanned:
    def test_ring_planned_equals_ring_dense(self):
        """End-to-end: a full distributed forward/backward is bit-identical
        with planning on and off."""
        from repro.attention.methods import get_method
        from repro.comm import SimCommunicator
        from repro.topology import make_cluster

        g, n, h, d = 4, 64, 2, 8
        rng = np.random.default_rng(1)
        q, k, v, do = (rng.normal(size=(h, n, d)) for _ in range(4))
        mask = CausalMask()
        outs = {}
        for planned in (False, True):
            method = get_method("megatron-cp", block_size=8)
            comm = SimCommunicator(make_cluster(g, gpus_per_node=g))
            idxs = method.indices(n, g)
            qs, ks, vs = (method.shard(x, g) for x in (q, k, v))
            with use_planning(planned):
                os_, lses, ctx = method.forward_shards(
                    comm, qs, ks, vs, idxs, mask, None
                )
                grads = method.backward_shards(comm, ctx, method.shard(do, g))
            outs[planned] = (os_, lses, *grads)
        for a_parts, b_parts in zip(outs[False], outs[True]):
            for a, b in zip(a_parts, b_parts):
                np.testing.assert_array_equal(a, b)


class TestBenchHarness:
    def test_kernel_smoke_suite_records_skips_and_identity(self):
        from repro.perf.bench import run_kernel_suite

        results = run_kernel_suite(smoke=True, repeats=1)
        by_name = {r["name"]: r for r in results}
        assert by_name["causal"]["skip_fraction"] >= 0.4
        for rec in results:
            assert rec["max_abs_diff"] <= 1e-12
            assert rec["tiles_skipped"] > 0

    def test_check_mode_flags_regressions(self):
        from repro.perf.bench import check_results

        rec = {
            "name": "causal", "params": {"seq": 1},
            "dense_s": 1.0, "planned_s": 1.0, "speedup": 1.2,
            "tiles_computed": 10, "tiles_skipped": 10,
            "skip_fraction": 0.5, "max_abs_diff": 0.0,
        }
        base = dict(rec, speedup=2.0)
        problems = check_results([rec], [base], tolerance=1.2, suite="kernels")
        assert any("regressed" in p for p in problems)
        # Tile-count drift is flagged even when speed is fine.
        drift = dict(rec, tiles_skipped=9, speedup=2.0)
        problems = check_results([drift], [base], tolerance=1.2,
                                 suite="kernels")
        assert any("tiles_skipped" in p for p in problems)
        # Numeric deviation always fails.
        bad = dict(rec, max_abs_diff=1e-9, speedup=2.0)
        problems = check_results([bad], [base], tolerance=1.2, suite="kernels")
        assert any("deviates" in p for p in problems)

    def test_cli_writes_json(self, tmp_path):
        from repro.perf.bench import main

        rc = main([
            "--suite", "kernels", "--smoke", "--repeats", "1",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_kernels.json").read_text())
        assert payload["suite"] == "kernels"
        assert {"dense_s", "planned_s", "speedup", "tiles_computed",
                "tiles_skipped", "skip_fraction", "max_abs_diff"} <= set(
                    payload["results"][0])


class TestTilePlanInvariants:
    def test_closed_forms_match_measured_counts(self):
        from repro.testing import check_tile_plan_invariants

        report = check_tile_plan_invariants(seq_len=128, block_q=16,
                                            block_k=16)
        assert report.passed, report.summary()

    def test_uneven_kernel_blocks(self):
        from repro.testing import check_tile_plan_invariants

        report = check_tile_plan_invariants(seq_len=192, block_q=24,
                                            block_k=48)
        assert report.passed, report.summary()
