"""Per-layer mask schedules and ZeRO-stage memory refinement."""

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig
from repro.masks import CausalMask, SlidingWindowMask
from repro.models import LLAMA_7B
from repro.nn import Adam, CheckpointPolicy, TransformerConfig, TransformerLM
from repro.nn.checkpoint import CheckpointMode
from repro.perf.memory import MemoryModel, TrainingSetup
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(61)


def layered_cfg(**kw):
    base = dict(
        vocab_size=32, dim=16, n_layers=4, n_heads=2, ffn_hidden=24,
        max_seq_len=32, attn_block_size=16, seed=8,
        layer_masks=[SlidingWindowMask(8), CausalMask(),
                     SlidingWindowMask(8), CausalMask()],
    )
    base.update(kw)
    return TransformerConfig(**base)


class TestLayerMaskSchedule:
    def test_masks_assigned_per_layer(self):
        model = TransformerLM(layered_cfg())
        kinds = [type(b.attn.mask).__name__ for b in model.blocks]
        assert kinds == ["SlidingWindowMask", "CausalMask",
                        "SlidingWindowMask", "CausalMask"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="layer_masks"):
            TransformerLM(layered_cfg(n_layers=3))

    def test_alternating_model_trains(self):
        model = TransformerLM(layered_cfg())
        opt = Adam(model.parameters(), lr=3e-3)
        ids = RNG.integers(0, 32, size=24)
        targets = np.roll(ids, -1)
        losses = []
        for _ in range(12):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_distributed_layered_matches_local(self):
        ids = RNG.integers(0, 32, size=32)
        targets = np.roll(ids, -1)
        ckpt = CheckpointPolicy(CheckpointMode.NONE)
        local = TransformerLM(layered_cfg(checkpoint=ckpt))
        loss_ref = local(ids, targets)
        loss_ref.backward()
        ref = {n: p.grad.copy() for n, p in local.named_parameters()}

        engine = BurstEngine(
            EngineConfig(model=layered_cfg(), checkpoint=ckpt, fsdp=False),
            topology=make_cluster(4, node=a800_node(gpus_per_node=4)),
        )
        loss = engine.model(ids, targets)
        loss.backward()
        assert loss.item() == pytest.approx(loss_ref.item(), rel=1e-10)
        for name, p in engine.model.named_parameters():
            np.testing.assert_allclose(p.grad, ref[name], rtol=1e-8,
                                       atol=1e-10, err_msg=name)

    def test_window_layers_attend_locally_only(self):
        """Changing a token outside every window must not affect a model
        whose layers are all sliding-window... within one layer's reach."""
        cfg = layered_cfg(
            n_layers=1, layer_masks=[SlidingWindowMask(4)], max_seq_len=32,
        )
        model = TransformerLM(cfg)
        ids = RNG.integers(0, 32, size=16)
        base = model.logits(ids).data[-1].copy()
        ids2 = ids.copy()
        ids2[0] = (ids2[0] + 1) % 32  # 15 positions away, window is 4
        np.testing.assert_allclose(model.logits(ids2).data[-1], base,
                                   rtol=1e-12)


class TestZeroStages:
    def _bd(self, stage, offload=False):
        return MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_7B, seq_len=262144, world=32,
            zero_stage=stage, optimizer_offload=offload,
        ))

    def test_stage_progression_monotone(self):
        totals = [self._bd(s).total for s in (0, 1, 2, 3)]
        assert totals == sorted(totals, reverse=True)

    def test_stage_semantics(self):
        s0, s1, s2, s3 = (self._bd(s) for s in (0, 1, 2, 3))
        # stage 1 shards only optimizer
        assert s1.optimizer == pytest.approx(s0.optimizer / 32)
        assert s1.params == s0.params and s1.grads == s0.grads
        # stage 2 also shards grads
        assert s2.grads == pytest.approx(s0.grads / 32)
        assert s2.params == s0.params
        # stage 3 shards everything
        assert s3.params == pytest.approx(s0.params / 32)

    def test_default_derivation_from_fsdp(self):
        mm = MemoryModel()
        fsdp = mm.breakdown(TrainingSetup(model=LLAMA_7B, seq_len=65536,
                                          world=8, fsdp=True))
        stage3 = mm.breakdown(TrainingSetup(model=LLAMA_7B, seq_len=65536,
                                            world=8, zero_stage=3))
        assert fsdp.total == stage3.total

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            self._bd(4)

    def test_stage1_alone_insufficient_for_megatron_case(self):
        """Even ZeRO-1 leaves replicated 14B bf16 params+grads at ~56 GB —
        tight but no longer the 250 GB catastrophe; the paper's Megatron
        setup (stage 0) is the one that OOMs on states alone."""
        from repro.models import LLAMA_14B

        s0 = MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=1 << 20, world=32, zero_stage=0))
        s1 = MemoryModel().breakdown(TrainingSetup(
            model=LLAMA_14B, seq_len=1 << 20, world=32, zero_stage=1))
        assert s0.params + s0.grads + s0.optimizer > 200e9
        assert s1.optimizer < 6e9
