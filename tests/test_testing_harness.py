"""Meta-tests for the correctness harness itself.

The harness is only trustworthy if (a) every fault class it can inject is
*detected* by the verifier for *every* registered method, (b) the fuzzer
finds and shrinks injected failures to replayable repros, and (c) the
golden fixtures flag numeric drift.  These tests prove all three.
"""

import numpy as np
import pytest

from repro.attention import METHOD_REGISTRY
from repro.attention.verify import (
    DTYPE_TOLERANCES,
    resolve_tolerance,
    verify_method,
)
from repro.comm import SimCommunicator
from repro.testing import (
    FAULT_REGISTRY,
    FuzzCase,
    check_case,
    check_golden,
    fuzz,
    make_fault,
    sample_case,
    save_golden,
    shrink_case,
)
from repro.topology import a800_node, make_cluster


TOPO = make_cluster(4, node=a800_node(gpus_per_node=2))
PROBLEM = dict(num_gpus=4, gpus_per_node=2, seq_len=32, n_heads=4, head_dim=4)


def run_verify(comm):
    return verify_method("burst", comm=comm, **PROBLEM)


class TestEveryFaultDetectedForEveryMethod:
    """The acceptance matrix: method × fault, all detected."""

    @pytest.mark.parametrize("method", sorted(METHOD_REGISTRY))
    @pytest.mark.parametrize("fault", sorted(FAULT_REGISTRY))
    def test_fault_detected(self, method, fault):
        comm = make_fault(fault, TOPO)
        try:
            report = verify_method(method, comm=comm, **PROBLEM)
            detected = not report.passed
        except Exception:
            detected = True  # a crash is also a detection
        assert comm.injections >= 1, "fault never fired — nothing was tested"
        assert detected, f"{fault} went unnoticed for {method}"

    @pytest.mark.parametrize("method", sorted(METHOD_REGISTRY))
    def test_clean_comm_passes(self, method):
        """No false positives: an honest communicator verifies clean."""
        report = verify_method(method, comm=SimCommunicator(TOPO), **PROBLEM)
        assert report.passed, report.summary()


class TestFaultTargeting:
    def test_backward_only_corruption_spares_forward(self):
        """Phase targeting: corrupting the first attn-bwd transfer leaves
        the output bit-clean but poisons gradients."""
        comm = make_fault("corrupt", TOPO, phase="attn-bwd")
        report = run_verify(comm)
        assert report.errors["o"] < 1e-12
        assert report.errors["dq"] > 1e-6

    def test_tag_targeting_hits_gradient_return(self):
        """Algorithm 2 returns dQ via the final exchange; dropping only
        that message must leave o/lse clean and dq wrong."""
        comm = make_fault("drop", TOPO, op="exchange", tag="return")
        report = run_verify(comm)
        assert report.errors["o"] < 1e-12
        assert report.errors["lse"] < 1e-12
        assert report.errors["dq"] > 1e-6

    def test_at_call_counts_matching_calls_only(self):
        """With a phase filter, at_call indexes within that phase."""
        comm = make_fault("corrupt", TOPO, phase="attn-bwd", at_call=2)
        run_verify(comm)
        assert comm.injections == 1
        assert comm.calls_matched > 2

    def test_every_matching_call_mode(self):
        comm = make_fault("corrupt", TOPO, at_call=None, phase="attn-fwd")
        report = run_verify(comm)
        assert comm.injections == comm.calls_matched >= 2
        assert not report.passed

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            make_fault("bitflip", TOPO)

    def test_fault_describe_names_filters(self):
        comm = make_fault("stale", TOPO, phase="attn-bwd", tag="kv")
        assert "stale" in comm.describe()
        assert "attn-bwd" in comm.describe()


class TestToleranceModel:
    def test_per_dtype_resolution(self):
        for dtype, tol in DTYPE_TOLERANCES.items():
            assert resolve_tolerance(dtype) == tol
        assert resolve_tolerance("float64", 1e-30) == 1e-30

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            resolve_tolerance("float16")
        with pytest.raises(ValueError, match="unknown dtype"):
            verify_method("burst", dtype="float16", **PROBLEM)

    @pytest.mark.parametrize("dtype", sorted(DTYPE_TOLERANCES))
    def test_all_dtypes_verify_clean(self, dtype):
        report = verify_method("burst", dtype=dtype, **PROBLEM)
        assert report.passed, report.summary()
        assert report.dtype == dtype

    def test_gqa_problem_verifies(self):
        report = verify_method("burst", n_kv_heads=2, **PROBLEM)
        assert report.passed, report.summary()

    def test_gqa_rejects_indivisible_ratio(self):
        with pytest.raises(ValueError, match="not divisible"):
            verify_method("burst", n_kv_heads=3, **PROBLEM)


class TestFuzzCaseRoundTrip:
    def test_spec_parse_inverse(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            case = sample_case(rng)
            assert FuzzCase.parse(case.spec()) == case

    def test_sampled_cases_are_valid(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            sample_case(rng).validate()  # must not raise

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError, match="unknown case key"):
            FuzzCase.parse("method=burst,bogus=1")
        with pytest.raises(ValueError, match="malformed"):
            FuzzCase.parse("method")

    def test_validate_rejects_illegal_configs(self):
        base = dict(mask="causal", nodes=1, gpn=2, seq_len=8, head_dim=2,
                    n_heads=2)
        with pytest.raises(ValueError, match="not divisible by 2\\*G"):
            FuzzCase(method="burst", **{**base, "seq_len": 6}).validate()
        with pytest.raises(ValueError, match="ulysses needs"):
            FuzzCase(method="ulysses", **{**base, "n_heads": 3}).validate()
        with pytest.raises(ValueError, match="does not support GQA"):
            FuzzCase(method="ulysses", n_kv_heads=1,
                     **{**base, "n_heads": 2}).validate()


class TestFuzzer:
    def test_clean_sweep_passes(self):
        result = fuzz(seed=0, budget=8, smoke=True)
        assert result.passed
        assert result.cases_run == 8

    @pytest.mark.parametrize("fault", sorted(FAULT_REGISTRY))
    def test_injected_fault_produces_shrunk_repro(self, fault):
        result = fuzz(seed=0, budget=3, fault=fault, smoke=True,
                      max_failures=1)
        assert not result.passed
        failure = result.failures[0]
        # the shrunk case still fails and is no bigger than the original
        assert not check_case(failure.shrunk, fault=fault)[0]
        assert failure.shrunk.world_size <= failure.case.world_size
        assert failure.shrunk.seq_len <= failure.case.seq_len
        # the repro line replays exactly
        assert failure.repro().startswith("python -m repro.testing.fuzz")
        spec = failure.repro().split('"')[1]
        assert FuzzCase.parse(spec) == failure.shrunk

    def test_shrink_reaches_minimal_world(self):
        """An always-failing predicate shrinks any case to the floor."""
        rng = np.random.default_rng(3)
        case = sample_case(rng)
        shrunk = shrink_case(case, lambda c: True)
        assert shrunk.world_size <= 4
        assert shrunk.seq_len == 2 * shrunk.world_size
        assert shrunk.head_dim == 2
        assert shrunk.dtype == "float64"

    def test_shrink_respects_predicate(self):
        """Shrinking never crosses into passing territory: a predicate that
        only fails on swa keeps the mask."""
        case = FuzzCase(method="burst", mask="swa", nodes=2, gpn=2,
                        seq_len=40, head_dim=8, n_heads=4)
        shrunk = shrink_case(case, lambda c: c.mask == "swa")
        assert shrunk.mask == "swa"
        assert shrunk.seq_len < case.seq_len


class TestGoldenFixtures:
    @pytest.mark.parametrize("method", sorted(METHOD_REGISTRY))
    def test_checked_in_fixture_matches(self, method):
        report = check_golden(method)
        assert report.passed, report.summary()

    def test_missing_fixture_fails_loudly(self, tmp_path):
        report = check_golden("burst", directory=tmp_path)
        assert report.missing and not report.passed
        assert "--update" in report.summary()

    def test_tampered_fixture_detected(self, tmp_path):
        path = save_golden("burst", directory=tmp_path)
        assert check_golden("burst", directory=tmp_path).passed
        with np.load(path) as data:
            arrays = {k: data[k].copy() for k in data.files}
        arrays["dq"][0, 0, 0] += 1e-6  # numeric drift far above tolerance
        np.savez_compressed(path, **arrays)
        report = check_golden("burst", directory=tmp_path)
        assert not report.passed
        assert report.errors["dq"] > 0
        assert report.errors["o"] == 0.0
