"""Tests for the paper-experiment harness: every table/figure regenerates
and exhibits the paper's qualitative result."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig02_attention_share,
    fig07_checkpoint_memory,
    fig08_logits_memory,
    fig12_end_to_end,
    fig13_peak_memory,
    fig14_attention_perf,
    run_all,
    tab01_comm_time,
    tab02_ablation,
    tab03_sparse,
    tab04_internode,
    tab05_intranode,
)


class TestHarnessMechanics:
    def test_registry_covers_all_paper_elements(self):
        assert set(EXPERIMENTS) == {
            "fig02", "tab01", "fig07", "fig08", "fig12", "fig13", "fig14",
            "tab02", "tab02-split", "tab03", "tab04", "tab05",
        }

    def test_run_all_produces_formatted_tables(self):
        results = run_all()
        for key, res in results.items():
            text = res.format()
            assert key in text
            assert len(res.rows) > 0
            assert all(len(r) == len(res.headers) for r in res.rows)

    def test_to_dict_roundtrip(self):
        res = fig02_attention_share()
        d = res.to_dict()
        assert d["id"] == "fig02"
        assert len(d["rows"]) == len(res.rows)

    def test_column_accessor(self):
        res = fig02_attention_share()
        col = res.column("seq_len")
        assert col[0] == "8K"
        with pytest.raises(ValueError):
            res.column("nope")


class TestPaperShapes:
    def test_fig02_crossover_near_64k(self):
        res = fig02_attention_share(seq_lens=[32768, 65536, 131072])
        shares = [float(v) for v in res.column("attention_%")]
        assert shares[0] < 50 < shares[2]

    def test_tab01_burst_always_cheapest(self):
        res = tab01_comm_time()
        for row in res.rows:
            ring, dbl, burst = float(row[1]), float(row[2]), float(row[3])
            assert burst < dbl < ring

    def test_fig07_seq_level_halves_spp_overhead(self):
        res = fig07_checkpoint_memory(seq_lens=[262144])
        row = res.rows[0]
        full, seq, spp = float(row[1]), float(row[2]), float(row[3])
        assert (seq - full) == pytest.approx((spp - full) / 2, rel=0.02)

    def test_fig08_llama3_4x_llama2(self):
        res = fig08_logits_memory(seq_lens=[1048576])
        m2, m3 = float(res.rows[0][1]), float(res.rows[0][2])
        assert m3 / m2 == pytest.approx(128256 / 32000, rel=0.01)

    def test_fig12_burst_wins_every_feasible_cell(self):
        res = fig12_end_to_end()
        by_setting: dict[str, dict[str, str]] = {}
        for setting, method, tgs, _, _ in res.rows:
            by_setting.setdefault(setting, {})[method] = tgs
        for setting, methods in by_setting.items():
            burst = float(methods["BurstEngine"])
            for name, tgs in methods.items():
                if name == "BurstEngine" or tgs in ("OOM", "infeasible"):
                    continue
                assert burst > float(tgs), f"{name} beat burst in {setting}"

    def test_fig12_oom_pattern(self):
        res = fig12_end_to_end()
        cells = {(r[0], r[1]): r[2] for r in res.rows}
        # Megatron-CP OOMs everywhere
        for setting in {r[0] for r in res.rows}:
            assert cells[(setting, "Megatron-CP")] == "OOM"
        # Ulysses OOMs for 14B but runs 7B
        assert cells[("14B/32GPU/1M", "DeepSpeed-Ulysses")] == "OOM"
        assert cells[("7B/32GPU/2M", "DeepSpeed-Ulysses")] not in ("OOM", "infeasible")

    def test_fig12_headline_speedup(self):
        """~1.2x over LoongTrain-USP on the 14B/32GPU/1M cell."""
        res = fig12_end_to_end()
        cells = {(r[0], r[1]): r[2] for r in res.rows}
        burst = float(cells[("14B/32GPU/1M", "BurstEngine")])
        usp = float(cells[("14B/32GPU/1M", "LoongTrain-USP")])
        assert 1.10 < burst / usp < 1.35

    def test_fig13_burst_saves_vs_tuned_baseline(self):
        res = fig13_peak_memory()
        assert res.notes, "expected savings note"
        # every per-setting saving should be positive and paper-scale
        import re

        savings = [float(s) for s in re.findall(r"(-?\d+\.\d)%", res.notes[0])]
        assert all(10 < s < 45 for s in savings)

    def test_fig14_burst_fastest_and_megatron_oom(self):
        res = fig14_attention_perf(seq_lens=[262144, 1048576])
        for row in res.rows:
            if row[1] != "OOM":
                assert float(row[4]) <= float(row[1])  # burst <= megatron
            assert float(row[4]) <= float(row[2])      # burst <= doublering
            assert float(row[4]) <= float(row[3])      # burst <= usp
        # Megatron OOM past 256K (1M row)
        assert res.rows[1][1] == "OOM"

    def test_tab02_monotone_stack(self):
        res = tab02_ablation()
        tgs = [float(r[2]) for r in res.rows[:5]]
        assert all(b >= a * 0.995 for a, b in zip(tgs, tgs[1:]))
        # fused head reduces memory at equal TGS
        assert float(res.rows[3][3]) < float(res.rows[2][3])
        # selective++ row: fastest but most memory among ckpt rows
        assert float(res.rows[5][2]) > float(res.rows[4][2])
        assert float(res.rows[5][3]) > float(res.rows[4][3])

    def test_tab02_split_sweep_frontier(self):
        from repro.experiments import tab02_split_sweep

        res = tab02_split_sweep(fractions=[0.25, 0.5, 0.75])
        tgs = [float(r[1]) for r in res.rows]
        mem = [float(r[3]) for r in res.rows]
        # more recomputation -> slower but lighter, monotonically
        assert tgs == sorted(tgs, reverse=True)
        assert mem == sorted(mem, reverse=True)

    def test_tab03_speedup_shape(self):
        res = tab03_sparse()
        causal = float(res.rows[1][2].rstrip("x"))
        swa = float(res.rows[2][2].rstrip("x"))
        assert 1.5 < causal < 2.2      # paper 1.72x
        assert 3.0 < swa < 5.5         # paper 3.68x

    def test_tab04_flat_mfu(self):
        res = tab04_internode()
        mfus = [float(r[2]) for r in res.rows]
        assert max(mfus) - min(mfus) < 2.0
        assert all(m > 40 for m in mfus)

    def test_tab05_mfu_rises_memory_falls(self):
        res = tab05_intranode()
        mfus = [float(r[2]) for r in res.rows]
        mems = [float(r[4]) for r in res.rows]
        assert mfus == sorted(mfus)
        assert mems == sorted(mems, reverse=True)
        assert all(m < 80 for m in mems)  # every CP size fits (paper table)
