"""Tests for the LM head + loss implementations (Section 3.3 / Alg. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lmhead import (
    HEAD_IMPLEMENTATIONS,
    fused_lm_head_loss,
    naive_lm_head_loss,
    tiled_lm_head_loss,
)


RNG = np.random.default_rng(99)


def make_case(n=50, d=16, v=37):
    h = RNG.normal(size=(n, d))
    w = RNG.normal(size=(v, d)) * 0.3
    y = RNG.integers(0, v, size=n)
    return h, w, y


class TestEquivalence:
    @pytest.mark.parametrize("impl_name", ["tiled-recompute", "fused"])
    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    def test_matches_naive(self, impl_name, reduction):
        h, w, y = make_case()
        ref = naive_lm_head_loss(h, w, y, reduction=reduction)
        impl = HEAD_IMPLEMENTATIONS[impl_name]
        out = impl(h, w, y, reduction=reduction, block_seq=16, block_vocab=8)
        assert out.loss == pytest.approx(ref.loss, rel=1e-12)
        np.testing.assert_allclose(out.dh, ref.dh, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(out.dw, ref.dw, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(out.lse, ref.lse, rtol=1e-10)

    def test_block_sizes_larger_than_problem(self):
        h, w, y = make_case(n=5, d=4, v=7)
        ref = naive_lm_head_loss(h, w, y)
        out = fused_lm_head_loss(h, w, y, block_seq=100, block_vocab=100)
        assert out.loss == pytest.approx(ref.loss, rel=1e-12)

    def test_gradients_match_finite_differences(self):
        h, w, y = make_case(n=8, d=4, v=6)
        res = fused_lm_head_loss(h, w, y, block_seq=4, block_vocab=4)
        eps = 1e-6
        for _ in range(6):
            i, j = RNG.integers(0, h.shape[0]), RNG.integers(0, h.shape[1])
            hp = h.copy(); hp[i, j] += eps
            hm = h.copy(); hm[i, j] -= eps
            fd = (
                naive_lm_head_loss(hp, w, y).loss
                - naive_lm_head_loss(hm, w, y).loss
            ) / (2 * eps)
            assert res.dh[i, j] == pytest.approx(fd, rel=1e-5, abs=1e-8)
        for _ in range(6):
            i, j = RNG.integers(0, w.shape[0]), RNG.integers(0, w.shape[1])
            wp = w.copy(); wp[i, j] += eps
            wm = w.copy(); wm[i, j] -= eps
            fd = (
                naive_lm_head_loss(h, wp, y).loss
                - naive_lm_head_loss(h, wm, y).loss
            ) / (2 * eps)
            assert res.dw[i, j] == pytest.approx(fd, rel=1e-5, abs=1e-8)

    def test_loss_is_cross_entropy(self):
        """Sanity: uniform logits -> loss = log(v)."""
        n, d, v = 10, 4, 32
        h = np.zeros((n, d))
        w = np.zeros((v, d))
        y = RNG.integers(0, v, size=n)
        for impl in HEAD_IMPLEMENTATIONS.values():
            assert impl(h, w, y).loss == pytest.approx(np.log(v), rel=1e-12)

    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(1, 40),
        v=st.integers(2, 50),
        bs=st.integers(1, 16),
        bv=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    def test_fused_equals_naive_property(self, n, v, bs, bv, seed):
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(n, 5))
        w = rng.normal(size=(v, 5))
        y = rng.integers(0, v, size=n)
        ref = naive_lm_head_loss(h, w, y)
        out = fused_lm_head_loss(h, w, y, block_seq=bs, block_vocab=bv)
        assert out.loss == pytest.approx(ref.loss, rel=1e-10)
        np.testing.assert_allclose(out.dh, ref.dh, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(out.dw, ref.dw, rtol=1e-8, atol=1e-10)


class TestValidation:
    def test_bad_shapes(self):
        h, w, y = make_case()
        with pytest.raises(ValueError):
            naive_lm_head_loss(h, w[:, :-1], y)
        with pytest.raises(ValueError):
            naive_lm_head_loss(h, w, y[:-1])

    def test_target_out_of_range(self):
        h, w, y = make_case(v=10)
        y = y.copy()
        y[0] = 10
        with pytest.raises(ValueError):
            fused_lm_head_loss(h, w, y)

    def test_bad_reduction(self):
        h, w, y = make_case()
        with pytest.raises(ValueError):
            naive_lm_head_loss(h, w, y, reduction="max")


class TestCostAccounting:
    """The memory/compute trade-off the paper's Fig. 8 and Table 2 rest on."""

    def test_resident_memory_ordering(self):
        h, w, y = make_case(n=64, d=8, v=128)
        naive = naive_lm_head_loss(h, w, y)
        tiled = tiled_lm_head_loss(h, w, y, block_seq=8, block_vocab=16)
        fused = fused_lm_head_loss(h, w, y, block_seq=8, block_vocab=16)
        assert fused.stats.peak_resident_bytes < tiled.stats.peak_resident_bytes
        assert tiled.stats.peak_resident_bytes < naive.stats.peak_resident_bytes
        assert naive.stats.peak_resident_bytes == 64 * 128 * 8

    def test_flops_tiled_pays_recompute(self):
        h, w, y = make_case(n=32, d=8, v=64)
        naive = naive_lm_head_loss(h, w, y)
        tiled = tiled_lm_head_loss(h, w, y)
        fused = fused_lm_head_loss(h, w, y)
        assert fused.stats.matmul_flops == naive.stats.matmul_flops
        assert tiled.stats.matmul_flops == pytest.approx(
            naive.stats.matmul_flops * 4 / 3
        )

    def test_fused_temp_bounded_by_block(self):
        h, w, y = make_case(n=64, d=8, v=128)
        fused = fused_lm_head_loss(h, w, y, block_seq=8, block_vocab=16)
        assert fused.stats.peak_temp_bytes == 8 * 128 * 8  # one seq block x v
