"""Cross-validation between independent layers of the reproduction.

The analytic Table-1 formulas, the DES schedules, and the measured traffic
logs were implemented separately; these tests pin them to each other:
in the communication-bound limit (compute ~ 0) the DES must reproduce the
closed forms, and DES link busy-time must agree with what the profiler
derives from executed traffic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import BurstEngine, EngineConfig
from repro.nn import CheckpointPolicy, TransformerConfig
from repro.nn.checkpoint import CheckpointMode
from repro.perf.cost import link_time
from repro.perf.schedules.attention import AttentionWorkload, attention_pass_time
from repro.topology import LinkClass, a800_node, make_cluster


TOPO32 = make_cluster(32)
HUGE_FLOPS = 1e30  # compute ~ 0: the comm-bound limit


class TestDESvsClosedForms:
    def test_burst_forward_commbound_matches_overlapped_phase_cost(self):
        """With zero compute, the burst forward pass's DES makespan equals
        the fully-overlapped Table-1 phase term max(I*T_intra, E*T_inter)
        for the K+V payload — with the forward's G-1 transitions: 28 intra
        and 3 inter on 4 nodes x 8 GPUs."""
        wl = AttentionWorkload(seq_len=1 << 20, hidden=5120, n_heads=40)
        des = attention_pass_time("burst", TOPO32, wl, peak_flops=HUGE_FLOPS)
        payload = 2 * wl.shard_bytes(32)
        t_intra = link_time(TOPO32, payload, LinkClass.INTRA)
        t_inter = link_time(TOPO32, payload, LinkClass.INTER)
        assert des == pytest.approx(max(28 * t_intra, 3 * t_inter), rel=1e-9)

    def test_burst_backward_commbound_closed_form(self):
        """Alg. 2 comm-bound: overlapped phases + the intra return hop."""
        wl = AttentionWorkload(seq_len=1 << 20, hidden=5120, n_heads=40)
        des = attention_pass_time("burst", TOPO32, wl, backward=True,
                                  peak_flops=HUGE_FLOPS)
        payload = wl.shard_bytes(32) * (3 + 2 / 5120)
        t_intra = link_time(TOPO32, payload, LinkClass.INTRA)
        t_inter = link_time(TOPO32, payload, LinkClass.INTER)
        expected = max(28 * t_intra, 3 * t_inter) + t_intra
        assert des == pytest.approx(expected, rel=1e-9)

    def test_flat_ring_forward_commbound_matches_lockstep_sum(self):
        """Flat ring, zero compute: makespan = (G-1) lockstep inter hops."""
        wl = AttentionWorkload(seq_len=1 << 20, hidden=5120, n_heads=40)
        des = attention_pass_time("megatron-cp", TOPO32, wl,
                                  peak_flops=HUGE_FLOPS)
        payload = 2 * wl.shard_bytes(32)
        hop = link_time(TOPO32, payload, LinkClass.INTER)
        assert des == pytest.approx(31 * hop, rel=0.02)

    def test_doublering_backward_includes_serialized_drain(self):
        """DoubleRing comm-bound backward = overlapped KV circulation +
        fully serialized gradient drain (Table 1's +2(I*T_intra +
        E*T_inter) structure) + the return hop."""
        wl = AttentionWorkload(seq_len=1 << 20, hidden=5120, n_heads=40)
        dbl = attention_pass_time("loongtrain-double", TOPO32, wl,
                                  backward=True, peak_flops=HUGE_FLOPS)
        gr = 2 * wl.shard_bytes(32)
        t_intra = link_time(TOPO32, gr, LinkClass.INTRA)
        t_inter = link_time(TOPO32, gr, LinkClass.INTER)
        kv_overlapped = max(28 * t_intra, 3 * t_inter)
        drain = 28 * t_intra + 3 * t_inter
        expected = kv_overlapped + drain + t_intra  # + intra return hop
        assert dbl == pytest.approx(expected, rel=1e-9)

    def test_compute_bound_limit_is_flops_time(self):
        """With enormous bandwidth... instead: single node intra-only and
        tiny payloads, pass time -> pure compute."""
        topo1 = make_cluster(1)
        wl = AttentionWorkload(seq_len=32768, hidden=512, n_heads=8)
        from repro.perf.schedules.attention import ATTENTION_EFFICIENCY

        t = attention_pass_time("burst", topo1, wl)
        expected = wl.fwd_flops_per_gpu(1) / (
            topo1.node.gpu.peak_flops * ATTENTION_EFFICIENCY
        )
        assert t == pytest.approx(expected, rel=1e-6)

    def test_profiler_agrees_with_link_time_model(self):
        """profile_traffic busy times are sums of per-hop link_time —
        the same primitive the DES uses."""
        from repro.attention import get_method
        from repro.masks import CausalMask
        from repro.perf.profile import profile_traffic

        topo = make_cluster(8, node=a800_node(gpus_per_node=4))
        rng = np.random.default_rng(0)
        q, k, v = (rng.normal(size=(1, 32, 8)) for _ in range(3))
        method = get_method("burst", block_size=8)
        res = method.run(topo, q, k, v, mask=CausalMask())
        prof = profile_traffic(res.comm.log, topo)["attn-fwd"]
        manual = {}
        for rec in res.comm.log.records:
            if rec.phase != "attn-fwd":
                continue
            manual.setdefault((rec.link, rec.src), 0.0)
            manual[(rec.link, rec.src)] += topo.transfer_time(rec.nbytes, rec.link)
        for link in prof.busy_time_by_link:
            expected = max(v for (l, _), v in manual.items() if l == link)
            assert prof.busy_time_by_link[link] == pytest.approx(expected)


class TestSelectiveEqualsRing:
    @settings(deadline=None, max_examples=6)
    @given(window=st.sampled_from([8, 16, 40]), seed=st.integers(0, 500))
    def test_selective_backward_equals_burst_backward(self, window, seed):
        """Two entirely different communication strategies, identical
        gradients, on random sliding-window problems."""
        from repro.attention import get_method
        from repro.masks import SlidingWindowMask
        from repro.partition import ContiguousPartitioner

        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        rng = np.random.default_rng(seed)
        q, k, v, do = (rng.normal(size=(2, 32, 8)) for _ in range(4))
        mask = SlidingWindowMask(window)
        part = ContiguousPartitioner()
        a = get_method("selective", partitioner=part, block_size=8).run(
            topo, q, k, v, mask=mask, do=do)
        b = get_method("burst", partitioner=part, block_size=8).run(
            topo, q, k, v, mask=mask, do=do)
        np.testing.assert_allclose(a.dq, b.dq, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(a.dk, b.dk, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(a.dv, b.dv, rtol=1e-9, atol=1e-11)


class TestEngineFuzz:
    @settings(deadline=None, max_examples=8)
    @given(
        dim=st.sampled_from([16, 32]),
        heads=st.sampled_from([2, 4]),
        kv_div=st.sampled_from([1, 2]),
        method=st.sampled_from(["burst", "loongtrain-double", "megatron-cp"]),
        ckpt=st.sampled_from(list(CheckpointMode)),
        head_impl=st.sampled_from(["fused", "naive", "tiled-recompute"]),
        pos=st.sampled_from(["learned", "rope"]),
        seed=st.integers(0, 100),
    )
    def test_random_configs_train_one_step(self, dim, heads, kv_div, method,
                                           ckpt, head_impl, pos, seed):
        """Any legal configuration must complete a finite training step."""
        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        cfg = TransformerConfig(
            vocab_size=32, dim=dim, n_layers=2, n_heads=heads,
            n_kv_heads=heads // kv_div, ffn_hidden=24, max_seq_len=32,
            attn_block_size=16, position_encoding=pos, seed=seed,
        )
        engine = BurstEngine(
            EngineConfig(model=cfg, method=method,
                         checkpoint=CheckpointPolicy(ckpt, 0.5),
                         head_impl=head_impl),
            topology=topo,
        )
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 32, size=16)
        result = engine.train_step(ids, np.roll(ids, -1))
        assert np.isfinite(result.loss)
        assert all(
            np.isfinite(p.data).all() for p in engine.model.parameters()
        )
