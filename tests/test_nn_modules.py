"""Tests for transformer modules, checkpoint policies, and training.

The checkpointing tests *measure* the Fig. 7 trade-off: gradients must be
identical under every policy, while peak saved activation bytes order as

    full  <  sequence-level  <  selective++  <  none

and recompute FLOPs order the opposite way.
"""

import numpy as np
import pytest

from repro.masks import SlidingWindowMask
from repro.nn import (
    Adam,
    AdamW,
    CheckpointPolicy,
    SGD,
    Tensor,
    TransformerConfig,
    TransformerLM,
    get_tracker,
    reset_tracker,
)
from repro.nn.checkpoint import CheckpointMode, checkpoint
from repro.nn.modules import CausalSelfAttention, Linear, RMSNorm, SwiGLU, TransformerBlock
from repro.nn import ops


RNG = np.random.default_rng(3)


def small_config(**overrides) -> TransformerConfig:
    base = dict(
        vocab_size=61, dim=16, n_layers=2, n_heads=2, ffn_hidden=24,
        max_seq_len=64, attn_block_size=16, seed=5,
    )
    base.update(overrides)
    return TransformerConfig(**base)


def batch(s=32, vocab=61, seed=11):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, vocab, size=s)
    targets = np.roll(ids, -1)
    return ids, targets


class TestModules:
    def test_linear_shapes_and_grad(self):
        lin = Linear(4, 6, RNG)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = lin(x)
        assert out.shape == (3, 6)
        out.sum().backward()
        assert lin.weight.grad.shape == (6, 4)

    def test_rmsnorm_unit_scale(self):
        norm = RMSNorm(8)
        x = Tensor(RNG.normal(size=(5, 8)) * 10)
        out = norm(x)
        rms = np.sqrt((out.data**2).mean(-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_swiglu_forward(self):
        ffn = SwiGLU(8, 16, RNG)
        x = Tensor(RNG.normal(size=(4, 8)))
        assert ffn(x).shape == (4, 8)

    def test_attention_head_split_invalid(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3, RNG)

    def test_attention_is_causal(self):
        """Changing a future token must not affect earlier outputs."""
        attn = CausalSelfAttention(8, 2, RNG, block_size=8)
        x1 = RNG.normal(size=(6, 8))
        x2 = x1.copy()
        x2[5] += 1.0
        o1 = attn(Tensor(x1)).data
        o2 = attn(Tensor(x2)).data
        np.testing.assert_allclose(o1[:5], o2[:5], rtol=1e-12)
        assert not np.allclose(o1[5], o2[5])

    def test_attention_sparse_mask(self):
        attn = CausalSelfAttention(8, 2, RNG, mask=SlidingWindowMask(2), block_size=8)
        x = RNG.normal(size=(8, 8))
        x2 = x.copy()
        x2[0] += 5.0  # outside window of the last token
        o1 = attn(Tensor(x)).data
        o2 = attn(Tensor(x2)).data
        np.testing.assert_allclose(o1[-1], o2[-1], rtol=1e-12)

    def test_named_parameters_coverage(self):
        model = TransformerLM(small_config())
        names = dict(model.named_parameters())
        assert any("blocks.0.attn.wq" in n for n in names)
        assert any("tok_emb" in n for n in names)
        assert model.num_parameters() == sum(p.size for p in names.values())


class TestCheckpointMechanics:
    def test_checkpoint_matches_plain(self):
        lin = Linear(6, 6, RNG)

        def body(x):
            return ops.silu(lin(x)).sum()

        x_np = RNG.normal(size=(4, 6))
        x1 = Tensor(x_np, requires_grad=True)
        body(x1).backward()
        g_plain = (x1.grad.copy(), lin.weight.grad.copy())

        lin.zero_grad()
        x2 = Tensor(x_np, requires_grad=True)
        checkpoint(body, x2).backward()
        np.testing.assert_allclose(x2.grad, g_plain[0], rtol=1e-12)
        np.testing.assert_allclose(lin.weight.grad, g_plain[1], rtol=1e-12)

    def test_checkpoint_saves_less_memory(self):
        lin = Linear(32, 32, RNG)

        def body(x):
            return ops.silu(lin(ops.silu(lin(x))))

        x_np = RNG.normal(size=(64, 32))
        reset_tracker()
        y = body(Tensor(x_np, requires_grad=True))
        peak_plain = get_tracker().peak_saved_bytes

        reset_tracker()
        y = checkpoint(body, Tensor(x_np, requires_grad=True))
        peak_ckpt = get_tracker().peak_saved_bytes
        assert peak_ckpt < peak_plain


POLICIES = {
    "none": CheckpointPolicy(CheckpointMode.NONE),
    "full": CheckpointPolicy(CheckpointMode.FULL),
    "selective_pp": CheckpointPolicy(CheckpointMode.SELECTIVE_PP),
    "sequence_level": CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
}


class TestCheckpointPolicies:
    def _run(self, policy: CheckpointPolicy):
        reset_tracker()
        model = TransformerLM(small_config(checkpoint=policy))
        ids, targets = batch()
        loss = model(ids, targets)
        fwd_peak = get_tracker().peak_saved_bytes
        loss.backward()
        grads = {n: p.grad.copy() for n, p in model.named_parameters()}
        stats = get_tracker()
        return loss.item(), grads, fwd_peak, stats.recompute_flops

    def test_all_policies_identical_loss_and_grads(self):
        ref_loss, ref_grads, _, _ = self._run(POLICIES["none"])
        for name, policy in POLICIES.items():
            if name == "none":
                continue
            loss, grads, _, _ = self._run(policy)
            assert loss == pytest.approx(ref_loss, rel=1e-12), name
            for pname, g in ref_grads.items():
                np.testing.assert_allclose(
                    grads[pname], g, rtol=1e-9, atol=1e-11,
                    err_msg=f"{name}:{pname}",
                )

    def test_forward_memory_ordering(self):
        """Fig. 7: full < sequence-level < selective++ < none."""
        peaks = {n: self._run(p)[2] for n, p in POLICIES.items()}
        assert peaks["full"] < peaks["sequence_level"]
        assert peaks["sequence_level"] < peaks["selective_pp"]
        assert peaks["selective_pp"] < peaks["none"]

    def test_sequence_level_stores_half_of_selective(self):
        """The whitelisted bytes of sequence-level (0.5 split) are half of
        selective++'s, so the *difference* over full checkpointing halves."""
        full = self._run(POLICIES["full"])[2]
        spp = self._run(POLICIES["selective_pp"])[2]
        seq = self._run(POLICIES["sequence_level"])[2]
        assert (seq - full) == pytest.approx((spp - full) / 2, rel=0.05)

    def test_recompute_flops_ordering(self):
        """selective++ skips attention recompute; sequence-level pays ~25%
        of full's attention recompute (causal, 0.5 split)."""
        flops = {n: self._run(p)[3] for n, p in POLICIES.items()}
        assert flops["none"] == 0
        assert flops["selective_pp"] == 0
        assert 0 < flops["sequence_level"] < flops["full"]
        # causal: front half of queries covers ~25% of allowed pairs
        ratio = flops["sequence_level"] / flops["full"]
        assert 0.15 < ratio < 0.35


class TestEndToEndTraining:
    @pytest.mark.parametrize("head_impl", ["naive", "tiled-recompute", "fused"])
    def test_loss_decreases(self, head_impl):
        model = TransformerLM(small_config(head_impl=head_impl))
        opt = Adam(model.parameters(), lr=3e-3)
        ids, targets = batch(s=24)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7

    def test_training_with_checkpointing_matches_without(self):
        ids, targets = batch(s=16)
        results = []
        for policy in (POLICIES["none"], POLICIES["sequence_level"]):
            model = TransformerLM(small_config(checkpoint=policy))
            opt = SGD(model.parameters(), lr=1e-2)
            for _ in range(5):
                opt.zero_grad()
                loss = model(ids, targets)
                loss.backward()
                opt.step()
            results.append(loss.item())
        assert results[0] == pytest.approx(results[1], rel=1e-10)

    def test_adamw_decays_weights(self):
        p = Tensor(np.ones(4), requires_grad=True)
        p.grad = np.zeros(4)
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        assert (p.data < 1.0).all()

    def test_optimizer_state_bytes(self):
        model = TransformerLM(small_config())
        opt = Adam(model.parameters())
        # m and v: 2x parameter bytes
        assert opt.state_bytes() == 2 * sum(p.nbytes for p in model.parameters())

    def test_logits_path_matches_loss_path(self):
        """model.forward loss == CE computed from model.logits."""
        model = TransformerLM(small_config())
        ids, targets = batch(s=16)
        loss = model(ids, targets).item()
        logits = model.logits(ids).data
        lse = np.log(np.exp(logits - logits.max(-1, keepdims=True)).sum(-1)) + logits.max(-1)
        manual = (lse - logits[np.arange(len(ids)), targets]).mean()
        assert loss == pytest.approx(manual, rel=1e-10)

    def test_too_long_sequence_rejected(self):
        model = TransformerLM(small_config(max_seq_len=8))
        ids, targets = batch(s=16)
        with pytest.raises(ValueError):
            model(ids, targets)
