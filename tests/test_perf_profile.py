"""Tests for the traffic-to-time profiling bridge."""

import numpy as np
import pytest

from repro.attention import get_method
from repro.comm import SimCommunicator
from repro.masks import CausalMask
from repro.perf.profile import profile_report, profile_traffic
from repro.topology import LinkClass, a800_node, make_cluster


TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


def run_burst_pass():
    rng = np.random.default_rng(0)
    q, k, v, do = (rng.normal(size=(2, 64, 8)) for _ in range(4))
    method = get_method("burst", block_size=16)
    res = method.run(TOPO, q, k, v, mask=CausalMask(), do=do)
    return res.comm.log


class TestProfile:
    def test_phases_present(self):
        profiles = profile_traffic(run_burst_pass(), TOPO)
        assert {"attn-fwd", "attn-bwd"} <= set(profiles)

    def test_bytes_match_log_totals(self):
        log = run_burst_pass()
        profiles = profile_traffic(log, TOPO)
        for phase, prof in profiles.items():
            assert prof.total_bytes == log.total_bytes(phase=phase)

    def test_busy_time_positive_and_link_split(self):
        profiles = profile_traffic(run_burst_pass(), TOPO)
        fwd = profiles["attn-fwd"]
        assert LinkClass.INTRA in fwd.bytes_by_link
        assert LinkClass.INTER in fwd.bytes_by_link
        assert fwd.bound_time > 0

    def test_intra_busy_time_consistent_with_volume(self):
        """Busiest-rank intra time == count * latency + bytes / bandwidth
        (at test scale the per-message latency dominates)."""
        log = run_burst_pass()
        profiles = profile_traffic(log, TOPO)
        fwd = profiles["attn-fwd"]
        per_rank = {}
        for rec in log.records:
            if rec.phase == "attn-fwd" and rec.link is LinkClass.INTRA:
                nbytes, count = per_rank.get(rec.src, (0, 0))
                per_rank[rec.src] = (nbytes + rec.nbytes, count + 1)
        link = TOPO.node.intra_link
        expected = max(
            count * link.latency + nbytes / link.bandwidth
            for nbytes, count in per_rank.values()
        )
        assert fwd.busy_time_by_link[LinkClass.INTRA] == pytest.approx(expected)

    def test_report_renders(self):
        text = profile_report(run_burst_pass(), TOPO)
        assert "attn-fwd" in text and "intra" in text and "ms" in text

    def test_empty_log(self):
        from repro.comm.traffic import TrafficLog

        assert profile_traffic(TrafficLog(), TOPO) == {}
