"""Tests for formatting helpers and the remaining comm surfaces."""

import numpy as np
import pytest

from repro.comm import SimCommunicator
from repro.topology import a800_node, make_cluster
from repro.utils import format_bytes, format_table


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (999, "999 B"),
            (1500, "1.50 KB"),
            (2_500_000, "2.50 MB"),
            (80e9, "80.00 GB"),
            (1.5e12, "1.50 TB"),
            (3e15, "3.00 PB"),
        ],
    )
    def test_values(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative(self):
        assert format_bytes(-1500) == "-1.50 KB"


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[1].startswith("-")
        assert "long_header" in lines[0]
        # columns align: every row has the separator column position
        assert lines[2].index("2") == lines[0].index("long_header")

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestGroupAllToAll:
    TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))

    def test_transposes_within_groups(self):
        comm = SimCommunicator(self.TOPO)
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        chunks = [
            [np.array([float(src * 10 + pos)]) for pos in range(4)]
            for src in range(8)
        ]
        out = comm.group_all_to_all(chunks, groups, phase="t")
        # rank 5 (group 1, position 1) receives from peers 4..7 their pos-1 chunk
        for pos, src in enumerate([4, 5, 6, 7]):
            assert out[5][pos][0] == float(src * 10 + 1)

    def test_no_cross_group_traffic(self):
        comm = SimCommunicator(self.TOPO)
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        chunks = [[np.zeros(2) for _ in range(4)] for _ in range(8)]
        comm.group_all_to_all(chunks, groups, phase="t")
        for rec in comm.log.records:
            assert (rec.src < 4) == (rec.dst < 4)

    def test_overlapping_groups_rejected(self):
        comm = SimCommunicator(self.TOPO)
        chunks = [[np.zeros(1)] * 2 for _ in range(8)]
        with pytest.raises(ValueError, match="multiple groups"):
            comm.group_all_to_all(chunks, [[0, 1], [1, 2]], phase="t")

    def test_wrong_chunk_count_rejected(self):
        comm = SimCommunicator(self.TOPO)
        chunks = [[np.zeros(1)] for _ in range(8)]  # 1 chunk, group of 2
        with pytest.raises(ValueError, match="group of size"):
            comm.group_all_to_all(chunks, [[0, 1]], phase="t")

    def test_p2p_send_bounds(self):
        comm = SimCommunicator(self.TOPO)
        with pytest.raises(ValueError):
            comm.send(0, 99, np.zeros(1), phase="t")

    def test_p2p_send_self_not_logged(self):
        comm = SimCommunicator(self.TOPO)
        out = comm.send(3, 3, np.ones(2), phase="t")
        np.testing.assert_array_equal(out, np.ones(2))
        assert comm.log.num_transfers() == 0


class TestTrafficLogFilters:
    def test_direction_filter(self):
        from repro.comm.traffic import TrafficLog, TransferRecord
        from repro.topology import LinkClass

        log = TrafficLog()
        log.add(TransferRecord(0, 1, 100, 10, LinkClass.INTRA, "p"))
        log.add(TransferRecord(1, 0, 200, 20, LinkClass.INTRA, "p"))
        assert log.total_bytes(rank=0, direction="send") == 100
        assert log.total_bytes(rank=0, direction="recv") == 200
        with pytest.raises(ValueError):
            log.total_bytes(direction="sideways")

    def test_phases_order_preserved(self):
        from repro.comm.traffic import TrafficLog, TransferRecord
        from repro.topology import LinkClass

        log = TrafficLog()
        for phase in ("b", "a", "b"):
            log.add(TransferRecord(0, 1, 1, 1, LinkClass.INTRA, phase))
        assert log.phases() == ["b", "a"]

    def test_summary_empty(self):
        from repro.comm.traffic import TrafficLog

        assert "no traffic" in TrafficLog().summary()


class TestSelectiveMethodFacade:
    def test_registered_and_runs(self):
        from repro.attention import get_method
        from repro.masks import SlidingWindowMask
        from repro.kernels import attention_reference

        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        rng = np.random.default_rng(0)
        q, k, v, do = (rng.normal(size=(2, 32, 8)) for _ in range(4))
        mask = SlidingWindowMask(8)
        res = get_method("selective", block_size=8).run(
            topo, q, k, v, mask=mask, do=do
        )
        o_ref, _ = attention_reference(q, k, v, mask=mask.dense(32))
        np.testing.assert_allclose(res.o, o_ref, rtol=1e-9, atol=1e-11)
        assert res.dq is not None
