"""GQA integration: model-level grouped-query attention through the full
single-device and distributed stacks, including adaptive backward
algorithm selection."""

import numpy as np
import pytest

from repro.attention import get_method
from repro.attention.gqa import gqa_attention_reference
from repro.engine import BurstEngine, EngineConfig
from repro.masks import CausalMask
from repro.nn import Adam, CheckpointPolicy, Tensor, TransformerConfig, TransformerLM
from repro.nn.attention_fn import flash_attention
from repro.nn.checkpoint import CheckpointMode
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(31)
TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


def gqa_cfg(**overrides):
    base = dict(
        vocab_size=61, dim=16, n_layers=2, n_heads=4, n_kv_heads=2,
        ffn_hidden=24, max_seq_len=64, attn_block_size=16, seed=5,
    )
    base.update(overrides)
    return TransformerConfig(**base)


class TestFlashAttentionGQA:
    def test_forward_matches_reference(self):
        q = Tensor(RNG.normal(size=(8, 24, 4)), requires_grad=True)
        k = Tensor(RNG.normal(size=(2, 24, 4)), requires_grad=True)
        v = Tensor(RNG.normal(size=(2, 24, 4)), requires_grad=True)
        o = flash_attention(q, k, v, mask=CausalMask(), block_size=8)
        o_ref, _ = gqa_attention_reference(
            q.data, k.data, v.data, mask=CausalMask().dense(24)
        )
        np.testing.assert_allclose(o.data, o_ref, rtol=1e-10)

    def test_backward_folds_kv_grads(self):
        q = Tensor(RNG.normal(size=(4, 16, 4)), requires_grad=True)
        k = Tensor(RNG.normal(size=(2, 16, 4)), requires_grad=True)
        v = Tensor(RNG.normal(size=(2, 16, 4)), requires_grad=True)
        flash_attention(q, k, v, block_size=8).sum().backward()
        assert k.grad.shape == (2, 16, 4)
        assert v.grad.shape == (2, 16, 4)
        assert np.isfinite(k.grad).all()

    def test_indivisible_heads_rejected(self):
        q = Tensor(RNG.normal(size=(5, 8, 4)))
        k = Tensor(RNG.normal(size=(2, 8, 4)))
        with pytest.raises(ValueError):
            flash_attention(q, k, k)


class TestGQAModel:
    def test_kv_projection_shapes(self):
        model = TransformerLM(gqa_cfg())
        attn = model.blocks[0].attn
        assert attn.wk.weight.shape == (8, 16)  # 2 kv heads x head_dim 4
        assert attn.wq.weight.shape == (16, 16)

    def test_gqa_model_has_fewer_params(self):
        mha = TransformerLM(gqa_cfg(n_kv_heads=4))
        gqa = TransformerLM(gqa_cfg(n_kv_heads=2))
        assert gqa.num_parameters() < mha.num_parameters()

    def test_invalid_kv_heads(self):
        with pytest.raises(ValueError):
            TransformerLM(gqa_cfg(n_kv_heads=3))

    def test_gqa_model_trains(self):
        model = TransformerLM(gqa_cfg())
        opt = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(4)
        ids = rng.integers(0, 61, size=32)
        targets = np.roll(ids, -1)
        losses = []
        for _ in range(20):
            opt.zero_grad()
            loss = model(ids, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8


class TestGQADistributed:
    def test_distributed_gqa_matches_local(self):
        rng = np.random.default_rng(4)
        ids = rng.integers(0, 61, size=32)
        targets = np.roll(ids, -1)
        ckpt = CheckpointPolicy(CheckpointMode.NONE)

        local = TransformerLM(gqa_cfg(checkpoint=ckpt))
        loss_local = local(ids, targets)
        loss_local.backward()
        local_grads = {n: p.grad.copy() for n, p in local.named_parameters()}

        engine = BurstEngine(
            EngineConfig(model=gqa_cfg(), checkpoint=ckpt, fsdp=False),
            topology=TOPO,
        )
        loss_dist = engine.model(ids, targets)
        loss_dist.backward()
        assert loss_dist.item() == pytest.approx(loss_local.item(), rel=1e-10)
        for name, p in engine.model.named_parameters():
            np.testing.assert_allclose(
                p.grad, local_grads[name], rtol=1e-8, atol=1e-10, err_msg=name
            )

    def test_distributed_gqa_with_checkpointing(self):
        rng = np.random.default_rng(4)
        ids = rng.integers(0, 61, size=32)
        targets = np.roll(ids, -1)
        engine = BurstEngine(EngineConfig(model=gqa_cfg()), topology=TOPO)
        losses = engine.train(ids, targets, steps=5)
        assert losses[-1] < losses[0]

    def test_adaptive_backward_reduces_traffic(self):
        """With 4x-grouped KV heads, the adaptive burst method should pick
        Algorithm 1 and move less backward data than fixed Algorithm 2."""
        n, d, hq, hkv = 64, 8, 8, 2
        q = RNG.normal(size=(hq, n, d))
        k = RNG.normal(size=(hkv, n, d))
        v = RNG.normal(size=(hkv, n, d))
        do = RNG.normal(size=(hq, n, d))
        volumes = {}
        for adaptive in (False, True):
            method = get_method("burst", block_size=16,
                                adaptive_backward=adaptive)
            res = method.run(TOPO, q, k, v, mask=CausalMask(), do=do)
            volumes[adaptive] = res.comm.log.total_elems(phase="attn-bwd")
        assert volumes[True] < volumes[False]

    def test_adaptive_backward_same_gradients(self):
        n, d, hq, hkv = 64, 8, 8, 2
        q = RNG.normal(size=(hq, n, d))
        k = RNG.normal(size=(hkv, n, d))
        v = RNG.normal(size=(hkv, n, d))
        do = RNG.normal(size=(hq, n, d))
        outs = []
        for adaptive in (False, True):
            method = get_method("burst", block_size=16,
                                adaptive_backward=adaptive)
            outs.append(method.run(TOPO, q, k, v, mask=CausalMask(), do=do))
        np.testing.assert_allclose(outs[0].dq, outs[1].dq, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(outs[0].dk, outs[1].dk, rtol=1e-9, atol=1e-11)

    def test_ulysses_rejects_gqa(self):
        n, d = 64, 8
        q = RNG.normal(size=(8, n, d))
        k = RNG.normal(size=(2, n, d))
        method = get_method("ulysses", block_size=16)
        with pytest.raises(ValueError, match="equal query/KV"):
            method.run(TOPO, q, k, k)
