"""Low-precision robustness: the algorithmic rewrites must stay accurate
when inputs live on the bf16 grid (as in the real system)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention import get_method
from repro.kernels import attention_reference, flash_attention_forward
from repro.lmhead import fused_lm_head_loss, naive_lm_head_loss
from repro.masks import CausalMask
from repro.topology import a800_node, make_cluster
from repro.utils.lowprec import bf16_eps, quantize_bf16, relative_error


RNG = np.random.default_rng(21)


class TestQuantizer:
    def test_representable_values_unchanged(self):
        # powers of two and small integers are exactly representable
        x = np.array([1.0, 2.0, -0.5, 0.0, 256.0])
        np.testing.assert_array_equal(quantize_bf16(x), x)

    def test_rounding_error_bounded_by_eps(self):
        x = RNG.normal(size=1000)
        q = quantize_bf16(x)
        rel = np.abs(q - x) / np.maximum(np.abs(x), 1e-30)
        assert rel.max() <= bf16_eps() / 2 * 1.01

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 sits exactly between 1 and 1 + 2^-7: ties to even -> 1
        assert quantize_bf16(np.array([1.0 + 2.0**-8]))[0] == 1.0
        # 1 + 3*2^-8 ties between 1 + 2^-7 and 1 + 2^-6: even -> 1 + 2^-6
        assert quantize_bf16(np.array([1.0 + 3 * 2.0**-8]))[0] == 1.0 + 2.0**-6

    @settings(deadline=None, max_examples=30)
    @given(v=st.floats(-1e10, 1e10, allow_nan=False))
    def test_idempotent(self, v):
        once = quantize_bf16(np.array([v]))
        twice = quantize_bf16(once)
        np.testing.assert_array_equal(once, twice)


class TestAlgorithmRobustness:
    def test_online_softmax_stable_at_bf16(self):
        """Tiled flash attention on bf16-grid inputs stays within a few
        bf16-eps of the dense float64 result — the online merge does not
        amplify rounding."""
        n, d, h = 64, 16, 2
        q = quantize_bf16(RNG.normal(size=(h, n, d)))
        k = quantize_bf16(RNG.normal(size=(h, n, d)))
        v = quantize_bf16(RNG.normal(size=(h, n, d)))
        mask = CausalMask().dense(n)
        o_tiled, _ = flash_attention_forward(q, k, v, mask=mask,
                                             block_q=8, block_k=8)
        o_dense, _ = attention_reference(q, k, v, mask=mask)
        # same inputs -> exact agreement (the tiling itself is exact)
        np.testing.assert_allclose(o_tiled, o_dense, rtol=1e-12, atol=1e-13)

    def test_attention_output_error_scales_with_eps(self):
        """Quantizing the inputs perturbs the output by O(eps), not worse."""
        n, d, h = 48, 8, 2
        q = RNG.normal(size=(h, n, d))
        k = RNG.normal(size=(h, n, d))
        v = RNG.normal(size=(h, n, d))
        mask = CausalMask().dense(n)
        o_exact, _ = attention_reference(q, k, v, mask=mask)
        o_q, _ = attention_reference(
            quantize_bf16(q), quantize_bf16(k), quantize_bf16(v), mask=mask
        )
        scale = np.abs(o_exact).max()
        assert np.abs(o_q - o_exact).max() < 20 * bf16_eps() * scale

    def test_burst_ring_no_extra_error_vs_dense(self):
        """The distributed ring on bf16-grid inputs equals the dense
        reference on the same inputs: the communication rewrite adds no
        numerical hazard."""
        topo = make_cluster(4, node=a800_node(gpus_per_node=4))
        n, d, h = 64, 8, 2
        q = quantize_bf16(RNG.normal(size=(h, n, d)))
        k = quantize_bf16(RNG.normal(size=(h, n, d)))
        v = quantize_bf16(RNG.normal(size=(h, n, d)))
        do = quantize_bf16(RNG.normal(size=(h, n, d)))
        method = get_method("burst", block_size=16)
        res = method.run(topo, q, k, v, mask=CausalMask(), do=do)
        from repro.kernels import attention_reference_backward

        dense = CausalMask().dense(n)
        o_ref, lse_ref = attention_reference(q, k, v, mask=dense)
        dq_ref, _, _ = attention_reference_backward(
            q, k, v, o_ref, lse_ref, do, mask=dense
        )
        np.testing.assert_allclose(res.o, o_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(res.dq, dq_ref, rtol=1e-9, atol=1e-11)

    def test_fused_head_tiling_stable_at_bf16(self):
        n, d, v = 40, 16, 64
        h = quantize_bf16(RNG.normal(size=(n, d)))
        w = quantize_bf16(RNG.normal(size=(v, d)) * 0.3)
        y = RNG.integers(0, v, size=n)
        fused = fused_lm_head_loss(h, w, y, block_seq=8, block_vocab=8)
        naive = naive_lm_head_loss(h, w, y)
        assert fused.loss == pytest.approx(naive.loss, rel=1e-12)

    def test_large_magnitude_scores_no_overflow(self):
        """Online softmax must survive bf16-scale score magnitudes (the
        reason flash kernels track the running max)."""
        n, d = 16, 4
        q = np.full((n, d), 30.0)  # scores ~ 30*30*4/2 = 1800 pre-softmax
        k = np.full((n, d), 30.0)
        v = RNG.normal(size=(n, d))
        o, lse = flash_attention_forward(q, k, v, block_q=4, block_k=4)
        assert np.isfinite(o).all() and np.isfinite(lse).all()
