"""Observability subsystem: tracer, metrics registry, exporters, CLI.

The exporter tests validate against a *real* traced training step on a
two-node cluster, so the schema checks cover every instrumented row
(compute, comm, intra-ring, inter-ring, ckpt-recompute, lmhead) rather
than synthetic spans, and the JSONL comm counters are pinned against the
TrafficLog they must reproduce exactly — including the paper's
``3Nd + 2N`` backward send volume per rank.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig
from repro.engine.trainer import Trainer
from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
from repro.nn.modules import TransformerConfig
from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    get_registry,
    get_tracer,
    spans_to_chrome_json,
    trace_span,
    tracing_enabled,
    use_tracing,
    validate_chrome_trace,
    validate_metrics_jsonl,
)
from repro.obs.report import diff_traces, observed_ring_counts, time_by_phase
from repro.testing.invariants import expected_backward_elems
from repro.topology import a800_node, make_cluster

REPO = Path(__file__).resolve().parents[1]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=600,
    )


def tiny_engine(n_layers: int = 2) -> BurstEngine:
    """The quickstart-shaped config: 8 GPUs over 2 nodes, burst attention,
    sequence-level selective checkpointing, fused LM head."""
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    return BurstEngine(
        EngineConfig(
            model=TransformerConfig(
                vocab_size=128, dim=32, n_layers=n_layers, n_heads=4,
                ffn_hidden=64, max_seq_len=128, attn_block_size=32,
            ),
            method="burst",
            checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
            head_impl="fused",
        ),
        topology=topology,
    )


def traced_step(tmp_path, n_layers: int = 2):
    engine = tiny_engine(n_layers)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 128, 128)
    targets = rng.integers(0, 128, 128)
    metrics = tmp_path / "metrics.jsonl"
    trainer = Trainer(engine=engine, metrics_path=str(metrics))
    with use_tracing() as tracer:
        trainer.fit([(ids, targets)], steps=1)
    return engine, tracer.spans(), metrics


class TestTracer:
    def test_disabled_by_default_returns_noop(self):
        assert not tracing_enabled()
        assert trace_span("x", phase="compute") is NOOP_SPAN

    def test_disabled_records_nothing_and_is_cheap(self):
        tracer = get_tracer()
        before = len(tracer.spans())
        t0 = time.perf_counter()
        for _ in range(100_000):
            with trace_span("hot", phase="compute") as sp:
                sp["k"] = 1
        elapsed = time.perf_counter() - t0
        assert len(tracer.spans()) == before
        # Pure flag-check + context-manager overhead; generous absolute
        # bound so slow CI machines don't flake.
        assert elapsed < 1.0

    def test_nesting_depth_and_attrs(self):
        with use_tracing() as tracer:
            with trace_span("outer", phase="a") as outer:
                outer["n"] = 3
                with trace_span("inner", phase="b", static=True):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1
        assert spans["outer"].attrs["n"] == 3
        assert spans["inner"].attrs["static"] is True
        assert spans["inner"].ts >= spans["outer"].ts
        inner_end = spans["inner"].ts + spans["inner"].dur
        outer_end = spans["outer"].ts + spans["outer"].dur
        assert inner_end <= outer_end + 1e-9

    def test_use_tracing_restores_disabled(self):
        with use_tracing():
            assert tracing_enabled()
        assert not tracing_enabled()


class TestMetricsRegistry:
    def test_counter_labels_and_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", help="cache hits")
        c.inc()
        c.inc(2, kind="a")
        c.inc(3, kind="b")
        snap = reg.snapshot()
        assert snap["hits"][""] == 1
        assert snap["hits"]["kind=a"] == 2
        assert snap["hits"]["kind=b"] == 3
        reg.reset()
        assert reg.counter("hits").value() == 0

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.dec(2)
        assert g.value() == 3
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 3
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["total"] == 6.0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestCounterMigration:
    """The tileplan / memory module counters are registry-backed but the
    historical mutation idiom must keep working verbatim."""

    def test_tileplan_aliases_mirror_registry(self):
        from repro.kernels.tileplan import counters

        counters.reset()
        counters.computed_full += 3
        counters.skipped_empty += 1
        assert counters.computed == 3
        snap = get_registry().snapshot()
        assert snap["tileplan.computed_full"] == 3
        assert snap["tileplan.skipped_empty"] == 1
        local = counters.snapshot()
        assert local["computed_full"] == 3
        assert local["tiles_skipped"] == 1
        counters.reset()
        assert get_registry().snapshot()["tileplan.computed_full"] == 0

    def test_memory_tracker_mirrors_registry(self):
        from repro.nn.memory import get_tracker, reset_tracker

        reset_tracker()
        tracker = get_tracker()
        handle = tracker.register(1024)
        assert get_registry().snapshot()["memory.current_saved_bytes"] == 1024
        assert get_registry().snapshot()["memory.peak_saved_bytes"] == 1024
        tracker.release(handle)
        assert get_registry().snapshot()["memory.current_saved_bytes"] == 0
        assert get_registry().snapshot()["memory.peak_saved_bytes"] == 1024
        reset_tracker()


class TestChromeTraceExport:
    def test_traced_step_schema_and_rows(self, tmp_path):
        _, spans, _ = traced_step(tmp_path)
        path = tmp_path / "trace.json"
        payload = spans_to_chrome_json(spans, str(path), metadata={"m": 1})
        validate_chrome_trace(payload)  # raises on any schema violation
        on_disk = json.loads(path.read_text())
        assert on_disk["metadata"] == {"m": 1}
        events = [e for e in on_disk["traceEvents"] if e["ph"] == "X"]
        for e in events:
            for key in ("name", "ts", "dur", "pid", "tid", "args"):
                assert key in e, f"event missing {key}: {e}"
            assert e["pid"] == 2  # observed process, next to the DES pid 1
        rows = {
            e["args"]["name"]
            for e in on_disk["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # Acceptance: distinct rows for compute, both ring link classes,
        # checkpoint recompute and the LM head.
        for expected in ("compute", "intra-ring", "inter-ring",
                         "ckpt-recompute", "lmhead", "comm", "step"):
            assert expected in rows, f"missing trace row {expected}: {rows}"

    def test_ring_rows_match_schedule_structure(self, tmp_path):
        engine, spans, _ = traced_step(tmp_path)
        payload = spans_to_chrome_json(spans)
        counts = observed_ring_counts(payload)
        # double ring on 8 ranks / 4 per node: 6 intra + 1 inter per pass,
        # one pass per layer per direction (recompute hits the cache and
        # must not add ring traffic).
        n_layers = engine.config.model.n_layers
        for logical in ("attn-fwd", "attn-bwd"):
            assert counts[logical] == {
                "intra": 6 * n_layers, "inter": 1 * n_layers
            }, counts

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})  # zero spans
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "a", "ts": 0, "pid": 1, "tid": 1},
            ]})  # missing dur
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0,
                 "pid": 1, "tid": 1, "args": {}},
                {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0,
                 "pid": 1, "tid": 1, "args": {}},
            ]})  # overlapping, not nested, same thread

    def test_time_by_phase_unions_nested_spans(self, tmp_path):
        _, spans, _ = traced_step(tmp_path)
        payload = spans_to_chrome_json(spans)
        phases = time_by_phase(payload)
        step = phases.pop("step")
        # every phase is covered by (nested under) the step span
        for name, us in phases.items():
            assert 0 < us <= step + 1e-6, (name, us, step)


class TestStepMetricsJsonl:
    def test_jsonl_matches_traffic_log_exactly(self, tmp_path):
        engine, _, metrics = traced_step(tmp_path)
        records = validate_metrics_jsonl(metrics.read_text())
        assert len(records) == 1
        line = records[0]
        log = engine.comm.log
        assert line["comm_elems"] == log.total_elems()
        assert line["comm_bytes"] == log.total_bytes()
        by_phase = {
            phase: sum(r.nelems for r in log.records if r.phase == phase)
            for phase in log.phases()
        }
        assert {p: d["elems"] for p, d in line["comm_by_phase"].items()} == by_phase

    def test_backward_volume_pin_3nd_plus_2n(self, tmp_path):
        """Per-rank attn-bwd send volume in the JSONL equals the paper's
        ``3Nd + 2N`` (per head) times the layer count."""
        engine, _, metrics = traced_step(tmp_path)
        line = validate_metrics_jsonl(metrics.read_text())[0]
        cfg = engine.config.model
        head_dim = cfg.dim // cfg.n_heads
        full = expected_backward_elems(
            "alg2", cfg.max_seq_len, head_dim, cfg.n_heads
        )
        g = engine.topology.world_size
        schedule = engine.method._schedule(engine.topology)
        home = {
            r for r, dst in enumerate(schedule.return_permutation()) if r == dst
        }
        per_rank = line["per_rank_send_elems"]["attn-bwd"]
        for r in range(g):
            expected = cfg.n_layers * (full - (full // g if r in home else 0))
            assert per_rank[str(r)] == expected, (r, per_rank)

    def test_validator_rejects_bad_lines(self):
        with pytest.raises(ValueError):
            validate_metrics_jsonl("")
        with pytest.raises(ValueError):
            validate_metrics_jsonl('{"step": 0}')  # missing comm keys
        with pytest.raises(ValueError):
            validate_metrics_jsonl("not json")


class TestDiff:
    def test_quickstart_diff_is_clean(self, tmp_path):
        from repro.obs.report import build_predicted_trace
        from repro.perf.schedules.attention import AttentionWorkload

        engine, spans, _ = traced_step(tmp_path)
        observed = spans_to_chrome_json(spans)
        predicted = build_predicted_trace(
            "burst", engine.topology,
            AttentionWorkload(seq_len=128, hidden=32, n_heads=4),
        )
        ok, lines = diff_traces(observed, predicted)
        assert ok, "\n".join(lines)

    def test_diff_flags_missing_inter_transitions(self, tmp_path):
        from repro.obs.report import build_predicted_trace
        from repro.perf.schedules.attention import AttentionWorkload

        engine, spans, _ = traced_step(tmp_path)
        # Drop the inter-ring transitions: the structure check must fail.
        pruned = [s for s in spans if s.phase != "inter-ring"]
        observed = spans_to_chrome_json(pruned)
        predicted = build_predicted_trace(
            "burst", engine.topology,
            AttentionWorkload(seq_len=128, hidden=32, n_heads=4),
        )
        ok, lines = diff_traces(observed, predicted)
        assert not ok, "\n".join(lines)


class TestProfileGuard:
    def test_empty_traffic_log_reports_explicitly(self):
        from repro.comm import SimCommunicator
        from repro.perf.profile import profile_report, profile_traffic

        topology = make_cluster(4, node=a800_node(gpus_per_node=2))
        comm = SimCommunicator(topology)
        assert profile_traffic(comm.log, topology) == {}
        assert profile_report(comm.log, topology) == "(no traffic recorded)"


class TestObsCLI:
    def test_trace_report_diff_round_trip(self, tmp_path):
        out = tmp_path / "obs"
        proc = run_cli("repro.obs", "trace-step", "--out-dir", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = run_cli(
            "repro.obs", "report", str(out / "trace.json"),
            "--metrics", str(out / "metrics.jsonl"),
        )
        assert report.returncode == 0, report.stdout + report.stderr
        assert "time by phase" in report.stdout
        assert "intra" in report.stdout
        diff = run_cli(
            "repro.obs", "diff", str(out / "trace.json"),
            "--predicted", str(out / "predicted.json"),
        )
        assert diff.returncode == 0, diff.stdout + diff.stderr
        assert "schedule diff: OK" in diff.stdout

    def test_report_rejects_garbage_trace(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}')
        proc = run_cli("repro.obs", "report", str(bad))
        assert proc.returncode == 1
        assert "invalid trace" in proc.stderr
