"""Blockwise (BPT-style) SwiGLU FFN: bitwise identity and memory pins.

The fused FFN's contract has two halves:

* **Numerics** — ``swiglu_mlp_forward/backward`` (and the fused
  :func:`~repro.nn.mlp_fn.blockwise_mlp` node above them) are
  bitwise-identical to the composed five-node SwiGLU graph for every
  chunk size, including chunks that don't divide the sequence, chunks at
  or past the sequence length, and shapes below the chunking engagement
  gates (which must fall back to the literal dense code path).
* **Memory** — the fused node saves only ``x`` + weights; the closed
  forms in :mod:`repro.perf.memory` must match the live
  :class:`~repro.nn.memory.MemoryTracker` byte for byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    MIN_FULL_GEMM_OUT,
    chunk_bounds,
    swiglu_dense_backward,
    swiglu_dense_forward,
    swiglu_mlp_backward,
    swiglu_mlp_forward,
    use_backend,
    uses_chunking,
)
from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
from repro.nn.memory import get_tracker
from repro.nn.modules import SwiGLU, TransformerBlock
from repro.nn.tensor import Tensor
from repro.perf.memory import (
    swiglu_chunked_transient_bytes,
    swiglu_dense_saved_bytes,
    swiglu_fused_saved_bytes,
)


def _weights(rng, dim, hidden):
    wg = rng.normal(size=(hidden, dim))
    wu = rng.normal(size=(hidden, dim))
    wd = rng.normal(size=(dim, hidden))
    return wg, wu, wd


def _kernel_case(seq, dim, hidden, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(seq, dim))
    dy = rng.normal(size=(seq, dim))
    return (x, dy, *_weights(rng, dim, hidden))


class TestChunkBounds:
    def test_covers_sequence_with_ragged_tail(self):
        bounds = chunk_bounds(70, 32)
        assert bounds == [(0, 32), (32, 64), (64, 70)]
        assert chunk_bounds(64, 32) == [(0, 32), (32, 64)]


class TestKernelBitwise:
    # S=64, dim=32, hidden=64 clears both engagement gates
    # (S*hidden = 4096, S*dim = 2048 >= MIN_FULL_GEMM_OUT).
    @pytest.mark.parametrize("chunk", [5, 7, 16, 24, 31, 48])
    def test_chunked_matches_dense_bitwise(self, chunk):
        x, dy, wg, wu, wd = _kernel_case(64, 32, 64)
        assert uses_chunking(x, wg, wd, chunk)
        y_ref = swiglu_dense_forward(x, wg, wu, wd)
        g_ref = swiglu_dense_backward(x, wg, wu, wd, dy)
        y = swiglu_mlp_forward(x, wg, wu, wd, chunk_size=chunk)
        grads = swiglu_mlp_backward(x, wg, wu, wd, dy, chunk_size=chunk)
        assert np.array_equal(y, y_ref)
        for name, a, b in zip(("dx", "dwg", "dwu", "dwd"), grads, g_ref):
            assert np.array_equal(a, b), f"chunk={chunk}: {name} diverged"

    @pytest.mark.parametrize("chunk", [64, 65, 1000, None])
    def test_chunk_at_or_past_seq_degenerates_to_dense(self, chunk):
        x, dy, wg, wu, wd = _kernel_case(64, 32, 64)
        assert not uses_chunking(x, wg, wd, chunk)
        y = swiglu_mlp_forward(x, wg, wu, wd, chunk_size=chunk)
        assert np.array_equal(y, swiglu_dense_forward(x, wg, wu, wd))

    def test_short_sequence_falls_back(self):
        x, dy, wg, wu, wd = _kernel_case(8, 32, 64)
        assert not uses_chunking(x, wg, wd, 4)
        y = swiglu_mlp_forward(x, wg, wu, wd, chunk_size=4)
        assert np.array_equal(y, swiglu_dense_forward(x, wg, wu, wd))

    def test_small_output_gate_falls_back(self):
        # S*hidden = 1024 < MIN_FULL_GEMM_OUT: below the empirically
        # mapped BLAS small-output kernel boundary, so chunking must not
        # engage (the tiny-GEMM accumulation order differs there).
        x, dy, wg, wu, wd = _kernel_case(32, 8, 32)
        assert 32 * 32 < MIN_FULL_GEMM_OUT
        assert not uses_chunking(x, wg, wd, 16)
        grads = swiglu_mlp_backward(x, wg, wu, wd, dy, chunk_size=16)
        g_ref = swiglu_dense_backward(x, wg, wu, wd, dy)
        for a, b in zip(grads, g_ref):
            assert np.array_equal(a, b)


def _run_module(seq, dim, hidden, chunk, x_data, dy, backend="reference"):
    module = SwiGLU(dim, hidden, np.random.default_rng(9),
                    mlp_chunk_size=chunk)
    x = Tensor(x_data.copy(), requires_grad=True)
    with use_backend(backend):
        y = module(x)
        y.backward(dy)
    return (
        y.data, x.grad, module.gate.weight.grad, module.up.weight.grad,
        module.down.weight.grad,
    )


class TestModuleBitwise:
    @settings(deadline=None, max_examples=12)
    @given(
        seq=st.integers(16, 80),
        dim=st.integers(4, 24),
        hidden=st.integers(8, 48),
        chunk=st.integers(1, 96),
        seed=st.integers(0, 5),
    )
    def test_fused_matches_composed_bitwise(self, seq, dim, hidden, chunk,
                                            seed):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(seq, dim))
        dy = rng.normal(size=(seq, dim))
        ref = _run_module(seq, dim, hidden, None, x_data, dy)
        fused = _run_module(seq, dim, hidden, chunk, x_data, dy)
        threaded = _run_module(seq, dim, hidden, chunk, x_data, dy,
                               backend="threaded")
        names = ("y", "dx", "dwg", "dwu", "dwd")
        for name, a, b, c in zip(names, ref, fused, threaded):
            assert np.array_equal(a, b), f"reference fused: {name} diverged"
            assert np.array_equal(a, c), f"threaded fused: {name} diverged"

    def test_checkpoint_replay_matches_eager(self):
        # FULL checkpointing (layer re-run in backward) composed with the
        # blockwise FFN must reproduce the eager blockwise gradients.
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(48, 16))
        dy = rng.normal(size=(48, 16))

        def run(policy):
            block = TransformerBlock(
                16, 2, 32, np.random.default_rng(4), policy=policy,
            )
            x = Tensor(x_data.copy(), requires_grad=True)
            block(x).backward(dy)
            return (
                x.grad, block.ffn.gate.weight.grad,
                block.ffn.up.weight.grad, block.ffn.down.weight.grad,
            )

        eager = run(CheckpointPolicy(mlp_chunk_size=16))
        ckpt = run(CheckpointPolicy(
            mode=CheckpointMode.FULL, mlp_chunk_size=16,
        ))
        for a, b in zip(eager, ckpt):
            assert np.array_equal(a, b)

    def test_set_policy_switches_ffn_to_blockwise(self):
        block = TransformerBlock(16, 2, 32, np.random.default_rng(0))
        assert block.ffn.mlp_chunk_size is None
        block.set_policy(CheckpointPolicy.parse("full", mlp_chunk_size=8))
        assert block.ffn.mlp_chunk_size == 8

    def test_policy_validates_chunk_size(self):
        with pytest.raises(ValueError, match="mlp_chunk_size"):
            CheckpointPolicy(mlp_chunk_size=0)


class TestMemoryPins:
    SEQ, DIM, HID = 200, 24, 96

    def _saved_during_forward(self, chunk):
        tracker = get_tracker()
        module = SwiGLU(self.DIM, self.HID, np.random.default_rng(2),
                        mlp_chunk_size=chunk)
        x = Tensor(np.random.default_rng(3).normal(size=(self.SEQ, self.DIM)),
                   requires_grad=True)
        base = tracker.current_saved_bytes
        y = module(x)
        saved = tracker.current_saved_bytes - base
        y.backward(np.ones_like(y.data))  # drain saves
        return saved

    def test_closed_forms_match_live_tracker(self):
        dense = self._saved_during_forward(None)
        fused = self._saved_during_forward(64)
        assert dense == swiglu_dense_saved_bytes(self.SEQ, self.DIM, self.HID)
        assert fused == swiglu_fused_saved_bytes(self.SEQ, self.DIM, self.HID)
        assert dense > fused  # the point of the exercise

    def test_transient_model_shrinks_with_chunk(self):
        full = swiglu_chunked_transient_bytes(self.SEQ, self.DIM, self.HID,
                                              None)
        assert full == swiglu_chunked_transient_bytes(
            self.SEQ, self.DIM, self.HID, self.SEQ
        )
        sizes = [swiglu_chunked_transient_bytes(self.SEQ, self.DIM, self.HID,
                                                c)
                 for c in (200, 100, 50, 25)]
        assert sizes[0] == full
        assert sizes == sorted(sizes, reverse=True)
