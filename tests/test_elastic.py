"""Elastic rank-failure recovery: lease-based detection, topology shrink,
snapshot integrity gating, and bitwise deterministic replay.

The acceptance matrix itself — {crash, hang, straggler} x method x
ring-mode, every cell detecting, shrinking and replaying bitwise — lives in
:func:`repro.resilience.chaos.run_rank_fault_matrix`; this file unit-tests
every layer underneath it and runs one representative matrix cell per
fault kind.
"""

import os

import numpy as np
import pytest

from repro.comm import (
    NOMINAL_OP_S,
    FailureDetector,
    LeaseConfig,
    OpTiming,
    RankFailure,
    SimClock,
    SimCommunicator,
)
from repro.nn.serialization import CheckpointError, verify_train_state
from repro.obs.metrics import get_registry
from repro.perf.cost import (
    attention_step_sizes,
    degraded_attention_step_sizes,
    degraded_table1_comm_times,
    degraded_topology,
    failure_detection_time,
    rank_failure_downtime,
    table1_comm_times,
)
from repro.resilience import (
    CrashRankComm,
    HangRankComm,
    RANK_FAULT_REGISTRY,
    SnapshotStore,
    StragglerRankComm,
    make_rank_fault,
    replan_partition,
)
from repro.topology import a800_node, make_cluster, shrink_cluster


def topo4():
    return make_cluster(4, node=a800_node(gpus_per_node=4))


def bufs4(n=2):
    return [np.full(n, float(r)) for r in range(4)]


# --- simulated clock & lease policy ------------------------------------------


class TestSimClock:
    def test_starts_at_zero_and_accumulates(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)


class TestLeaseConfig:
    def test_escalation_ladder(self):
        lease = LeaseConfig()
        assert [lease.lease_at(e) for e in range(5)] == [
            3.0, 6.0, 12.0, 24.0, 24.0  # saturates at max_extensions
        ]
        assert lease.max_lease_s == 24.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseConfig(op_deadline_s=0.0)
        with pytest.raises(ValueError):
            LeaseConfig(escalation_factor=0.5)
        with pytest.raises(ValueError):
            LeaseConfig(max_extensions=-1)
        with pytest.raises(ValueError):
            LeaseConfig(crash_notice_s=5.0)  # exceeds op_deadline_s

    def test_cost_model_mirrors_lease_protocol(self):
        """`failure_detection_time` defaults stay in lockstep with
        LeaseConfig defaults — the analytic layer and the runtime must
        never disagree about detection latency."""
        lease = LeaseConfig()
        assert failure_detection_time("crash") == lease.crash_notice_s
        assert failure_detection_time("hang") == lease.op_deadline_s
        assert failure_detection_time("straggler") == lease.max_lease_s
        with pytest.raises(ValueError):
            failure_detection_time("gremlin")


# --- topology shrink ----------------------------------------------------------


class TestShrinkCluster:
    def test_single_failure_repacks_nodes(self):
        shrunk = shrink_cluster(topo4(), [1])
        assert shrunk.world_size == 3
        assert shrunk.gpus_per_node == 3
        assert shrunk.num_nodes == 1

    def test_multi_node_shrink(self):
        topo = make_cluster(8, 4)
        shrunk = shrink_cluster(topo, [0, 5])
        assert shrunk.world_size == 6
        # 6 survivors repack as 2 nodes x 3 (largest width <= 4 dividing 6)
        assert shrunk.gpus_per_node == 3
        assert shrunk.num_nodes == 2

    def test_duplicate_failures_counted_once(self):
        shrunk = shrink_cluster(topo4(), [2, 2])
        assert shrunk.world_size == 3

    def test_all_dead_rejected(self):
        with pytest.raises(ValueError):
            shrink_cluster(topo4(), [0, 1, 2, 3])

    def test_unknown_rank_rejected(self):
        with pytest.raises(ValueError):
            shrink_cluster(topo4(), [7])

    def test_node_spec_preserved(self):
        topo = topo4()
        shrunk = shrink_cluster(topo, [0])
        assert shrunk.node.gpu is topo.node.gpu


# --- rank-fault injectors -----------------------------------------------------


class TestRankFaultInjectors:
    def test_registry_and_factory(self):
        assert set(RANK_FAULT_REGISTRY) == {"crash", "hang", "straggler"}
        comm = make_rank_fault("crash", topo4(), rank=2)
        assert isinstance(comm, CrashRankComm)
        with pytest.raises(ValueError):
            make_rank_fault("flood", topo4())

    def test_victim_rank_validated(self):
        with pytest.raises(ValueError):
            CrashRankComm(topo4(), rank=4)

    def test_failure_is_permanent_and_timing_consumed_once(self):
        comm = HangRankComm(topo4(), rank=1, at_call=1)
        comm.all_reduce(bufs4(), phase="p")
        timing = comm.pop_op_timing()
        assert timing.delays == {1: float("inf")}
        assert timing.kinds == {1: "hang"}
        assert comm.pop_op_timing() is None  # consumed
        comm.all_reduce(bufs4(), phase="p")  # still failed on later ops
        assert comm.pop_op_timing().kinds == {1: "hang"}
        assert comm.injections == 1

    def test_at_step_targeting(self):
        comm = CrashRankComm(topo4(), rank=0, at_step=2, at_call=1)
        comm.on_step_start(0)
        comm.all_reduce(bufs4(), phase="p")
        assert not comm.failed
        comm.on_step_start(2)
        comm.all_reduce(bufs4(), phase="p")
        assert comm.failed

    def test_straggler_delay_and_describe(self):
        comm = StragglerRankComm(topo4(), slowdown_factor=6.0, rank=3)
        comm.all_reduce(bufs4(), phase="p")
        assert comm.pop_op_timing().delays == {3: 6.0 * NOMINAL_OP_S}
        assert "slowdown=6" in comm.describe()
        with pytest.raises(ValueError):
            StragglerRankComm(topo4(), slowdown_factor=1.0)

    def test_numerics_untouched(self):
        """Injection only reports timing; payloads stay correct, so the
        detector (not data corruption) is what surfaces the failure."""
        comm = CrashRankComm(topo4(), rank=1, at_call=1)
        out = comm.all_reduce(bufs4(), phase="p")
        np.testing.assert_allclose(out[0], np.full(2, 6.0))


# --- failure detector ---------------------------------------------------------


class TestFailureDetector:
    def test_crash_detected_fast(self):
        det = FailureDetector(CrashRankComm(topo4(), rank=2, at_call=1))
        with pytest.raises(RankFailure) as exc_info:
            det.all_reduce(bufs4(), phase="grad-sync")
        failure = exc_info.value
        assert failure.rank == 2
        assert failure.kind == "crash"
        assert failure.op == "all_reduce"
        assert failure.phase == "grad-sync"
        assert failure.deadline == LeaseConfig().crash_notice_s
        assert det.clock.now == pytest.approx(0.5)

    def test_hang_waits_out_the_full_lease(self):
        det = FailureDetector(HangRankComm(topo4(), rank=0, at_call=1))
        with pytest.raises(RankFailure) as exc_info:
            det.all_reduce(bufs4(), phase="p")
        assert exc_info.value.kind == "hang"
        assert exc_info.value.deadline == LeaseConfig().op_deadline_s
        assert det.clock.now == pytest.approx(3.0)

    def test_mild_straggler_tolerated_with_extension(self):
        det = FailureDetector(
            StragglerRankComm(topo4(), slowdown_factor=4.0, rank=1)
        )
        out = det.all_reduce(bufs4(), phase="p")
        assert out is not None
        assert det.extensions == {1: 1}  # 4s > 3s lease -> one extension
        assert det.tolerated == [(1, "all_reduce", 1)]
        assert det.clock.now == pytest.approx(4.0)  # op completed at 4s
        det.all_reduce(bufs4(), phase="p")  # extended lease now covers it
        assert det.extensions == {1: 1}
        assert len(det.tolerated) == 1

    def test_fatal_straggler_declared_dead(self):
        det = FailureDetector(
            StragglerRankComm(topo4(), slowdown_factor=64.0, rank=3)
        )
        with pytest.raises(RankFailure) as exc_info:
            det.all_reduce(bufs4(), phase="p")
        failure = exc_info.value
        assert failure.kind == "straggler"
        assert failure.deadline == LeaseConfig().max_lease_s  # 24s
        assert det.extensions[3] == LeaseConfig().max_extensions

    def test_detection_deferred_to_participating_op(self):
        """A failure triggered during an op the victim is not part of is
        detected at the victim's next participating op, not dropped."""
        det = FailureDetector(CrashRankComm(topo4(), rank=3, at_call=1))
        det.ring_shift(bufs4(), [0, 1, 2], phase="p")  # victim absent
        with pytest.raises(RankFailure):
            det.all_reduce(bufs4(), phase="p")

    def test_plain_communicator_passes_at_nominal_speed(self):
        det = FailureDetector(SimCommunicator(topo4()))
        det.all_reduce(bufs4(), phase="p")
        det.all_reduce(bufs4(), phase="p")
        assert det.clock.now == pytest.approx(2 * NOMINAL_OP_S)
        assert det.call_index == 2

    def test_step_attribution(self):
        det = FailureDetector(CrashRankComm(topo4(), rank=0, at_call=1))
        det.on_step_start(5)
        assert det.inner.current_step == 5  # forwarded to the injector
        with pytest.raises(RankFailure) as exc_info:
            det.all_reduce(bufs4(), phase="p")
        assert exc_info.value.step == 5

    def test_metrics_family_emitted(self):
        reg = get_registry()
        before = reg.counter("resilience.rank_failures").value(
            kind="crash", op="all_reduce"
        )
        det = FailureDetector(CrashRankComm(topo4(), rank=1, at_call=1))
        with pytest.raises(RankFailure):
            det.all_reduce(bufs4(), phase="p")
        after = reg.counter("resilience.rank_failures").value(
            kind="crash", op="all_reduce"
        )
        assert after == before + 1

    def test_passthrough_properties(self):
        inner = SimCommunicator(topo4())
        det = FailureDetector(inner)
        assert det.topology is inner.topology
        assert det.log is inner.log
        assert det.world_size == 4


# --- snapshot integrity -------------------------------------------------------


@pytest.fixture()
def snapshotting_trainer(tmp_path):
    from repro.engine import BurstEngine, Trainer
    from repro.nn.rng import set_seed
    from repro.resilience.chaos import (
        ELASTIC_SEQ, _make_batches, _make_elastic_config,
    )

    set_seed(0)
    trainer = Trainer(BurstEngine(_make_elastic_config("burst")), clip_norm=1.0)
    trainer.fit(_make_batches(seed=0, seq=ELASTIC_SEQ), 2)
    return trainer


class TestSnapshotIntegrity:
    def test_valid_snapshot_verifies(self, snapshotting_trainer, tmp_path):
        path = os.path.join(tmp_path, "snap.npz")
        snapshotting_trainer.save_state(path)
        meta = verify_train_state(path)
        assert meta["step"] == 2

    def test_truncated_snapshot_rejected(self, snapshotting_trainer, tmp_path):
        path = os.path.join(tmp_path, "snap.npz")
        snapshotting_trainer.save_state(path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            verify_train_state(path)

    def test_missing_checksum_rejected_as_partial(
        self, snapshotting_trainer, tmp_path
    ):
        from repro.nn.serialization import CHECKSUM_KEY

        path = os.path.join(tmp_path, "snap.npz")
        snapshotting_trainer.save_state(path)
        arrays = dict(np.load(path, allow_pickle=False))
        arrays.pop(CHECKSUM_KEY)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="partial"):
            verify_train_state(path)

    def test_corrupted_payload_rejected(self, snapshotting_trainer, tmp_path):
        from repro.nn.serialization import CHECKSUM_KEY

        path = os.path.join(tmp_path, "snap.npz")
        snapshotting_trainer.save_state(path)
        arrays = dict(np.load(path, allow_pickle=False))
        victim = next(k for k in arrays if k.startswith("param:"))
        arrays[victim] = arrays[victim] + 1e-3
        np.savez(path, **arrays)  # stale checksum now lies
        assert CHECKSUM_KEY in arrays
        with pytest.raises(CheckpointError):
            verify_train_state(path)

    def test_store_rotation_and_paths(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for step in range(4):
            open(store.path_for(step), "wb").write(b"x")
        assert store.steps() == [0, 1, 2, 3]
        assert store.prune() == [0, 1]
        assert store.steps() == [2, 3]

    def test_latest_valid_skips_corrupt_newest(
        self, snapshotting_trainer, tmp_path
    ):
        """A snapshot corrupted mid-recovery is skipped: the previous
        complete one is used instead."""
        store = SnapshotStore(os.path.join(tmp_path, "snaps"))
        snapshotting_trainer.save_state(store.path_for(1))
        snapshotting_trainer.save_state(store.path_for(2))
        blob = open(store.path_for(2), "rb").read()
        open(store.path_for(2), "wb").write(blob[:100])  # torn write
        step, path = store.latest_valid()
        assert step == 1
        assert path == store.path_for(1)

    def test_latest_valid_none_when_all_bad(self, tmp_path):
        store = SnapshotStore(os.path.join(tmp_path, "snaps"))
        assert store.latest_valid() is None
        open(store.path_for(0), "wb").write(b"garbage")
        assert store.latest_valid() is None

    def test_store_validates_keep(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(str(tmp_path), keep=0)


# --- partition re-planning ----------------------------------------------------


class TestReplanPartition:
    def test_replans_for_survivors(self):
        from repro.partition import ZigzagPartitioner

        part = ZigzagPartitioner()
        healthy = replan_partition(part, 24, 4)
        degraded = replan_partition(part, 24, 3)
        assert [len(s) for s in healthy] == [6, 6, 6, 6]
        assert [len(s) for s in degraded] == [8, 8, 8]
        # every token is still covered exactly once
        assert sorted(np.concatenate(degraded).tolist()) == list(range(24))

    def test_infeasible_shrink_is_a_planning_error(self):
        from repro.partition import ZigzagPartitioner

        with pytest.raises(ValueError):
            replan_partition(ZigzagPartitioner(), 24, 5)


# --- degraded-topology closed forms -------------------------------------------


class TestDegradedClosedForms:
    def test_step_sizes_shift_to_survivor_shards(self):
        n, h, g = 1024, 64, 8
        degraded = degraded_attention_step_sizes(n, h, g, failed=2)
        assert degraded == attention_step_sizes(n, h, g - 2)
        # shards grow by exactly G / (G - k)
        healthy = attention_step_sizes(n, h, g)
        assert degraded["fwd"] == pytest.approx(healthy["fwd"] * g / (g - 2))

    def test_no_survivors_rejected(self):
        with pytest.raises(ValueError):
            degraded_attention_step_sizes(64, 8, 4, failed=4)

    def test_degraded_topology_matches_runtime_shrink(self):
        topo = make_cluster(8, 4)
        analytic = degraded_topology(topo, 2)
        runtime = shrink_cluster(topo, [3, 6])
        assert analytic.world_size == runtime.world_size == 6
        assert analytic.gpus_per_node == runtime.gpus_per_node
        assert analytic.num_nodes == runtime.num_nodes

    def test_degraded_table1_rederives_on_survivors(self):
        topo = make_cluster(8, 4)
        degraded = degraded_table1_comm_times(topo, 1152, 64, failed=2)
        direct = table1_comm_times(degraded_topology(topo, 2), 1152, 64)
        assert degraded == direct
        healthy = table1_comm_times(topo, 1152, 64)
        assert degraded != healthy

    def test_downtime_is_detection_plus_replay(self):
        assert rank_failure_downtime(
            "crash", steps_since_snapshot=3, step_time_s=2.0
        ) == pytest.approx(0.5 + 6.0)
        assert rank_failure_downtime(
            "straggler", steps_since_snapshot=0, step_time_s=2.0,
            replan_s=1.0,
        ) == pytest.approx(24.0 + 1.0)
        with pytest.raises(ValueError):
            rank_failure_downtime(
                "crash", steps_since_snapshot=-1, step_time_s=1.0
            )

    def test_degraded_pass_time_runs_on_survivor_topology(self):
        from repro.perf.schedules import (
            AttentionWorkload, attention_pass_time, degraded_attention_pass_time,
        )

        topo = make_cluster(8, 4)
        wl = AttentionWorkload(seq_len=4096, hidden=64, n_heads=8)
        got = degraded_attention_pass_time("burst", topo, wl, failed=2,
                                           backward=True)
        want = attention_pass_time("burst", degraded_topology(topo, 2), wl,
                                   backward=True)
        assert got == want

    def test_survivor_hop_bytes_match_degraded_closed_form(self):
        """The TrafficLog pin, post-shrink: the bundles ring methods send
        on the 3 survivors are exactly the degraded closed forms derived
        from the healthy 4-rank world (float64 sim bytes)."""
        from repro.attention import get_method

        g, n, hidden = 4, 24, 8
        shrunk = shrink_cluster(topo4(), [1])
        sizes = degraded_attention_step_sizes(n, hidden, g, failed=1,
                                              bytes_per_elem=8)
        rng = np.random.default_rng(1)
        q, k, v, do = (rng.normal(size=(1, n, hidden)) for _ in range(4))
        for name, key in [("megatron-cp", "bwd_alg1"), ("burst", "bwd_alg2")]:
            comm = SimCommunicator(shrunk)
            get_method(name, block_size=4).run(
                shrunk, q, k, v, mask=None, do=do, comm=comm
            )
            fwd = {r.nbytes for r in comm.log.records if r.phase == "attn-fwd"}
            bwd = {r.nbytes for r in comm.log.records if r.phase == "attn-bwd"}
            assert fwd == {int(sizes["fwd"])}
            assert bwd == {int(sizes[key])}


# --- end-to-end elastic recovery ---------------------------------------------


class TestElasticRecovery:
    """One representative cell per fault kind; the exhaustive matrix runs
    in the chaos CLI (``python -m repro.resilience.chaos --rank-faults``)."""

    @pytest.mark.parametrize("kind,method,ring_mode", [
        ("crash", "burst", "unidirectional"),
        ("hang", "megatron-cp", "bidirectional"),
        ("straggler", "ulysses", "unidirectional"),
    ])
    def test_detect_shrink_replay(self, kind, method, ring_mode):
        from repro.resilience.chaos import run_rank_fault_scenario

        result = run_rank_fault_scenario(kind, method, ring_mode, victim=1)
        assert result.ok, result.summary()
        assert result.detected_kind == kind
        assert result.world_before == 4
        assert result.world_after == 3
        assert result.replay_match, "replay diverged from fresh survivor run"
        assert result.traffic_match, "survivor traffic diverged"

    def test_failure_budget_exhausted_reraises(self, tmp_path):
        from repro.engine import BurstEngine
        from repro.resilience import ElasticRunner
        from repro.resilience.chaos import (
            ELASTIC_SEQ, _make_batches, _make_elastic_config, _topology,
        )

        config = _make_elastic_config("burst")

        def comm_factory(topo, incarnation):
            # every incarnation loses another rank: 4 -> 3 -> 2 -> ...
            return FailureDetector(
                make_rank_fault("crash", topo, rank=0, at_step=2, at_call=1)
            )

        runner = ElasticRunner(
            lambda topo, comm: BurstEngine(config, comm=comm),
            snapshot_dir=str(tmp_path), comm_factory=comm_factory,
            max_failures=1,
        )
        with pytest.raises(RankFailure):
            runner.run(_make_batches(seed=0, seq=ELASTIC_SEQ), 4, _topology())

    def test_tolerated_straggler_finishes_on_full_world(self, tmp_path):
        from repro.engine import BurstEngine
        from repro.resilience import ElasticRunner
        from repro.resilience.chaos import (
            ELASTIC_SEQ, _make_batches, _make_elastic_config, _topology,
        )

        config = _make_elastic_config("burst")

        def comm_factory(topo, incarnation):
            return FailureDetector(
                StragglerRankComm(topo, slowdown_factor=4.0, rank=2,
                                  at_step=1, at_call=1)
            )

        runner = ElasticRunner(
            lambda topo, comm: BurstEngine(config, comm=comm),
            snapshot_dir=str(tmp_path), comm_factory=comm_factory,
        )
        result = runner.run(
            _make_batches(seed=0, seq=ELASTIC_SEQ), 3, _topology()
        )
        assert not result.failures
        assert result.final_world_size == 4
        assert result.incarnations == 1
        assert result.tolerated_stragglers  # extensions were granted
        assert all(r == 2 for r, _, _ in result.tolerated_stragglers)

    def test_recovery_metrics_and_summary(self):
        from repro.resilience.chaos import run_rank_fault_scenario

        reg = get_registry()
        before = reg.counter("resilience.rank_recoveries").value(kind="crash")
        result = run_rank_fault_scenario("crash", "burst", victim=0)
        after = reg.counter("resilience.rank_recoveries").value(kind="crash")
        assert after == before + 1
        assert "crash rank 0" in result.summary()


# --- fuzzer integration -------------------------------------------------------


class TestFuzzRankFailureAxis:
    def test_spec_round_trip(self):
        from repro.testing.differential import FuzzCase

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure="crash")
        assert "rank_failure=crash" in case.spec()
        assert FuzzCase.parse(case.spec()) == case
        healthy = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                           seq_len=8, head_dim=2, n_heads=1)
        assert "rank_failure" not in healthy.spec()

    def test_validate_rejects_unknown_kind(self):
        from repro.testing.differential import FuzzCase

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure="meteor")
        with pytest.raises(ValueError, match="rank_failure"):
            case.validate()

    @pytest.mark.parametrize("kind", ["crash", "hang"])
    def test_detection_is_the_pass_condition(self, kind):
        from repro.testing.differential import FuzzCase, check_case

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure=kind)
        passed, detail = check_case(case)
        assert passed, detail
        assert "detected" in detail

    def test_tolerated_straggler_must_still_verify(self):
        from repro.testing.differential import FuzzCase, check_case

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure="straggler")
        passed, detail = check_case(case)
        assert passed, detail

    def test_axes_are_mutually_exclusive(self):
        from repro.testing.differential import FuzzCase, check_case

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure="crash")
        with pytest.raises(ValueError):
            check_case(case, fault="corrupt")

    def test_shrinking_reaches_for_no_failure(self):
        from repro.testing.differential import FuzzCase, shrink_case

        case = FuzzCase(method="burst", mask="causal", nodes=1, gpn=2,
                        seq_len=8, head_dim=2, n_heads=1,
                        rank_failure="crash")
        # a predicate that fails regardless of the rank_failure axis must
        # shrink it away
        shrunk = shrink_case(case, lambda c: True)
        assert shrunk.rank_failure is None

    def test_forced_rank_fault_sweep_passes(self):
        from repro.testing.differential import fuzz

        result = fuzz(seed=11, budget=4, smoke=True, rank_fault="crash")
        assert result.passed, result.summary()
        assert result.cases_run == 4

    def test_forced_axes_conflict_rejected(self):
        from repro.testing.differential import fuzz

        with pytest.raises(ValueError):
            fuzz(seed=0, budget=1, fault="corrupt", rank_fault="crash")
