"""Root pytest configuration.

Loads the chaos-recovery runner as a plugin so its session-scoped
``chaos_report`` fixture (one shared fault-injection + crash-resume run)
is available to every test module, and turns double-releases of memory
handles from silent no-ops into :class:`repro.nn.memory.ReleaseError`
for the whole suite — accounting bugs should fail tests, not just bump
the ``memory.release_errors`` counter they bump in production.
"""

import pytest

pytest_plugins = ("repro.resilience.chaos",)


@pytest.fixture(autouse=True)
def _strict_memory_release():
    from repro.nn.memory import set_strict_release

    prev = set_strict_release(True)
    try:
        yield
    finally:
        set_strict_release(prev)
