"""Root pytest configuration.

Loads the chaos-recovery runner as a plugin so its session-scoped
``chaos_report`` fixture (one shared fault-injection + crash-resume run)
is available to every test module.
"""

pytest_plugins = ("repro.resilience.chaos",)
