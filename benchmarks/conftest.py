"""Benchmark-suite plumbing.

Each benchmark regenerates one table/figure through
:mod:`repro.experiments` (timed by pytest-benchmark as a regression
guard) and registers the resulting rows here; a terminal-summary hook
prints every reproduced table at the end of the run, so
``pytest benchmarks/ --benchmark-only`` output contains the same rows the
paper reports.  Tables are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

_RESULTS: list = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Register an ExperimentResult for the end-of-run report."""

    def _record(result):
        _RESULTS.append(result)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{result.exp_id}.txt")
        with open(path, "w") as fh:
            fh.write(result.format() + "\n")
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for result in sorted(_RESULTS, key=lambda r: r.exp_id):
        terminalreporter.write_line(result.format())
        terminalreporter.write_line("")
