"""Table 3: sparse-attention workload balance (masking vs balanced causal
vs block-wise SWA).  Paper shape: causal balance ~1.7x, 32K-window SWA
~3.7x over unbalanced masking.

Includes the zigzag-vs-striped ablation DESIGN.md calls out (the paper's
pilot finding: striped integrates slightly better) as a workload-balance
comparison on the exact pair counts.
"""

from repro.experiments import tab03_sparse
from repro.masks import CausalMask
from repro.partition import (
    ContiguousPartitioner,
    StripedPartitioner,
    ZigzagPartitioner,
)
from repro.partition.workload import balance_report


def test_tab03_sparse(benchmark, record_table):
    result = benchmark.pedantic(tab03_sparse, rounds=3, iterations=1)
    record_table(result)
    causal = float(result.rows[1][2].rstrip("x"))
    swa = float(result.rows[2][2].rstrip("x"))
    assert 1.5 < causal < 2.2
    assert 3.0 < swa < 5.5


def test_tab03_zigzag_vs_striped_balance(benchmark):
    """Both balanced schemes beat contiguous by ~2x in barrier-bounded
    work; striped and zigzag are within a few percent of each other."""
    report = benchmark(
        balance_report,
        CausalMask(),
        [ContiguousPartitioner(), ZigzagPartitioner(), StripedPartitioner()],
        1024,
        8,
    )
    contig = report["contiguous"]["effective_step_pairs"]
    zigzag = report["zigzag"]["effective_step_pairs"]
    striped = report["striped"]["effective_step_pairs"]
    assert contig / zigzag > 1.5
    assert contig / striped > 1.5
    assert abs(zigzag - striped) / striped < 0.1


if __name__ == "__main__":
    print(tab03_sparse().format())
