"""Figure 7: total stored-activation memory of checkpointing strategies
vs sequence length.  Paper shape: all linear in S; sequence-level stores
half of selective++'s overhead above full checkpointing."""

from repro.experiments import fig07_checkpoint_memory


def test_fig07_ckpt_memory(benchmark, record_table):
    result = benchmark(fig07_checkpoint_memory)
    record_table(result)
    for row in result.rows:
        full, seq, spp, none = (float(v) for v in row[1:])
        assert full < seq < spp < none


def test_fig07_split_fraction_sweep(benchmark, record_table):
    """Ablation: the DESIGN.md-called-out split-point sweep — cached
    fraction scales linearly between full (split 1.0) and selective++
    (split 0.0)."""
    from repro.models import LLAMA_7B
    from repro.perf.memory import checkpoint_memory_curve

    def sweep():
        return {
            frac: checkpoint_memory_curve(
                LLAMA_7B, [262144], 32, "sequence_level", split_fraction=frac
            )[0]
            for frac in (0.25, 0.5, 0.75)
        }

    curves = benchmark(sweep)
    assert curves[0.25] > curves[0.5] > curves[0.75]


if __name__ == "__main__":
    print(fig07_checkpoint_memory().format())
