"""Figure 13: peak per-GPU memory across the Fig. 12 grid.  Paper shape:
BurstEngine lowest (26.4% / 24.2% below the speed-tuned baseline at
7B/14B on 32 GPUs); only BurstEngine fits every 64-GPU cell; its
footprint stays nearly flat as GPUs and sequence scale together."""

from repro.experiments import fig13_peak_memory


def test_fig13_peak_memory(benchmark, record_table):
    result = benchmark.pedantic(fig13_peak_memory, rounds=3, iterations=1)
    record_table(result)
    burst = {r[0]: float(r[2]) for r in result.rows if r[1] == "BurstEngine"}
    # every burst cell fits in 80 GB
    assert all(v < 80 for v in burst.values())
    # near-linear sequence scaling: 32->64 GPU footprints within 20%
    assert abs(burst["14B/64GPU/2M"] - burst["14B/32GPU/1M"]) < 0.2 * burst[
        "14B/32GPU/1M"
    ]


if __name__ == "__main__":
    print(fig13_peak_memory().format())
