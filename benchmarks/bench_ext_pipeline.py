"""Extension benchmark: pipeline parallelism at long context.

One 1M-token sequence is a single microbatch; the pipeline bubble
``(P-1)/(M+P-1)`` then idles all but ``1/P`` of the cluster.  The table
(DES-simulated 1F1B) quantifies why layer sharding cannot replace
sequence sharding for the paper's workload."""

import numpy as np

from repro.experiments.extensions import ext_pp_bubble


def test_ext_pp_bubble(benchmark, record_table):
    result = benchmark(ext_pp_bubble)
    record_table(result)
    # M=1 rows: efficiency ~ 1/P
    for row in result.rows:
        p, m = row[0], row[1]
        eff = float(row[3].rstrip("%")) / 100
        if m == 1:
            assert eff == __import__("pytest").approx(1 / p, rel=0.05)


def test_ext_pp_numeric_pipeline(benchmark):
    """Real-runtime guard: one pipelined training step (4 stages)."""
    from repro.comm import SimCommunicator
    from repro.nn import Adam, TransformerConfig, TransformerLM
    from repro.pp import PipelinedLM
    from repro.topology import a800_node, make_cluster

    comm = SimCommunicator(make_cluster(4, node=a800_node(gpus_per_node=4)))
    pipe = PipelinedLM(
        TransformerLM(TransformerConfig(
            vocab_size=32, dim=16, n_layers=4, n_heads=2, ffn_hidden=24,
            max_seq_len=32, attn_block_size=16)),
        comm, num_stages=4,
    )
    opt = Adam(pipe.model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    micro = []
    for i in range(2):
        ids = rng.integers(0, 32, size=16)
        micro.append((ids, np.roll(ids, -1)))

    loss = benchmark.pedantic(
        lambda: pipe.train_step(micro, opt), rounds=3, iterations=1
    )
    assert np.isfinite(loss)


if __name__ == "__main__":
    print(ext_pp_bubble().format())
