"""Extension benchmark: sparsity-aware selective communication (the
paper's stated future work).

For sliding-window masks over contiguous shards, most ring-circulated KV
is never read.  Point-to-point selective fetch cuts forward KV volume to
the mask's live bandwidth — at a locality/balance trade-off the table
makes explicit (striped/blockwise partitions balance compute but destroy
communication sparsity)."""

import numpy as np

from repro.attention.selective import communication_savings
from repro.experiments.extensions import ext_selective_comm
from repro.masks import SlidingWindowMask
from repro.partition import BlockwisePartitioner, ContiguousPartitioner


def test_ext_selective_volumes(benchmark, record_table):
    result = benchmark(ext_selective_comm)
    record_table(result)
    saved = [float(r[3].rstrip("%")) for r in result.rows]
    # savings shrink monotonically as the window widens
    assert saved == sorted(saved, reverse=True)
    assert saved[0] > 85.0  # 32K window over 1M: >85% of KV never needed


def test_ext_selective_balance_tradeoff(benchmark):
    """Balanced partitions destroy communication sparsity."""
    n, g = 4096, 8
    mask = SlidingWindowMask(n // g)

    def savings():
        contig = communication_savings(mask, ContiguousPartitioner().indices(n, g))
        blockw = communication_savings(
            mask, BlockwisePartitioner(block_size=n // g).indices(n, g)
        )
        return contig, blockw

    contig, blockw = benchmark(savings)
    assert contig > 0.5
    assert blockw == 0.0


if __name__ == "__main__":
    print(ext_selective_comm().format())
