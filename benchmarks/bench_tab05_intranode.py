"""Table 5: intra-node context-parallel scaling (CP 1..8 on 8 x A800,
optimizer offload on).  Paper shape: MFU rises with CP (past 45% from
CP >= 2), every CP size fits in 80 GB, memory per GPU does not grow with
sequence length."""

import pytest

from repro.experiments import tab05_intranode


def test_tab05_intranode(benchmark, record_table):
    result = benchmark.pedantic(tab05_intranode, rounds=3, iterations=1)
    record_table(result)
    mfus = [float(r[2]) for r in result.rows]
    mems = [float(r[4]) for r in result.rows]
    assert mfus == sorted(mfus)
    assert mfus[-1] > 45.0
    assert all(m < 80 for m in mems)
    # paper headline: TGS 393.44 at CP=8/256K — same order of magnitude
    tgs_cp8 = float(result.rows[-1][3])
    assert tgs_cp8 == pytest.approx(393.44, rel=0.25)


if __name__ == "__main__":
    print(tab05_intranode().format())
