"""Table 1: communication-time formulas of RingAttention, DoubleRing and
BurstAttention evaluated on the A800 cluster link specs.  Paper shape:
burst < double-ring < ring at every sequence length, with the gap driven
by intra/inter overlap and Algorithm 2's smaller payload."""

from repro.experiments import tab01_comm_time


def test_tab01_comm_time(benchmark, record_table):
    result = benchmark(tab01_comm_time)
    record_table(result)
    for row in result.rows:
        ring, dbl, burst = float(row[1]), float(row[2]), float(row[3])
        assert burst < dbl < ring


if __name__ == "__main__":
    print(tab01_comm_time().format())
