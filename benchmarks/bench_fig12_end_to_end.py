"""Figure 12: end-to-end training throughput (TGS / MFU) of all five
systems on the paper's grid (7B@2M & 14B@1M on 32 GPUs, 7B@4M & 14B@2M
on 64 GPUs).  Paper shape: BurstEngine wins every cell (~1.2x over
LoongTrain-USP), Megatron-CP OOMs everywhere, Ulysses OOMs at 14B."""

from repro.experiments import fig12_end_to_end


def test_fig12_end_to_end(benchmark, record_table):
    result = benchmark.pedantic(fig12_end_to_end, rounds=3, iterations=1)
    record_table(result)
    cells = {(r[0], r[1]): r[2] for r in result.rows}
    burst = float(cells[("14B/32GPU/1M", "BurstEngine")])
    usp = float(cells[("14B/32GPU/1M", "LoongTrain-USP")])
    assert 1.10 < burst / usp < 1.35          # paper: 1.15x (14B)
    assert cells[("7B/32GPU/2M", "Megatron-CP")] == "OOM"
    assert cells[("14B/32GPU/1M", "DeepSpeed-Ulysses")] == "OOM"


if __name__ == "__main__":
    print(fig12_end_to_end().format())
