#!/usr/bin/env python
"""Overhead + gate benchmark for the memory observability layer.

Runs one quickstart training step per checkpoint policy three ways —
uninstrumented, with a :class:`~repro.obs.mem.MemoryTimeline` installed,
and with a timeline plus a (non-breaching) :class:`MemoryBudget` — and
reports the tracking overhead on the step wall clock.  The hard gates
double as a smoke test (a broken one exits non-zero):

* observed peak saved bytes equals
  :func:`repro.perf.memory.predict_step_peak_saved_bytes` byte-for-byte,
* the leak report is empty (the saved series drains by step end),
* the tracked/untracked wall ratio stays under the committed ceiling —
  the timeline fast path is two module-global reads, so instrumentation
  must stay invisible next to the numpy kernels.

``--out BENCH_obs_memory.json`` writes the committed artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.engine import BurstEngine, EngineConfig
from repro.engine.trainer import Trainer
from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
from repro.nn.memory import get_tracker
from repro.nn.modules import TransformerConfig
from repro.obs import MemoryBudget, use_memory_budget, use_memory_timeline
from repro.obs.mem import leak_report
from repro.perf.memory import predict_step_peak_saved_bytes
from repro.topology import a800_node, make_cluster

POLICIES = ("sequence_level", "full")
OVERHEAD_CEILING = 2.0  # tracked / untracked step wall, best-of


def _build(policy: str, seq: int) -> tuple[BurstEngine, tuple]:
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=seq, attn_block_size=32,
        ),
        method="burst",
        checkpoint=CheckpointPolicy(CheckpointMode(policy), 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, make_cluster(8, node=a800_node(gpus_per_node=4)))
    rng = np.random.default_rng(0)
    return engine, (rng.integers(0, 128, seq), rng.integers(0, 128, seq))


def _step_wall(policy: str, seq: int, repeat: int, instrument) -> float:
    best = float("inf")
    for _ in range(max(repeat, 1)):
        engine, batch = _build(policy, seq)
        trainer = Trainer(engine=engine)
        t0 = time.perf_counter()
        instrument(trainer, batch)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seq", type=int, default=128)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="write the BENCH json artifact here")
    parser.add_argument("--smoke", action="store_true",
                        help="mark the artifact as a smoke (not tuned) run")
    args = parser.parse_args(argv)

    def plain(trainer, batch):
        trainer.fit([batch], steps=1)

    def tracked(trainer, batch):
        with use_memory_timeline():
            trainer.fit([batch], steps=1)

    def budgeted(trainer, batch):
        with use_memory_timeline():
            with use_memory_budget(MemoryBudget(limit_bytes=1 << 40)):
                trainer.fit([batch], steps=1)

    failed = False
    results = []
    print(f"{'policy':<16} {'plain_s':>8} {'tracked_s':>10} {'budget_s':>9} "
          f"{'ratio':>6}  gates")
    for policy in POLICIES:
        plain_s = _step_wall(policy, args.seq, args.repeat, plain)
        tracked_s = _step_wall(policy, args.seq, args.repeat, tracked)
        budget_s = _step_wall(policy, args.seq, args.repeat, budgeted)

        # gate run: observed peak + leak report off a fresh tracked step
        engine, batch = _build(policy, args.seq)
        with use_memory_timeline() as timeline:
            Trainer(engine=engine).fit([batch], steps=1)
            events = timeline.events()
        observed = get_tracker().peak_saved_bytes
        predicted = predict_step_peak_saved_bytes(
            seq_len=args.seq, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            vocab=128, checkpoint=policy, head_impl="fused",
        )["peak_saved_bytes"]
        leaks = leak_report(events)
        ratio = tracked_s / plain_s
        ok = observed == predicted and not leaks and ratio < OVERHEAD_CEILING
        failed = failed or not ok
        gates = (
            f"peak={'OK' if observed == predicted else 'DRIFT'} "
            f"leaks={'OK' if not leaks else len(leaks)} "
            f"overhead={'OK' if ratio < OVERHEAD_CEILING else 'FAIL'}"
        )
        print(f"{policy:<16} {plain_s:>8.3f} {tracked_s:>10.3f} "
              f"{budget_s:>9.3f} {ratio:>6.2f}  {gates}")
        results.append({
            "name": f"burst/{policy}",
            "params": {"seq": args.seq, "dim": 32, "n_layers": 2,
                       "n_heads": 4, "ffn_hidden": 64, "policy": policy},
            "plain_s": plain_s,
            "tracked_s": tracked_s,
            "budgeted_s": budget_s,
            "overhead_ratio": ratio,
            "observed_peak_bytes": observed,
            "predicted_peak_bytes": predicted,
            "timeline_events": len(events),
            "leaks": len(leaks),
            "cpu_count": os.cpu_count(),
        })

    if args.out:
        doc = {
            "suite": "obs_memory",
            "smoke": bool(args.smoke),
            "schema": {
                "plain_s": "best step wall, no instrumentation (s)",
                "tracked_s": "best step wall with a MemoryTimeline (s)",
                "budgeted_s": "best step wall with timeline + budget (s)",
                "overhead_ratio": "tracked_s / plain_s; gated < "
                                  f"{OVERHEAD_CEILING}",
                "observed_peak_bytes": "MemoryTracker.peak_saved_bytes",
                "predicted_peak_bytes": "perf.memory closed form; gated ==",
                "timeline_events": "MemEvents recorded for the step",
                "leaks": "unreleased saved handles at step end; gated 0",
            },
            "results": results,
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
