"""Table 4: inter-node scalability (2/4/8 nodes, 32K tokens/GPU, offload
off).  Paper shape: MFU flat (~53%), TGS halves per node doubling,
memory per GPU stable."""

from repro.experiments import tab04_internode


def test_tab04_internode(benchmark, record_table):
    result = benchmark.pedantic(tab04_internode, rounds=3, iterations=1)
    record_table(result)
    mfus = [float(r[2]) for r in result.rows]
    tgs = [float(r[3]) for r in result.rows]
    assert max(mfus) - min(mfus) < 2.0
    assert tgs[0] / tgs[1] == __import__("pytest").approx(2.0, rel=0.1)
    assert tgs[1] / tgs[2] == __import__("pytest").approx(2.0, rel=0.1)


if __name__ == "__main__":
    print(tab04_internode().format())
