#!/usr/bin/env python
"""Overhead benchmark for the critical-path attribution engine.

Traces one tiny training step per (method, ring mode) cell, then times
:func:`repro.obs.critical.attribute_trace` over the resulting payload —
the cost a post-mortem handler or the ``report --critical`` CLI pays on
top of the trace itself.  The engine is pure-python interval sweeping
plus one DES replay per attention pass, so the wall numbers here are
informational; the hard gates are the conservation and pin checks, which
this script also asserts (a broken gate exits non-zero, making it a
usable smoke test: ``python benchmarks/bench_obs_attribution.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine import BurstEngine, EngineConfig
from repro.engine.trainer import Trainer
from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
from repro.nn.modules import TransformerConfig
from repro.obs import attribute_trace, spans_to_chrome_json, use_tracing
from repro.topology import a800_node, make_cluster

CELLS = [
    ("burst", "unidirectional"),
    ("burst", "bidirectional"),
    ("megatron-cp", "unidirectional"),
]


def traced_payload(method: str, ring_mode: str, seq: int) -> dict:
    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4,
            ffn_hidden=64, max_seq_len=seq, attn_block_size=32,
        ),
        method=method,
        method_kwargs=(
            {"ring_mode": ring_mode} if ring_mode != "unidirectional" else {}
        ),
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, topology=topology)
    rng = np.random.default_rng(0)
    batch = (rng.integers(0, 128, seq), rng.integers(0, 128, seq))
    with use_tracing() as tracer:
        Trainer(engine=engine).fit([batch], steps=1)
    return json.loads(spans_to_chrome_json(
        tracer.spans(),
        metadata={
            "method": method, "world_size": 8, "gpus_per_node": 4,
            "seq_len": seq, "hidden": 32, "n_heads": 4,
            "steps": 1, "ring_mode": ring_mode,
        },
    ))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seq", type=int, default=128)
    parser.add_argument("--repeat", type=int, default=3,
                        help="attribution timing repeats (best-of)")
    args = parser.parse_args(argv)

    failed = False
    print(f"{'cell':<28} {'spans':>6} {'trace_s':>8} {'attr_ms':>8}  gates")
    for method, ring_mode in CELLS:
        t0 = time.perf_counter()
        payload = traced_payload(method, ring_mode, args.seq)
        trace_s = time.perf_counter() - t0
        n_spans = sum(
            1 for e in payload["traceEvents"] if e.get("ph") == "X"
        )
        best = min(
            _timed(lambda: attribute_trace(payload))
            for _ in range(max(args.repeat, 1))
        )
        doc = attribute_trace(payload)
        gates = (
            f"conservation={'OK' if doc['conservation_ok'] else 'FAIL'} "
            f"pins={'OK' if doc['pin_ok'] else 'FAIL'}"
        )
        failed = failed or not doc["ok"]
        print(
            f"{method + '/' + ring_mode:<28} {n_spans:>6} {trace_s:>8.2f} "
            f"{best * 1e3:>8.2f}  {gates}"
        )
    return 1 if failed else 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    sys.exit(main())
