#!/usr/bin/env python
"""Bidirectional-ring benchmark with a JSON regression gate.

For each (method, topology) case this runs one forward+backward attention
pass under both ring modes and records:

* ``max_abs_diff`` — must be exactly 0.0: bidirectional is bitwise
  identical to unidirectional by construction (same compute and merge
  order; only transport changes).
* ``fwd_elems`` / ``rev_elems`` — per-rank per-direction TrafficLog
  element counts of the bidirectional run.  Deterministic; gated exactly
  against both the committed baseline and the closed forms in
  :func:`repro.perf.cost.bidirectional_direction_bytes`.
* ``des_uni_s`` / ``des_bidir_s`` / ``des_speedup`` — the DES-modeled
  pass times on the modeled A800 cluster.  Deterministic analytic floats;
  the speedup is gated against the baseline with ``--tolerance``.
* ``uni_s`` / ``bidir_s`` — host wall clock (informational only; numpy
  time on the runner says nothing about link occupancy).

Writes ``BENCH_bidir_ring.json`` next to the other ``BENCH_*.json``
baselines; ``--check`` fails on any gate violation against the committed
file.  Mirrors the ``python -m repro.perf.bench`` harness idiom.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.attention.methods import get_method
from repro.masks import CausalMask
from repro.perf.cost import bidirectional_direction_bytes
from repro.perf.schedules.attention import AttentionWorkload, attention_pass_time
from repro.topology import make_cluster


def repo_root() -> Path:
    return Path(__file__).resolve().parents[1]


def _cases(smoke: bool) -> list[dict]:
    methods = ["megatron-cp", "loongtrain-double", "burst"]
    topos = [(4, 4), (8, 4)] if not smoke else [(4, 4)]
    tokens_per_rank = 16 if smoke else 32
    out = []
    for gpus, gpn in topos:
        for method in methods:
            out.append({
                "name": f"{method}@{gpus}x{gpn}",
                "method": method,
                "gpus": gpus,
                "gpus_per_node": gpn,
                "seq": tokens_per_rank * gpus,
                "heads": 2,
                "head_dim": 8,
            })
    return out


def _run_case(case: dict, repeats: int) -> dict:
    g, gpn = case["gpus"], case["gpus_per_node"]
    n, h, d = case["seq"], case["heads"], case["head_dim"]
    topo = make_cluster(g, gpn)
    rng = np.random.default_rng(7)
    q = rng.standard_normal((h, n, d))
    k = rng.standard_normal((h, n, d))
    v = rng.standard_normal((h, n, d))
    do = rng.standard_normal((h, n, d))
    mask = CausalMask()

    results = {}
    times = {}
    traffic = {}
    for mode in ("unidirectional", "bidirectional"):
        method = get_method(case["method"], block_size=8, ring_mode=mode)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = method.run(topo, q, k, v, mask=mask, do=do)
            best = min(best, time.perf_counter() - t0)
        results[mode] = res
        times[mode] = best
        traffic[mode] = res.traffic

    max_diff = 0.0
    for arr in ("o", "lse", "dq", "dk", "dv"):
        a = getattr(results["unidirectional"], arr)
        b = getattr(results["bidirectional"], arr)
        max_diff = max(max_diff, float(np.max(np.abs(a - b))))

    log = traffic["bidirectional"]
    per_dir = {
        ch: log.per_rank_send_elems(channel=ch) for ch in ("fwd", "rev")
    }
    fwd_elems = sum(per_dir["fwd"].values())
    rev_elems = sum(per_dir["rev"].values())

    # Exact closed-form cross-check: per-rank per-direction per-phase.
    hidden = h * d
    bwd_key = "bwd_alg2" if case["method"] == "burst" else "bwd_alg1"
    pred = bidirectional_direction_bytes(
        n, hidden, g, bytes_per_elem=1, n_heads=h
    )
    cost_match = True
    for phase, key in (("attn-fwd", "fwd"), ("attn-bwd", bwd_key)):
        for ch in ("fwd", "rev"):
            per_rank = log.per_rank_send_elems(phase=phase, channel=ch)
            want = pred[key][ch]
            if any(per_rank.get(r, 0) != want for r in range(g)):
                cost_match = False

    wl = AttentionWorkload(seq_len=131072, hidden=4096, n_heads=32)
    des = {}
    for mode in ("unidirectional", "bidirectional"):
        des[mode] = sum(
            attention_pass_time(
                case["method"], topo, wl, backward=backward, ring_mode=mode
            )
            for backward in (False, True)
        )

    return {
        "name": case["name"],
        "params": {k: case[k] for k in
                   ("method", "gpus", "gpus_per_node", "seq", "heads",
                    "head_dim")},
        "max_abs_diff": max_diff,
        "fwd_elems": fwd_elems,
        "rev_elems": rev_elems,
        "cost_match": cost_match,
        "uni_s": times["unidirectional"],
        "bidir_s": times["bidirectional"],
        "des_uni_s": des["unidirectional"],
        "des_bidir_s": des["bidirectional"],
        "des_speedup": des["unidirectional"] / des["bidirectional"],
    }


def check_results(
    results: list[dict], baseline: list[dict] | None, tolerance: float
) -> list[str]:
    """Return regression messages (empty = pass)."""
    problems = []
    for rec in results:
        if rec["max_abs_diff"] != 0.0:
            problems.append(
                f"{rec['name']}: bidirectional deviates from unidirectional "
                f"by {rec['max_abs_diff']:.3e} (must be bitwise identical)"
            )
        if not rec["cost_match"]:
            problems.append(
                f"{rec['name']}: per-direction traffic does not match the "
                "closed forms in repro.perf.cost"
            )
        if rec["rev_elems"] <= 0:
            problems.append(
                f"{rec['name']}: no reverse-channel traffic recorded"
            )
        if rec["des_speedup"] < 1.0:
            problems.append(
                f"{rec['name']}: DES models bidirectional slower than "
                f"unidirectional ({rec['des_speedup']:.3f}x)"
            )
    if baseline is None:
        return problems
    base_by_name = {r["name"]: r for r in baseline}
    for rec in results:
        base = base_by_name.get(rec["name"])
        if base is None or base.get("params") != rec.get("params"):
            continue
        for key in ("fwd_elems", "rev_elems"):
            if rec[key] != base[key]:
                problems.append(
                    f"{rec['name']}: {key} changed {base[key]} -> {rec[key]} "
                    "(deterministic count)"
                )
        floor = base["des_speedup"] / tolerance
        if rec["des_speedup"] < floor:
            problems.append(
                f"{rec['name']}: DES speedup regressed "
                f"{base['des_speedup']:.3f}x -> {rec['des_speedup']:.3f}x "
                f"(floor {floor:.3f}x at tolerance {tolerance}x)"
            )
    return problems


def _payload(results: list[dict], smoke: bool) -> dict:
    return {
        "suite": "bidir_ring",
        "smoke": smoke,
        "schema": {
            "max_abs_diff": "max |uni - bidir| over o/lse/dq/dk/dv (must be 0)",
            "fwd_elems": "total forward-stream elements sent (bidirectional)",
            "rev_elems": "total reverse-stream elements sent (bidirectional)",
            "cost_match": "per-rank per-direction counts == closed forms",
            "uni_s": "best host wall-clock, unidirectional (informational)",
            "bidir_s": "best host wall-clock, bidirectional (informational)",
            "des_uni_s": "DES-modeled fwd+bwd pass time, unidirectional (s)",
            "des_bidir_s": "DES-modeled fwd+bwd pass time, bidirectional (s)",
            "des_speedup": "des_uni_s / des_bidir_s",
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/bench_bidir_ring.py",
        description="bidirectional-ring bench with a JSON regression gate",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed DES-speedup regression factor")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory (default: repo root)")
    args = parser.parse_args(argv)

    out_dir = args.out or repo_root()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_bidir_ring.json"
    baseline = None
    if args.check and path.exists():
        baseline = json.loads(path.read_text()).get("results")

    results = [_run_case(c, args.repeats) for c in _cases(args.smoke)]
    problems = check_results(results, baseline, args.tolerance) if args.check else []
    path.write_text(json.dumps(_payload(results, args.smoke), indent=2) + "\n")

    for rec in results:
        print(
            f"[bidir] {rec['name']:<26} maxdiff {rec['max_abs_diff']:.1e}"
            f"  fwd {rec['fwd_elems']:>8} rev {rec['rev_elems']:>8}"
            f"  des {rec['des_uni_s']*1e3:7.2f}ms -> {rec['des_bidir_s']*1e3:7.2f}ms"
            f"  ({rec['des_speedup']:4.2f}x)"
        )
    print(f"wrote {path}")
    if problems:
        print("\nREGRESSIONS:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
