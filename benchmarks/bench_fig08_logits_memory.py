"""Figure 8: LM-head logits memory for LLaMA-1/2 (32K vocab) vs LLaMA-3
(128K vocab) vs sequence length, plus a real-runtime comparison of the
three head implementations (naive / tiled-recompute / fused Alg. 3)."""

import numpy as np

from repro.experiments import fig08_logits_memory
from repro.lmhead import fused_lm_head_loss, naive_lm_head_loss, tiled_lm_head_loss


def test_fig08_logits_memory(benchmark, record_table):
    result = benchmark(fig08_logits_memory)
    record_table(result)
    m3_1m = float(result.rows[-1][2])
    assert m3_1m > 250  # hundreds of GB at 1M tokens


def _case(n=256, d=64, v=512):
    rng = np.random.default_rng(0)
    return (rng.normal(size=(n, d)), rng.normal(size=(v, d)),
            rng.integers(0, v, size=n))


def test_fig08_naive_head_runtime(benchmark):
    h, w, y = _case()
    res = benchmark(naive_lm_head_loss, h, w, y)
    assert np.isfinite(res.loss)


def test_fig08_tiled_head_runtime(benchmark):
    h, w, y = _case()
    res = benchmark(tiled_lm_head_loss, h, w, y)
    assert np.isfinite(res.loss)


def test_fig08_fused_head_runtime(benchmark):
    """Alg. 3 pays no recompute: its FLOPs equal the naive head's while
    its resident memory is zero (asserted via HeadStats)."""
    h, w, y = _case()
    res = benchmark(fused_lm_head_loss, h, w, y)
    assert res.stats.peak_resident_bytes == 0
    assert res.stats.matmul_flops == naive_lm_head_loss(h, w, y).stats.matmul_flops


if __name__ == "__main__":
    print(fig08_logits_memory().format())
