"""Figure 2: attention's share of end-to-end training time vs sequence
length (7B model).  Paper shape: minor at 8K, dominant past 128K, >90%
at 1M."""

from repro.experiments import fig02_attention_share


def test_fig02_attention_share(benchmark, record_table):
    result = benchmark(fig02_attention_share)
    record_table(result)
    shares = [float(v) for v in result.column("attention_%")]
    assert shares == sorted(shares)
    assert shares[-1] > 90.0


if __name__ == "__main__":
    print(fig02_attention_share().format())
