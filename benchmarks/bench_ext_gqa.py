"""Extension benchmark: grouped-query attention flips the backward-payload
trade-off.

The paper's Algorithm 2 saves 25 % of backward traffic for MHA.  With
GQA (shared KV heads), the circulating KV of Algorithm 1 shrinks by the
group factor while Algorithm 2's query-sized bundle does not — past a
group factor of 4/3, the *unoptimised* algorithm wins, and an adaptive
engine should switch (``choose_backward_algorithm``)."""

import numpy as np

from repro.attention.gqa import (
    backward_comm_elems,
    choose_backward_algorithm,
    gqa_burst_backward,
    gqa_ring_backward_kv,
    gqa_ring_forward,
)
from repro.comm import SimCommunicator, double_ring_schedule
from repro.experiments.extensions import ext_gqa_tradeoff
from repro.partition import StripedPartitioner
from repro.topology import a800_node, make_cluster


def test_ext_gqa_tradeoff(benchmark, record_table):
    result = benchmark(ext_gqa_tradeoff)
    record_table(result)
    picks = [row[3] for row in result.rows]
    assert picks[0] == "alg2"   # MHA: the paper's setting
    assert picks[-1] == "alg1"  # MQA: KV circulation far cheaper


def test_ext_gqa_numeric_backward(benchmark):
    """Real-runtime guard on the GQA distributed kernels."""
    topo = make_cluster(4, node=a800_node(gpus_per_node=4))
    rng = np.random.default_rng(0)
    n, d, hq, hkv = 64, 8, 8, 2
    q = rng.normal(size=(hq, n, d))
    k = rng.normal(size=(hkv, n, d))
    v = rng.normal(size=(hkv, n, d))
    do = rng.normal(size=(hq, n, d))
    part = StripedPartitioner()
    idxs = part.indices(n, 4)
    comm = SimCommunicator(topo)
    sched = double_ring_schedule(topo)
    sh = lambda x: part.scatter(x, 4)
    os, lses = gqa_ring_forward(comm, sched, sh(q), sh(k), sh(v), idxs, 4,
                                block_size=16)

    def run():
        return gqa_ring_backward_kv(
            comm, sched, sh(q), sh(k), sh(v), os, lses, sh(do), idxs, 4,
            block_size=16,
        )

    dqs, dks, dvs = benchmark.pedantic(run, rounds=3, iterations=1)
    assert np.isfinite(dqs[0]).all()


if __name__ == "__main__":
    print(ext_gqa_tradeoff().format())
