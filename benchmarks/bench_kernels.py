"""Microbenchmarks of the numeric kernels (real runtime, regression
guard): blockwise flash attention fwd/bwd, online-softmax merge, and the
end-to-end simulated training step.

Alongside pytest-benchmark's text table, the run writes
``benchmarks/results/kernels.json`` with per-test timing stats so the
numbers are machine-readable (same spirit as the ``BENCH_*.json`` files
that ``python -m repro.perf.bench`` maintains at the repo root)."""

import json
import os

import numpy as np
import pytest

from repro.engine import BurstEngine, EngineConfig
from repro.kernels import (
    flash_attention_backward,
    flash_attention_forward,
    merge_states,
)
from repro.masks import CausalMask
from repro.nn import TransformerConfig
from repro.topology import a800_node, make_cluster


RNG = np.random.default_rng(0)

_JSON_PATH = os.path.join(os.path.dirname(__file__), "results", "kernels.json")
_JSON_ROWS: list = []


@pytest.fixture(autouse=True)
def _emit_kernel_json(request):
    """Mirror each benchmark's stats into ``results/kernels.json``.

    Rewritten after every test so a partial (``-k``-filtered) run still
    leaves a valid file; silently does nothing under
    ``--benchmark-disable``, where no stats exist."""
    yield
    fixture = request.node.funcargs.get("benchmark")
    stats = getattr(getattr(fixture, "stats", None), "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return
    _JSON_ROWS.append({
        "name": request.node.name,
        "min_s": stats.min,
        "mean_s": stats.mean,
        "median_s": stats.median,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    })
    os.makedirs(os.path.dirname(_JSON_PATH), exist_ok=True)
    with open(_JSON_PATH, "w") as fh:
        json.dump(
            {"suite": "kernel-microbench", "results": _JSON_ROWS}, fh,
            indent=2,
        )
        fh.write("\n")


def _qkv(s=256, d=32, h=4):
    return (RNG.normal(size=(h, s, d)) for _ in range(3))


def test_flash_forward(benchmark):
    q, k, v = _qkv()
    mask = CausalMask().dense(256)
    o, lse = benchmark(flash_attention_forward, q, k, v, mask, None, 64, 64)
    assert np.isfinite(o).all()


def test_flash_backward(benchmark):
    q, k, v = _qkv()
    mask = CausalMask().dense(256)
    o, lse = flash_attention_forward(q, k, v, mask=mask, block_q=64, block_k=64)
    do = RNG.normal(size=o.shape)
    dq, dk, dv = benchmark(
        flash_attention_backward, q, k, v, o, lse, do, mask, None, 64, 64
    )
    assert np.isfinite(dq).all()


def test_online_merge(benchmark):
    o1 = RNG.normal(size=(4, 512, 32))
    o2 = RNG.normal(size=(4, 512, 32))
    l1 = RNG.normal(size=(4, 512))
    l2 = RNG.normal(size=(4, 512))
    o, lse = benchmark(merge_states, o1, l1, o2, l2)
    assert o.shape == (4, 512, 32)


def test_full_training_step(benchmark):
    """One complete distributed training step (BurstEngine, 8 simulated
    GPUs, all optimisations on)."""
    model = TransformerConfig(
        vocab_size=64, dim=16, n_layers=2, n_heads=4, ffn_hidden=24,
        max_seq_len=64, attn_block_size=16,
    )
    engine = BurstEngine(
        EngineConfig(model=model),
        topology=make_cluster(8, node=a800_node(gpus_per_node=4)),
    )
    ids = RNG.integers(0, 64, size=32)
    targets = np.roll(ids, -1)
    result = benchmark.pedantic(
        engine.train_step, args=(ids, targets), rounds=3, iterations=1
    )
    assert np.isfinite(result.loss)
