"""Figure 14: attention-only fwd+bwd time across distributed
implementations vs sequence length (14B attention config, 32 x A100).
Paper shape: BurstAttention fastest (1.05x over USP at 1M), Megatron-CP
OOMs past 256K, Ulysses infeasible (40 heads % 32 GPUs).

Also times the *numeric* distributed kernels (exact-math Algorithm 1 vs
Algorithm 2 on the simulated cluster) as a real-runtime regression guard.
"""

import numpy as np

from repro.attention import get_method
from repro.experiments import fig14_attention_perf
from repro.masks import CausalMask
from repro.topology import a800_node, make_cluster


def test_fig14_attention_perf(benchmark, record_table):
    result = benchmark.pedantic(fig14_attention_perf, rounds=3, iterations=1)
    record_table(result)
    last = result.rows[-1]  # 1M row
    assert last[1] == "OOM"  # Megatron
    assert float(last[4]) < float(last[3]) < float(last[2])  # burst < usp < dbl


TOPO = make_cluster(8, node=a800_node(gpus_per_node=4))


def _inputs(n=128, d=16, h=2):
    rng = np.random.default_rng(0)
    make = lambda: rng.normal(size=(h, n, d))
    return make(), make(), make(), make()


def test_fig14_numeric_burst_pass(benchmark):
    q, k, v, do = _inputs()
    method = get_method("burst", block_size=32)
    res = benchmark.pedantic(
        lambda: method.run(TOPO, q, k, v, mask=CausalMask(), do=do),
        rounds=3, iterations=1,
    )
    assert res.dq is not None


def test_fig14_numeric_ring_pass(benchmark):
    q, k, v, do = _inputs()
    method = get_method("megatron-cp", block_size=32)
    res = benchmark.pedantic(
        lambda: method.run(TOPO, q, k, v, mask=CausalMask(), do=do),
        rounds=3, iterations=1,
    )
    assert res.dq is not None


if __name__ == "__main__":
    print(fig14_attention_perf().format())
