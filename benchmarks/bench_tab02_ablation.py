"""Table 2: ablation of BurstEngine's optimisation stack (14B, 1M tokens,
32 x A800).  Paper shape: TGS rises monotonically (~1.4x base -> full
stack); fused head cuts memory at equal speed; selective++ is faster than
sequence-level but stores more."""

from repro.experiments import tab02_ablation


def test_tab02_ablation(benchmark, record_table):
    result = benchmark.pedantic(tab02_ablation, rounds=3, iterations=1)
    record_table(result)
    tgs = [float(r[2]) for r in result.rows]
    mem = [float(r[3]) for r in result.rows]
    # cumulative rows 1..5 monotone in TGS
    assert all(b >= a * 0.995 for a, b in zip(tgs[:5], tgs[1:5]))
    # full stack vs base: ~1.4x (paper: 108.82 / 83.79 = 1.30x; with the
    # selective++ row 117.83 / 83.79 = 1.41x)
    assert tgs[4] / tgs[0] > 1.25
    # fused head: memory drop at equal TGS (rows 3 -> 4)
    assert mem[3] < mem[2]
    assert abs(tgs[3] - tgs[2]) / tgs[2] < 0.01
    # selective++ vs sequence-level: faster but heavier
    assert tgs[5] > tgs[4] and mem[5] > mem[4]


def test_tab02_split_sweep(benchmark, record_table):
    """DESIGN.md-called ablation: the checkpoint split-point frontier."""
    from repro.experiments import tab02_split_sweep

    result = benchmark.pedantic(tab02_split_sweep, rounds=3, iterations=1)
    record_table(result)
    tgs = [float(r[1]) for r in result.rows]
    mem = [float(r[3]) for r in result.rows]
    assert tgs == sorted(tgs, reverse=True)
    assert mem == sorted(mem, reverse=True)


if __name__ == "__main__":
    print(tab02_ablation().format())
    from repro.experiments import tab02_split_sweep

    print(tab02_split_sweep().format())
