"""Extension benchmark: why the paper builds on context parallelism, not
tensor parallelism.

Pure TP shards weights, not sequence: activations stay full-length on
every rank and per-layer all-reduce volume grows with S x h.  The sweep
shows a 14B model OOMing long before 1M tokens regardless of TP degree —
the quantitative version of the paper's motivation."""

import numpy as np

from repro.experiments.extensions import ext_tp_scaling


def test_ext_tp_scaling(benchmark, record_table):
    result = benchmark(ext_tp_scaling)
    record_table(result)
    fits = [row[3] for row in result.rows]
    assert fits[0] == "ok" and fits[-1] == "OOM"


def test_ext_tp_numeric_step(benchmark):
    """Real-runtime guard: one TP training step on the simulated cluster."""
    from repro.comm import SimCommunicator
    from repro.nn import Adam, TransformerConfig
    from repro.topology import a800_node, make_cluster
    from repro.tp import build_tp_model

    comm = SimCommunicator(make_cluster(4, node=a800_node(gpus_per_node=4)))
    model = build_tp_model(
        TransformerConfig(vocab_size=32, dim=16, n_layers=2, n_heads=4,
                          ffn_hidden=24, max_seq_len=32, attn_block_size=16),
        comm,
    )
    opt = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 32, size=16)
    targets = np.roll(ids, -1)

    def step():
        opt.zero_grad()
        loss = model(ids, targets)
        loss.backward()
        opt.step()
        return loss.item()

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.isfinite(loss)


if __name__ == "__main__":
    print(ext_tp_scaling().format())
