"""Pipeline schedules as timing models: GPipe and 1F1B.

Both schedules do the same work — ``M`` microbatches through ``P`` stages
— and share the bubble fraction ``(P-1)/(M+P-1)``; they differ in *when*
backward work interleaves, which bounds how many microbatches' activations
are live at once (``M`` for GPipe, ``<= P`` for 1F1B: the memory win).

:func:`pipeline_step_time` builds the chosen schedule as a DES task graph
(one resource per stage, boundary transfers on explicit link resources)
and returns the simulated makespan, so bubble arithmetic and communication
exposure come from the same machinery as the attention overlap models.
"""

from __future__ import annotations

from repro.perf.des import Simulator


def gpipe_bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """Idle fraction of the classic synchronous pipeline."""
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    p, m = num_stages, num_microbatches
    return (p - 1) / (m + p - 1)


def in_flight_microbatches(num_stages: int, num_microbatches: int,
                           schedule: str = "1f1b") -> int:
    """Peak number of microbatches whose activations are live on stage 0."""
    if schedule == "gpipe":
        return num_microbatches
    if schedule == "1f1b":
        return min(num_stages, num_microbatches)
    raise ValueError(f"unknown schedule {schedule!r}")


def _build(sim: Simulator, p: int, m: int, t_fwd: float, t_bwd: float,
           t_comm: float, one_f_one_b: bool) -> None:
    """Emit fwd/bwd tasks for every (stage, microbatch) pair.

    Dependencies: a microbatch's forward on stage ``s`` needs its forward
    on ``s-1`` (+ transfer); its backward on ``s`` needs its backward on
    ``s+1`` (+ transfer) and its own forward.  1F1B additionally forces
    stage ``p-1`` to run each backward as soon as its forward completes
    (FIFO per-stage resources then produce the interleaving); GPipe delays
    every backward behind all forwards of its stage.
    """
    for j in range(m):
        for s in range(p):
            deps = []
            if s > 0:
                deps.append(f"cf{s-1}.{j}")
            if j > 0:
                pass  # ordering within a stage is enforced by the resource
            sim.add(f"f{s}.{j}", t_fwd, resources=(f"stage{s}",), deps=deps)
            if s > 0:
                sim.add(f"cf{s-1}.{j}", t_comm, resources=(f"link{s-1}",),
                        deps=[f"f{s-1}.{j}"])
    for j in range(m):
        for s in reversed(range(p)):
            deps = [f"f{s}.{j}"]
            if s < p - 1:
                deps.append(f"cb{s}.{j}")
            if not one_f_one_b:
                # GPipe: all forwards of this stage precede any backward.
                deps.append(f"f{s}.{m-1}")
            sim.add(f"b{s}.{j}", t_bwd, resources=(f"stage{s}",), deps=deps)
            if s > 0:
                sim.add(f"cb{s-1}.{j}", t_comm, resources=(f"link{s-1}",),
                        deps=[f"b{s}.{j}"])


def pipeline_step_time(
    num_stages: int,
    num_microbatches: int,
    t_stage_fwd: float,
    t_stage_bwd: float | None = None,
    t_comm: float = 0.0,
    schedule: str = "1f1b",
) -> float:
    """Simulated makespan of one pipeline-parallel training step."""
    if schedule not in ("1f1b", "gpipe"):
        raise ValueError(f"unknown schedule {schedule!r}")
    t_bwd = t_stage_bwd if t_stage_bwd is not None else 2.0 * t_stage_fwd
    sim = Simulator()
    _build(sim, num_stages, num_microbatches, t_stage_fwd, t_bwd, t_comm,
           one_f_one_b=(schedule == "1f1b"))
    return sim.run()


def pipeline_efficiency(
    num_stages: int, num_microbatches: int, t_stage_fwd: float,
    t_stage_bwd: float | None = None, t_comm: float = 0.0,
    schedule: str = "1f1b",
) -> float:
    """Useful-work fraction: ideal time / simulated makespan."""
    t_bwd = t_stage_bwd if t_stage_bwd is not None else 2.0 * t_stage_fwd
    ideal = num_microbatches * (t_stage_fwd + t_bwd)
    return ideal / pipeline_step_time(
        num_stages, num_microbatches, t_stage_fwd, t_bwd, t_comm, schedule
    )
