"""Pipeline parallelism: the layer-sharding axis.

Completes the parallelism taxonomy the paper's introduction draws from
(context / head / tensor / pipeline [GPipe]).  Two halves:

* :mod:`repro.pp.pipeline` — numeric execution: a
  :class:`~repro.nn.TransformerLM` split into stages, one per rank, with
  every boundary crossing (activations forward, their gradients backward)
  flowing through the logged communicator while the autograd graph stays
  exact (loss/gradients equal the unsharded model's).
* :mod:`repro.pp.schedule` — timing: GPipe and 1F1B schedules as DES
  task graphs, the classic bubble fraction ``(P-1)/(M+P-1)``, and the
  in-flight activation count that separates the two schedules' memory.

Relevance to the paper: pipeline microbatching needs many *independent*
microbatches, but a 1M-token sequence is one sample — long-context
training cannot slice its way to pipeline efficiency, which is another
reason the paper's sequence-dimension parallelism is the right axis.
"""

from repro.pp.pipeline import PipelinedLM, pipeline_boundary
from repro.pp.schedule import (
    gpipe_bubble_fraction,
    in_flight_microbatches,
    pipeline_step_time,
)

__all__ = [
    "PipelinedLM",
    "pipeline_boundary",
    "gpipe_bubble_fraction",
    "in_flight_microbatches",
    "pipeline_step_time",
]
