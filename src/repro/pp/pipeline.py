"""Numeric pipeline-parallel execution.

The model's blocks are partitioned into contiguous stages; stage ``s``
"lives" on rank ``s``.  Boundary crossings are autograd Functions that
pass the data through unchanged while logging the transfer — forward
sends the ``(S, D)`` activation to the next stage, backward returns its
gradient — so pipeline traffic is measured by the same machinery as every
other parallelism axis, and the computation graph (hence losses and
gradients) is bit-identical to the unsharded model.
"""

from __future__ import annotations

import numpy as np

from repro.comm import SimCommunicator
from repro.nn.function import Function
from repro.nn.modules import TransformerLM
from repro.nn.tensor import Tensor
from repro.obs.tracer import trace_span


class PipelineBoundaryFn(Function):
    """Identity with logged stage-boundary communication."""

    def forward(self, x, comm: SimCommunicator = None, src: int = 0,
                dst: int = 0, phase: str = "pp"):
        if comm is None:
            raise ValueError("pipeline boundary requires comm=")
        self.comm, self.src, self.dst, self.phase = comm, src, dst, phase
        with trace_span("pp.boundary", phase="pp", direction="fwd",
                        src=src, dst=dst, channel="fwd"):
            return comm.send(
                src, dst, x, phase=f"{phase}-fwd", tag="activation"
            )

    def backward(self, grad_out):
        # The gradient travels the reverse direction.
        with trace_span("pp.boundary", phase="pp", direction="bwd",
                        src=self.dst, dst=self.src, channel="rev"):
            g = self.comm.send(self.dst, self.src, grad_out,
                               phase=f"{self.phase}-bwd", tag="act-grad")
        return (g,)


def pipeline_boundary(x: Tensor, comm: SimCommunicator, src: int, dst: int) -> Tensor:
    """Send an activation across a stage boundary (differentiable)."""
    return PipelineBoundaryFn.apply(x, comm=comm, src=src, dst=dst)


class PipelinedLM:
    """A :class:`TransformerLM` executed across pipeline stages.

    ``num_stages`` must divide the layer count; embeddings ride with
    stage 0 and the final norm + LM head with the last stage (standard
    placement).  The wrapped model's parameters are shared, so optimizers
    and checkpoints work unchanged.
    """

    def __init__(self, model: TransformerLM, comm: SimCommunicator,
                 num_stages: int | None = None):
        self.model = model
        self.comm = comm
        self.num_stages = num_stages if num_stages is not None else comm.world_size
        n_layers = len(model.blocks)
        if self.num_stages < 1 or n_layers % self.num_stages != 0:
            raise ValueError(
                f"{n_layers} layers not divisible into {self.num_stages} stages"
            )
        if self.num_stages > comm.world_size:
            raise ValueError(
                f"{self.num_stages} stages need at least that many ranks "
                f"(world = {comm.world_size})"
            )
        self.layers_per_stage = n_layers // self.num_stages

    def stage_of_layer(self, layer: int) -> int:
        return layer // self.layers_per_stage

    def forward(self, ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Run one microbatch through all stages; returns the loss."""
        from repro.nn import ops
        from repro.nn.modules import FusedLMHeadLossFn

        model = self.model
        s = len(ids)
        x = ops.add(model.tok_emb(ids), model.pos_emb(np.arange(s)))
        for i, block in enumerate(model.blocks):
            stage = self.stage_of_layer(i)
            if i > 0 and stage != self.stage_of_layer(i - 1):
                x = pipeline_boundary(x, self.comm, stage - 1, stage)
            x = block(x)
        h = model.final_norm(x)
        return FusedLMHeadLossFn.apply(
            h, model.lm_head.weight, targets=np.asarray(targets),
            impl=model.config.head_impl,
        )

    def train_step(self, microbatches, optimizer) -> float:
        """Accumulate all microbatches' gradients, then step.

        Numerically this is GPipe/1F1B-agnostic (schedules only reorder
        work); returns the mean loss.
        """
        if not microbatches:
            raise ValueError("need at least one microbatch")
        optimizer.zero_grad()
        total = 0.0
        m = len(microbatches)
        for ids, targets in microbatches:
            loss = self.forward(ids, targets)
            total += loss.item() / m
            loss.backward(np.asarray(1.0 / m))
        optimizer.step()
        return total

    def boundary_bytes_per_microbatch(self, seq_len: int) -> int:
        """Forward activation bytes crossing all boundaries once."""
        d = self.model.config.dim
        return (self.num_stages - 1) * seq_len * d * 8
