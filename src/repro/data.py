"""Synthetic long-context training tasks.

The paper trains on proprietary long-sequence corpora; these generators
provide the closest open equivalents — tasks whose loss *requires*
long-range attention, so end-to-end training through the distributed
stack demonstrably exercises the full context window:

* :func:`copy_task` — the second half of the sequence repeats the first;
  predicting it correctly requires attending ``N/2`` tokens back.
* :func:`needle_task` — a key/value pair is planted early in a noise
  sequence and queried at the end (needle-in-a-haystack recall).
* :func:`lm_task` — an order-k Markov "language" with long-range
  consistency; the generic next-token objective.

Each returns ``(ids, targets)`` ready for
:meth:`repro.engine.BurstEngine.train_step`; :func:`recall_accuracy`
scores a trained model on the positions that need long-range context.
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def copy_task(
    seq_len: int, vocab: int, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """First half random, second half a verbatim copy of the first.

    Next-token targets: inside the copy region the correct prediction is
    the token ``seq_len/2`` positions back — unlearnable without
    long-range attention, trivially learnable with it.
    """
    if seq_len % 2 != 0:
        raise ValueError(f"seq_len must be even, got {seq_len}")
    if vocab < 2:
        raise ValueError(f"vocab must be >= 2, got {vocab}")
    rng = _rng(seed)
    half = seq_len // 2
    first = rng.integers(0, vocab, size=half)
    ids = np.concatenate([first, first])
    targets = np.roll(ids, -1)
    return ids, targets


def copy_task_recall_positions(seq_len: int) -> np.ndarray:
    """Positions whose targets require long-range recall (copy region)."""
    half = seq_len // 2
    return np.arange(half, seq_len - 1)


def needle_task(
    seq_len: int,
    vocab: int,
    needle_pos: int | None = None,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Plant ``[KEY, value]`` early; end the sequence with ``KEY`` so the
    next-token target is the planted value.

    Token ``vocab - 1`` is reserved as the KEY marker.  Returns
    ``(ids, targets, value)``.
    """
    if vocab < 3:
        raise ValueError(f"vocab must be >= 3, got {vocab}")
    if seq_len < 4:
        raise ValueError(f"seq_len must be >= 4, got {seq_len}")
    rng = _rng(seed)
    key = vocab - 1
    value = int(rng.integers(0, vocab - 1))
    ids = rng.integers(0, vocab - 1, size=seq_len)
    pos = needle_pos if needle_pos is not None else int(
        rng.integers(0, seq_len // 4)
    )
    if not 0 <= pos < seq_len - 2:
        raise ValueError(f"needle_pos {pos} out of range")
    ids[pos] = key
    ids[pos + 1] = value
    ids[seq_len - 1] = key  # query at the very end
    targets = np.roll(ids, -1)
    targets[seq_len - 1] = value  # the answer to the final query
    return ids, targets, value


def lm_task(
    seq_len: int, vocab: int, order: int = 2, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Order-``k`` Markov sequence with a fixed random transition table —
    a learnable synthetic "language" for generic perplexity training."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    rng = _rng(seed)
    # Deterministic per-context preferred token + noise.
    table = rng.integers(0, vocab, size=vocab**order)
    ids = np.empty(seq_len, dtype=np.int64)
    ids[:order] = rng.integers(0, vocab, size=order)
    powers = vocab ** np.arange(order)
    for t in range(order, seq_len):
        context = int((ids[t - order : t] * powers).sum()) % (vocab**order)
        if rng.random() < 0.9:
            ids[t] = table[context]
        else:
            ids[t] = rng.integers(0, vocab)
    return ids, np.roll(ids, -1)


def recall_accuracy(
    model, ids: np.ndarray, targets: np.ndarray, positions: np.ndarray
) -> float:
    """Greedy next-token accuracy of ``model`` at ``positions``.

    ``model`` is any object with a ``logits(ids)`` method returning an
    ``(S, vocab)`` tensor (e.g. :class:`repro.nn.TransformerLM`).
    """
    from repro.nn.tensor import no_grad

    with no_grad():
        logits = model.logits(ids).data
    preds = logits.argmax(axis=-1)
    return float((preds[positions] == targets[positions]).mean())
