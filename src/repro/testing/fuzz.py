"""Differential-fuzzer CLI.

Usage::

    python -m repro.testing.fuzz --seed 0 --budget 50        # sweep; exit 0/1
    python -m repro.testing.fuzz --smoke                     # small fast sweep
    python -m repro.testing.fuzz --fault corrupt --budget 5  # must exit 1 with
                                                             # a shrunk repro
    python -m repro.testing.fuzz --case "method=burst,mask=causal,nodes=1,\
gpn=2,seq_len=8,head_dim=2,n_heads=1,block_size=8,dtype=float64,seed=0"

Exit code 0 when every case matches the dense reference, 1 when any case
fails (each failure is printed with a minimal shrunk repro command).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.kernels import available_backends
from repro.resilience.rank_faults import RANK_FAULT_REGISTRY
from repro.testing.differential import FuzzCase, check_case, fuzz
from repro.testing.faults import FAULT_REGISTRY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential fuzzer: random method/mask/topology "
                    "configurations vs the dense attention reference.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed for the sweep (default 0)")
    parser.add_argument("--budget", type=int, default=50,
                        help="number of random cases to run (default 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="restrict to small configurations (CI smoke)")
    parser.add_argument("--fault", choices=sorted(FAULT_REGISTRY),
                        help="inject this fault into every case; the run "
                             "must then fail with a repro")
    parser.add_argument("--rank-fault", choices=sorted(RANK_FAULT_REGISTRY),
                        help="inject this rank-scoped fault (under a "
                             "FailureDetector) into every case; crash/hang "
                             "must be detected for the run to pass")
    parser.add_argument("--backend", choices=available_backends(),
                        help="run every case on this kernel backend "
                             "(differential test vs the dense reference; "
                             "failures shrink back to 'reference' first)")
    parser.add_argument("--case", metavar="SPEC",
                        help="run exactly one 'key=value,...' case instead "
                             "of sweeping")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress output")
    args = parser.parse_args(argv)

    if args.case is not None:
        case = FuzzCase.parse(args.case)
        if args.backend is not None:
            case = replace(case, backend=args.backend)
        passed, detail = check_case(case, fault=args.fault)
        print(detail)
        return 0 if passed else 1

    def progress(i, case, passed):
        if not args.quiet:
            marker = "." if passed else "F"
            print(f"[{i + 1:3d}/{args.budget}] {marker} {case.spec()}")

    result = fuzz(seed=args.seed, budget=args.budget, fault=args.fault,
                  smoke=args.smoke, on_case=progress,
                  rank_fault=args.rank_fault, backend=args.backend)
    print(result.summary())
    return 0 if result.passed else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
