"""Golden-file regression fixtures: pinned npz outputs per method.

The dense-reference comparison catches a method diverging from the
reference — but a refactor that changes *both* (a new kernel used by the
method and the oracle alike, a partitioner tweak applied everywhere)
slips straight through.  Golden files break that symmetry: the exact
forward/backward outputs of every registered method on one fixed problem
are checked into ``tests/golden/*.npz``, so any numeric drift from the
state pinned at recording time is caught no matter which side moved.

Regenerate deliberately (and review the diff!) after an intentional
numeric change::

    python -m repro.testing.golden --update [method ...]

Comparison uses a tight-but-not-bitwise tolerance (``1e-9`` relative)
so BLAS reduction-order differences across platforms don't trip it while
real algorithmic drift does.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.attention import METHOD_REGISTRY, get_method
from repro.masks import CausalMask
from repro.topology import a800_node, make_cluster

#: One canonical problem per method.  Small enough that all six fixtures
#: total a few hundred KB; shaped so every method's constraints hold
#: (ulysses needs H % G == 0, usp a degree dividing both).
_BASE = dict(num_gpus=4, gpus_per_node=2, seq_len=32, head_dim=4,
             n_heads=4, seed=2024, block_size=8)
GOLDEN_CASES: dict[str, dict] = {
    name: dict(_BASE) for name in METHOD_REGISTRY
}
GOLDEN_CASES["usp"]["method_kwargs"] = {"ulysses_degree": 2}
#: Cases may carry an explicit "method" key when the fixture name is not a
#: registry name — e.g. the same method pinned under a non-default mode.
#: Bidirectional burst is bitwise-identical to "burst" by design; a
#: separate fixture pins that equivalence against future transport drift.
GOLDEN_CASES["burst-bidir"] = dict(
    _BASE, method="burst", method_kwargs={"ring_mode": "bidirectional"}
)

RTOL = 1e-9
ATOL = 1e-11

ARRAYS = ("o", "lse", "dq", "dk", "dv")


def default_golden_dir() -> Path:
    """``tests/golden`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def compute_golden(method_name: str) -> dict[str, np.ndarray]:
    """Run the method on its canonical problem; returns the five outputs."""
    case = GOLDEN_CASES[method_name]
    topo = make_cluster(
        case["num_gpus"], node=a800_node(gpus_per_node=case["gpus_per_node"])
    )
    rng = np.random.default_rng(case["seed"])
    shape = (case["n_heads"], case["seq_len"], case["head_dim"])
    q, k, v, do = (rng.normal(size=shape) for _ in range(4))
    method = get_method(
        case.get("method", method_name), block_size=case["block_size"],
        **case.get("method_kwargs", {}),
    )
    res = method.run(topo, q, k, v, mask=CausalMask(), do=do)
    return {name: np.asarray(getattr(res, name)) for name in ARRAYS}


def golden_path(method_name: str, directory: Path | None = None) -> Path:
    directory = directory or default_golden_dir()
    return Path(directory) / f"{method_name}.npz"


def save_golden(method_name: str, directory: Path | None = None) -> Path:
    """Record (or re-record) the fixture for one method."""
    path = golden_path(method_name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **compute_golden(method_name))
    return path


@dataclass
class GoldenReport:
    """Comparison of current outputs against the pinned fixture."""

    method: str
    path: str
    errors: dict[str, float] = field(default_factory=dict)
    missing: bool = False

    @property
    def passed(self) -> bool:
        if self.missing:
            return False
        return all(e == 0.0 for e in self.errors.values())

    def summary(self) -> str:
        if self.missing:
            return (f"[FAIL] golden {self.method}: fixture {self.path} "
                    f"missing — run python -m repro.testing.golden --update")
        status = "PASS" if self.passed else "FAIL"
        parts = ", ".join(
            f"{k}={'ok' if v == 0.0 else f'{v:.2e} over tolerance'}"
            for k, v in self.errors.items()
        )
        return f"[{status}] golden {self.method}: {parts}"


def check_golden(
    method_name: str,
    directory: Path | None = None,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> GoldenReport:
    """Compare the method's current outputs with its checked-in fixture.

    ``errors`` holds, per array, the max excess over the ``atol + rtol·|ref|``
    envelope (0.0 = within tolerance), so a failure message quantifies the
    drift rather than just flagging it.
    """
    path = golden_path(method_name, directory)
    report = GoldenReport(method=method_name, path=str(path))
    if not path.exists():
        report.missing = True
        return report
    current = compute_golden(method_name)
    with np.load(path) as pinned:
        for name in ARRAYS:
            ref = pinned[name]
            cur = current[name]
            if cur.shape != ref.shape:
                report.errors[name] = float("inf")
                continue
            excess = np.abs(cur - ref) - (atol + rtol * np.abs(ref))
            report.errors[name] = float(max(excess.max(), 0.0))
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.golden",
        description="Check or regenerate golden-file fixtures.",
    )
    parser.add_argument("methods", nargs="*",
                        help="methods to process (default: all registered)")
    parser.add_argument("--update", action="store_true",
                        help="re-record fixtures instead of checking")
    parser.add_argument("--dir", type=Path, default=None,
                        help="fixture directory (default tests/golden)")
    args = parser.parse_args(argv)
    methods = args.methods or sorted(GOLDEN_CASES)

    if args.update:
        for name in methods:
            path = save_golden(name, args.dir)
            print(f"recorded {path}")
        return 0
    reports = [check_golden(name, args.dir) for name in methods]
    for report in reports:
        print(report.summary())
    return 0 if all(r.passed for r in reports) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
