"""Invariant cross-checks: simulated traffic vs the paper's closed forms.

The Table 1 reproduction (:func:`repro.perf.cost.table1_comm_times`) is
analytic — it plugs per-step payload sizes from
:func:`repro.perf.cost.attention_step_sizes` into the paper's three
formulas.  Nothing would stop a communication refactor from changing what
the simulator *actually sends* while the closed-form math silently keeps
reporting the old numbers.  These checks close that gap: they run the real
methods through a :class:`~repro.comm.SimCommunicator`, read the
:class:`~repro.comm.TrafficLog`, and assert

* every forward hop carries exactly ``attention_step_sizes(...)["fwd"]``
  bytes and every backward hop exactly the bundle of its algorithm
  (``4·(S/G)·h`` for Algorithm 1, ``(3h + 2H)·(S/G)`` for Algorithm 2);
* per-rank totals land exactly on the paper's ``4Nd`` (flat/double ring)
  and ``3Nd + 2N`` (burst) element counts, for any topology — including
  the degenerate case where a rank's bundle is already home at the final
  return permutation and sends nothing;
* re-evaluating Table 1 with the *observed* per-hop payloads reproduces
  ``table1_comm_times`` bit-for-bit, so the timing claims are anchored to
  simulated bytes, not to a formula that merely resembles the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attention import get_method
from repro.comm import SimCommunicator, TrafficLog
from repro.masks import MaskPattern
from repro.perf.cost import (
    attention_step_sizes,
    flat_ring_step_time,
    ring_phase_cost,
    table1_comm_times,
)
from repro.topology import ClusterTopology

#: Backward algorithm per ring-family method (which bundle circulates).
RING_BACKWARDS = {
    "megatron-cp": "alg1",
    "loongtrain-double": "alg1",
    "burst": "alg2",
}

_F64_BYTES = 8  # the simulator's numerics are float64


@dataclass
class InvariantReport:
    """Outcome of one invariant cross-check."""

    name: str
    passed: bool = True
    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    def record(self, ok: bool, description: str) -> None:
        (self.checks if ok else self.failures).append(description)
        if not ok:
            self.passed = False

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] {self.name}: {len(self.checks)} ok, "
                 f"{len(self.failures)} failed"]
        lines += [f"  FAIL {f}" for f in self.failures]
        return "\n".join(lines)


# --- closed forms -------------------------------------------------------------


def expected_forward_elems(seq_len: int, head_dim: int, n_heads: int = 1) -> int:
    """Per-rank forward send volume in elements: ``(G-1)/G · 2Nd`` summed
    over the ring — K and V each travel G-1 hops.  Returned as the exact
    integer for one rank (multiply of the paper's ``2Nd`` by (G-1)/G is
    applied by the caller, which knows G)."""
    return 2 * seq_len * head_dim * n_heads


def expected_backward_elems(
    algorithm: str, seq_len: int, head_dim: int, n_heads: int = 1
) -> int:
    """Per-rank backward send volume in elements over a full circulation.

    * ``alg1``: ``4Nd`` per head slot (K, V, dK, dV circulate G hops).
    * ``alg2``: ``3Nd + 2N`` per head slot (Q, dQ, dO + the two
      scalar-per-row statistics D and Lse).
    """
    if algorithm == "alg1":
        return 4 * seq_len * head_dim * n_heads
    if algorithm == "alg2":
        return (3 * head_dim + 2) * seq_len * n_heads
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _run_method(
    method_name: str,
    topology: ClusterTopology,
    seq_len: int,
    head_dim: int,
    n_heads: int,
    mask: MaskPattern | None,
    seed: int = 0,
):
    rng = np.random.default_rng(seed)
    shape = (n_heads, seq_len, head_dim)
    q, k, v, do = (rng.normal(size=shape) for _ in range(4))
    method = get_method(method_name, block_size=max(4, seq_len // 8))
    comm = SimCommunicator(topology)
    method.run(topology, q, k, v, mask=mask, do=do, comm=comm)
    return method, comm.log


def _return_fixed_points(method, topology: ClusterTopology) -> set[int]:
    """Ranks whose circulating bundle is already home before the final
    return permutation (the exchange records nothing for them)."""
    perm = method._schedule(topology).return_permutation()
    return {r for r, dst in enumerate(perm) if r == dst}


# --- cross-checks -------------------------------------------------------------


def check_traffic_invariants(
    method_name: str,
    topology: ClusterTopology,
    seq_len: int,
    head_dim: int = 8,
    n_heads: int = 1,
    mask: MaskPattern | None = None,
    seed: int = 0,
) -> InvariantReport:
    """Simulated per-hop and per-rank traffic vs the analytic formulas.

    Works for the three ring-family methods.  ``n_heads > 1`` checks the
    head-folded generalisation; at ``n_heads == 1`` the assertions are the
    paper's literal ``2Nd`` / ``4Nd`` / ``3Nd + 2N``.
    """
    if method_name not in RING_BACKWARDS:
        raise ValueError(
            f"traffic invariants cover ring-family methods, got {method_name!r}"
        )
    algorithm = RING_BACKWARDS[method_name]
    g = topology.world_size
    report = InvariantReport(
        name=f"traffic[{method_name}, G={g}, N={seq_len}, d={head_dim}, "
             f"H={n_heads}]"
    )
    method, log = _run_method(
        method_name, topology, seq_len, head_dim, n_heads, mask, seed
    )

    # (1) Per-hop payloads match attention_step_sizes exactly.  The cost
    # model states sizes in bytes of one circulating bundle per transition;
    # heads are folded into the hidden size.  Algorithm 2's "+2" rows (D,
    # Lse) are per-head scalars, hence the (3h + 2H) generalisation.
    hidden = n_heads * head_dim
    sizes = attention_step_sizes(seq_len, hidden, g, bytes_per_elem=_F64_BYTES)
    shard = seq_len // g
    fwd_hop = {r.nbytes for r in log.records if r.phase == "attn-fwd"}
    report.record(
        fwd_hop == {int(sizes["fwd"])},
        f"forward hop bytes {sorted(fwd_hop)} == attention_step_sizes fwd "
        f"{sizes['fwd']:.0f}",
    )
    if algorithm == "alg1":
        expected_bwd_hop = int(sizes["bwd_alg1"])
    else:
        expected_bwd_hop = (3 * hidden + 2 * n_heads) * shard * _F64_BYTES
        if n_heads == 1:
            report.record(
                expected_bwd_hop == int(sizes["bwd_alg2"]),
                "Alg.2 hop formula coincides with attention_step_sizes "
                "bwd_alg2 at H=1",
            )
    bwd_hop = {r.nbytes for r in log.records if r.phase == "attn-bwd"}
    report.record(
        bwd_hop == {expected_bwd_hop},
        f"backward hop bytes {sorted(bwd_hop)} == {expected_bwd_hop} "
        f"({algorithm} bundle)",
    )

    # (2) Per-rank element totals: the paper's headline accounting.
    fwd_elems = log.per_rank_send_elems(phase="attn-fwd")
    expected_fwd = (g - 1) * expected_forward_elems(
        seq_len, head_dim, n_heads
    ) // g
    ok = set(fwd_elems) == set(range(g)) and all(
        v == expected_fwd for v in fwd_elems.values()
    )
    report.record(
        ok, f"per-rank forward elems == (G-1)/G * 2Nd*H = {expected_fwd}",
    )

    bwd_elems = log.per_rank_send_elems(phase="attn-bwd")
    full = expected_backward_elems(algorithm, seq_len, head_dim, n_heads)
    per_hop_elems = full // g
    home = _return_fixed_points(method, topology)
    for r in range(g):
        expected = full - (per_hop_elems if r in home else 0)
        report.record(
            bwd_elems.get(r, 0) == expected,
            f"rank {r} backward elems {bwd_elems.get(r, 0)} == {expected} "
            f"({'4Nd' if algorithm == 'alg1' else '3Nd + 2N'}"
            f"{' minus skipped home return' if r in home else ''})",
        )
    return report


def check_table1_consistency(
    topology: ClusterTopology,
    seq_len: int,
    hidden: int,
    seed: int = 0,
) -> InvariantReport:
    """Re-derive Table 1 from *observed* traffic and compare bit-for-bit.

    Runs the three ring-family methods with ``H = 1`` heads of dimension
    ``hidden`` (the cost model folds heads into the hidden size), reads the
    per-hop payload bytes each method actually put on the wire, rescales
    them to the model's ``bytes_per_elem = 2`` (bf16 on hardware vs the
    simulator's float64), and evaluates the paper's three formulas with
    those observed payloads.  The result must equal
    :func:`repro.perf.cost.table1_comm_times` exactly — if a refactor
    changes what any method sends per step, this is the check that trips.
    """
    g = topology.world_size
    report = InvariantReport(
        name=f"table1[G={g}, N={seq_len}, h={hidden}]"
    )
    analytic = table1_comm_times(topology, seq_len, hidden, bytes_per_elem=2)

    observed_hop = {}
    for name in RING_BACKWARDS:
        _, log = _run_method(
            name, topology, seq_len, hidden, 1, mask=None, seed=seed
        )
        fwd = {r.nbytes for r in log.records if r.phase == "attn-fwd"}
        bwd = {r.nbytes for r in log.records if r.phase == "attn-bwd"}
        report.record(
            len(fwd) == 1 and len(bwd) == 1,
            f"{name}: uniform per-hop payloads (fwd {sorted(fwd)}, "
            f"bwd {sorted(bwd)})",
        )
        if len(fwd) != 1 or len(bwd) != 1:
            return report
        # Simulated arrays are float64; Table 1 is stated for 2-byte elems.
        observed_hop[name] = (
            fwd.pop() * 2 // _F64_BYTES, bwd.pop() * 2 // _F64_BYTES
        )

    # One shard-sized buffer as each method's forward actually sends it.
    p_shard = {n: fwd_b / 2 for n, (fwd_b, _) in observed_hop.items()}
    rounds_bwd = {
        n: bwd_b / p_shard[n] for n, (_, bwd_b) in observed_hop.items()
    }
    report.record(
        rounds_bwd["megatron-cp"] == 4.0 and rounds_bwd["loongtrain-double"] == 4.0,
        f"Alg.1 backward rounds observed {rounds_bwd['megatron-cp']} == 4",
    )
    report.record(
        abs(rounds_bwd["burst"] - (3 + 2 / hidden)) < 1e-12,
        f"Alg.2 backward rounds observed {rounds_bwd['burst']} == 3 + 2/h",
    )

    rederived = {
        "ring": 6 * g * flat_ring_step_time(topology, p_shard["megatron-cp"]),
    }
    phase_dbl = ring_phase_cost(topology, p_shard["loongtrain-double"])
    rederived["double_ring"] = 4 * phase_dbl.overlapped + 2 * phase_dbl.serialized
    phase_burst = ring_phase_cost(topology, p_shard["burst"])
    rederived["burst"] = (2 + rounds_bwd["burst"]) * phase_burst.overlapped

    for name, value in analytic.items():
        # 1-ulp slack: observed payload rounds come from a different (but
        # mathematically equal) division order than the analytic formula.
        close = value == rederived[name] or (
            abs(rederived[name] - value) <= 1e-12 * abs(value)
        )
        report.record(
            close,
            f"table1[{name}] from observed bytes {rederived[name]:.6e} == "
            f"analytic {value:.6e}",
        )
    return report


def check_tile_plan_invariants(
    seq_len: int = 256,
    block_q: int = 32,
    block_k: int = 32,
    head_dim: int = 8,
    n_heads: int = 2,
    window: int | None = None,
    mask_block: int | None = None,
    seed: int = 0,
) -> InvariantReport:
    """Measured kernel tile counts vs the ``repro.perf.cost`` closed forms.

    For causal, sliding-window, and block-sparse masks over ``[0,
    seq_len)``: builds a :class:`~repro.kernels.TilePlan`, runs the
    plan-driven forward+backward with the global tile counters reset, and
    asserts

    * the plan's ``full``/``partial``/``empty`` census equals the
      closed-form census (``causal_tile_counts`` etc.) exactly;
    * the executed counters equal twice the plan census (one traversal
      each for forward and backward);
    * pair accounting is conservative and complete: computed + skipped
      pairs tile the full ``N x N`` score matrix, and every allowed pair
      (``mask.total_allowed``) lies inside a computed sub-tile.

    This mirrors the traffic invariants: nothing stops a kernel refactor
    from silently computing skipped tiles (or skipping computed ones)
    unless the measured counts are pinned to independent arithmetic.
    """
    from repro.kernels import TilePlan, counters, get_backend
    from repro.masks import CausalMask, SlidingWindowMask, sliding_window_block_mask
    from repro.perf.cost import (
        block_sparse_tile_counts,
        causal_tile_counts,
        sliding_window_tile_counts,
    )

    window = window or seq_len // 4
    mask_block = mask_block or seq_len // 8
    report = InvariantReport(
        name=f"tileplan[N={seq_len}, bq={block_q}, bk={block_k}]"
    )
    bs_mask = sliding_window_block_mask(seq_len, mask_block, 2)
    cases = [
        ("causal", CausalMask(),
         causal_tile_counts(seq_len, block_q, block_k)),
        ("sliding-window", SlidingWindowMask(window),
         sliding_window_tile_counts(seq_len, window, block_q, block_k)),
        ("block-sparse", bs_mask,
         block_sparse_tile_counts(
             seq_len, mask_block, bs_mask.block_mask,
             bs_mask.intra_block_causal, block_q, block_k)),
    ]
    rng = np.random.default_rng(seed)
    shape = (n_heads, seq_len, head_dim)
    q, k, v, do = (rng.normal(size=shape) for _ in range(4))
    idx = np.arange(seq_len)

    for name, mask, closed in cases:
        plan = TilePlan.build(mask, idx, idx, block_q, block_k)
        census = {
            "full": plan.num_full, "partial": plan.num_partial,
            "empty": plan.num_empty, "total": plan.num_tiles,
        }
        report.record(
            census == closed,
            f"{name}: plan census {census} == closed form {closed}",
        )
        counters.reset()
        backend = get_backend()
        o, lse = backend.flash_forward(q, k, v, plan=plan)
        backend.flash_backward(q, k, v, o, lse, do, plan=plan)
        computed = closed["full"] + closed["partial"]
        report.record(
            counters.computed == 2 * computed
            and counters.skipped_empty == 2 * closed["empty"],
            f"{name}: executed tiles (fwd+bwd) {counters.computed} computed"
            f" / {counters.skipped_empty} skipped == 2x closed form "
            f"({computed} / {closed['empty']})",
        )
        total_pairs = counters.computed_pairs + counters.skipped_pairs
        report.record(
            total_pairs == 2 * seq_len * seq_len,
            f"{name}: pair accounting tiles the score matrix "
            f"({total_pairs} == 2*N^2)",
        )
        allowed = mask.total_allowed(seq_len)
        report.record(
            counters.computed_pairs >= 2 * allowed,
            f"{name}: computed pairs {counters.computed_pairs} cover all "
            f"2x{allowed} allowed pairs",
        )
    return report


def check_all_invariants(
    topologies, shard_mult: int = 3, head_dim: int = 4, hidden: int = 16
) -> list[InvariantReport]:
    """Run every cross-check over a collection of topologies.

    The per-topology sequence length is ``2 · G · shard_mult`` — divisible
    by ``2G`` as the zigzag partitioner requires, and deliberately not a
    power of two for ``shard_mult = 3``.
    """
    reports = []
    for topo in topologies:
        seq_len = 2 * topo.world_size * shard_mult
        for name in RING_BACKWARDS:
            reports.append(
                check_traffic_invariants(
                    name, topo, seq_len=seq_len, head_dim=head_dim
                )
            )
        reports.append(check_table1_consistency(topo, seq_len, hidden))
    return reports
