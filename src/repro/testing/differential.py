"""Seeded differential fuzzer: random valid configurations vs the dense
reference, with failing-case shrinking.

Every distributed method must agree with dense attention on *any* legal
problem — not just the one random problem per (method, mask) the default
verifier checks.  The fuzzer sweeps the configuration space BurstAttention
and DISTFLASHATTN validate over: uneven sequence lengths (odd multiples of
the shard size), non-power-of-two world sizes (6, 9, 12 GPUs), GQA group
ratios, ``ulysses_degree`` splits, and reduced input precision.

A failing case is *shrunk* — each dimension is greedily simplified while
the failure persists — and reported as a one-line repro::

    python -m repro.testing.fuzz --case "method=burst,mask=causal,nodes=1,gpn=2,seq_len=8,head_dim=2,n_heads=1,block_size=8,dtype=float64,seed=0"

which replays exactly that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attention import METHOD_REGISTRY
from repro.attention.verify import MASKS, verify_method
from repro.comm import FailureDetector, RankFailure
from repro.kernels import use_backend as kernel_backend
from repro.resilience.rank_faults import RANK_FAULT_REGISTRY, make_rank_fault
from repro.testing.faults import make_fault
from repro.topology import a800_node, make_cluster

#: Ring-family methods accept grouped-query KV heads.
GQA_METHODS = ("megatron-cp", "loongtrain-double", "burst")

#: Ring-family methods also accept the ``ring_mode`` axis (the
#: bidirectional variant must stay bitwise-identical on any legal problem).
RING_MODE_METHODS = GQA_METHODS

#: (nodes, gpus_per_node) pool — includes non-power-of-two world sizes.
TOPO_POOL = [
    (1, 2), (1, 3), (1, 4), (2, 2), (2, 3), (3, 2), (2, 4), (4, 2), (3, 3),
]
SMOKE_TOPO_POOL = [(1, 2), (1, 3), (2, 2)]

DTYPE_POOL = ["float64", "float64", "float64", "float32", "bfloat16"]


@dataclass(frozen=True)
class FuzzCase:
    """One fully-specified verification problem (hashable, shrinkable)."""

    method: str
    mask: str
    nodes: int
    gpn: int
    seq_len: int
    head_dim: int
    n_heads: int
    n_kv_heads: int | None = None
    ulysses_degree: int | None = None
    block_size: int = 8
    dtype: str = "float64"
    seed: int = 0
    ring_mode: str = "unidirectional"
    #: rank-scoped fault injected under a FailureDetector: ``crash`` and
    #: ``hang`` cases pass iff a RankFailure is raised (detection, not
    #: deadlock); ``straggler`` cases pass iff the run is tolerated and
    #: still verifies.  ``None`` = healthy run.
    rank_failure: str | None = None
    #: kernel backend the case runs under (every registered backend must
    #: be bitwise-indistinguishable from ``reference`` to the verifier).
    backend: str = "reference"

    @property
    def world_size(self) -> int:
        return self.nodes * self.gpn

    def method_kwargs(self) -> dict:
        kw = {}
        if self.method == "usp" and self.ulysses_degree is not None:
            kw["ulysses_degree"] = self.ulysses_degree
        if self.ring_mode != "unidirectional":
            kw["ring_mode"] = self.ring_mode
        return kw

    # --- repro round-trip ---------------------------------------------------

    def spec(self) -> str:
        """Canonical ``key=value,...`` encoding of this case."""
        parts = [
            f"method={self.method}", f"mask={self.mask}",
            f"nodes={self.nodes}", f"gpn={self.gpn}",
            f"seq_len={self.seq_len}", f"head_dim={self.head_dim}",
            f"n_heads={self.n_heads}",
        ]
        if self.n_kv_heads is not None:
            parts.append(f"n_kv_heads={self.n_kv_heads}")
        if self.ulysses_degree is not None:
            parts.append(f"ulysses_degree={self.ulysses_degree}")
        parts += [
            f"block_size={self.block_size}", f"dtype={self.dtype}",
            f"seed={self.seed}",
        ]
        if self.ring_mode != "unidirectional":
            parts.append(f"ring_mode={self.ring_mode}")
        if self.rank_failure is not None:
            parts.append(f"rank_failure={self.rank_failure}")
        if self.backend != "reference":
            parts.append(f"backend={self.backend}")
        return ",".join(parts)

    def repro_command(self, fault: str | None = None) -> str:
        cmd = f'python -m repro.testing.fuzz --case "{self.spec()}"'
        if fault:
            cmd += f" --fault {fault}"
        return cmd

    @classmethod
    def parse(cls, spec: str) -> "FuzzCase":
        """Inverse of :meth:`spec`."""
        kw: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, _, value = item.partition("=")
            if not _:
                raise ValueError(f"malformed case item {item!r}")
            key = key.strip()
            value = value.strip()
            if key in ("method", "mask", "dtype", "ring_mode",
                       "rank_failure", "backend"):
                kw[key] = value
            elif key in ("nodes", "gpn", "seq_len", "head_dim", "n_heads",
                         "n_kv_heads", "ulysses_degree", "block_size", "seed"):
                kw[key] = int(value)
            else:
                raise ValueError(f"unknown case key {key!r}")
        return cls(**kw)

    def validate(self) -> None:
        """Raise if the configuration is not a legal problem."""
        if self.method not in METHOD_REGISTRY:
            raise ValueError(f"unknown method {self.method!r}")
        if self.mask not in MASKS:
            raise ValueError(f"unknown mask {self.mask!r}")
        g = self.world_size
        if self.seq_len % (2 * g) != 0:
            raise ValueError(
                f"seq_len {self.seq_len} not divisible by 2*G = {2 * g}"
            )
        if self.method == "ulysses" and self.n_heads % g != 0:
            raise ValueError(f"ulysses needs n_heads % {g} == 0")
        if self.method == "usp":
            u = self.ulysses_degree or 1
            if g % u != 0 or self.n_heads % u != 0:
                raise ValueError(f"usp degree {u} infeasible for G={g}, "
                                 f"H={self.n_heads}")
        if self.n_kv_heads is not None:
            if self.method not in GQA_METHODS:
                raise ValueError(f"{self.method} does not support GQA")
            if self.n_heads % self.n_kv_heads != 0:
                raise ValueError("n_heads not divisible by n_kv_heads")
        if self.ring_mode not in ("unidirectional", "bidirectional"):
            raise ValueError(f"unknown ring_mode {self.ring_mode!r}")
        if (self.ring_mode != "unidirectional"
                and self.method not in RING_MODE_METHODS):
            raise ValueError(
                f"{self.method} does not take a ring_mode; only "
                f"{', '.join(RING_MODE_METHODS)} do"
            )
        if (self.rank_failure is not None
                and self.rank_failure not in RANK_FAULT_REGISTRY):
            raise ValueError(
                f"unknown rank_failure {self.rank_failure!r}; expected one "
                f"of {', '.join(sorted(RANK_FAULT_REGISTRY))}"
            )
        from repro.kernels import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r}; registered: "
                f"{', '.join(available_backends())}"
            )


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def sample_case(rng: np.random.Generator, smoke: bool = False) -> FuzzCase:
    """Draw one random *valid* configuration."""
    pool = SMOKE_TOPO_POOL if smoke else TOPO_POOL
    nodes, gpn = pool[rng.integers(len(pool))]
    g = nodes * gpn
    method = sorted(METHOD_REGISTRY)[rng.integers(len(METHOD_REGISTRY))]
    mask = sorted(MASKS)[rng.integers(len(MASKS))]
    # Uneven sequence lengths: odd multiples of the minimal legal shard.
    mult = int(rng.integers(1, 3 if smoke else 6))
    seq_len = 2 * g * mult
    head_dim = int(rng.choice([2, 3, 4, 8]))
    n_kv_heads = None
    ulysses_degree = None
    if method == "ulysses":
        n_heads = g * int(rng.integers(1, 3))
    elif method == "usp":
        divs = _divisors(g)
        ulysses_degree = int(divs[rng.integers(len(divs))])
        n_heads = ulysses_degree * int(rng.integers(1, 3))
    else:
        n_heads = int(rng.choice([1, 2, 3, 4]))
        if method in GQA_METHODS and n_heads > 1 and rng.random() < 0.5:
            kv_divs = [d for d in _divisors(n_heads) if d < n_heads]
            n_kv_heads = int(kv_divs[rng.integers(len(kv_divs))])
    block_size = int(rng.choice([4, 8, 16]))
    dtype = "float64" if smoke else DTYPE_POOL[rng.integers(len(DTYPE_POOL))]
    ring_mode = "unidirectional"
    if method in RING_MODE_METHODS and rng.random() < 1 / 3:
        ring_mode = "bidirectional"
    rank_failure = None
    if rng.random() < 1 / 6:
        kinds = sorted(RANK_FAULT_REGISTRY)
        rank_failure = kinds[rng.integers(len(kinds))]
    return FuzzCase(
        method=method, mask=mask, nodes=nodes, gpn=gpn, seq_len=seq_len,
        head_dim=head_dim, n_heads=n_heads, n_kv_heads=n_kv_heads,
        ulysses_degree=ulysses_degree, block_size=block_size, dtype=dtype,
        seed=int(rng.integers(0, 2**16)), ring_mode=ring_mode,
        rank_failure=rank_failure,
    )


def check_case(
    case: FuzzCase, fault: str | None = None, **fault_kwargs
) -> tuple[bool, str]:
    """Run one case through the verifier; returns ``(passed, detail)``.

    ``fault`` names a :data:`~repro.testing.faults.FAULT_REGISTRY` entry to
    inject (targeting the first transfer by default).  A raised exception
    counts as a failure — a fuzzer must never hide crashes.

    With ``case.rank_failure`` set, the case runs over a
    :class:`~repro.comm.FailureDetector` wrapping the matching rank-fault
    injector (victim rank 0, first call): ``crash`` / ``hang`` cases pass
    iff detection raises :class:`~repro.comm.RankFailure` — a silent
    completion means the detector missed a dead rank — while ``straggler``
    cases must be *tolerated* (lease extensions, no failure) and still
    verify bitwise.
    """
    case.validate()
    if fault is not None and case.rank_failure is not None:
        raise ValueError(
            "fault and rank_failure are separate axes; inject one at a time"
        )
    comm = None
    if fault is not None:
        topo = make_cluster(
            case.world_size, node=a800_node(gpus_per_node=case.gpn)
        )
        comm = make_fault(fault, topo, **fault_kwargs)
    elif case.rank_failure is not None:
        topo = make_cluster(
            case.world_size, node=a800_node(gpus_per_node=case.gpn)
        )
        comm = FailureDetector(
            make_rank_fault(case.rank_failure, topo, rank=0, at_call=1)
        )
    expect_detection = case.rank_failure in ("crash", "hang")
    try:
        with kernel_backend(case.backend):
            report = verify_method(
                case.method,
                num_gpus=case.world_size,
                gpus_per_node=case.gpn,
                seq_len=case.seq_len,
                head_dim=case.head_dim,
                n_heads=case.n_heads,
                n_kv_heads=case.n_kv_heads,
                mask=case.mask,
                seed=case.seed,
                dtype=case.dtype,
                comm=comm,
                block_size=case.block_size,
                **case.method_kwargs(),
            )
    except RankFailure as exc:
        if expect_detection:
            return True, f"detected: {exc}"
        return False, f"raised {type(exc).__name__}: {exc}"
    except Exception as exc:  # crashes are failures, not noise
        return False, f"raised {type(exc).__name__}: {exc}"
    if expect_detection:
        return False, (
            f"rank_failure={case.rank_failure} went undetected "
            "(run completed silently)"
        )
    return report.passed, report.summary()


def shrink_case(case: FuzzCase, fails, max_evals: int = 60) -> FuzzCase:
    """Greedy shrinking: simplify one field at a time while ``fails(case)``
    stays true.  ``fails`` is a predicate (True = still failing)."""

    def candidates(c: FuzzCase):
        g = c.world_size
        # backend first: shrinking back to "reference" separates real
        # method bugs from backend-divergence bugs before anything else
        if c.backend != "reference":
            yield replace(c, backend="reference")
        # smaller topology (re-fit dependent fields to stay valid)
        for nodes, gpn in [(1, 2), (1, 3), (2, 2), (1, 4)]:
            if (nodes, gpn) == (c.nodes, c.gpn) or nodes * gpn >= g:
                continue
            g2 = nodes * gpn
            cand = replace(
                c, nodes=nodes, gpn=gpn, seq_len=2 * g2,
                n_heads=g2 if c.method == "ulysses" else min(c.n_heads, 2),
                n_kv_heads=None,
                ulysses_degree=1 if c.method == "usp" else None,
            )
            yield cand
        # shorter sequence
        if c.seq_len > 2 * g:
            yield replace(c, seq_len=2 * g)
        # simpler mask / dtype / seed
        if c.mask != "full":
            yield replace(c, mask="full")
        if c.dtype != "float64":
            yield replace(c, dtype="float64")
        if c.seed != 0:
            yield replace(c, seed=0)
        # narrower heads
        if c.n_kv_heads is not None:
            yield replace(c, n_kv_heads=None)
        min_heads = (
            g if c.method == "ulysses"
            else (c.ulysses_degree or 1) if c.method == "usp" else 1
        )
        if c.n_heads > min_heads:
            yield replace(c, n_heads=min_heads, n_kv_heads=None)
        if c.method == "usp" and (c.ulysses_degree or 1) > 1:
            yield replace(c, ulysses_degree=1, n_heads=min(c.n_heads, 2))
        if c.ring_mode != "unidirectional":
            yield replace(c, ring_mode="unidirectional")
        if c.rank_failure is not None:
            yield replace(c, rank_failure=None)
        if c.head_dim > 2:
            yield replace(c, head_dim=2)
        if c.block_size != 8:
            yield replace(c, block_size=8)

    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in candidates(case):
            try:
                cand.validate()
            except ValueError:
                continue
            evals += 1
            if evals > max_evals:
                break
            if fails(cand):
                case = cand
                improved = True
                break
    return case


@dataclass
class FuzzFailure:
    """One failing configuration plus its shrunk repro."""

    case: FuzzCase
    shrunk: FuzzCase
    detail: str
    fault: str | None = None

    def repro(self) -> str:
        return self.shrunk.repro_command(fault=self.fault)


@dataclass
class FuzzResult:
    """Outcome of a fuzzing run."""

    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases, {len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            lines.append(f"  FAIL {f.detail}")
            lines.append(f"       repro: {f.repro()}")
        return "\n".join(lines)


def fuzz(
    seed: int = 0,
    budget: int = 50,
    fault: str | None = None,
    smoke: bool = False,
    max_failures: int = 3,
    on_case=None,
    rank_fault: str | None = None,
    backend: str | None = None,
) -> FuzzResult:
    """Run up to ``budget`` random cases; shrink and record failures.

    ``fault`` injects the named fault into *every* case — the expected
    outcome is then a failure with a minimal repro, which is how the
    harness proves the fuzzer actually detects sabotage.  ``backend``
    forces every case onto the named kernel backend — differential-testing
    that backend against the dense oracle across random configurations
    (failures shrink back to ``reference`` first, isolating backend
    divergence from method bugs).  ``rank_fault``
    similarly forces ``rank_failure`` onto every case — crash / hang runs
    must then *detect* (pass), so an all-green run is a detector smoke
    across random configurations.  The two axes are mutually exclusive;
    under ``fault``, randomly-sampled ``rank_failure`` values are stripped
    so the message-fault path is measured in isolation.  ``on_case`` is an
    optional callback ``(index, case, passed)`` for progress reporting.
    """
    if fault is not None and rank_fault is not None:
        raise ValueError("fault and rank_fault are mutually exclusive")
    rng = np.random.default_rng(seed)
    result = FuzzResult()
    for i in range(budget):
        case = sample_case(rng, smoke=smoke)
        if backend is not None:
            case = replace(case, backend=backend)
        if rank_fault is not None:
            case = replace(case, rank_failure=rank_fault)
        elif fault is not None and case.rank_failure is not None:
            case = replace(case, rank_failure=None)
        passed, detail = check_case(case, fault=fault)
        result.cases_run += 1
        if on_case is not None:
            on_case(i, case, passed)
        if passed:
            continue
        shrunk = shrink_case(
            case, lambda c: not check_case(c, fault=fault)[0]
        )
        _, shrunk_detail = check_case(shrunk, fault=fault)
        result.failures.append(
            FuzzFailure(case=case, shrunk=shrunk, detail=shrunk_detail,
                        fault=fault)
        )
        if len(result.failures) >= max_failures:
            break
    return result
