"""Fault-injecting communicators: realistic distributed-systems bugs on tap.

A reproduction's tests are only as good as their ability to *fail*.  Each
class here wraps :class:`~repro.comm.SimCommunicator` and sabotages the
delivery of one (or every) matching transfer; the meta-tests then assert
that :func:`repro.attention.verify.verify_method` catches the damage for
every method in the registry, and the differential fuzzer uses the same
classes to prove it reports (and shrinks) injected failures.

Targeting
---------
All faults share one targeting model: a delivery op is *matched* when its
``op`` name (``ring_shift`` / ``exchange`` / ``all_to_all`` /
``group_all_to_all`` / ``send``), ``phase`` and ``tag`` each contain the
configured filter (``None`` matches anything), and the fault fires on the
``at_call``-th matching call (1-based; ``None`` fires on every match).  So

* ``CorruptPayloadComm(topo)`` — corrupt the very first transfer of the run;
* ``CorruptPayloadComm(topo, phase="attn-bwd", at_call=1)`` — corrupt the
  first backward transfer only, leaving the forward clean;
* ``DropTransferComm(topo, op="exchange", tag="return")`` — lose the
  gradient-return message of Algorithms 1/2.

The fault models
----------------
===============================  ===============================================
:class:`CorruptPayloadComm`      delivered floats perturbed by additive noise
:class:`DropTransferComm`        one rank's delivery silently zeroed (lost msg)
:class:`MisrouteHopComm`         deliveries rotated to the wrong ranks
:class:`StaleBufferComm`         previous delivery served again (double-buffer
                                 reuse without waiting for the transfer)
:class:`DuplicateDeliveryComm`   message applied twice (doubled payload, as a
                                 reduce would see a re-sent packet)
===============================  ===============================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import SimCommunicator
from repro.topology import ClusterTopology
from repro.utils.pytree import tree_map


def _perturb_floats(tree: object, fn) -> object:
    """Apply ``fn`` to every floating-point leaf of a pytree."""
    return tree_map(
        lambda a: fn(a) if getattr(a, "dtype", None) is not None
        and a.dtype.kind == "f" else a,
        tree,
    )


def _copy_tree(tree: object) -> object:
    return tree_map(np.copy, tree)


class FaultInjectingCommunicator(SimCommunicator):
    """Base class: intercepts every delivery op and lets a subclass damage
    the received buffers when the targeting filters match.

    Parameters
    ----------
    phase, tag, op:
        Substring filters on the transfer labels (``None`` = match all).
    channel:
        Exact-match filter on the ring direction (``"fwd"`` / ``"rev"``);
        ``None`` matches both.  ``channel="rev"`` aims a fault at the
        counter-rotating stream of a bidirectional ring.
    at_call:
        1-based index of the matching call to sabotage; ``None`` hits every
        matching call.
    victim:
        For per-rank faults (corrupt / drop / duplicate on collective
        deliveries): index of the delivered entry to damage.
    """

    fault_name = "base"

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        phase: str | None = None,
        tag: str | None = None,
        op: str | None = None,
        channel: str | None = None,
        at_call: int | None = 1,
        victim: int = 0,
        log=None,
    ):
        super().__init__(topology, log=log)
        self.target_phase = phase
        self.target_tag = tag
        self.target_op = op
        self.target_channel = channel
        self.at_call = at_call
        self.victim = victim
        self.calls_matched = 0
        self.injections = 0
        # Last *clean* delivery per op — what a stale double-buffer holds.
        self._history: dict[str, object] = {}

    def describe(self) -> str:
        filters = ", ".join(
            f"{k}={v!r}" for k, v in [
                ("phase", self.target_phase), ("tag", self.target_tag),
                ("op", self.target_op), ("channel", self.target_channel),
                ("at_call", self.at_call),
            ] if v is not None
        )
        return f"{self.fault_name}({filters})"

    # --- targeting ---------------------------------------------------------

    def _triggered(self, op: str, phase: str, tag: str, channel: str = "fwd") -> bool:
        if self.target_op is not None and self.target_op != op:
            return False
        if self.target_phase is not None and self.target_phase not in phase:
            return False
        if self.target_tag is not None and self.target_tag not in tag:
            return False
        if self.target_channel is not None and self.target_channel != channel:
            return False
        self.calls_matched += 1
        hit = self.at_call is None or self.calls_matched == self.at_call
        if hit:
            self.injections += 1
        return hit

    # --- subclass hooks ----------------------------------------------------

    def _fault_list(
        self, op: str, operands: list, out: list, prev: list | None
    ) -> list:
        """Damage a per-rank list delivery; ``prev`` is the previous clean
        delivery of the same op (or ``None``)."""
        return out

    def _fault_payload(
        self, op: str, payload: object, received: object, prev: object | None
    ) -> object:
        """Damage a single point-to-point delivery."""
        return received

    # --- interception ------------------------------------------------------

    def _deliver_list(
        self, op: str, operands: Sequence[object], out: list, phase: str,
        tag: str, channel: str = "fwd",
    ) -> list:
        prev = self._history.get(op)
        self._history[op] = [_copy_tree(b) for b in out]
        if self._triggered(op, phase, tag, channel):
            return self._fault_list(op, list(operands), list(out), prev)
        return out

    def ring_shift(self, bufs, ring, *, phase, tag="", reverse=False):
        out = super().ring_shift(bufs, ring, phase=phase, tag=tag,
                                 reverse=reverse)
        channel = "rev" if reverse else "fwd"
        return self._deliver_list("ring_shift", bufs, out, phase, tag, channel)

    def exchange(self, bufs, dest_of, *, phase, tag="", channel="fwd"):
        out = super().exchange(bufs, dest_of, phase=phase, tag=tag,
                               channel=channel)
        return self._deliver_list("exchange", bufs, out, phase, tag, channel)

    def all_to_all(self, chunks, *, phase, tag=""):
        out = super().all_to_all(chunks, phase=phase, tag=tag)
        return self._deliver_list("all_to_all", chunks, out, phase, tag)

    def group_all_to_all(self, chunks, groups, *, phase, tag=""):
        out = super().group_all_to_all(chunks, groups, phase=phase, tag=tag)
        return self._deliver_list("group_all_to_all", chunks, out, phase, tag)

    def send(self, src, dst, payload, *, phase, tag=""):
        out = super().send(src, dst, payload, phase=phase, tag=tag)
        prev = self._history.get("send")
        self._history["send"] = _copy_tree(out)
        if self._triggered("send", phase, tag):
            return self._fault_payload("send", payload, out, prev)
        return out


class CorruptPayloadComm(FaultInjectingCommunicator):
    """Additive-noise corruption of the victim's delivered floats — a
    flipped mantissa bit, an overwritten buffer, a bad NCCL reduction."""

    fault_name = "corrupt"

    def __init__(self, topology, noise: float = 1e-3, **kw):
        super().__init__(topology, **kw)
        self.noise = noise

    def _fault_list(self, op, operands, out, prev):
        v = self.victim % len(out)
        out[v] = _perturb_floats(out[v], lambda a: a + self.noise)
        return out

    def _fault_payload(self, op, payload, received, prev):
        return _perturb_floats(received, lambda a: a + self.noise)


class DropTransferComm(FaultInjectingCommunicator):
    """A lost message: the victim receives zeros instead of the payload."""

    fault_name = "drop"

    def _fault_list(self, op, operands, out, prev):
        v = self.victim % len(out)
        out[v] = tree_map(np.zeros_like, out[v])
        return out

    def _fault_payload(self, op, payload, received, prev):
        return tree_map(np.zeros_like, received)


class MisrouteHopComm(FaultInjectingCommunicator):
    """A routing bug: every delivery lands one rank over.  For a single
    point-to-point transfer, the receiver gets the *previous* message on
    the wire instead (zeros when there was none)."""

    fault_name = "misroute"

    def _fault_list(self, op, operands, out, prev):
        g = len(out)
        return [out[(i + 1) % g] for i in range(g)]

    def _fault_payload(self, op, payload, received, prev):
        if prev is not None:
            return _copy_tree(prev)
        return tree_map(np.zeros_like, received)


class StaleBufferComm(FaultInjectingCommunicator):
    """Double-buffering bug: the receiver reuses the previous step's buffer
    without waiting for the new transfer to land.  On the first matching
    call there is no previous delivery, so the pre-transfer operands are
    served (the buffer simply never moved)."""

    fault_name = "stale"

    def _fault_list(self, op, operands, out, prev):
        if prev is not None:
            return [_copy_tree(b) for b in prev]
        return [_copy_tree(b) for b in operands]

    def _fault_payload(self, op, payload, received, prev):
        if prev is not None:
            return _copy_tree(prev)
        return tree_map(np.zeros_like, received)


class DuplicateDeliveryComm(FaultInjectingCommunicator):
    """A re-sent packet consumed twice: the victim's delivered floats are
    doubled, as an accumulating receiver would observe."""

    fault_name = "duplicate"

    def _fault_list(self, op, operands, out, prev):
        v = self.victim % len(out)
        out[v] = _perturb_floats(out[v], lambda a: a + a)
        return out

    def _fault_payload(self, op, payload, received, prev):
        return _perturb_floats(received, lambda a: a + a)


FAULT_REGISTRY: dict[str, type[FaultInjectingCommunicator]] = {
    "corrupt": CorruptPayloadComm,
    "drop": DropTransferComm,
    "misroute": MisrouteHopComm,
    "stale": StaleBufferComm,
    "duplicate": DuplicateDeliveryComm,
}


def make_fault(
    name: str, topology: ClusterTopology, **kwargs
) -> FaultInjectingCommunicator:
    """Instantiate a fault-injecting communicator by registry name."""
    try:
        cls = FAULT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r}; available: {sorted(FAULT_REGISTRY)}"
        ) from None
    return cls(topology, **kwargs)
