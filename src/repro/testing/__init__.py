"""Correctness harness: fault injection, differential fuzzing, invariant
cross-checks, and golden-file regression fixtures.

The paper's claims are numerical — Algorithm 2's backward ring moves
``3Nd + 2N`` elements where Algorithm 1 moves ``4Nd``, and every method
must agree with the dense reference bit-for-nearly-bit.  This package
makes those claims *defensible under refactoring*:

* :mod:`repro.testing.faults` — configurable fault-injecting
  :class:`~repro.comm.SimCommunicator` wrappers (corrupt / drop /
  misroute / stale / duplicate), targetable at any collective of any
  method by phase, tag, op, and call index.
* :mod:`repro.testing.differential` — a seeded differential fuzzer that
  sweeps method × mask × topology × dtype configurations against the
  dense reference via :func:`repro.attention.verify.verify_method`, and
  shrinks failures to a minimal one-line repro.  CLI:
  ``python -m repro.testing.fuzz``.
* :mod:`repro.testing.invariants` — cross-checks that the byte counts a
  real simulated run records in its :class:`~repro.comm.TrafficLog`
  match the analytic formulas of :mod:`repro.perf.cost` that the Table 1
  reproduction is built on.
* :mod:`repro.testing.golden` — checked-in npz fixtures of per-method
  forward/backward outputs so numeric drift is caught even when a
  refactor changes implementation and reference together.  CLI:
  ``python -m repro.testing.golden --update``.
"""

from repro.testing.faults import (
    FAULT_REGISTRY,
    CorruptPayloadComm,
    DropTransferComm,
    DuplicateDeliveryComm,
    FaultInjectingCommunicator,
    MisrouteHopComm,
    StaleBufferComm,
    make_fault,
)
from repro.testing.differential import (
    FuzzCase,
    FuzzFailure,
    FuzzResult,
    check_case,
    fuzz,
    sample_case,
    shrink_case,
)
from repro.testing.invariants import (
    check_tile_plan_invariants,
    InvariantReport,
    check_all_invariants,
    check_table1_consistency,
    check_traffic_invariants,
    expected_backward_elems,
    expected_forward_elems,
)
# Golden exports are lazy (PEP 562): ``python -m repro.testing.golden``
# would otherwise import the module twice (package init + runpy) and warn.
_GOLDEN_EXPORTS = (
    "GOLDEN_CASES",
    "GoldenReport",
    "check_golden",
    "compute_golden",
    "default_golden_dir",
    "save_golden",
)


def __getattr__(name):
    if name in _GOLDEN_EXPORTS:
        from repro.testing import golden

        return getattr(golden, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # faults
    "FAULT_REGISTRY",
    "FaultInjectingCommunicator",
    "CorruptPayloadComm",
    "DropTransferComm",
    "MisrouteHopComm",
    "StaleBufferComm",
    "DuplicateDeliveryComm",
    "make_fault",
    # differential fuzzer
    "FuzzCase",
    "FuzzFailure",
    "FuzzResult",
    "check_case",
    "fuzz",
    "sample_case",
    "shrink_case",
    # invariants
    "InvariantReport",
    "check_traffic_invariants",
    "check_table1_consistency",
    "check_all_invariants",
    "check_tile_plan_invariants",
    "expected_forward_elems",
    "expected_backward_elems",
    # golden
    "GOLDEN_CASES",
    "GoldenReport",
    "compute_golden",
    "save_golden",
    "check_golden",
    "default_golden_dir",
]
