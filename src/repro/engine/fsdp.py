"""FSDP (ZeRO-3) communication accounting.

Parameters, gradients, and optimizer states are sharded ``1/G`` per rank.
Numerically our single-process engine keeps one copy of every parameter —
sharding changes *placement*, not values — so FSDP shows up in two places:

* traffic: each training step all-gathers the parameters twice (forward
  and backward, since gradient checkpointing re-runs layers) and
  reduce-scatters the gradients once.  :func:`log_fsdp_traffic` appends the
  corresponding ring-realisation transfer records to the communicator's
  log so end-to-end traffic totals are complete;
* memory: the per-rank share of params/grads/optimizer states is computed
  by :mod:`repro.perf.memory`.

The BMTrain-style implementation the paper uses overlaps these collectives
at Transformer-block granularity; the DES schedules in :mod:`repro.perf`
model that overlap — here we only account volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm import SimCommunicator
from repro.comm.traffic import TransferRecord
from repro.topology import ClusterTopology


@dataclass(frozen=True)
class FSDPTraffic:
    """Per-rank FSDP byte counts for one training step."""

    allgather_bytes: int
    reduce_scatter_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.allgather_bytes + self.reduce_scatter_bytes


def fsdp_step_traffic(
    param_bytes: int, world_size: int, gather_passes: int = 2
) -> FSDPTraffic:
    """Per-rank volume for one step.

    Ring all-gather of all parameters costs ``(G-1)/G * param_bytes`` per
    rank per pass; ``gather_passes = 2`` covers forward + recompute-backward
    (1 if checkpointing is off and parameters stay resident).  The gradient
    reduce-scatter costs the same ``(G-1)/G`` factor once.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    frac = (world_size - 1) / world_size
    return FSDPTraffic(
        allgather_bytes=int(gather_passes * frac * param_bytes),
        reduce_scatter_bytes=int(frac * param_bytes),
    )


def log_fsdp_traffic(
    comm: SimCommunicator, param_bytes: int, *, gather_passes: int = 2,
    phase: str = "fsdp",
) -> FSDPTraffic:
    """Append one step's FSDP ring transfers to the communicator log.

    Each collective is logged as its ring realisation: ``G - 1`` hops per
    pass, each carrying a ``param_bytes / G`` chunk, along the global ring
    (so node-boundary hops land on the inter-link, as on real hardware).
    """
    topo: ClusterTopology = comm.topology
    g = topo.world_size
    ring = topo.global_ring()
    chunk = param_bytes // g
    passes = gather_passes + 1  # all-gathers + one reduce-scatter
    for _ in range(passes):
        for t in range(g - 1):
            for p in range(g):
                src, dst = ring[p], ring[(p + 1) % g]
                if src == dst:
                    continue
                comm.log.add(
                    TransferRecord(
                        src=src, dst=dst, nbytes=chunk, nelems=chunk // 8,
                        link=topo.link_class(src, dst), phase=phase,
                        tag="fsdp-ring",
                    )
                )
    return fsdp_step_traffic(param_bytes, g, gather_passes)
