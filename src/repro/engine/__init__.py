"""BurstEngine: the end-to-end distributed training engine.

Ties everything together: a :class:`~repro.nn.TransformerLM` whose
attention layers run one of the distributed methods over the simulated
cluster (all KV/Q/gradient movement through the traffic-logged
communicator), gradient checkpointing policies, the fused LM head + loss,
FSDP-style sharding accounting, and an Adam training loop.

Feature flags on :class:`EngineConfig` map one-to-one onto the rows of the
paper's ablation (Table 2).
"""

from repro.engine.distributed_attention import (
    DistributedAttentionFn,
    DistributedCausalSelfAttention,
    distributed_attention,
)
from repro.engine.engine import BurstEngine, EngineConfig, StepResult
from repro.engine.fsdp import fsdp_step_traffic, log_fsdp_traffic
from repro.engine.trainer import TrainRecord, Trainer

__all__ = [
    "DistributedAttentionFn",
    "DistributedCausalSelfAttention",
    "distributed_attention",
    "BurstEngine",
    "EngineConfig",
    "StepResult",
    "fsdp_step_traffic",
    "log_fsdp_traffic",
    "TrainRecord",
    "Trainer",
]
