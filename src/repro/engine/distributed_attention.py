"""Autograd node running distributed attention over the simulated cluster.

The forward pass scatters ``(H, S, Dh)`` tensors into per-rank shards with
the method's partitioner, runs the method's distributed forward (all ring /
all-to-all traffic logged on the engine's communicator), and gathers the
outputs.  The backward pass does the same for Algorithm 1 / Algorithm 2 /
Ulysses / USP backward.

Checkpoint-policy integration mirrors the single-device node
(:mod:`repro.nn.attention_fn`): on a recomputation pass with a cache hit a
ring-family method skips the distributed forward entirely — *no
communication happens during recompute*, which is precisely why
selective++/sequence-level checkpointing pays off in a distributed setting
— rebuilding the backward context from shards instead.  Methods that need
a richer context (Ulysses, USP) recompute their full forward, collectives
included.
"""

from __future__ import annotations

import numpy as np

from repro.attention.methods import DistributedAttention
from repro.comm import SimCommunicator
from repro.kernels import TilePlan, get_backend, planning_enabled
from repro.masks import MaskPattern
from repro.nn.attention_fn import _attention_flops, _mask_pairs
from repro.nn.checkpoint import (
    AttentionOutputCache,
    CheckpointMode,
    CheckpointPolicy,
    in_recompute,
)
from repro.nn.function import Function
from repro.nn.memory import get_tracker
from repro.nn.modules import CausalSelfAttention
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.obs.tracer import trace_span


def _local_mask(
    mask: MaskPattern | None, s: int, block_size: int
) -> tuple[np.ndarray | None, TilePlan | None]:
    """Resolve a full-sequence local mask as ``(dense, plan)`` — exactly
    one is non-``None`` when a mask exists.  These local paths have never
    forwarded the pattern's bias, so neither does the plan."""
    if mask is None:
        return None, None
    if planning_enabled():
        idx = np.arange(s)
        return None, TilePlan.build(
            mask, idx, idx, block_size, block_size, include_bias=False
        )
    return mask.dense(s), None


class DistributedAttentionFn(Function):
    """``o = distributed_attention(q, k, v)`` on the simulated cluster."""

    def forward(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        method: DistributedAttention = None,
        comm: SimCommunicator = None,
        mask: MaskPattern | None = None,
        scale: float | None = None,
        cache: AttentionOutputCache | None = None,
        policy: CheckpointPolicy | None = None,
    ):
        if method is None or comm is None:
            raise ValueError("distributed attention requires method= and comm=")
        if scale is None:
            scale = 1.0 / np.sqrt(q.shape[-1])
        s = q.shape[-2]
        heads = q.shape[0] if q.ndim == 3 else 1
        head_dim = q.shape[-1]
        g = comm.world_size
        policy = policy or CheckpointPolicy()

        self.method = method
        self.comm = comm
        self.mask = mask
        self.scale = scale
        self.ctx_obj = None
        self.local_fallback = s % g != 0

        if self.local_fallback:
            # Irregular lengths (autoregressive decoding appends one token
            # at a time) cannot be sequence-sharded evenly; run the exact
            # local kernel instead — inference is not this repo's target.
            from repro.attention.gqa import repeat_kv

            groups = (q.shape[0] // k.shape[0]) if q.ndim == 3 else 1
            dense, plan = _local_mask(mask, s, method.block_size)
            o, lse = get_backend().flash_forward(
                q, repeat_kv(k, groups), repeat_kv(v, groups), mask=dense,
                scale=scale, block_q=method.block_size,
                block_k=method.block_size, plan=plan,
            )
            self.groups = groups
            self.fallback_plan = plan
            self.save_for_backward(q, k, v, o, lse)
            return o

        cached = None
        if (
            cache is not None
            and in_recompute()
            and method.supports_context_rebuild
        ):
            cached = cache.pop(0)

        if cached is not None and policy.mode is CheckpointMode.SELECTIVE_PP:
            o, lse = cached  # zero recompute, zero communication
        elif cached is not None and policy.mode is CheckpointMode.SEQUENCE_LEVEL:
            from repro.attention.gqa import repeat_kv

            split = int(round(s * policy.split_fraction))
            o_back, lse_back = cached
            if mask is not None and planning_enabled():
                dense = None
                plan = TilePlan.build(
                    mask, np.arange(split), np.arange(s),
                    method.block_size, method.block_size,
                    include_bias=False,
                )
            else:
                plan = None
                dense = mask.dense(s)[:split, :] if mask is not None else None
            groups = (q.shape[0] // k.shape[0]) if q.ndim == 3 else 1
            with trace_span("ckpt.recompute-front", phase="ckpt-recompute",
                            split=split, seq=s):
                o_front, lse_front = get_backend().flash_forward(
                    q[..., :split, :], repeat_kv(k, groups), repeat_kv(v, groups),
                    mask=dense, scale=scale,
                    block_q=method.block_size, block_k=method.block_size,
                    plan=plan,
                )
            get_tracker().add_recompute_flops(
                _attention_flops(_mask_pairs(mask, split, s), heads, head_dim)
            )
            o = np.concatenate([o_front, o_back], axis=-2)
            lse = np.concatenate([lse_front, lse_back], axis=-1)
        else:
            idxs = method.indices(s, g)
            qs = method.shard(q, g)
            ks = method.shard(k, g)
            vs = method.shard(v, g)
            os_, lses, ctx = method.forward_shards(
                comm, qs, ks, vs, idxs, mask, scale
            )
            o = _gather(method, os_, s)
            lse = _gather(method, [l[..., None] for l in lses], s)[..., 0]
            if in_recompute():
                get_tracker().add_recompute_flops(
                    _attention_flops(_mask_pairs(mask, s, s), heads, head_dim)
                )
            if not method.supports_context_rebuild and is_grad_enabled():
                # Ulysses/USP keep their forward context (head-layout
                # copies); account those bytes explicitly.
                self.ctx_obj = ctx
                nbytes = sum(
                    arr.nbytes
                    for attr in ("q_h", "k_h", "v_h", "o_h", "lse_h")
                    for arr in getattr(ctx, attr)
                )
                self._ctx_handle = get_tracker().register(
                    nbytes, site="attn.context"
                )

        if (
            cache is not None
            and policy.caches_attention_output
            and method.supports_context_rebuild
            and not in_recompute()
            and not is_grad_enabled()
        ):
            if policy.mode is CheckpointMode.SELECTIVE_PP:
                cache.put(0, o.copy(), lse.copy())
            else:
                split = int(round(s * policy.split_fraction))
                cache.put(0, o[..., split:, :].copy(), lse[..., split:].copy())

        self.save_for_backward(q, k, v, o, lse)
        return o

    def backward(self, grad_out: np.ndarray):
        q, k, v, o, lse = self.saved
        if self.local_fallback:
            from repro.attention.gqa import fold_kv_grad, repeat_kv

            if self.fallback_plan is not None:
                dense = None
            else:
                dense = (
                    self.mask.dense(q.shape[-2])
                    if self.mask is not None else None
                )
            dq, dk, dv = get_backend().flash_backward(
                q, repeat_kv(k, self.groups), repeat_kv(v, self.groups),
                o, lse, grad_out, mask=dense, scale=self.scale,
                block_q=self.method.block_size, block_k=self.method.block_size,
                plan=self.fallback_plan,
            )
            return dq, fold_kv_grad(dk, self.groups), fold_kv_grad(dv, self.groups)
        method, comm = self.method, self.comm
        g = comm.world_size
        s = q.shape[-2]
        dos = method.shard(np.ascontiguousarray(grad_out), g)
        if self.ctx_obj is not None:
            ctx = self.ctx_obj
            get_tracker().release(self._ctx_handle)
        else:
            idxs = method.indices(s, g)
            ctx = method.make_context(
                comm,
                method.shard(q, g), method.shard(k, g), method.shard(v, g),
                method.shard(o, g),
                [l[..., 0] for l in method.shard(lse[..., None], g)],
                idxs, self.mask, self.scale,
            )
        dqs, dks, dvs = method.backward_shards(comm, ctx, dos)
        dq = _gather(method, dqs, s)
        dk = _gather(method, dks, s)
        dv = _gather(method, dvs, s)
        return dq, dk, dv


def _gather(method: DistributedAttention, parts: list[np.ndarray], n: int) -> np.ndarray:
    """Reassemble full arrays using the method's index layout."""
    idxs = method.indices(n, len(parts))
    order = np.concatenate(idxs)
    stacked = np.concatenate(parts, axis=-2)
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.arange(n)
    return np.take(stacked, inv, axis=-2)


def distributed_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    method: DistributedAttention,
    comm: SimCommunicator,
    mask: MaskPattern | None = None,
    scale: float | None = None,
    cache: AttentionOutputCache | None = None,
    policy: CheckpointPolicy | None = None,
) -> Tensor:
    """Differentiable distributed attention over ``(H, S, Dh)`` tensors."""
    return DistributedAttentionFn.apply(
        q, k, v, method=method, comm=comm, mask=mask, scale=scale,
        cache=cache, policy=policy,
    )


class DistributedCausalSelfAttention(CausalSelfAttention):
    """Drop-in attention module whose inner product runs on the cluster."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng,
        method: DistributedAttention,
        comm: SimCommunicator,
        mask: MaskPattern | None = None,
        block_size: int = 64,
        n_kv_heads: int | None = None,
    ):
        super().__init__(dim, n_heads, rng, mask=mask, block_size=block_size,
                         n_kv_heads=n_kv_heads)
        self.method = method
        self.comm = comm

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn import ops

        s = x.shape[0]
        q = self._split_heads(self.wq(x), s)
        k = self._split_heads(self.wk(x), s, self.n_kv_heads)
        v = self._split_heads(self.wv(x), s, self.n_kv_heads)
        # RoPE rotates by *global* position before sequence sharding, so
        # the distributed ring needs no position plumbing at all.
        q, k = self._maybe_rope(q, k, s)
        o = distributed_attention(
            q, k, v, method=self.method, comm=self.comm, mask=self.mask,
            cache=self.cache, policy=self.policy,
        )
        merged = ops.reshape(ops.swapaxes(o, 0, 1), (s, self.n_heads * self.head_dim))
        return self.wo(merged)
