"""High-level training loop around :class:`~repro.engine.BurstEngine`.

Adds the pieces a real training run needs on top of ``train_step``:
learning-rate scheduling, gradient clipping, periodic evaluation,
best-checkpoint saving, and a structured history the examples and tests
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.engine import BurstEngine
from repro.nn.schedule import ConstantLR, LRSchedule, clip_grad_norm
from repro.nn.serialization import save_model
from repro.nn.tensor import no_grad


@dataclass
class TrainRecord:
    """One step's log entry."""

    step: int
    loss: float
    lr: float
    grad_norm: float
    eval_loss: float | None = None


@dataclass
class Trainer:
    """Schedule-aware training loop.

    Parameters
    ----------
    engine:
        The distributed engine to drive.
    schedule:
        LR schedule (defaults to constant at the engine's configured lr).
    clip_norm:
        Global-norm gradient clipping threshold; ``None`` disables.
    eval_fn:
        Optional callable ``model -> float`` run every ``eval_every``
        steps (e.g. held-out loss or recall accuracy).
    checkpoint_path:
        If set, the best-eval model is saved there (npz).
    """

    engine: BurstEngine
    schedule: LRSchedule | None = None
    clip_norm: float | None = 1.0
    eval_fn: Callable | None = None
    eval_every: int = 10
    checkpoint_path: str | None = None
    history: list[TrainRecord] = field(default_factory=list)
    best_eval: float = float("inf")

    def __post_init__(self) -> None:
        if self.schedule is None:
            self.schedule = ConstantLR(self.engine.optimizer.lr)

    @property
    def model(self):
        return self.engine.model

    grad_accumulation: int = 1

    def fit(
        self,
        batches: Sequence[tuple[np.ndarray, np.ndarray]],
        steps: int,
    ) -> list[TrainRecord]:
        """Run ``steps`` optimizer updates cycling through ``batches``.

        With ``grad_accumulation = k``, each update backpropagates ``k``
        consecutive micro-batches (scaled by ``1/k``) before stepping —
        the standard way to grow the effective batch without growing the
        activation footprint.  Gradient clipping happens between backward
        and the optimizer step, which requires driving the engine's
        internals directly (its ``train_step`` fuses them).
        """
        if not batches:
            raise ValueError("need at least one (ids, targets) batch")
        if self.grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        engine = self.engine
        micro = 0
        for step in range(steps):
            lr = self.schedule.apply(engine.optimizer, step)

            from repro.nn.memory import reset_tracker

            reset_tracker()
            engine.optimizer.zero_grad()
            loss_value = 0.0
            for _ in range(self.grad_accumulation):
                ids, targets = batches[micro % len(batches)]
                micro += 1
                loss = engine.model(ids, targets)
                loss_value += loss.item() / self.grad_accumulation
                loss.backward(
                    np.asarray(1.0 / self.grad_accumulation)
                )
            grad_norm = (
                clip_grad_norm(engine.model.parameters(), self.clip_norm)
                if self.clip_norm is not None
                else float("nan")
            )
            if engine.config.fsdp:
                from repro.engine.fsdp import log_fsdp_traffic

                gather_passes = 2 if engine.config.checkpoint.checkpoints_layer else 1
                log_fsdp_traffic(engine.comm, engine.param_bytes,
                                 gather_passes=gather_passes)
            engine.optimizer.step()
            engine.step_count += 1

            record = TrainRecord(
                step=step, loss=loss_value, lr=lr, grad_norm=grad_norm
            )
            if self.eval_fn is not None and (step + 1) % self.eval_every == 0:
                with no_grad():
                    record.eval_loss = float(self.eval_fn(engine.model))
                if record.eval_loss < self.best_eval:
                    self.best_eval = record.eval_loss
                    if self.checkpoint_path is not None:
                        save_model(engine.model, self.checkpoint_path)
            self.history.append(record)
        return self.history

    def losses(self) -> list[float]:
        return [r.loss for r in self.history]
