"""High-level training loop around :class:`~repro.engine.BurstEngine`.

Adds the pieces a real training run needs on top of ``train_step``:
learning-rate scheduling, gradient clipping, periodic evaluation,
best-checkpoint saving, a structured history the examples and tests
consume — and crash recovery: periodic atomic train-state snapshots
(:func:`repro.nn.serialization.save_train_state`) plus
``fit(resume_from=...)``, which restores model, optimizer moments, RNG
stream, history, best-eval watermark and batch cursor so an interrupted
run replays into a bitwise-identical :class:`TrainRecord` history.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.engine import BurstEngine
from repro.nn.schedule import ConstantLR, LRSchedule, clip_grad_norm
from repro.nn.serialization import load_train_state, save_model, save_train_state
from repro.nn.tensor import no_grad


@dataclass
class TrainRecord:
    """One step's log entry."""

    step: int
    loss: float
    lr: float
    grad_norm: float
    eval_loss: float | None = None


@dataclass
class Trainer:
    """Schedule-aware training loop.

    Parameters
    ----------
    engine:
        The distributed engine to drive.
    schedule:
        LR schedule (defaults to constant at the engine's configured lr).
    clip_norm:
        Global-norm gradient clipping threshold; ``None`` disables.
    eval_fn:
        Optional callable ``model -> float`` run every ``eval_every``
        steps (e.g. held-out loss or recall accuracy).
    checkpoint_path:
        If set, the best-eval model is saved there (npz, atomic).
    state_path:
        If set (together with ``save_every``), a full train-state snapshot
        is written there atomically every ``save_every`` steps; pass the
        same path to ``fit(resume_from=...)`` after a crash.
    save_every:
        Snapshot period in steps; ``0`` disables periodic snapshots.
    on_step_end:
        Optional callback ``(trainer, record) -> None`` invoked after each
        step's bookkeeping (snapshot included) — the chaos harness uses it
        to simulate mid-run crashes.
    """

    engine: BurstEngine
    schedule: LRSchedule | None = None
    clip_norm: float | None = 1.0
    eval_fn: Callable | None = None
    eval_every: int = 10
    checkpoint_path: str | None = None
    state_path: str | None = None
    save_every: int = 0
    grad_accumulation: int = 1
    on_step_end: Callable[["Trainer", TrainRecord], None] | None = None
    history: list[TrainRecord] = field(default_factory=list)
    best_eval: float = float("inf")
    micro: int = 0

    def __post_init__(self) -> None:
        if self.schedule is None:
            self.schedule = ConstantLR(self.engine.optimizer.lr)

    @property
    def model(self):
        return self.engine.model

    def fit(
        self,
        batches: Sequence[tuple[np.ndarray, np.ndarray]],
        steps: int,
        resume_from: str | None = None,
    ) -> list[TrainRecord]:
        """Run ``steps`` optimizer updates cycling through ``batches``.

        With ``grad_accumulation = k``, each update backpropagates ``k``
        consecutive micro-batches (scaled by ``1/k``) before stepping —
        the standard way to grow the effective batch without growing the
        activation footprint.  Gradient clipping happens between backward
        and the optimizer step, which requires driving the engine's
        internals directly (its ``train_step`` fuses them).

        With ``resume_from`` set, the trainer first restores a train-state
        snapshot (model, optimizer, RNG stream, history, best-eval, batch
        cursor) and continues from the snapshot's step; the resulting
        history is bitwise identical to an uninterrupted run.
        """
        if not batches:
            raise ValueError("need at least one (ids, targets) batch")
        if self.grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        start_step = 0
        if resume_from is not None:
            start_step = self.load_state(resume_from)
        engine = self.engine
        for step in range(start_step, steps):
            lr = self.schedule.apply(engine.optimizer, step)

            from repro.nn.memory import reset_tracker

            reset_tracker()
            engine.optimizer.zero_grad()
            loss_value = 0.0
            for _ in range(self.grad_accumulation):
                ids, targets = batches[self.micro % len(batches)]
                self.micro += 1
                loss = engine.model(ids, targets)
                loss_value += loss.item() / self.grad_accumulation
                loss.backward(
                    np.asarray(1.0 / self.grad_accumulation)
                )
            grad_norm = (
                clip_grad_norm(engine.model.parameters(), self.clip_norm)
                if self.clip_norm is not None
                else float("nan")
            )
            if engine.config.fsdp:
                from repro.engine.fsdp import log_fsdp_traffic

                gather_passes = 2 if engine.config.checkpoint.checkpoints_layer else 1
                log_fsdp_traffic(engine.comm, engine.param_bytes,
                                 gather_passes=gather_passes)
            engine.optimizer.step()
            engine.step_count += 1

            record = TrainRecord(
                step=step, loss=loss_value, lr=lr, grad_norm=grad_norm
            )
            if self.eval_fn is not None and (step + 1) % self.eval_every == 0:
                with no_grad():
                    record.eval_loss = float(self.eval_fn(engine.model))
                if record.eval_loss < self.best_eval:
                    self.best_eval = record.eval_loss
                    if self.checkpoint_path is not None:
                        save_model(engine.model, self.checkpoint_path)
            self.history.append(record)
            if (
                self.state_path is not None
                and self.save_every > 0
                and (step + 1) % self.save_every == 0
            ):
                self.save_state(self.state_path)
            if self.on_step_end is not None:
                self.on_step_end(self, record)
        return self.history

    # --- crash recovery ------------------------------------------------------

    def save_state(self, path: str) -> str:
        """Atomically snapshot the full training run to ``path``.

        Captures everything ``fit(resume_from=path)`` needs to continue
        bitwise: parameters, optimizer moments, the RNG stream, history,
        best-eval watermark, batch cursor and the engine step counter.
        Returns the snapshot's manifest digest.
        """
        return save_train_state(
            path,
            self.engine.model,
            self.engine.optimizer,
            step=len(self.history),
            micro=self.micro,
            history=[asdict(r) for r in self.history],
            best_eval=self.best_eval,
            engine_step=self.engine.step_count,
        )

    def load_state(self, path: str) -> int:
        """Restore a :meth:`save_state` snapshot; returns the resume step."""
        meta = load_train_state(path, self.engine.model, self.engine.optimizer)
        self.history = [TrainRecord(**r) for r in meta["history"]]
        best = meta.get("best_eval")
        self.best_eval = float("inf") if best is None else float(best)
        self.micro = int(meta["micro"])
        if meta.get("engine_step") is not None:
            self.engine.step_count = int(meta["engine_step"])
        return int(meta["step"])

    def losses(self) -> list[float]:
        return [r.loss for r in self.history]
