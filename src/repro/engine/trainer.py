"""High-level training loop around :class:`~repro.engine.BurstEngine`.

Adds the pieces a real training run needs on top of ``train_step``:
learning-rate scheduling, gradient clipping, periodic evaluation,
best-checkpoint saving, a structured history the examples and tests
consume — and crash recovery: periodic atomic train-state snapshots
(:func:`repro.nn.serialization.save_train_state`) plus
``fit(resume_from=...)``, which restores model, optimizer moments, RNG
stream, history, best-eval watermark and batch cursor so an interrupted
run replays into a bitwise-identical :class:`TrainRecord` history.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.engine import BurstEngine
from repro.nn.schedule import ConstantLR, LRSchedule, clip_grad_norm
from repro.nn.serialization import load_train_state, save_model, save_train_state
from repro.nn.tensor import no_grad
from repro.obs.mem import MemoryBudget, memory_scope, use_memory_budget
from repro.obs.tracer import trace_span


@dataclass
class TrainRecord:
    """One step's log entry."""

    step: int
    loss: float
    lr: float
    grad_norm: float
    eval_loss: float | None = None


@dataclass
class Trainer:
    """Schedule-aware training loop.

    Parameters
    ----------
    engine:
        The distributed engine to drive.
    schedule:
        LR schedule (defaults to constant at the engine's configured lr).
    clip_norm:
        Global-norm gradient clipping threshold; ``None`` disables.
    eval_fn:
        Optional callable ``model -> float`` run every ``eval_every``
        steps (e.g. held-out loss or recall accuracy).
    checkpoint_path:
        If set, the best-eval model is saved there (npz, atomic).
    state_path:
        If set (together with ``save_every``), a full train-state snapshot
        is written there atomically every ``save_every`` steps; pass the
        same path to ``fit(resume_from=...)`` after a crash.
    save_every:
        Snapshot period in steps; ``0`` disables periodic snapshots.
    on_step_end:
        Optional callback ``(trainer, record) -> None`` invoked after each
        step's bookkeeping (snapshot included) — the chaos harness uses it
        to simulate mid-run crashes.
    metrics_path:
        If set, one JSON line of step metrics (loss/lr/grad-norm, comm
        volume by phase and link class, per-rank send elements, tile and
        recompute tallies) is appended there after every step.  The comm
        numbers are aggregated from the exact slice of the engine's
        :class:`~repro.comm.TrafficLog` this step appended, so summing
        the lines reproduces the log's totals precisely.
    memory_budget:
        Optional :class:`~repro.obs.mem.MemoryBudget` watchdog installed
        for the duration of :meth:`fit`.  The first allocation that
        pushes the combined saved+transient watermark past the budget
        dumps an ``oom/v1`` flight-recorder bundle and (if the budget
        says so) aborts the run — the admission-control primitive the
        serving scheduler consumes.
    """

    engine: BurstEngine
    schedule: LRSchedule | None = None
    clip_norm: float | None = 1.0
    eval_fn: Callable | None = None
    eval_every: int = 10
    checkpoint_path: str | None = None
    state_path: str | None = None
    save_every: int = 0
    grad_accumulation: int = 1
    on_step_end: Callable[["Trainer", TrainRecord], None] | None = None
    metrics_path: str | None = None
    memory_budget: MemoryBudget | None = None
    history: list[TrainRecord] = field(default_factory=list)
    best_eval: float = float("inf")
    micro: int = 0

    def __post_init__(self) -> None:
        if self.schedule is None:
            self.schedule = ConstantLR(self.engine.optimizer.lr)

    @property
    def model(self):
        return self.engine.model

    def fit(
        self,
        batches: Sequence[tuple[np.ndarray, np.ndarray]],
        steps: int,
        resume_from: str | None = None,
    ) -> list[TrainRecord]:
        if self.memory_budget is None:
            return self._fit(batches, steps, resume_from)
        with use_memory_budget(self.memory_budget):
            return self._fit(batches, steps, resume_from)

    def _fit(
        self,
        batches: Sequence[tuple[np.ndarray, np.ndarray]],
        steps: int,
        resume_from: str | None = None,
    ) -> list[TrainRecord]:
        """Run ``steps`` optimizer updates cycling through ``batches``.

        With ``grad_accumulation = k``, each update backpropagates ``k``
        consecutive micro-batches (scaled by ``1/k``) before stepping —
        the standard way to grow the effective batch without growing the
        activation footprint.  Gradient clipping happens between backward
        and the optimizer step, which requires driving the engine's
        internals directly (its ``train_step`` fuses them).

        With ``resume_from`` set, the trainer first restores a train-state
        snapshot (model, optimizer, RNG stream, history, best-eval, batch
        cursor) and continues from the snapshot's step; the resulting
        history is bitwise identical to an uninterrupted run.
        """
        if not batches:
            raise ValueError("need at least one (ids, targets) batch")
        if self.grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        start_step = 0
        if resume_from is not None:
            start_step = self.load_state(resume_from)
        engine = self.engine
        # Step-boundary notification for communicators that track training
        # progress (rank-fault injectors, failure detectors): lets faults
        # target "step s" and failures be attributed to the step they
        # aborted.
        notify_step = getattr(engine.comm, "on_step_start", None)
        for step in range(start_step, steps):
            if notify_step is not None:
                notify_step(step)
            comm_mark = len(engine.comm.log.records)
            tiles_mark = self._tile_snapshot()
            with trace_span("train.step", phase="step", step=step), \
                    memory_scope(method=engine.config.method, step=step):
                lr = self.schedule.apply(engine.optimizer, step)

                from repro.nn.memory import reset_tracker

                reset_tracker()
                engine.optimizer.zero_grad()
                loss_value = 0.0
                for _ in range(self.grad_accumulation):
                    ids, targets = batches[self.micro % len(batches)]
                    self.micro += 1
                    loss = engine.model(ids, targets)
                    loss_value += loss.item() / self.grad_accumulation
                    loss.backward(
                        np.asarray(1.0 / self.grad_accumulation)
                    )
                grad_norm = (
                    clip_grad_norm(engine.model.parameters(), self.clip_norm)
                    if self.clip_norm is not None
                    else float("nan")
                )
                if engine.config.fsdp:
                    from repro.engine.fsdp import log_fsdp_traffic

                    gather_passes = 2 if engine.config.checkpoint.checkpoints_layer else 1
                    log_fsdp_traffic(engine.comm, engine.param_bytes,
                                     gather_passes=gather_passes)
                engine.optimizer.step()
                engine.step_count += 1

            record = TrainRecord(
                step=step, loss=loss_value, lr=lr, grad_norm=grad_norm
            )
            if self.eval_fn is not None and (step + 1) % self.eval_every == 0:
                with no_grad():
                    record.eval_loss = float(self.eval_fn(engine.model))
                if record.eval_loss < self.best_eval:
                    self.best_eval = record.eval_loss
                    if self.checkpoint_path is not None:
                        save_model(engine.model, self.checkpoint_path)
            self.history.append(record)
            if (
                self.state_path is not None
                and self.save_every > 0
                and (step + 1) % self.save_every == 0
            ):
                self.save_state(self.state_path)
            if self.on_step_end is not None:
                self.on_step_end(self, record)
            if self.metrics_path is not None:
                self._emit_step_metrics(record, comm_mark, tiles_mark)
        return self.history

    # --- per-step metrics ----------------------------------------------------

    def _tile_snapshot(self) -> dict | None:
        if self.metrics_path is None:
            return None
        from repro.kernels.tileplan import counters as tile_counters

        return tile_counters.snapshot()

    def _emit_step_metrics(
        self, record: TrainRecord, comm_mark: int, tiles_mark: dict
    ) -> None:
        """Append one JSONL metrics line aggregating this step's traffic.

        Aggregation runs over exactly ``log.records[comm_mark:]`` — the
        transfers this step appended (eval / callbacks included) — so the
        per-step comm volumes sum to the :class:`TrafficLog` totals.  The
        same deltas are mirrored into the global registry's ``comm.elems``
        / ``comm.bytes`` counters, labeled by phase and by link class.
        """
        from repro.kernels.tileplan import counters as tile_counters
        from repro.nn.memory import get_tracker
        from repro.obs.export import write_step_metrics
        from repro.obs.metrics import get_registry

        new = self.engine.comm.log.records[comm_mark:]
        total_elems = total_bytes = 0
        by_phase: dict[str, dict[str, int]] = {}
        by_link: dict[str, dict[str, int]] = {}
        per_rank: dict[str, dict[str, int]] = {}
        for rec in new:
            total_elems += rec.nelems
            total_bytes += rec.nbytes
            d = by_phase.setdefault(rec.phase, {"elems": 0, "bytes": 0})
            d["elems"] += rec.nelems
            d["bytes"] += rec.nbytes
            l = by_link.setdefault(rec.link.value, {"elems": 0, "bytes": 0})
            l["elems"] += rec.nelems
            l["bytes"] += rec.nbytes
            pr = per_rank.setdefault(rec.phase, {})
            key = str(rec.src)
            pr[key] = pr.get(key, 0) + rec.nelems
        reg = get_registry()
        for phase, d in by_phase.items():
            reg.counter("comm.elems").inc(d["elems"], phase=phase)
            reg.counter("comm.bytes").inc(d["bytes"], phase=phase)
        for link, d in by_link.items():
            reg.counter("comm.elems").inc(d["elems"], link=link)
            reg.counter("comm.bytes").inc(d["bytes"], link=link)
        tiles_now = tile_counters.snapshot()
        tracker = get_tracker()
        write_step_metrics(self.metrics_path, {
            "step": record.step,
            "loss": record.loss,
            "lr": record.lr,
            "grad_norm": record.grad_norm,
            "comm_elems": total_elems,
            "comm_bytes": total_bytes,
            "comm_transfers": len(new),
            "comm_by_phase": by_phase,
            "comm_by_link": by_link,
            "per_rank_send_elems": per_rank,
            "tiles_computed": tiles_now["tiles_computed"] - tiles_mark["tiles_computed"],
            "tiles_skipped": tiles_now["tiles_skipped"] - tiles_mark["tiles_skipped"],
            "peak_activation_bytes": tracker.peak_saved_bytes,
            "recompute_flops": tracker.recompute_flops,
        })

    # --- crash recovery ------------------------------------------------------

    def save_state(self, path: str) -> str:
        """Atomically snapshot the full training run to ``path``.

        Captures everything ``fit(resume_from=path)`` needs to continue
        bitwise: parameters, optimizer moments, the RNG stream, history,
        best-eval watermark, batch cursor and the engine step counter.
        Returns the snapshot's manifest digest.
        """
        return save_train_state(
            path,
            self.engine.model,
            self.engine.optimizer,
            step=len(self.history),
            micro=self.micro,
            history=[asdict(r) for r in self.history],
            best_eval=self.best_eval,
            engine_step=self.engine.step_count,
        )

    def load_state(self, path: str) -> int:
        """Restore a :meth:`save_state` snapshot; returns the resume step."""
        meta = load_train_state(path, self.engine.model, self.engine.optimizer)
        self.history = [TrainRecord(**r) for r in meta["history"]]
        best = meta.get("best_eval")
        self.best_eval = float("inf") if best is None else float(best)
        self.micro = int(meta["micro"])
        if meta.get("engine_step") is not None:
            self.engine.step_count = int(meta["engine_step"])
        return int(meta["step"])

    def losses(self) -> list[float]:
        return [r.loss for r in self.history]
