"""The BurstEngine training engine.

:class:`BurstEngine` assembles the full system of the paper on the
simulated cluster:

* a :class:`~repro.nn.TransformerLM` whose attention layers execute one of
  the distributed methods (``burst`` by default) through the traffic-logged
  communicator;
* a gradient checkpointing policy (sequence-level selective by default);
* a fused LM head + loss (Algorithm 3 by default);
* FSDP traffic accounting and an Adam optimizer (optionally "offloaded").

Every knob corresponds to a row of the paper's ablation (Table 2), so the
ablation benchmark literally toggles :class:`EngineConfig` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attention import get_method
from repro.attention.methods import DistributedAttention
from repro.comm import SimCommunicator
from repro.engine.distributed_attention import DistributedCausalSelfAttention
from repro.engine.fsdp import FSDPTraffic, log_fsdp_traffic
from repro.nn import Adam, CheckpointPolicy, TransformerConfig, TransformerLM
from repro.nn.checkpoint import CheckpointMode
from repro.nn.memory import get_tracker, reset_tracker
from repro.topology import ClusterTopology, make_cluster


@dataclass
class EngineConfig:
    """Everything needed to stand up a training run.

    The ablation flags (Table 2) map as follows:

    * backward communication optimisation -> ``method="burst"`` vs
      ``"loongtrain-double"`` (Alg. 2 vs Alg. 1 on the same topology-aware
      ring);
    * topology-aware ring -> ``method="burst"`` vs ``"megatron-cp"``;
    * fused LM head + loss -> ``head_impl="fused"`` vs ``"naive"``;
    * sequence-level selective checkpointing vs selective++ vs full ->
      ``checkpoint``.
    """

    model: TransformerConfig = field(default_factory=TransformerConfig)
    method: str = "burst"
    method_kwargs: dict = field(default_factory=dict)
    num_gpus: int = 8
    gpus_per_node: int = 8
    checkpoint: CheckpointPolicy = field(
        default_factory=lambda: CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5)
    )
    head_impl: str = "fused"
    fsdp: bool = True
    optimizer_offload: bool = False
    lr: float = 1e-3

    def resolved_model(self) -> TransformerConfig:
        return replace(self.model, checkpoint=self.checkpoint, head_impl=self.head_impl)


@dataclass
class StepResult:
    """Outcome of one training step."""

    loss: float
    step_comm_bytes: int
    step_comm_elems: int
    fsdp: FSDPTraffic | None
    peak_activation_bytes: int
    recompute_flops: float


class BurstEngine:
    """End-to-end distributed long-context training on the sim cluster."""

    def __init__(
        self,
        config: EngineConfig,
        topology: ClusterTopology | None = None,
        comm: SimCommunicator | None = None,
    ):
        self.config = config
        if comm is not None:
            # Custom communicator (fault-injecting, resilient, …): the
            # engine adopts its topology so the two can never disagree.
            if topology is not None and topology is not comm.topology:
                raise ValueError(
                    "pass either topology or comm; the provided comm is "
                    "bound to a different topology"
                )
            self.topology = comm.topology
            self.comm = comm
        else:
            self.topology = topology if topology is not None else make_cluster(
                config.num_gpus, gpus_per_node=config.gpus_per_node
            )
            self.comm = SimCommunicator(self.topology)
        self.method: DistributedAttention = get_method(
            config.method, **config.method_kwargs
        )
        self._validate()

        model_cfg = config.resolved_model()

        def attn_factory(dim, n_heads, rng, mask, block_size, n_kv_heads=None):
            return DistributedCausalSelfAttention(
                dim, n_heads, rng, method=self.method, comm=self.comm,
                mask=mask, block_size=block_size, n_kv_heads=n_kv_heads,
            )

        self.model = TransformerLM(model_cfg, attn_factory=attn_factory)
        if config.head_impl == "vocab-parallel":
            from repro.engine.distributed_head import install_vocab_parallel_head

            install_vocab_parallel_head(self.model, self.comm)
        self.optimizer = Adam(
            self.model.parameters(), lr=config.lr,
            offload=config.optimizer_offload,
        )
        self.step_count = 0

    def _validate(self) -> None:
        g = self.topology.world_size
        s = self.config.model.max_seq_len
        heads = self.config.model.n_heads
        if self.config.method == "ulysses" and heads % g != 0:
            raise ValueError(
                f"DeepSpeed-Ulysses infeasible: {heads} heads on {g} GPUs"
            )
        if s % g != 0:
            raise ValueError(
                f"max_seq_len {s} must be divisible by world size {g}"
            )
        if (
            self.config.head_impl == "vocab-parallel"
            and self.config.model.vocab_size % g != 0
        ):
            raise ValueError(
                f"vocab-parallel head needs vocab_size divisible by {g}"
            )

    @property
    def param_bytes(self) -> int:
        return sum(p.nbytes for p in self.model.parameters())

    def train_step(self, ids: np.ndarray, targets: np.ndarray) -> StepResult:
        """One full training step: forward, backward, FSDP traffic,
        optimizer update.  Returns loss and per-step accounting."""
        if len(ids) % self.topology.world_size != 0:
            raise ValueError(
                f"sequence length {len(ids)} not divisible by world size "
                f"{self.topology.world_size}"
            )
        reset_tracker()
        mark = len(self.comm.log.records)

        from repro.obs.mem import memory_scope
        from repro.obs.tracer import trace_span

        with trace_span("train.step", phase="step", step=self.step_count), \
                memory_scope(method=self.config.method, step=self.step_count):
            self.optimizer.zero_grad()
            loss = self.model(ids, targets)
            loss.backward()

            fsdp = None
            if self.config.fsdp:
                gather_passes = 2 if self.config.checkpoint.checkpoints_layer else 1
                fsdp = log_fsdp_traffic(
                    self.comm, self.param_bytes, gather_passes=gather_passes
                )
            self.optimizer.step()
            self.step_count += 1

        new_records = self.comm.log.records[mark:]
        tracker = get_tracker()
        return StepResult(
            loss=loss.item(),
            step_comm_bytes=sum(r.nbytes for r in new_records),
            step_comm_elems=sum(r.nelems for r in new_records),
            fsdp=fsdp,
            peak_activation_bytes=tracker.peak_saved_bytes,
            recompute_flops=tracker.recompute_flops,
        )

    def train(self, ids: np.ndarray, targets: np.ndarray, steps: int) -> list[float]:
        """Run ``steps`` updates on one batch; returns the loss curve."""
        return [self.train_step(ids, targets).loss for _ in range(steps)]
