"""Vocab-parallel LM head as an engine-installable autograd node.

Wraps :func:`repro.lmhead.distributed.vocab_parallel_fused_loss` so the
end-to-end engine can shard the vocabulary matrix across ranks
(``EngineConfig(head_impl="vocab-parallel")``): the Algorithm-3 tile loop
runs per vocab shard, two small all-reduces (row LSEs and dH partials)
merge the shards, and the logged traffic is independent of the vocabulary
size.
"""

from __future__ import annotations

import numpy as np

from repro.comm import SimCommunicator
from repro.lmhead.distributed import shard_vocab, vocab_parallel_fused_loss
from repro.nn.function import Function
from repro.nn.tensor import Tensor


class VocabParallelHeadLossFn(Function):
    """Scalar CE loss with the vocab matrix sharded across the cluster."""

    def forward(self, h, w, targets=None, comm: SimCommunicator = None,
                block_seq: int = 128):
        if comm is None:
            raise ValueError("vocab-parallel head requires comm=")
        shards = shard_vocab(w, comm.world_size)
        loss, dh, dw_shards = vocab_parallel_fused_loss(
            comm, h, shards, np.asarray(targets), block_seq=block_seq
        )
        self.save_for_backward(dh, np.concatenate(dw_shards, axis=0))
        return np.asarray(loss)

    def backward(self, grad_out):
        dh, dw = self.saved
        g = float(grad_out)
        return g * dh, g * dw


def install_vocab_parallel_head(model, comm: SimCommunicator,
                                block_seq: int = 128) -> None:
    """Point ``model.head_fn`` at the distributed head."""

    def head_fn(h: Tensor, weight: Tensor, targets: np.ndarray) -> Tensor:
        return VocabParallelHeadLossFn.apply(
            h, weight, targets=targets, comm=comm, block_seq=block_seq
        )

    model.head_fn = head_fn
