"""Attention-level experiments: Table 1 (comm-time formulas) and Fig. 14
(attention-only performance across implementations)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, METHOD_LABELS, fmt
from repro.models import LLAMA_14B, ModelSpec
from repro.perf.cost import table1_comm_times
from repro.perf.memory import MemoryModel, TrainingSetup
from repro.perf.schedules.attention import AttentionWorkload, attention_pass_time
from repro.topology import ClusterTopology, a100_node, make_cluster


def tab01_comm_time(
    topology: ClusterTopology | None = None,
    seq_lens: list[int] | None = None,
    hidden: int = 5120,
) -> ExperimentResult:
    """Table 1: total attention communication time of the three
    ring-family methods, evaluated on concrete link specs.

    BurstAttention's advantage has two sources visible here: the
    topology-aware split (intra/inter overlap; ``max`` instead of
    lockstep-slowest or serialized sums) and Algorithm 2's smaller
    backward payload (5 effective circulations vs 6).
    """
    topo = topology or make_cluster(32)
    seqs = seq_lens or [262144, 524288, 1048576, 2097152]
    rows = []
    for s in seqs:
        t = table1_comm_times(topo, s, hidden)
        rows.append(
            [
                f"{s // 1024}K",
                fmt(t["ring"] * 1e3, 1),
                fmt(t["double_ring"] * 1e3, 1),
                fmt(t["burst"] * 1e3, 1),
                fmt(t["ring"] / t["burst"], 2) + "x",
            ]
        )
    return ExperimentResult(
        exp_id="tab01",
        title=f"Attention comm time (ms) on {topo.describe()}",
        headers=["seq_len", "RingAttention", "DoubleRing", "BurstAttention",
                 "ring/burst"],
        rows=rows,
    )


def fig14_attention_perf(
    num_gpus: int = 32,
    model: ModelSpec = LLAMA_14B,
    seq_lens: list[int] | None = None,
) -> ExperimentResult:
    """Fig. 14: fwd+bwd time of one distributed attention layer vs
    sequence length, on 32 x A100 with the 14B attention configuration.

    DeepSpeed-Ulysses is infeasible here (40 heads not divisible by 32
    GPUs); Megatron-CP additionally OOMs past 256K (replicated states
    leave no room for its attention buffers).
    """
    topo = make_cluster(num_gpus, node=a100_node())
    seqs = seq_lens or [131072, 262144, 524288, 1048576]
    methods = ["megatron-cp", "loongtrain-double", "usp", "burst"]
    mm = MemoryModel()
    rows = []
    for s in seqs:
        wl = AttentionWorkload(seq_len=s, hidden=model.hidden,
                               n_heads=model.n_heads)
        row: list[object] = [f"{s // 1024}K"]
        times = {}
        for m in methods:
            # Megatron's replicated-state OOM kicks in past 256K.
            if m == "megatron-cp":
                setup = TrainingSetup(model=model, seq_len=s, world=num_gpus,
                                      method=m, fsdp=False)
                if mm.breakdown(setup).oom:
                    row.append("OOM")
                    continue
            t = (attention_pass_time(m, topo, wl)
                 + attention_pass_time(m, topo, wl, backward=True))
            times[m] = t
            row.append(fmt(t * 1e3, 1))
        if "burst" in times:
            others = {m: t / times["burst"] for m, t in times.items() if m != "burst"}
            row.append(
                " ".join(f"{METHOD_LABELS[m].split('-')[-1]}:{v:.2f}x"
                         for m, v in others.items())
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig14",
        title=f"Attention fwd+bwd time (ms), {model.name} config, "
              f"{num_gpus} x A100",
        headers=["seq_len", "Megatron-CP", "DoubleRing", "USP", "Burst",
                 "slowdown vs Burst"],
        rows=rows,
        notes=[
            "DeepSpeed-Ulysses infeasible: 40 heads % 32 GPUs != 0",
            "paper reports 1.05x over USP and 1.33x over DoubleRing at 1M; "
            "this model reproduces the ordering with a smaller DoubleRing gap",
        ],
    )
