"""Ablations: Table 2 (optimization stack) and Table 3 (sparse workload
balance)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt
from repro.models import LLAMA_14B, ModelSpec
from repro.perf import end_to_end_step
from repro.topology import make_cluster


#: Table 2 rows: cumulative optimisation stack on 14B / 1M / 32 x A800.
#: (label, attention schedule, checkpoint policy, head mode)
TAB02_ROWS = [
    ("base (flat ring, Alg.1)", "megatron-cp", "full", "naive"),
    ("+ backward comm opt (Alg.2)", "burst-flat", "full", "naive"),
    ("+ topology-aware ring", "burst", "full", "naive"),
    ("+ fused LM head & loss", "burst", "full", "fused"),
    ("+ sequence-level ckpt", "burst", "sequence_level", "fused"),
    ("selective++ instead", "burst", "selective_pp", "fused"),
]


def tab02_ablation(
    model: ModelSpec = LLAMA_14B,
    num_gpus: int = 32,
    seq_len: int = 1 << 20,
) -> ExperimentResult:
    """Table 2: contribution of each BurstEngine optimisation.

    Expected shape: TGS rises monotonically down the stack (~1.4x base ->
    full); the fused head cuts memory without hurting TGS; sequence-level
    checkpointing buys a large TGS jump for a moderate memory increase,
    while selective++ (the last row) is faster still but stores more.
    """
    topo = make_cluster(num_gpus)
    rows = []
    base_tgs = None
    for label, method, ckpt, head in TAB02_ROWS:
        r = end_to_end_step(model, topo, seq_len, method=method,
                            checkpoint=ckpt, head_mode=head)
        if base_tgs is None:
            base_tgs = r.tgs
        rows.append([
            label, fmt(r.mfu * 100, 2), fmt(r.tgs, 2),
            fmt(r.memory.total_gb, 2), fmt(r.tgs / base_tgs, 2) + "x",
        ])
    return ExperimentResult(
        exp_id="tab02",
        title=f"Ablation: {model.name}, {seq_len // (1 << 20)}M tokens, "
              f"{num_gpus} x A800",
        headers=["configuration", "MFU_%", "TGS", "mem_GB", "vs_base"],
        rows=rows,
        notes=["paper row TGS: 83.79 / 87.48 / 95.06 / 94.81 / 108.82 / 117.83"],
    )


def tab02_split_sweep(
    model: ModelSpec = LLAMA_14B,
    num_gpus: int = 32,
    seq_len: int = 1 << 20,
    fractions: list[float] | None = None,
) -> ExperimentResult:
    """Design-choice ablation: the sequence-level checkpointing split point.

    ``split_fraction`` is the share of each layer's sequence that is
    *recomputed* (the front); ``1 - split`` is stored.  Small fractions
    approach selective++ (fast, heavy); large ones approach full
    checkpointing (slow, light).  The paper picks 0.5; the sweep shows the
    memory-throughput frontier it sits on.
    """
    topo = make_cluster(num_gpus)
    rows = []
    for frac in fractions or [0.125, 0.25, 0.5, 0.75, 0.875]:
        r = end_to_end_step(
            model, topo, seq_len, method="burst",
            checkpoint="sequence_level", split_fraction=frac,
            head_mode="fused",
        )
        rows.append([
            f"{frac:.3f}", fmt(r.tgs, 2), fmt(r.mfu * 100, 2),
            fmt(r.memory.total_gb, 2),
        ])
    return ExperimentResult(
        exp_id="tab02-split",
        title=f"Sequence-level checkpoint split sweep: {model.name}, "
              f"{seq_len // (1 << 20)}M, {num_gpus} x A800",
        headers=["recomputed_fraction", "TGS", "MFU_%", "mem_GB"],
        rows=rows,
        notes=["paper's operating point: 0.5 (half of selective++'s memory, "
               "~25% of full's attention recompute)"],
    )


def tab03_sparse(
    model: ModelSpec = LLAMA_14B,
    num_gpus: int = 8,
    seq_len: int = 262144,
    window: int = 32768,
) -> ExperimentResult:
    """Table 3: throughput of sparse-attention workload-balance strategies.

    * **attention masking** — causal mask applied with a contiguous
      partition and no balance: barriers make every step as slow as the
      slowest device, erasing the mask's savings (dense-cost attention);
    * **causal attention** — zigzag/striped balance: each device does the
      causal half-work, ~1.7x faster;
    * **SWA** — block-wise balanced sliding window (32K window): only
      ``2w/N`` of the causal pairs remain, ~3.7x faster.
    """
    topo = make_cluster(num_gpus)
    kw = dict(method="burst", checkpoint="sequence_level", head_mode="fused",
              optimizer_offload=True)
    masking = end_to_end_step(model, topo, seq_len, workload_balanced=False, **kw)
    causal = end_to_end_step(model, topo, seq_len, **kw)
    swa = end_to_end_step(model, topo, seq_len,
                          sparsity=2 * window / seq_len, **kw)
    rows = [
        ["Attention Masking", fmt(masking.tgs, 2), "1.00x"],
        ["Causal Attention", fmt(causal.tgs, 2),
         fmt(causal.tgs / masking.tgs, 2) + "x"],
        [f"SWA ({window // 1024}K window)", fmt(swa.tgs, 2),
         fmt(swa.tgs / masking.tgs, 2) + "x"],
    ]
    return ExperimentResult(
        exp_id="tab03",
        title=f"Sparse workload balance: {model.name}, "
              f"{seq_len // 1024}K tokens, {num_gpus} x A800",
        headers=["implementation", "TGS", "speedup"],
        rows=rows,
        notes=["paper: 227.58 / 393.44 (1.72x) / 837.79 (3.68x)"],
    )
