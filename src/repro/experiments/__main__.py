"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments            # all of them
    python -m repro.experiments fig12 tab02
    python -m repro.experiments --list
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS as EXPERIMENTS


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for key, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:7s} {doc}")
        return 0
    keys = argv or list(EXPERIMENTS)
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for key in keys:
        print(EXPERIMENTS[key]().format())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
