"""Scalability experiments: Table 4 (inter-node) and Table 5 (intra-node)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt
from repro.models import LLAMA_14B, ModelSpec
from repro.perf import end_to_end_step
from repro.topology import make_cluster


def tab04_internode(
    model: ModelSpec = LLAMA_14B,
    node_counts: list[int] | None = None,
    seq_per_gpu: int = 32768,
) -> ExperimentResult:
    """Table 4: scaling node count with 32K tokens per GPU.

    Expected shape: MFU stays flat (>45%) as nodes and sequence grow
    together, TGS halves per doubling (per-GPU work doubles with total
    sequence length while throughput per token is constant), and memory
    per GPU stays stable — near-linear sequence-dimension scaling.
    Optimizer offload is off (states fit once sharded over >=16 GPUs).
    """
    rows = []
    for nodes in node_counts or [2, 4, 8]:
        gpus = nodes * 8
        seq = gpus * seq_per_gpu
        topo = make_cluster(gpus)
        r = end_to_end_step(model, topo, seq, method="burst",
                            checkpoint="sequence_level", head_mode="fused")
        rows.append([
            nodes, f"{seq // (1 << 20)}M" if seq >= 1 << 20 else f"{seq // 1024}K",
            fmt(r.mfu * 100, 1), fmt(r.tgs, 2), fmt(r.memory.total_gb, 2),
        ])
    return ExperimentResult(
        exp_id="tab04",
        title=f"Inter-node scalability: {model.name}, 8 x A800 per node, "
              f"{seq_per_gpu // 1024}K tokens/GPU",
        headers=["nodes", "sequence", "MFU_%", "TGS", "mem_GB"],
        rows=rows,
        notes=["paper: 53.1/223.25/63.13 | 53.2/118.36/53.96 | 52.7/60.49/50.96"],
    )


def tab05_intranode(
    model: ModelSpec = LLAMA_14B,
    cp_sizes: list[int] | None = None,
    seq_per_gpu: int = 32768,
) -> ExperimentResult:
    """Table 5: context-parallel size 1..8 inside one 8 x A800 node.

    Optimizer offload is ON (the paper enables it because optimizer
    states are huge at small world sizes).  Expected shape: MFU *rises*
    with CP size (longer sequences raise the attention share, which runs
    at higher arithmetic intensity than the small per-GPU batch pieces),
    crossing 50% of the ideal at CP >= 4; memory stays roughly stable.
    """
    rows = []
    for cp in cp_sizes or [1, 2, 4, 8]:
        seq = cp * seq_per_gpu
        topo = make_cluster(cp)
        r = end_to_end_step(model, topo, seq, method="burst",
                            checkpoint="sequence_level", head_mode="fused",
                            optimizer_offload=True)
        rows.append([
            cp, f"{seq // 1024}K", fmt(r.mfu * 100, 2), fmt(r.tgs, 2),
            fmt(r.memory.total_gb, 2),
        ])
    return ExperimentResult(
        exp_id="tab05",
        title=f"Intra-node scalability: {model.name}, context-parallel size "
              "on 8 x A800 (optimizer offload on)",
        headers=["CP", "sequence", "MFU_%", "TGS", "mem_GB"],
        rows=rows,
        notes=["paper: 47.34/1201.14 | 48.85/928.24 | 50.55/639.43 | 51.90/393.44"],
    )
