"""Shared scaffolding for the paper-experiment harness.

Each experiment function returns an :class:`ExperimentResult` whose rows
regenerate one table or figure of the paper; ``format()`` renders the
paper-style text table and ``to_dict()`` a JSON-friendly record that
EXPERIMENTS.md and the benchmarks consume.

Baseline configuration conventions (used across Fig. 12/13/14):

* Megatron-CP has no FSDP / optimizer offload (the paper attributes its
  OOM to replicated weights and optimizer states) and uses full gradient
  checkpointing.
* DeepSpeed-Ulysses uses FSDP (ZeRO-3) with full checkpointing.
* LoongTrain (DoubleRing and USP) is configured with standard full
  gradient checkpointing and an unfused LM head.  (Its selective++ mode
  trades memory for speed; EXPERIMENTS.md discusses the effect of that
  choice on the Fig. 13 comparison.)
* BurstEngine = Burst attention + sequence-level selective checkpointing
  + fused LM head/loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.format import format_table


@dataclass
class ExperimentResult:
    """Rows reproducing one table/figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"[{self.exp_id}] {self.title}",
                 format_table(self.headers, self.rows)]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "id": self.exp_id,
            "title": self.title,
            "headers": self.headers,
            "rows": [[str(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }

    def column(self, name: str) -> list[object]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


#: Per-method end-to-end configuration used in Fig. 12 / Fig. 13.
BASELINE_CONFIGS: dict[str, dict] = {
    "megatron-cp": dict(fsdp=False, checkpoint="full", head_mode="naive"),
    "ulysses": dict(fsdp=True, checkpoint="full", head_mode="naive"),
    "loongtrain-double": dict(fsdp=True, checkpoint="full", head_mode="naive"),
    "usp": dict(fsdp=True, checkpoint="full", head_mode="naive"),
    "burst": dict(fsdp=True, checkpoint="sequence_level", head_mode="fused"),
}

METHOD_LABELS = {
    "megatron-cp": "Megatron-CP",
    "ulysses": "DeepSpeed-Ulysses",
    "loongtrain-double": "LoongTrain-DoubleRing",
    "usp": "LoongTrain-USP",
    "burst": "BurstEngine",
}


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
