"""Extension experiments (beyond the paper's tables and figures).

Three analyses quantifying this repository's extensions; the matching
``benchmarks/bench_ext_*.py`` files wrap them in pytest-benchmark and the
CLI renders them alongside the paper set::

    python -m repro.experiments ext-gqa ext-selective ext-tp
"""

from __future__ import annotations

from repro.attention.gqa import backward_comm_elems, choose_backward_algorithm
from repro.attention.selective import selective_vs_ring_volume
from repro.experiments.common import ExperimentResult
from repro.masks import SlidingWindowMask
from repro.models import LLAMA_14B, ModelSpec
from repro.partition import ContiguousPartitioner
from repro.tp import tp_scaling_analysis


def ext_gqa_tradeoff(
    seq_len: int = 1 << 20, head_dim: int = 128, n_q_heads: int = 64
) -> ExperimentResult:
    """GQA flips the Algorithm-1/Algorithm-2 backward payload trade-off:
    grouped KV heads shrink Alg. 1's circulating bundle while Alg. 2's
    query-sized one is unaffected (crossover at group factor 4/3)."""
    rows = []
    for n_kv in (64, 16, 8, 4, 1):
        alg1 = backward_comm_elems("alg1", seq_len, head_dim, n_q_heads, n_kv)
        alg2 = backward_comm_elems("alg2", seq_len, head_dim, n_q_heads, n_kv)
        rows.append([
            f"{n_q_heads}/{n_kv}",
            f"{alg1 / 1e9:.2f}",
            f"{alg2 / 1e9:.2f}",
            choose_backward_algorithm(head_dim, n_q_heads, n_kv),
        ])
    return ExperimentResult(
        exp_id="ext-gqa",
        title=f"GQA backward payload (G-elements/GPU, "
              f"{seq_len // (1 << 20)}M tokens, {n_q_heads} q-heads)",
        headers=["q/kv heads", "Alg.1 (ring KV)", "Alg.2 (burst)",
                 "adaptive pick"],
        rows=rows,
        notes=["crossover at group factor 4/3: every real GQA model "
               "favours Alg.1"],
    )


def ext_selective_comm(
    n: int = 1 << 20, g: int = 32, hidden: int = 5120
) -> ExperimentResult:
    """Sparsity-aware selective fetch vs ring circulation: forward KV
    volume for sliding windows over contiguous shards."""
    shard_elems = n // g * hidden
    rows = []
    for window in (n // 32, n // 8, n // 2, n):
        idxs = ContiguousPartitioner().indices(n, g)
        out = selective_vs_ring_volume(
            SlidingWindowMask(window), idxs, shard_elems
        )
        rows.append([
            f"{window // 1024}K",
            f"{out['ring'] / 1e9:.1f}",
            f"{out['selective'] / 1e9:.1f}",
            f"{out['savings'] * 100:.0f}%",
        ])
    return ExperimentResult(
        exp_id="ext-selective",
        title=f"Forward KV volume (G-elements, cluster total), SWA over "
              f"{n // (1 << 20)}M tokens on {g} GPUs (contiguous shards)",
        headers=["window", "ring", "selective", "saved"],
        rows=rows,
        notes=[
            "requires contiguous (local) shards; balanced partitions "
            "(striped / blockwise) make every tile live and save nothing — "
            "the locality-vs-balance trade-off",
        ],
    )


def ext_tp_scaling(model: ModelSpec = LLAMA_14B) -> ExperimentResult:
    """Pure tensor parallelism at long context: activations are not
    sequence-sharded, so a 14B model OOMs long before 1M tokens at any TP
    degree — the quantitative motivation for context parallelism."""
    seqs = [65536, 131072, 262144, 524288, 1 << 20]
    rows = []
    for row in tp_scaling_analysis(model, seqs, tp_degree=8):
        rows.append([
            f"{row.seq_len // 1024}K",
            f"{row.comm_gb_per_layer:.2f}",
            f"{row.activation_gb_per_gpu:.1f}",
            "ok" if row.fits_80gb else "OOM",
        ])
    return ExperimentResult(
        exp_id="ext-tp",
        title=f"Pure tensor parallelism at long context ({model.name}, "
              "TP=8, full ckpt)",
        headers=["seq_len", "all-reduce GB/layer", "activations GB/GPU",
                 "80GB"],
        rows=rows,
        notes=[
            "activations are TP-degree independent: adding ranks cannot fix "
            "this — sequence must be sharded (context parallelism)",
        ],
    )


def ext_pp_bubble() -> ExperimentResult:
    """Pipeline parallelism vs long context: one 1M-token sequence is one
    microbatch, so the pipeline bubble collapses efficiency to ~1/P —
    another reason the paper shards the *sequence* dimension."""
    from repro.pp.schedule import gpipe_bubble_fraction, pipeline_efficiency

    rows = []
    for p in (2, 4, 8):
        for m in (1, p, 4 * p):
            eff = pipeline_efficiency(p, m, 1.0)
            rows.append([
                p, m, f"{gpipe_bubble_fraction(p, m) * 100:.1f}%",
                f"{eff * 100:.1f}%",
            ])
    return ExperimentResult(
        exp_id="ext-pp",
        title="Pipeline bubble vs microbatch count (DES 1F1B schedule)",
        headers=["stages", "microbatches", "bubble", "efficiency"],
        rows=rows,
        notes=["a single long sequence (M=1) leaves only 1/P of the "
               "pipeline busy; context parallelism has no such penalty"],
    )


EXTENSION_EXPERIMENTS = {
    "ext-gqa": ext_gqa_tradeoff,
    "ext-selective": ext_selective_comm,
    "ext-tp": ext_tp_scaling,
    "ext-pp": ext_pp_bubble,
}
