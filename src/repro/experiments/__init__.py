"""Paper-experiment harness: one function per table / figure.

Every entry regenerates the rows of one element of the paper's evaluation
section from the repository's models (DES schedules, cost formulas, memory
model).  ``run_all()`` produces the full set; the ``benchmarks/`` tree
wraps each entry in pytest-benchmark and EXPERIMENTS.md records
paper-vs-measured values.
"""

from repro.experiments.common import (
    BASELINE_CONFIGS,
    ExperimentResult,
    METHOD_LABELS,
)
from repro.experiments.figures import (
    fig02_attention_share,
    fig07_checkpoint_memory,
    fig08_logits_memory,
)
from repro.experiments.attention_bench import fig14_attention_perf, tab01_comm_time
from repro.experiments.end_to_end_bench import fig12_end_to_end, fig13_peak_memory
from repro.experiments.ablation import tab02_ablation, tab02_split_sweep, tab03_sparse
from repro.experiments.scaling import tab04_internode, tab05_intranode
from repro.experiments.extensions import (
    EXTENSION_EXPERIMENTS,
    ext_gqa_tradeoff,
    ext_selective_comm,
    ext_tp_scaling,
)

EXPERIMENTS = {
    "fig02": fig02_attention_share,
    "tab01": tab01_comm_time,
    "fig07": fig07_checkpoint_memory,
    "fig08": fig08_logits_memory,
    "fig12": fig12_end_to_end,
    "fig13": fig13_peak_memory,
    "fig14": fig14_attention_perf,
    "tab02": tab02_ablation,
    "tab02-split": tab02_split_sweep,
    "tab03": tab03_sparse,
    "tab04": tab04_internode,
    "tab05": tab05_intranode,
}

#: Paper experiments plus the extension analyses (CLI accepts both).
ALL_EXPERIMENTS = {**EXPERIMENTS, **EXTENSION_EXPERIMENTS}


def run_all(include_extensions: bool = False) -> dict[str, ExperimentResult]:
    """Regenerate every table and figure; returns results keyed by id."""
    registry = ALL_EXPERIMENTS if include_extensions else EXPERIMENTS
    return {key: fn() for key, fn in registry.items()}


__all__ = [
    "BASELINE_CONFIGS",
    "ExperimentResult",
    "METHOD_LABELS",
    "EXPERIMENTS",
    "ALL_EXPERIMENTS",
    "EXTENSION_EXPERIMENTS",
    "run_all",
    "ext_gqa_tradeoff",
    "ext_selective_comm",
    "ext_tp_scaling",
    "fig02_attention_share",
    "tab01_comm_time",
    "fig07_checkpoint_memory",
    "fig08_logits_memory",
    "fig12_end_to_end",
    "fig13_peak_memory",
    "fig14_attention_perf",
    "tab02_ablation",
    "tab02_split_sweep",
    "tab03_sparse",
    "tab04_internode",
    "tab05_intranode",
]
