"""End-to-end experiments: Fig. 12 (TGS/MFU) and Fig. 13 (peak memory)
across the full method x model x cluster grid."""

from __future__ import annotations

from repro.experiments.common import (
    BASELINE_CONFIGS,
    ExperimentResult,
    METHOD_LABELS,
    fmt,
)
from repro.models import LLAMA_7B, LLAMA_14B, ModelSpec
from repro.perf import end_to_end_step
from repro.topology import make_cluster


#: The paper's evaluation grid: (model, GPUs, sequence length).
FIG12_GRID: list[tuple[ModelSpec, int, int]] = [
    (LLAMA_7B, 32, 2 << 20),    # 7B, 2M on 32 x A800
    (LLAMA_14B, 32, 1 << 20),   # 14B, 1M on 32 x A800
    (LLAMA_7B, 64, 4 << 20),    # 7B, 4M on 64 x A800
    (LLAMA_14B, 64, 2 << 20),   # 14B, 2M on 64 x A800
]

METHODS = ["megatron-cp", "ulysses", "loongtrain-double", "usp", "burst"]


def _cell(model: ModelSpec, num_gpus: int, seq: int, method: str):
    topo = make_cluster(num_gpus)
    cfg = dict(BASELINE_CONFIGS[method])
    fsdp = cfg.pop("fsdp")
    try:
        return end_to_end_step(model, topo, seq, method=method, fsdp=fsdp, **cfg)
    except ValueError:
        return None  # infeasible (e.g. Ulysses head divisibility)


def fig12_end_to_end(grid=None) -> ExperimentResult:
    """Fig. 12: end-to-end training throughput (TGS) and MFU.

    Expected shape (as in the paper): BurstEngine wins every cell
    (~1.15-1.25x over LoongTrain-USP); Megatron-CP OOMs everywhere (no
    FSDP); DeepSpeed-Ulysses OOMs for 14B (head-count limit).
    """
    rows = []
    for model, gpus, seq in grid or FIG12_GRID:
        for method in METHODS:
            r = _cell(model, gpus, seq, method)
            label = METHOD_LABELS[method]
            cell = f"{model.name}/{gpus}GPU/{seq // (1 << 20)}M"
            if r is None:
                rows.append([cell, label, "infeasible", "-", "-"])
            elif r.oom:
                rows.append([cell, label, "OOM", "-",
                             fmt(r.memory.total_gb, 1)])
            else:
                rows.append([cell, label, fmt(r.tgs, 2),
                             fmt(r.mfu * 100, 2), fmt(r.memory.total_gb, 1)])
    return ExperimentResult(
        exp_id="fig12",
        title="End-to-end training throughput (TGS tokens/s/GPU) and MFU (%)",
        headers=["setting", "method", "TGS", "MFU_%", "mem_GB"],
        rows=rows,
        notes=["OOM cells report the modelled requirement vs the 80 GB budget"],
    )


def fig13_peak_memory(grid=None) -> ExperimentResult:
    """Fig. 13: peak per-GPU memory for the same grid.

    BurstEngine is lowest everywhere (fused head + sequence-level
    checkpointing); at 64 GPUs it is the only system that fits, and its
    footprint stays nearly flat as GPUs and sequence scale together —
    near-linear scaling along the sequence dimension.
    """
    from repro.perf import end_to_end_step
    from repro.topology import make_cluster

    rows = []
    burst_vs_tuned: list[float] = []
    for model, gpus, seq in grid or FIG12_GRID:
        cell = f"{model.name}/{gpus}GPU/{seq // (1 << 20)}M"
        totals = {}
        for method in METHODS:
            r = _cell(model, gpus, seq, method)
            label = METHOD_LABELS[method]
            if r is None:
                rows.append([cell, label, "infeasible", "-"])
                continue
            totals[method] = r.memory.total_gb
            rows.append([cell, label, fmt(r.memory.total_gb, 1),
                         "OOM" if r.oom else "ok"])
        # LoongTrain as shipped runs selective checkpointing++ (its
        # speed-tuned mode) — the configuration the paper's 26.4%/24.2%
        # savings are measured against.
        tuned = end_to_end_step(
            model, make_cluster(gpus), seq, method="usp",
            checkpoint="selective_pp", head_mode="naive",
        )
        rows.append([cell, "LoongTrain-USP (selective++)",
                     fmt(tuned.memory.total_gb, 1),
                     "OOM" if tuned.oom else "ok"])
        if "burst" in totals and not tuned.oom:
            burst_vs_tuned.append(1 - totals["burst"] / tuned.memory.total_gb)
    notes = []
    if burst_vs_tuned:
        notes.append(
            "BurstEngine saves "
            + ", ".join(f"{s * 100:.1f}%" for s in burst_vs_tuned)
            + " vs speed-tuned (selective++) LoongTrain-USP per setting "
            "(paper: 26.4% at 7B/32GPU, 24.2% at 14B/32GPU)"
        )
    return ExperimentResult(
        exp_id="fig13",
        title="Peak memory per GPU (GB)",
        headers=["setting", "method", "mem_GB", "fits_80GB"],
        rows=rows,
        notes=notes,
    )
