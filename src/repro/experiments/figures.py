"""Analytical figures: Fig. 2 (attention share), Fig. 7 (checkpoint
memory), Fig. 8 (LM-head logits memory)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt
from repro.models import LLAMA2_VOCAB, LLAMA3_VOCAB, LLAMA_7B, ModelSpec
from repro.perf.memory import checkpoint_memory_curve, logits_memory_bytes


DEFAULT_SEQS = [8192, 32768, 131072, 524288, 1048576]


def fig02_attention_share(
    model: ModelSpec = LLAMA_7B, seq_lens: list[int] | None = None
) -> ExperimentResult:
    """Fig. 2: share of end-to-end training time spent in attention.

    Attention FLOPs grow linearly in sequence length per token while the
    dense layers are constant, so the share crosses 50% around 64K tokens
    for a 7B model and exceeds 90% past 512K — the motivation for
    attention-centric distributed optimisation.
    """
    seqs = seq_lens or DEFAULT_SEQS
    rows = []
    for s in seqs:
        share = model.attention_fraction(s)
        rows.append([f"{s // 1024}K", fmt(share * 100, 1)])
    return ExperimentResult(
        exp_id="fig02",
        title=f"Attention share of training time ({model.name} model)",
        headers=["seq_len", "attention_%"],
        rows=rows,
        notes=["FLOPs-proportional share; paper measures wall-clock on A800"],
    )


def fig07_checkpoint_memory(
    model: ModelSpec = LLAMA_7B,
    world: int = 32,
    seq_lens: list[int] | None = None,
) -> ExperimentResult:
    """Fig. 7: total stored-activation memory by checkpointing strategy.

    All curves are linear in sequence length; selective++ stores ~2x the
    full-checkpointing baseline, sequence-level (0.5 split) 1.5x — i.e. it
    removes half of selective++'s overhead, the paper's "50% reduction".
    """
    seqs = seq_lens or DEFAULT_SEQS
    policies = ["full", "sequence_level", "selective_pp", "none"]
    curves = {p: checkpoint_memory_curve(model, seqs, world, p) for p in policies}
    rows = []
    for i, s in enumerate(seqs):
        rows.append(
            [f"{s // 1024}K"] + [fmt(curves[p][i]) for p in policies]
        )
    return ExperimentResult(
        exp_id="fig07",
        title=f"Stored activations per GPU (GB), {model.name} on {world} GPUs",
        headers=["seq_len", "full_ckpt", "sequence_level", "selective_pp", "no_ckpt"],
        rows=rows,
        notes=[
            "sequence-level stores (1 + 1 - split) x layer-input bytes: "
            "half of selective++'s whitelist overhead at split=0.5",
        ],
    )


def fig08_logits_memory(seq_lens: list[int] | None = None) -> ExperimentResult:
    """Fig. 8: total LM-head logits memory, LLaMA-1/2 (32K vocab) vs
    LLaMA-3 (128K vocab).  Grows linearly with sequence length and hits
    hundreds of GB at 1M tokens for large vocabularies — the reason the
    head must be fused with the loss."""
    seqs = seq_lens or DEFAULT_SEQS
    rows = []
    for s in seqs:
        m2 = logits_memory_bytes(s, LLAMA2_VOCAB) / 1e9
        m3 = logits_memory_bytes(s, LLAMA3_VOCAB) / 1e9
        rows.append([f"{s // 1024}K", fmt(m2), fmt(m3)])
    return ExperimentResult(
        exp_id="fig08",
        title="LM-head logits memory (GB, bf16, whole sequence)",
        headers=["seq_len", "llama-1/2 (32K vocab)", "llama-3 (128K vocab)"],
        rows=rows,
        notes=["fused head + loss (Alg. 3) stores none of this"],
    )
