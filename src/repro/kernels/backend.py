"""Pluggable kernel backend registry.

Every module that used to import a concrete kernel function
(``flash_attention_forward`` & co.) now resolves a :class:`KernelBackend`
through this registry and calls its methods, so the *implementation* of
the hot path is a runtime choice:

``reference``
    The always-on baseline — thin delegation to the sequential NumPy
    kernels in :mod:`repro.kernels.flash` / :mod:`repro.kernels.mlp`.
    Everything else in the repo is differential-tested against it.
``threaded``
    A worker-pool fast path: the flash forward/backward fan their query
    blocks (and the blockwise MLP its sequence chunks) across a thread
    pool.  NumPy releases the GIL inside BLAS calls, so on a multi-core
    host the GEMMs genuinely overlap.  Bitwise-identical to ``reference``
    by construction: forward q-blocks write disjoint output slices, and
    backward ``dk``/``dv`` tiles are merged on the calling thread in
    ascending q-block order — the exact accumulation order of the
    sequential loop (IEEE addition is commutative but not associative;
    preserving the per-slice fold order is what buys bit equality).
    Each worker owns a persistent :class:`~repro.kernels.tileplan
    .KernelWorkspace` and tallies tile counters into a thread-local
    buffer merged on task exit.

Selection::

    set_backend("threaded")             # process-wide
    with use_backend("threaded"): ...   # scoped (tests, fuzzer)
    REPRO_KERNEL_BACKEND=threaded ...   # environment default

``REPRO_KERNEL_WORKERS`` sizes the threaded pool (default 4).  Additional
backends register via :func:`register_backend` and are immediately
reachable from the fuzzer's ``--backend`` axis and the bench harness's
``backends`` suite.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from repro.kernels import softmax as _softmax_mod
from repro.kernels.attention_ref import (
    attention_reference,
    attention_reference_backward,
)
from repro.kernels.flash import (
    DEFAULT_BLOCK,
    _backward_q_block,
    _backward_tiles,
    _forward_q_block,
    _forward_tiles,
    _validate_plan,
    flash_attention_backward,
    flash_attention_forward,
    flash_backward_tiles,
)
from repro.kernels.mlp import (
    backward_chunk,
    transposed_weights,
    chunk_bounds,
    finalize_weight_grads,
    forward_chunk,
    swiglu_mlp_backward,
    swiglu_mlp_forward,
    uses_chunking,
)
from repro.kernels.softmax import NEG_INF
from repro.kernels.tileplan import KernelWorkspace, counters
from repro.obs.tracer import NOOP_SPAN, trace_span

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "ThreadedBackend",
    "available_backends",
    "current_backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the default backend for the process.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"
#: Environment variable sizing the threaded backend's worker pool.
WORKERS_ENV_VAR = "REPRO_KERNEL_WORKERS"


class KernelBackend:
    """Interface every kernel backend implements.

    The attention entry points mirror the reference kernel signatures
    exactly; the softmax family and the dense attention oracle are plain
    delegations on the base class (they are the *definitions* the
    backends are tested against, not something a backend may reinterpret).
    """

    name: str = "abstract"

    # -- flash attention ------------------------------------------------------

    def flash_forward(
        self, q, k, v, mask=None, scale=None, block_q=DEFAULT_BLOCK,
        block_k=DEFAULT_BLOCK, bias=None, plan=None, workspace=None,
    ):
        """Tiled attention forward; returns ``(o, lse)``."""
        raise NotImplementedError

    def flash_backward(
        self, q, k, v, o, lse, do, mask=None, scale=None,
        block_q=DEFAULT_BLOCK, block_k=DEFAULT_BLOCK, bias=None, plan=None,
        workspace=None,
    ):
        """Tiled attention backward; returns ``(dq, dk, dv)``."""
        raise NotImplementedError

    def flash_backward_tiles(
        self, q, k, v, lse, d_stat, do, mask=None, scale=None,
        block_q=DEFAULT_BLOCK, block_k=DEFAULT_BLOCK, bias=None, plan=None,
        workspace=None,
    ):
        """Backward with caller-supplied row statistics (BurstAttention
        Algorithm 2's device step); returns ``(dq, dk, dv)``."""
        raise NotImplementedError

    # -- blockwise MLP --------------------------------------------------------

    def mlp_forward(self, x, w_gate, w_up, w_down, chunk_size=None):
        """SwiGLU FFN forward, optionally chunked over the sequence."""
        raise NotImplementedError

    def mlp_backward(self, x, w_gate, w_up, w_down, dy, chunk_size=None):
        """SwiGLU FFN backward; returns ``(dx, dwg, dwu, dwd)``."""
        raise NotImplementedError

    # -- softmax family (fixed definitions, shared by all backends) -----------

    def softmax(self, scores, axis=-1):
        return _softmax_mod.softmax(scores, axis=axis)

    def logsumexp(self, scores, axis=-1):
        return _softmax_mod.logsumexp(scores, axis=axis)

    def merge_lse(self, lse_a, lse_b):
        return _softmax_mod.merge_lse(lse_a, lse_b)

    def merge_states(self, o_a, lse_a, o_b, lse_b):
        return _softmax_mod.merge_states(o_a, lse_a, o_b, lse_b)

    # -- dense oracle (differential-test baseline, never overridden) ----------

    def attention_reference(self, *args, **kwargs):
        return attention_reference(*args, **kwargs)

    def attention_reference_backward(self, *args, **kwargs):
        return attention_reference_backward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class ReferenceBackend(KernelBackend):
    """The sequential NumPy kernels — the bitwise ground truth."""

    name = "reference"

    def flash_forward(self, q, k, v, **kw):
        with counters.backend_scope(self.name):
            return flash_attention_forward(q, k, v, **kw)

    def flash_backward(self, q, k, v, o, lse, do, **kw):
        with counters.backend_scope(self.name):
            return flash_attention_backward(q, k, v, o, lse, do, **kw)

    def flash_backward_tiles(self, q, k, v, lse, d_stat, do, **kw):
        with counters.backend_scope(self.name):
            return flash_backward_tiles(q, k, v, lse, d_stat, do, **kw)

    def mlp_forward(self, x, w_gate, w_up, w_down, chunk_size=None):
        with trace_span(
            "mlp.fwd", phase="compute", backend=self.name,
            chunked=uses_chunking(x, w_gate, w_down, chunk_size),
        ):
            return swiglu_mlp_forward(
                x, w_gate, w_up, w_down, chunk_size=chunk_size
            )

    def mlp_backward(self, x, w_gate, w_up, w_down, dy, chunk_size=None):
        with trace_span(
            "mlp.bwd", phase="compute", backend=self.name,
            chunked=uses_chunking(x, w_gate, w_down, chunk_size),
        ):
            return swiglu_mlp_backward(
                x, w_gate, w_up, w_down, dy, chunk_size=chunk_size
            )


def _span_chunks(n_items: int, n_tasks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_tasks`` contiguous spans."""
    n_tasks = max(1, min(n_tasks, n_items))
    base, extra = divmod(n_items, n_tasks)
    bounds = []
    start = 0
    for t in range(n_tasks):
        end = start + base + (1 if t < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


class ThreadedBackend(KernelBackend):
    """Worker-pool fast path over the reference per-q-block kernels.

    Forward: workers write disjoint ``o``/``lse`` (and ``dq``) slices —
    scheduling-independent by construction.  Backward: workers *collect*
    their ``dk``/``dv`` tiles; the calling thread folds them in ascending
    q-block order, reproducing the sequential per-slice accumulation
    order bit for bit.  Small problems (fewer than two q-blocks, or a
    single worker) fall through to the sequential loops.
    """

    name = "threaded"

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = int(os.environ.get(WORKERS_ENV_VAR, "4"))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._tls = threading.local()

    # -- pool / per-worker state ----------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-kernel",
                )
            return self._pool

    def _worker_workspace(self) -> KernelWorkspace:
        """Persistent per-worker scratch, reused across invocations."""
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = KernelWorkspace()
            self._tls.ws = ws
        return ws

    def close(self) -> None:
        """Shut the pool down (tests; harmless if never started)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # -- flash attention ------------------------------------------------------

    def flash_forward(
        self, q, k, v, mask=None, scale=None, block_q=DEFAULT_BLOCK,
        block_k=DEFAULT_BLOCK, bias=None, plan=None, workspace=None,
    ):
        span = trace_span(
            "flash.fwd", phase="compute", backend=self.name,
            workers=self.workers,
        )
        with span, counters.backend_scope(self.name):
            if span is not NOOP_SPAN:
                span["sq"], span["sk"] = int(q.shape[-2]), int(k.shape[-2])
                span["planned"] = plan is not None
            return self._forward(
                q, k, v, mask, scale, block_q, block_k, bias, plan, workspace
            )

    def _forward(
        self, q, k, v, mask, scale, block_q, block_k, bias, plan, workspace
    ):
        if scale is None:
            scale = 1.0 / np.sqrt(q.shape[-1])
        sq, sk = q.shape[-2], k.shape[-2]
        _validate_plan(plan, sq, sk, mask, bias)
        if plan is not None:
            block_q, block_k = plan.block_q, plan.block_k
        n_blocks = -(-sq // block_q)
        if n_blocks < 2 or self.workers < 2:
            return _forward_tiles(
                q, k, v, mask, scale, block_q, block_k, bias, plan, workspace
            )
        o = np.zeros(q.shape[:-1] + (v.shape[-1],), dtype=np.float64)
        lse = np.full(q.shape[:-1], NEG_INF, dtype=np.float64)

        def run(b0: int, b1: int) -> None:
            ws = self._worker_workspace()
            with counters.deferred():
                for qi in range(b0, b1):
                    q0 = qi * block_q
                    q1 = min(q0 + block_q, sq)
                    o_blk, lse_blk = _forward_q_block(
                        qi, q0, q1, q, k, v, mask, scale, block_k, bias,
                        plan, ws,
                    )
                    o[..., q0:q1, :] = o_blk
                    lse[..., q0:q1] = lse_blk

        pool = self._executor()
        futures = [
            pool.submit(run, b0, b1)
            for b0, b1 in _span_chunks(n_blocks, self.workers)
        ]
        for fut in futures:
            fut.result()
        return o, lse

    def flash_backward(
        self, q, k, v, o, lse, do, mask=None, scale=None,
        block_q=DEFAULT_BLOCK, block_k=DEFAULT_BLOCK, bias=None, plan=None,
        workspace=None,
    ):
        if scale is None:
            scale = 1.0 / np.sqrt(q.shape[-1])
        d_stat = np.sum(do * o, axis=-1)
        return self.flash_backward_tiles(
            q, k, v, lse, d_stat, do, mask=mask, scale=scale,
            block_q=block_q, block_k=block_k, bias=bias, plan=plan,
            workspace=workspace,
        )

    def flash_backward_tiles(
        self, q, k, v, lse, d_stat, do, mask=None, scale=None,
        block_q=DEFAULT_BLOCK, block_k=DEFAULT_BLOCK, bias=None, plan=None,
        workspace=None,
    ):
        span = trace_span(
            "flash.bwd", phase="compute", backend=self.name,
            workers=self.workers,
        )
        with span, counters.backend_scope(self.name):
            if span is not NOOP_SPAN:
                span["sq"], span["sk"] = int(q.shape[-2]), int(k.shape[-2])
                span["planned"] = plan is not None
            return self._backward_tiles_threaded(
                q, k, v, lse, d_stat, do, mask, scale, block_q, block_k,
                bias, plan, workspace,
            )

    def _backward_tiles_threaded(
        self, q, k, v, lse, d_stat, do, mask, scale, block_q, block_k,
        bias, plan, workspace,
    ):
        if scale is None:
            scale = 1.0 / np.sqrt(q.shape[-1])
        sq, sk = q.shape[-2], k.shape[-2]
        _validate_plan(plan, sq, sk, mask, bias)
        if plan is not None:
            block_q, block_k = plan.block_q, plan.block_k
        n_blocks = -(-sq // block_q)
        if n_blocks < 2 or self.workers < 2:
            return _backward_tiles(
                q, k, v, lse, d_stat, do, mask, scale, block_q, block_k,
                bias, plan, workspace,
            )
        dq = np.zeros_like(q)
        dk = np.zeros_like(k)
        dv = np.zeros_like(v)

        def run(b0: int, b1: int) -> list:
            ws = self._worker_workspace()
            collected = []
            with counters.deferred():
                for qi in range(b0, b1):
                    q0 = qi * block_q
                    q1 = min(q0 + block_q, sq)
                    dq_blk, tiles = _backward_q_block(
                        qi, q0, q1, q, k, v, lse, d_stat, do, mask, scale,
                        block_k, bias, plan, ws,
                    )
                    dq[..., q0:q1, :] = dq_blk
                    collected.append(tiles)
            return collected

        pool = self._executor()
        futures = [
            pool.submit(run, b0, b1)
            for b0, b1 in _span_chunks(n_blocks, self.workers)
        ]
        # Merge on this thread, chunks (and q-blocks within them) in
        # ascending order: per dk/dv slice this is the sequential fold.
        for fut in futures:
            for tiles in fut.result():
                for k0, k1, dk_tile, dv_tile in tiles:
                    dv[..., k0:k1, :] += dv_tile
                    dk[..., k0:k1, :] += dk_tile
        return dq, dk, dv

    # -- blockwise MLP --------------------------------------------------------

    def mlp_forward(self, x, w_gate, w_up, w_down, chunk_size=None):
        chunked = uses_chunking(x, w_gate, w_down, chunk_size)
        with trace_span(
            "mlp.fwd", phase="compute", backend=self.name, chunked=chunked,
            workers=self.workers,
        ):
            if not chunked or self.workers < 2:
                return swiglu_mlp_forward(
                    x, w_gate, w_up, w_down, chunk_size=chunk_size
                )
            from repro.obs.mem import transient_scope

            hidden = w_gate.shape[0]
            wg_t, wu_t, wd_t = transposed_weights(w_gate, w_up, w_down)
            y = np.empty((x.shape[0], w_down.shape[0]), dtype=np.float64)
            bounds = chunk_bounds(x.shape[0], chunk_size)

            def run_fwd(c0, c1):
                # Scope runs on the worker so concurrently-live chunk
                # intermediates overlap on the transient watermark.
                with transient_scope((c1 - c0) * hidden * 5 * 8,
                                     site="mlp.chunked_fwd.chunk"):
                    forward_chunk(x, wg_t, wu_t, wd_t, c0, c1, y)

            pool = self._executor()
            futures = [pool.submit(run_fwd, c0, c1) for c0, c1 in bounds]
            for fut in futures:
                fut.result()
            return y

    def mlp_backward(self, x, w_gate, w_up, w_down, dy, chunk_size=None):
        chunked = uses_chunking(x, w_gate, w_down, chunk_size)
        with trace_span(
            "mlp.bwd", phase="compute", backend=self.name, chunked=chunked,
            workers=self.workers,
        ):
            if not chunked or self.workers < 2:
                return swiglu_mlp_backward(
                    x, w_gate, w_up, w_down, dy, chunk_size=chunk_size
                )
            from repro.obs.mem import transient_scope

            s, hidden = x.shape[0], w_gate.shape[0]
            wg_t, wu_t, _ = transposed_weights(w_gate, w_up, w_down)
            with transient_scope(3 * s * hidden * 8,
                                 site="mlp.chunked_bwd.full"):
                h_full = np.empty((s, hidden), dtype=np.float64)
                dg_full = np.empty((s, hidden), dtype=np.float64)
                du_full = np.empty((s, hidden), dtype=np.float64)
                dx = np.empty_like(x)

                def run_bwd(c0, c1):
                    with transient_scope((c1 - c0) * hidden * 8 * 8,
                                         site="mlp.chunked_bwd.chunk"):
                        backward_chunk(
                            x, w_gate, w_up, w_down, wg_t, wu_t,
                            dy, c0, c1, h_full, dg_full, du_full, dx,
                        )

                pool = self._executor()
                futures = [
                    pool.submit(run_bwd, c0, c1)
                    for c0, c1 in chunk_bounds(s, chunk_size)
                ]
                for fut in futures:
                    fut.result()
                dwg, dwu, dwd = finalize_weight_grads(
                    x, dy, h_full, dg_full, du_full
                )
            return dx, dwg, dwu, dwd


# --- registry -----------------------------------------------------------------

_registry_lock = threading.Lock()
_factories: dict[str, type[KernelBackend] | "callable"] = {}
_instances: dict[str, KernelBackend] = {}
_active: KernelBackend | None = None


def register_backend(name: str, factory, *, replace: bool = False) -> None:
    """Register a backend under ``name``.

    ``factory`` is a zero-argument callable (usually the class) invoked
    lazily the first time the backend is selected.
    """
    with _registry_lock:
        if name in _factories and not replace:
            raise ValueError(f"backend {name!r} is already registered")
        _factories[name] = factory
        _instances.pop(name, None)


def available_backends() -> list[str]:
    """Registered backend names, ``reference`` first."""
    with _registry_lock:
        names = sorted(_factories)
    names.sort(key=lambda n: (n != "reference", n))
    return names


def _instantiate(name: str) -> KernelBackend:
    with _registry_lock:
        inst = _instances.get(name)
        if inst is None:
            factory = _factories.get(name)
            if factory is None:
                known = ", ".join(sorted(_factories))
                raise ValueError(
                    f"unknown kernel backend {name!r}; registered: {known}"
                )
            inst = factory()
            _instances[name] = inst
    return inst


def get_backend(name: str | None = None) -> KernelBackend:
    """The active backend, or the named one without changing the active.

    The first unnamed lookup resolves :data:`BACKEND_ENV_VAR` (default
    ``reference``), so ``REPRO_KERNEL_BACKEND=threaded`` flips a whole
    run without touching code.
    """
    global _active
    if name is not None:
        return _instantiate(name)
    if _active is None:
        _active = _instantiate(
            os.environ.get(BACKEND_ENV_VAR, "reference")
        )
    return _active


def set_backend(backend: str | KernelBackend) -> KernelBackend:
    """Select the process-wide backend; returns the instance."""
    global _active
    if isinstance(backend, KernelBackend):
        _active = backend
    else:
        _active = _instantiate(backend)
    return _active


def current_backend_name() -> str:
    return get_backend().name


@contextmanager
def use_backend(backend: str | KernelBackend):
    """Scoped backend selection (tests, the fuzzer's ``--backend`` axis)."""
    global _active
    previous = get_backend()
    set_backend(backend)
    try:
        yield _active
    finally:
        _active = previous


register_backend("reference", ReferenceBackend)
register_backend("threaded", ThreadedBackend)
