"""Blockwise (FlashAttention-style) exact attention in numpy.

The computation is tiled over query and key blocks and never materialises
the full ``Sq x Sk`` score matrix: the forward pass keeps a running
``(O, lse)`` state per query block merged with the online-softmax rule, and
the backward pass re-forms each score tile from the saved ``lse`` (plus the
``D = rowsum(dO * O)`` row statistics), exactly as FlashAttention-2 does on
a GPU.  These tiled kernels are what every distributed attention method in
:mod:`repro.attention` runs locally on each simulated device.

Peak temporary memory is ``O(block_q * block_k)`` instead of
``O(Sq * Sk)``; numerics match the dense reference to ~1e-12 because the
tiling is algebraically exact.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.softmax import NEG_INF, logsumexp, merge_lse


DEFAULT_BLOCK = 128


def _mask_tile(
    mask: np.ndarray | None, q0: int, q1: int, k0: int, k1: int
) -> np.ndarray | None:
    """Slice the last two axes of a broadcastable boolean mask."""
    if mask is None:
        return None
    return mask[..., q0:q1, k0:k1]


def flash_attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_q: int = DEFAULT_BLOCK,
    block_k: int = DEFAULT_BLOCK,
    bias: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tiled exact attention forward.

    Parameters mirror :func:`repro.kernels.attention_reference`; returns
    the same ``(o, lse)`` pair.  ``block_q``/``block_k`` bound the size of
    any temporary score tile.  ``bias`` is an additive score term (ALiBi)
    broadcastable to ``(..., Sq, Sk)``, tiled alongside the mask.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    sq, sk = q.shape[-2], k.shape[-2]
    o = np.zeros(q.shape[:-1] + (v.shape[-1],), dtype=np.float64)
    lse = np.full(q.shape[:-1], NEG_INF, dtype=np.float64)

    for q0 in range(0, sq, block_q):
        q1 = min(q0 + block_q, sq)
        q_blk = q[..., q0:q1, :]
        o_blk = np.zeros(q_blk.shape[:-1] + (v.shape[-1],), dtype=np.float64)
        lse_blk = np.full(q_blk.shape[:-1], NEG_INF, dtype=np.float64)
        for k0 in range(0, sk, block_k):
            k1 = min(k0 + block_k, sk)
            s = np.matmul(q_blk, np.swapaxes(k[..., k0:k1, :], -1, -2)) * scale
            b = _mask_tile(bias, q0, q1, k0, k1)
            if b is not None:
                s = s + b
            m = _mask_tile(mask, q0, q1, k0, k1)
            if m is not None:
                if not m.any():
                    continue  # tile contributes nothing; skip (sparse speedup)
                s = np.where(m, s, NEG_INF)
            tile_lse = logsumexp(s, axis=-1)
            new_lse = merge_lse(lse_blk, tile_lse)
            new_safe = np.where(np.isneginf(new_lse), 0.0, new_lse)
            # Rescale the running accumulator and add this tile's weighted
            # values; unnormalised tile weights are exp(s - new_lse).
            w_old = np.where(
                np.isneginf(lse_blk), 0.0, np.exp(lse_blk - new_safe)
            )[..., None]
            p = np.exp(s - new_safe[..., None])
            if m is not None:
                p = np.where(m, p, 0.0)
            p = np.where(np.isneginf(new_lse)[..., None], 0.0, p)
            o_blk = w_old * o_blk + np.matmul(p, v[..., k0:k1, :])
            lse_blk = new_lse
        o[..., q0:q1, :] = o_blk
        lse[..., q0:q1] = lse_blk
    return o, lse


def flash_attention_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    o: np.ndarray,
    lse: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_q: int = DEFAULT_BLOCK,
    block_k: int = DEFAULT_BLOCK,
    bias: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tiled exact attention backward.

    Uses the saved global ``lse`` to re-form each probability tile and the
    FlashAttention identity ``dS = P * (dP - D)``.  Returns ``(dq, dk, dv)``.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    sq, sk = q.shape[-2], k.shape[-2]
    dq = np.zeros_like(q)
    dk = np.zeros_like(k)
    dv = np.zeros_like(v)
    d_stat = np.sum(do * o, axis=-1)  # (..., Sq)

    for q0 in range(0, sq, block_q):
        q1 = min(q0 + block_q, sq)
        q_blk = q[..., q0:q1, :]
        do_blk = do[..., q0:q1, :]
        lse_blk = lse[..., q0:q1]
        d_blk = d_stat[..., q0:q1]
        lse_safe = np.where(np.isneginf(lse_blk), 0.0, lse_blk)[..., None]
        dead = np.isneginf(lse_blk)[..., None]
        dq_blk = np.zeros_like(q_blk)
        for k0 in range(0, sk, block_k):
            k1 = min(k0 + block_k, sk)
            m = _mask_tile(mask, q0, q1, k0, k1)
            if m is not None and not m.any():
                continue
            k_blk = k[..., k0:k1, :]
            v_blk = v[..., k0:k1, :]
            s = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2)) * scale
            b = _mask_tile(bias, q0, q1, k0, k1)
            if b is not None:
                s = s + b
            if m is not None:
                s = np.where(m, s, NEG_INF)
            p = np.exp(s - lse_safe)
            p = np.where(dead, 0.0, p)
            if m is not None:
                p = np.where(m, p, 0.0)
            dv[..., k0:k1, :] += np.matmul(np.swapaxes(p, -1, -2), do_blk)
            dp = np.matmul(do_blk, np.swapaxes(v_blk, -1, -2))
            ds = p * (dp - d_blk[..., None])
            dq_blk += np.matmul(ds, k_blk) * scale
            dk[..., k0:k1, :] += np.matmul(np.swapaxes(ds, -1, -2), q_blk) * scale
        dq[..., q0:q1, :] = dq_blk
    return dq, dk, dv
