"""Blockwise (FlashAttention-style) exact attention in numpy.

The computation is tiled over query and key blocks and never materialises
the full ``Sq x Sk`` score matrix: the forward pass keeps a running
``(O, lse)`` state per query block merged with the online-softmax rule, and
the backward pass re-forms each score tile from the saved ``lse`` (plus the
``D = rowsum(dO * O)`` row statistics), exactly as FlashAttention-2 does on
a GPU.  These tiled kernels are what every distributed attention method in
:mod:`repro.attention` runs locally on each simulated device.

Masking comes in two forms:

* a :class:`~repro.kernels.tileplan.TilePlan` (``plan=``) — the fast path.
  Sub-tiles the plan classified ``empty`` are skipped before any compute,
  ``full`` sub-tiles run without mask handling, and a boolean tile is
  materialised only for ``partial`` sub-tiles.  A
  :class:`~repro.kernels.tileplan.KernelWorkspace` (``workspace=``)
  additionally reuses the per-tile score/probability/grad scratch across
  invocations.  Executed/skipped sub-tiles are tallied in
  :data:`repro.kernels.tileplan.counters`.
* a dense boolean array (``mask=``) broadcastable to ``(..., Sq, Sk)`` —
  the legacy baseline, kept for references, fuzzers and the bench
  harness's dense-vs-planned comparison.

Both paths are algebraically exact and produce identical results to
float64 precision; the plan path performs the same floating-point
operations on non-empty tiles (a full tile's ``where`` over an all-``True``
mask is the identity), so outputs are bitwise equal.  Peak temporary
memory is ``O(block_q * block_k)`` instead of ``O(Sq * Sk)``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.softmax import NEG_INF, logsumexp, merge_lse
from repro.kernels.tileplan import (
    EMPTY,
    PARTIAL,
    KernelWorkspace,
    TilePlan,
    counters,
)
from repro.obs.tracer import NOOP_SPAN, trace_span


DEFAULT_BLOCK = 128


def _mask_tile(
    mask: np.ndarray | None, q0: int, q1: int, k0: int, k1: int
) -> np.ndarray | None:
    """Slice the last two axes of a broadcastable boolean mask."""
    if mask is None:
        return None
    return mask[..., q0:q1, k0:k1]


def _validate_plan(
    plan: TilePlan | None,
    sq: int,
    sk: int,
    mask: np.ndarray | None,
    bias: np.ndarray | None,
) -> None:
    if plan is None:
        return
    if mask is not None or bias is not None:
        raise ValueError(
            "pass either plan= or dense mask=/bias=, not both"
        )
    plan.check_geometry(sq, sk)


def _resolve_subtile(plan: TilePlan, i: int, j: int, area: int):
    """Plan lookup for one sub-tile: ``(skip, mask_tile, bias_tile)``,
    with the execution counters updated (thread-safe via
    :meth:`~repro.kernels.tileplan.TileCounters.add`)."""
    state = plan.states[i, j]
    if state == EMPTY:
        counters.add("skipped_empty")
        counters.add("skipped_pairs", area)
        return True, None, None
    if state == PARTIAL:
        counters.add("computed_partial")
        m = plan.mask_tile(i, j)
    else:
        counters.add("computed_full")
        m = None
    counters.add("computed_pairs", area)
    return False, m, plan.bias_tile(i, j)


def flash_attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_q: int = DEFAULT_BLOCK,
    block_k: int = DEFAULT_BLOCK,
    bias: np.ndarray | None = None,
    plan: TilePlan | None = None,
    workspace: KernelWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tiled exact attention forward.

    Parameters mirror :func:`repro.kernels.attention_reference`; returns
    the same ``(o, lse)`` pair.  ``block_q``/``block_k`` bound the size of
    any temporary score tile (when ``plan`` is given, its block geometry
    wins).  ``bias`` is an additive score term (ALiBi) broadcastable to
    ``(..., Sq, Sk)``, tiled alongside the mask; with a plan, bias tiles
    are resolved (and cached) per sub-tile instead.

    One ``flash.fwd`` span covers the whole invocation (never per
    sub-tile — the inner loop stays bench-clean).
    """
    span = trace_span("flash.fwd", phase="compute", backend="reference")
    if span is NOOP_SPAN:
        return _forward_tiles(
            q, k, v, mask, scale, block_q, block_k, bias, plan, workspace
        )
    with span:
        span["sq"], span["sk"] = int(q.shape[-2]), int(k.shape[-2])
        span["planned"] = plan is not None
        return _forward_tiles(
            q, k, v, mask, scale, block_q, block_k, bias, plan, workspace
        )


def _forward_q_block(
    qi: int,
    q0: int,
    q1: int,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None,
    scale: float,
    block_k: int,
    bias: np.ndarray | None,
    plan: TilePlan | None,
    ws: KernelWorkspace | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Inner key loop of the forward pass for one query block.

    This is the unit the threaded backend fans out across workers: each
    query block touches only its own ``(o_blk, lse_blk)`` running state,
    so any scheduling of blocks produces bitwise-identical results.
    """
    sk = k.shape[-2]
    q_blk = q[..., q0:q1, :]
    o_blk = np.zeros(q_blk.shape[:-1] + (v.shape[-1],), dtype=np.float64)
    lse_blk = np.full(q_blk.shape[:-1], NEG_INF, dtype=np.float64)
    for ki, k0 in enumerate(range(0, sk, block_k)):
        k1 = min(k0 + block_k, sk)
        if plan is not None:
            skip, m, b = _resolve_subtile(
                plan, qi, ki, (q1 - q0) * (k1 - k0)
            )
            if skip:
                continue
        else:
            m = _mask_tile(mask, q0, q1, k0, k1)
            b = _mask_tile(bias, q0, q1, k0, k1)
        k_t = np.swapaxes(k[..., k0:k1, :], -1, -2)
        # Scratch reuse is safe only while the score tile keeps the
        # kernel's own batch shape; an additive bias may broadcast it
        # wider, so biased tiles take the allocating path.
        reuse = ws is not None and b is None
        if reuse:
            s = ws.matmul(q_blk, k_t, "fwd-s")
            s *= scale
        else:
            s = np.matmul(q_blk, k_t) * scale
        if b is not None:
            s = s + b
        if m is not None:
            if plan is None and not m.any():
                continue  # tile contributes nothing; skip (sparse speedup)
            s = np.where(m, s, NEG_INF)
        tile_lse = logsumexp(s, axis=-1)
        new_lse = merge_lse(lse_blk, tile_lse)
        new_safe = np.where(np.isneginf(new_lse), 0.0, new_lse)
        # Rescale the running accumulator and add this tile's weighted
        # values; unnormalised tile weights are exp(s - new_lse).
        w_old = np.where(
            np.isneginf(lse_blk), 0.0, np.exp(lse_blk - new_safe)
        )[..., None]
        p = np.exp(s - new_safe[..., None])
        if m is not None:
            p = np.where(m, p, 0.0)
        p = np.where(np.isneginf(new_lse)[..., None], 0.0, p)
        v_blk = v[..., k0:k1, :]
        if reuse and p.shape[:-1] + (v_blk.shape[-1],) == o_blk.shape:
            pv = ws.matmul(p, v_blk, "fwd-pv")
            o_blk *= w_old
            o_blk += pv
        else:
            o_blk = w_old * o_blk + np.matmul(p, v_blk)
        lse_blk = new_lse
    return o_blk, lse_blk


def _forward_tiles(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None,
    scale: float | None,
    block_q: int,
    block_k: int,
    bias: np.ndarray | None,
    plan: TilePlan | None,
    workspace: KernelWorkspace | None,
) -> tuple[np.ndarray, np.ndarray]:
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    sq, sk = q.shape[-2], k.shape[-2]
    _validate_plan(plan, sq, sk, mask, bias)
    if plan is not None:
        block_q, block_k = plan.block_q, plan.block_k
    o = np.zeros(q.shape[:-1] + (v.shape[-1],), dtype=np.float64)
    lse = np.full(q.shape[:-1], NEG_INF, dtype=np.float64)

    for qi, q0 in enumerate(range(0, sq, block_q)):
        q1 = min(q0 + block_q, sq)
        o_blk, lse_blk = _forward_q_block(
            qi, q0, q1, q, k, v, mask, scale, block_k, bias, plan, workspace
        )
        o[..., q0:q1, :] = o_blk
        lse[..., q0:q1] = lse_blk
    return o, lse


def flash_attention_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    o: np.ndarray,
    lse: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_q: int = DEFAULT_BLOCK,
    block_k: int = DEFAULT_BLOCK,
    bias: np.ndarray | None = None,
    plan: TilePlan | None = None,
    workspace: KernelWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tiled exact attention backward.

    Uses the saved global ``lse`` to re-form each probability tile and the
    FlashAttention identity ``dS = P * (dP - D)``.  Returns ``(dq, dk, dv)``.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    d_stat = np.sum(do * o, axis=-1)  # (..., Sq)
    return flash_backward_tiles(
        q, k, v, lse, d_stat, do, mask=mask, scale=scale,
        block_q=block_q, block_k=block_k, bias=bias,
        plan=plan, workspace=workspace,
    )


def flash_backward_tiles(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lse: np.ndarray,
    d_stat: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_q: int = DEFAULT_BLOCK,
    block_k: int = DEFAULT_BLOCK,
    bias: np.ndarray | None = None,
    plan: TilePlan | None = None,
    workspace: KernelWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward tile loop with caller-supplied row statistics.

    This is the shared core of :func:`flash_attention_backward` (which
    derives ``D = rowsum(dO * O)`` itself) and BurstAttention's
    Algorithm 2 device step (whose ``D``/``Lse`` arrive over the ring
    instead of being recomputed — the saving the paper measures).

    One ``flash.bwd`` span covers the whole invocation.
    """
    span = trace_span("flash.bwd", phase="compute", backend="reference")
    if span is NOOP_SPAN:
        return _backward_tiles(
            q, k, v, lse, d_stat, do, mask, scale, block_q, block_k,
            bias, plan, workspace,
        )
    with span:
        span["sq"], span["sk"] = int(q.shape[-2]), int(k.shape[-2])
        span["planned"] = plan is not None
        return _backward_tiles(
            q, k, v, lse, d_stat, do, mask, scale, block_q, block_k,
            bias, plan, workspace,
        )


def _backward_q_block(
    qi: int,
    q0: int,
    q1: int,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lse: np.ndarray,
    d_stat: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None,
    scale: float,
    block_k: int,
    bias: np.ndarray | None,
    plan: TilePlan | None,
    ws: KernelWorkspace | None,
    dk: np.ndarray | None = None,
    dv: np.ndarray | None = None,
) -> tuple[np.ndarray, list]:
    """Inner key loop of the backward pass for one query block.

    With ``dk``/``dv`` given, per-tile key/value gradients accumulate in
    place (the sequential path).  Without them, the tiles are returned as
    ``[(k0, k1, dk_tile, dv_tile), ...]`` so a threaded caller can merge
    them on one thread in ascending ``qi`` order — reproducing the
    sequential accumulation order on every ``dk``/``dv`` slice exactly,
    which is what keeps the threaded backend bitwise-identical.
    Returned tiles are copies when they alias workspace scratch.
    """
    sk = k.shape[-2]
    collect = dk is None
    tiles: list = []
    q_blk = q[..., q0:q1, :]
    do_blk = do[..., q0:q1, :]
    lse_blk = lse[..., q0:q1]
    d_blk = d_stat[..., q0:q1]
    lse_safe = np.where(np.isneginf(lse_blk), 0.0, lse_blk)[..., None]
    dead = np.isneginf(lse_blk)[..., None]
    dq_blk = np.zeros_like(q_blk)
    for ki, k0 in enumerate(range(0, sk, block_k)):
        k1 = min(k0 + block_k, sk)
        if plan is not None:
            skip, m, b = _resolve_subtile(
                plan, qi, ki, (q1 - q0) * (k1 - k0)
            )
            if skip:
                continue
        else:
            m = _mask_tile(mask, q0, q1, k0, k1)
            if m is not None and not m.any():
                continue
            b = _mask_tile(bias, q0, q1, k0, k1)
        k_blk = k[..., k0:k1, :]
        v_blk = v[..., k0:k1, :]
        reuse = ws is not None and b is None
        if reuse:
            s = ws.matmul(q_blk, np.swapaxes(k_blk, -1, -2), "bwd-s")
            s *= scale
        else:
            s = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2)) * scale
        if b is not None:
            s = s + b
        if m is not None:
            s = np.where(m, s, NEG_INF)
        p = np.exp(s - lse_safe)
        p = np.where(dead, 0.0, p)
        if m is not None:
            p = np.where(m, p, 0.0)
        p_t = np.swapaxes(p, -1, -2)
        if reuse:
            dv_tile = ws.matmul(p_t, do_blk, "bwd-dv")
            if collect:
                dv_tile = dv_tile.copy()
            else:
                dv[..., k0:k1, :] += dv_tile
            dp = ws.matmul(do_blk, np.swapaxes(v_blk, -1, -2), "bwd-dp")
            np.subtract(dp, d_blk[..., None], out=dp)
            dp *= p
            ds = dp
            dq_tile = ws.matmul(ds, k_blk, "bwd-dq")
            dq_tile *= scale
            dq_blk += dq_tile
            dk_tile = ws.matmul(np.swapaxes(ds, -1, -2), q_blk, "bwd-dk")
            dk_tile *= scale
            if collect:
                tiles.append((k0, k1, dk_tile.copy(), dv_tile))
            else:
                dk[..., k0:k1, :] += dk_tile
        else:
            dv_tile = np.matmul(p_t, do_blk)
            if not collect:
                dv[..., k0:k1, :] += dv_tile
            dp = np.matmul(do_blk, np.swapaxes(v_blk, -1, -2))
            ds = p * (dp - d_blk[..., None])
            dq_blk += np.matmul(ds, k_blk) * scale
            dk_tile = np.matmul(np.swapaxes(ds, -1, -2), q_blk) * scale
            if collect:
                tiles.append((k0, k1, dk_tile, dv_tile))
            else:
                dk[..., k0:k1, :] += dk_tile
    return dq_blk, tiles


def _backward_tiles(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lse: np.ndarray,
    d_stat: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None,
    scale: float | None,
    block_q: int,
    block_k: int,
    bias: np.ndarray | None,
    plan: TilePlan | None,
    workspace: KernelWorkspace | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    sq, sk = q.shape[-2], k.shape[-2]
    _validate_plan(plan, sq, sk, mask, bias)
    if plan is not None:
        block_q, block_k = plan.block_q, plan.block_k
    dq = np.zeros_like(q)
    dk = np.zeros_like(k)
    dv = np.zeros_like(v)

    for qi, q0 in enumerate(range(0, sq, block_q)):
        q1 = min(q0 + block_q, sq)
        dq_blk, _ = _backward_q_block(
            qi, q0, q1, q, k, v, lse, d_stat, do, mask, scale, block_k,
            bias, plan, workspace, dk=dk, dv=dv,
        )
        dq[..., q0:q1, :] = dq_blk
    return dq, dk, dv
