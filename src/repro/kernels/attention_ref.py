"""Dense reference attention (forward and backward).

This is the ground truth every optimized path is tested against.  It
materialises the full score matrix, which is exactly what long-context
training cannot afford — the point of the paper — but at test scale it is
the simplest correct oracle.

Shapes follow the repository convention: ``q`` is ``(..., Sq, D)``,
``k``/``v`` are ``(..., Sk, D)``, an optional boolean ``mask`` broadcastable
to ``(..., Sq, Sk)`` marks *allowed* positions with ``True``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.softmax import NEG_INF, logsumexp, softmax


def _scores(
    q: np.ndarray,
    k: np.ndarray,
    scale: float,
    mask: np.ndarray | None,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    s = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    if bias is not None:
        s = s + bias  # additive position bias (e.g. ALiBi), pre-mask
    if mask is not None:
        s = np.where(mask, s, NEG_INF)
    return s


def attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    bias: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense softmax attention.

    Returns ``(o, lse)`` where ``o = softmax(q k^T * scale + bias) v`` and
    ``lse`` is the per-row logsumexp of the (biased, masked, scaled)
    scores.  Fully masked rows yield ``o = 0`` and ``lse = -inf``.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    s = _scores(q, k, scale, mask, bias)
    lse = logsumexp(s, axis=-1)
    p = softmax(s, axis=-1)
    o = np.matmul(p, v)
    return o, lse


def attention_reference_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    o: np.ndarray,
    lse: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    bias: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense attention backward using the FlashAttention identity.

    ``dS = P * (dP - D)`` with ``D = rowsum(dO * O)``, which is the same
    identity BurstAttention's communication rewrite (Eq. 7–8 of the paper)
    relies on.  A fixed additive ``bias`` (ALiBi) only shifts the
    recomputed scores; the gradient formulas are unchanged.
    Returns ``(dq, dk, dv)``.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    s = _scores(q, k, scale, mask, bias)
    lse_e = lse[..., None]
    lse_safe = np.where(np.isneginf(lse_e), 0.0, lse_e)
    p = np.exp(np.where(np.isneginf(lse_e), NEG_INF, s - lse_safe))
    p = np.where(np.isneginf(lse_e), 0.0, p)
    if mask is not None:
        p = np.where(mask, p, 0.0)

    dv = np.matmul(np.swapaxes(p, -1, -2), do)
    dp = np.matmul(do, np.swapaxes(v, -1, -2))
    d = np.sum(do * o, axis=-1, keepdims=True)  # D_i = rowsum(dO ∘ O)
    ds = p * (dp - d)
    dq = np.matmul(ds, k) * scale
    dk = np.matmul(np.swapaxes(ds, -1, -2), q) * scale
    return dq, dk, dv
