"""Single-device "kernels": exact numpy implementations of the primitives
a GPU would run (FlashAttention-style blockwise attention, online softmax,
fused LM-head tiles).

These are the building blocks the distributed layers compose.  Everything is
float64 and bit-exactly testable against dense references, which is what
lets the distributed rewrites (Alg. 1, Alg. 2, Alg. 3 of the paper) be
verified to numerical precision.
"""

from repro.kernels.softmax import (
    logsumexp,
    merge_lse,
    merge_states,
    softmax,
)
from repro.kernels.attention_ref import (
    attention_reference,
    attention_reference_backward,
)
from repro.kernels.flash import (
    flash_attention_forward,
    flash_attention_backward,
    flash_backward_tiles,
)
from repro.kernels.tileplan import (
    EMPTY,
    FULL,
    PARTIAL,
    BiasTileCache,
    KernelWorkspace,
    TileCounters,
    TilePlan,
    counters,
    planning_enabled,
    record_shard_skip,
    use_planning,
)
from repro.kernels.mlp import (
    MIN_FULL_GEMM_OUT,
    MIN_GEMM_ROWS,
    chunk_bounds,
    swiglu_dense_backward,
    swiglu_dense_forward,
    swiglu_mlp_backward,
    swiglu_mlp_forward,
    transposed_weights,
    uses_chunking,
)
from repro.kernels.backend import (
    KernelBackend,
    ReferenceBackend,
    ThreadedBackend,
    available_backends,
    current_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "logsumexp",
    "merge_lse",
    "merge_states",
    "softmax",
    "attention_reference",
    "attention_reference_backward",
    "flash_attention_forward",
    "flash_attention_backward",
    "flash_backward_tiles",
    "EMPTY",
    "FULL",
    "PARTIAL",
    "BiasTileCache",
    "KernelWorkspace",
    "TileCounters",
    "TilePlan",
    "counters",
    "planning_enabled",
    "record_shard_skip",
    "use_planning",
    "MIN_FULL_GEMM_OUT",
    "MIN_GEMM_ROWS",
    "chunk_bounds",
    "swiglu_dense_backward",
    "swiglu_dense_forward",
    "swiglu_mlp_backward",
    "swiglu_mlp_forward",
    "transposed_weights",
    "uses_chunking",
    "KernelBackend",
    "ReferenceBackend",
    "ThreadedBackend",
    "available_backends",
    "current_backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]
