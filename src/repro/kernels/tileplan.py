"""Mask-aware tile planning for the flash kernels.

The distributed layer already skips whole shard-pair tiles through
:meth:`repro.masks.MaskPattern.tile_state`, but inside a shard pair the
flash kernels used to compute every ``(block_q x block_k)`` sub-tile and
resolve partial masks as dense ``Sq x Sk`` arrays — ``O(N^2)`` memory and
roughly twice the necessary work under causal masking.  This module pushes
the mask structure *into* the kernel:

* :class:`TilePlan` classifies every ``(q-block, k-block)`` sub-tile as
  ``empty`` / ``full`` / ``partial`` directly from a
  :class:`~repro.masks.MaskPattern` and the global token-index arrays of
  the two shards, reusing the pattern's ``tile_state`` fast path.  The
  dense boolean mask is never materialised; boolean tiles are built lazily
  and only for ``partial`` sub-tiles.
* :class:`KernelWorkspace` preallocates the per-tile scratch buffers
  (score, probability, grad tiles) so a ring pass reuses one set of
  buffers across all of its kernel invocations instead of allocating per
  sub-tile.
* :class:`BiasTileCache` memoises additive-bias tiles (ALiBi) across ring
  steps: the bias depends only on relative offsets, so contiguous tiles
  with the same ``q0 - k0`` offset and shape share one tile no matter
  which shard pair asked for it.
* :data:`counters` tallies computed/skipped sub-tiles and (query, key)
  pairs — the machine-readable numbers the bench harness
  (``python -m repro.perf.bench``) and the tile-count invariants in
  :mod:`repro.testing.invariants` consume.

The plan-driven kernels are numerically identical to the dense-mask
kernels (full tiles drop the ``where`` that a dense all-``True`` tile
would no-op through; empty tiles contribute nothing either way), which the
golden fixtures and the property tests assert.  ``use_planning(False)``
restores the legacy dense-tile resolution — the bench harness times it as
the baseline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.masks import MaskPattern
from repro.obs.metrics import MetricsRegistry, get_registry

#: Sub-tile classification codes (stored in ``TilePlan.states`` as int8).
EMPTY, PARTIAL, FULL = 0, 1, 2

_STATE_CODE = {"empty": EMPTY, "partial": PARTIAL, "full": FULL}


# --- execution accounting -----------------------------------------------------


#: Counter fields, in snapshot order.  Each is backed by a registry
#: counter named ``tileplan.<field>`` so one registry snapshot covers them.
_TILE_FIELDS = (
    "computed_full",
    "computed_partial",
    "skipped_empty",
    "computed_pairs",
    "skipped_pairs",
    "bias_tiles_built",
    "bias_tiles_reused",
)


class TileCounters:
    """Global tally of sub-tile work the plan-driven kernels performed.

    ``computed_pairs``/``skipped_pairs`` count (query, key) *positions*
    inside computed/skipped sub-tiles — the unit the FLOP invariants tie
    to the :mod:`repro.perf.cost` closed forms.

    The fields are properties over :class:`repro.obs.metrics.Counter`
    objects (``tileplan.*`` in the given registry — the process-global
    one for the module singleton), so ``counters.computed_full += n``
    keeps working verbatim while ``repro.obs`` sees the same numbers.

    Thread safety: the kernels account their work through :meth:`add`,
    which writes straight to the backing counter on the main thread but
    into a *thread-local* buffer inside a :meth:`deferred` scope.  The
    threaded backend wraps each worker task in ``deferred()``, so
    concurrent sub-tile tallies never race on ``Counter._value``; the
    buffered deltas are merged under a lock when the scope exits.  The
    ``counters.field += n`` property idiom remains main-thread-only.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = MetricsRegistry()
        self._backing = {
            name: registry.counter(f"tileplan.{name}") for name in _TILE_FIELDS
        }
        self._merge_lock = threading.Lock()
        self._local = threading.local()

    def add(self, name: str, n: int = 1) -> None:
        """Account ``n`` into field ``name`` (thread-safe inside
        ``deferred()`` scopes; direct counter write otherwise)."""
        buf = getattr(self._local, "buf", None)
        if buf is not None:
            buf[name] += n
        else:
            self._backing[name]._value += n

    @contextmanager
    def deferred(self):
        """Buffer this thread's increments; merge under a lock on exit.

        Worker threads of the threaded kernel backend run their whole
        task inside one ``deferred()`` scope — per-thread accumulation
        merged on scope exit, so totals are exact regardless of how the
        q-blocks were scheduled.
        """
        prev = getattr(self._local, "buf", None)
        buf = dict.fromkeys(_TILE_FIELDS, 0)
        self._local.buf = buf
        try:
            yield
        finally:
            self._local.buf = prev
            with self._merge_lock:
                for name, delta in buf.items():
                    if delta:
                        self._backing[name]._value += delta

    @contextmanager
    def backend_scope(self, backend: str):
        """Attribute the tile work of the enclosed kernel invocation to
        ``backend`` as labeled ``tileplan.*`` counter values.

        Reads the unlabeled totals before/after and adds the delta under
        a ``backend=<name>`` label, so ``repro.obs`` can break tile
        counts down per backend while the unlabeled fast path stays a
        single attribute add.  Only the invoking (main) thread may hold
        a backend scope; worker threads merge into the totals before the
        invocation returns, so their work is attributed correctly.
        """
        before = [self._backing[f]._value for f in _TILE_FIELDS]
        try:
            yield
        finally:
            for fname, prev in zip(_TILE_FIELDS, before):
                delta = self._backing[fname]._value - prev
                if delta:
                    self._backing[fname].inc(delta, backend=backend)

    @property
    def computed(self) -> int:
        return self.computed_full + self.computed_partial

    @property
    def total(self) -> int:
        return self.computed + self.skipped_empty

    @property
    def skip_fraction(self) -> float:
        return self.skipped_empty / self.total if self.total else 0.0

    def reset(self) -> None:
        for metric in self._backing.values():
            metric.reset()

    def snapshot(self) -> dict[str, int | float]:
        out: dict[str, int | float] = {
            name: getattr(self, name) for name in _TILE_FIELDS
        }
        out["tiles_computed"] = self.computed
        out["tiles_skipped"] = self.skipped_empty
        out["skip_fraction"] = self.skip_fraction
        return out


def _tile_counter_property(fname: str) -> property:
    def _get(self) -> int:
        return int(self._backing[fname]._value)

    def _set(self, value: int) -> None:
        self._backing[fname]._value = float(value)

    return property(_get, _set)


for _fname in _TILE_FIELDS:
    setattr(TileCounters, _fname, _tile_counter_property(_fname))
del _fname


#: Module-wide counters; reset before a measured region, snapshot after.
#: Backed by the global metrics registry (``tileplan.*`` counters).
counters = TileCounters(registry=get_registry())


# --- planning on/off switch ---------------------------------------------------

_PLANNING_ENABLED = True


def planning_enabled() -> bool:
    """Whether call sites should build tile plans (default) or fall back
    to legacy dense shard-mask resolution."""
    return _PLANNING_ENABLED


@contextmanager
def use_planning(enabled: bool = True):
    """Temporarily force tile planning on or off.

    ``use_planning(False)`` is the dense-mask baseline the bench harness
    measures speedups against; tests use it to assert the two paths agree.
    """
    global _PLANNING_ENABLED
    previous = _PLANNING_ENABLED
    _PLANNING_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _PLANNING_ENABLED = previous


# --- bias tile cache ----------------------------------------------------------


def _is_contiguous(idx: np.ndarray) -> bool:
    if len(idx) == 0:
        return False
    if int(idx[-1]) - int(idx[0]) != len(idx) - 1:
        return False
    return len(idx) == 1 or bool((np.diff(idx) == 1).all())


class BiasTileCache:
    """Memoises additive-bias tiles across ring steps.

    A pattern opts in through :meth:`~repro.masks.MaskPattern.bias_cache_key`
    (ALiBi keys tiles by ``(q0 - k0, len_q, len_k)`` — its bias depends
    only on relative offsets).  Patterns returning ``None`` keys are
    recomputed every time, so the cache is always sound.
    """

    def __init__(self):
        self._tiles: dict = {}
        # Serialises concurrent lookups from threaded-backend workers so
        # built/reused tallies stay deterministic (first miss builds,
        # everyone else reuses) and the dict is never mutated mid-read.
        self._lock = threading.Lock()

    def get(
        self, mask: MaskPattern, q_idx: np.ndarray, k_idx: np.ndarray
    ) -> np.ndarray | None:
        key = mask.bias_cache_key(q_idx, k_idx)
        if key is None:
            counters.add("bias_tiles_built")
            return mask.bias_block(q_idx, k_idx)
        with self._lock:
            tile = self._tiles.get(key)
            if tile is None:
                tile = mask.bias_block(q_idx, k_idx)
                self._tiles[key] = tile
                counters.add("bias_tiles_built")
            else:
                counters.add("bias_tiles_reused")
        return tile

    def __len__(self) -> int:
        return len(self._tiles)


# --- the plan -----------------------------------------------------------------


def _block_bounds(n: int, block: int) -> list[tuple[int, int]]:
    return [(start, min(start + block, n)) for start in range(0, n, block)]


@dataclass
class TilePlan:
    """Sub-tile classification of one (query-shard, key-shard) pair.

    Built once per shard pair per pass; consumed by
    :func:`repro.kernels.flash_attention_forward` /
    :func:`~repro.kernels.flash_attention_backward`, which skip ``EMPTY``
    sub-tiles, run ``FULL`` sub-tiles without any mask handling, and
    materialise a boolean tile only for ``PARTIAL`` sub-tiles.
    """

    mask: MaskPattern | None
    q_idx: np.ndarray
    k_idx: np.ndarray
    block_q: int
    block_k: int
    states: np.ndarray  # (n_q_blocks, n_k_blocks) int8 of EMPTY/PARTIAL/FULL
    has_bias: bool = False
    bias_cache: BiasTileCache | None = None
    head_slice: slice | None = None
    _q_bounds: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _k_bounds: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _mask_tiles: dict = field(default_factory=dict, repr=False)

    @classmethod
    def build(
        cls,
        mask: MaskPattern | None,
        q_idx: np.ndarray,
        k_idx: np.ndarray,
        block_q: int,
        block_k: int,
        *,
        bias_cache: BiasTileCache | None = None,
        include_bias: bool = True,
        assume_full: bool = False,
        head_slice: slice | None = None,
    ) -> "TilePlan":
        """Classify every sub-tile from the pattern's ``tile_state``.

        ``assume_full`` short-circuits classification when the caller
        already knows the whole shard pair is ``full`` (the shard-level
        fast path); ``include_bias=False`` reproduces call sites that
        never forwarded the pattern's bias (TP, selective, the engine's
        local fallback).  The dense mask is never materialised.
        """
        q_idx = np.asarray(q_idx)
        k_idx = np.asarray(k_idx)
        q_bounds = _block_bounds(len(q_idx), block_q)
        k_bounds = _block_bounds(len(k_idx), block_k)
        states = np.full((len(q_bounds), len(k_bounds)), FULL, dtype=np.int8)
        if mask is not None and not assume_full:
            for i, (q0, q1) in enumerate(q_bounds):
                q_sub = q_idx[q0:q1]
                for j, (k0, k1) in enumerate(k_bounds):
                    states[i, j] = _STATE_CODE[
                        mask.tile_state(q_sub, k_idx[k0:k1])
                    ]
        has_bias = (
            include_bias
            and mask is not None
            and mask.bias_block(q_idx[:1], k_idx[:1]) is not None
        )
        return cls(
            mask=mask, q_idx=q_idx, k_idx=k_idx,
            block_q=block_q, block_k=block_k, states=states,
            has_bias=has_bias,
            bias_cache=bias_cache if has_bias else None,
            head_slice=head_slice,
            _q_bounds=q_bounds, _k_bounds=k_bounds,
        )

    # -- geometry -------------------------------------------------------------

    @property
    def n_q_blocks(self) -> int:
        return len(self._q_bounds)

    @property
    def n_k_blocks(self) -> int:
        return len(self._k_bounds)

    def check_geometry(self, sq: int, sk: int) -> None:
        if len(self.q_idx) != sq or len(self.k_idx) != sk:
            raise ValueError(
                f"plan covers ({len(self.q_idx)}, {len(self.k_idx)}) tokens "
                f"but the kernel got ({sq}, {sk})"
            )

    def q_range(self, i: int) -> tuple[int, int]:
        return self._q_bounds[i]

    def k_range(self, j: int) -> tuple[int, int]:
        return self._k_bounds[j]

    # -- per-tile resolution --------------------------------------------------

    def state(self, i: int, j: int) -> int:
        return int(self.states[i, j])

    def mask_tile(self, i: int, j: int) -> np.ndarray:
        """Boolean tile for a ``PARTIAL`` sub-tile (the only kind that
        ever materialises one).  Memoised so the backward pass (and any
        repeated traversal) reuses the forward's tiles instead of
        re-evaluating the pattern.  Safe under concurrent workers: a
        duplicated miss builds the same deterministic tile twice and the
        last dict write wins."""
        tile = self._mask_tiles.get((i, j))
        if tile is None:
            q0, q1 = self._q_bounds[i]
            k0, k1 = self._k_bounds[j]
            tile = self.mask.block(self.q_idx[q0:q1], self.k_idx[k0:k1])
            self._mask_tiles[(i, j)] = tile
        return tile

    def bias_tile(self, i: int, j: int) -> np.ndarray | None:
        if not self.has_bias:
            return None
        q0, q1 = self._q_bounds[i]
        k0, k1 = self._k_bounds[j]
        q_sub, k_sub = self.q_idx[q0:q1], self.k_idx[k0:k1]
        if self.bias_cache is not None:
            tile = self.bias_cache.get(self.mask, q_sub, k_sub)
        else:
            counters.add("bias_tiles_built")
            tile = self.mask.bias_block(q_sub, k_sub)
        if tile is not None and self.head_slice is not None:
            tile = tile[self.head_slice]
        return tile

    def with_head_slice(self, head_slice: slice) -> "TilePlan":
        """Shallow copy selecting a head range of the bias (Ulysses ranks
        share one plan and bias cache but see different head groups)."""
        return TilePlan(
            mask=self.mask, q_idx=self.q_idx, k_idx=self.k_idx,
            block_q=self.block_q, block_k=self.block_k, states=self.states,
            has_bias=self.has_bias, bias_cache=self.bias_cache,
            head_slice=head_slice,
            _q_bounds=self._q_bounds, _k_bounds=self._k_bounds,
            _mask_tiles=self._mask_tiles,
        )

    # -- accounting -----------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return int(self.states.size)

    @property
    def num_empty(self) -> int:
        return int((self.states == EMPTY).sum())

    @property
    def num_full(self) -> int:
        return int((self.states == FULL).sum())

    @property
    def num_partial(self) -> int:
        return int((self.states == PARTIAL).sum())

    @property
    def skip_fraction(self) -> float:
        return self.num_empty / self.num_tiles if self.num_tiles else 0.0

    def pair_counts(self) -> tuple[int, int]:
        """``(computed_pairs, skipped_pairs)`` summed over sub-tiles."""
        computed = skipped = 0
        for i, (q0, q1) in enumerate(self._q_bounds):
            for j, (k0, k1) in enumerate(self._k_bounds):
                area = (q1 - q0) * (k1 - k0)
                if self.states[i, j] == EMPTY:
                    skipped += area
                else:
                    computed += area
        return computed, skipped


def record_shard_skip(n_q: int, n_k: int, block_q: int, block_k: int) -> None:
    """Account a whole shard pair skipped at the shard-level fast path as
    if its plan had classified every sub-tile empty."""
    n_qb = -(-n_q // block_q)
    n_kb = -(-n_k // block_k)
    counters.add("skipped_empty", n_qb * n_kb)
    counters.add("skipped_pairs", n_q * n_k)


# --- reusable kernel scratch --------------------------------------------------


class KernelWorkspace:
    """Preallocated scratch buffers keyed by ``(name, shape, dtype)``.

    One workspace is created per distributed pass (or per autograd node)
    and handed to every kernel invocation, so the score/probability/grad
    tiles are allocated once and reused across sub-tiles, ring steps and
    ranks instead of churning ``O(tiles)`` temporaries.  All writes fully
    overwrite a buffer before it is read, so reuse never leaks state.
    """

    def __init__(self):
        self._bufs: dict = {}

    def buf(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        key = (name, tuple(shape), np.dtype(dtype).str)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
            from repro.obs.mem import transient_alloc

            # Account the miss on the transient watermark series; cached
            # buffers live for the workspace's lifetime, so the handle is
            # intentionally never freed (reset_transients() drops it).
            transient_alloc(buf.nbytes, site=f"workspace.{name}")
        return buf

    def matmul(self, a: np.ndarray, b: np.ndarray, name: str) -> np.ndarray:
        """``a @ b`` into a reused buffer of the broadcast result shape."""
        shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
            a.shape[-2], b.shape[-1]
        )
        return np.matmul(a, b, out=self.buf(name, shape))

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())

    def __len__(self) -> int:
        return len(self._bufs)
