"""Numerically safe softmax / logsumexp and the online-softmax merge rule.

The merge rule (Milakov & Gimelshein, 2018) is the algebraic heart of both
FlashAttention and ring attention: two partial attention states
``(O_a, lse_a)`` and ``(O_b, lse_b)`` computed over disjoint key sets merge
into the state over their union via

    lse = log(exp(lse_a) + exp(lse_b))
    O   = exp(lse_a - lse) * O_a + exp(lse_b - lse) * O_b

Fully-masked rows are represented by ``lse = -inf`` and ``O = 0``; the merge
handles them without NaNs, so sparse patterns where a block contributes
nothing to some query rows compose safely.
"""

from __future__ import annotations

import numpy as np

NEG_INF = -np.inf


def logsumexp(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Safe ``log(sum(exp(scores)))`` along ``axis``.

    Rows that are entirely ``-inf`` (fully masked) produce ``-inf`` rather
    than NaN.
    """
    m = np.max(scores, axis=axis, keepdims=True)
    # Rows of all -inf: shift by 0 instead of -inf to avoid inf - inf.
    m_safe = np.where(np.isneginf(m), 0.0, m)
    s = np.sum(np.exp(scores - m_safe), axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):  # fully-masked rows: log(0) -> -inf
        out = m_safe + np.log(s)
    out = np.where(np.isneginf(m), NEG_INF, out)
    return np.squeeze(out, axis=axis)


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Safe softmax; fully-masked rows produce all-zero probabilities."""
    lse = logsumexp(scores, axis=axis)
    lse_e = np.expand_dims(lse, axis)
    lse_safe = np.where(np.isneginf(lse_e), 0.0, lse_e)
    p = np.exp(scores - lse_safe)
    return np.where(np.isneginf(lse_e), 0.0, p)


def merge_lse(lse_a: np.ndarray, lse_b: np.ndarray) -> np.ndarray:
    """``log(exp(a) + exp(b))`` elementwise, tolerating ``-inf`` inputs."""
    return np.logaddexp(lse_a, lse_b)


def _rescale(lse_part: np.ndarray, lse_total: np.ndarray) -> np.ndarray:
    """``exp(lse_part - lse_total)`` with 0 where the part is empty."""
    total_safe = np.where(np.isneginf(lse_total), 0.0, lse_total)
    w = np.exp(np.where(np.isneginf(lse_part), NEG_INF, lse_part - total_safe))
    return np.where(np.isneginf(lse_part), 0.0, w)


def merge_states(
    o_a: np.ndarray,
    lse_a: np.ndarray,
    o_b: np.ndarray,
    lse_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two partial attention states over disjoint key sets.

    ``o_*`` has shape ``(..., S, D)`` and ``lse_*`` shape ``(..., S)``.
    Returns the merged ``(o, lse)``.
    """
    lse = merge_lse(lse_a, lse_b)
    w_a = _rescale(lse_a, lse)[..., None]
    w_b = _rescale(lse_b, lse)[..., None]
    o = w_a * o_a + w_b * o_b
    return o, lse


def empty_state(shape_o: tuple[int, ...], dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """The identity element of :func:`merge_states`: zero output, -inf lse."""
    o = np.zeros(shape_o, dtype=dtype)
    lse = np.full(shape_o[:-1], NEG_INF, dtype=dtype)
    return o, lse
