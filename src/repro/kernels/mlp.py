"""Blockwise SwiGLU MLP kernels (BPT-style sequence chunking).

Blockwise Parallel Transformer (PAPERS.md, arXiv 2305.19370) observes that
the FFN — not just attention — can be computed in sequence chunks, so the
``(S, hidden)`` intermediates (gate, sigmoid, silu product, up, their
elementwise product) never materialise at full length.  This module is the
single-device kernel for that: :func:`swiglu_mlp_forward` /
:func:`swiglu_mlp_backward` compute the LLaMA FFN

    y = (silu(x @ Wg^T) * (x @ Wu^T)) @ Wd^T

chunked over the sequence axis with ``chunk_size`` rows per chunk
(``mlp_chunk_size`` in the module/config layer), **bitwise-identical** to
the dense composed path in :mod:`repro.nn.ops` — forward values *and* all
four gradients.  The backward rematerialises the per-chunk intermediates
from ``x`` (the only saved activation) instead of keeping them alive from
the forward, which is where the memory saving comes from; weight gradients
are still produced by the same three full-size GEMMs as the dense path so
their K-axis accumulation order (and hence every bit) matches.

Bitwise identity across chunk sizes relies on two empirical properties of
the BLAS backing ``np.matmul`` (pinned by probes in
``tests/test_blockwise_mlp.py``):

1. *Row stability* — with a **C-contiguous** right operand, the rows of a
   row-chunked GEMM equal the corresponding rows of the full GEMM for any
   chunk of >= 2 rows at any offset.  :func:`_rows_matmul` zero-pads any
   chunk shorter than :data:`MIN_GEMM_ROWS` rows up to that floor (zero
   rows cost one tiny GEMM row and change no result bits), which also
   covers the unstable 1-row case.

2. *View/copy agreement* — the dense reference multiplies by
   **transposed views** (``x @ swapaxes(w, 0, 1)``), and a transposed
   view takes a special small-output kernel with a different accumulation
   order whenever the full product has <= ~1200 elements.  Above that,
   the view and a contiguous copy of it produce identical bits (both pack
   the operand into the same panels).  The chunked path therefore
   multiplies by contiguous copies of the transposed weights — row-stable
   per (1) — and only engages when every full product is safely in the
   large-output regime (:data:`MIN_FULL_GEMM_OUT`).

``chunk_size >= S`` degenerates to the literal dense code path, as do
sequences shorter than :data:`MIN_GEMM_ROWS` and products small enough to
hit the small-output kernel.
"""

from __future__ import annotations

import numpy as np

#: Minimum GEMM row count for bitwise row-stability: chunks shorter than
#: this are zero-padded up to it (see module docstring).
MIN_GEMM_ROWS = 16

#: Minimum full-product element count (``S * hidden`` and ``S * dim``) for
#: the chunked path: below this the dense reference's transposed-view GEMMs
#: take a small-output kernel whose bits chunking cannot reproduce.  The
#: measured boundary is 1200 elements; 2048 leaves margin.
MIN_FULL_GEMM_OUT = 2048


def _rows_matmul(a_rows: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a_rows @ b``, bitwise-equal to the same rows of a full product."""
    m = a_rows.shape[0]
    if m >= MIN_GEMM_ROWS:
        return np.matmul(a_rows, b)
    pad = np.zeros((MIN_GEMM_ROWS, a_rows.shape[1]), dtype=a_rows.dtype)
    pad[:m] = a_rows
    return np.matmul(pad, b)[:m]


def chunk_bounds(seq_len: int, chunk_size: int) -> list[tuple[int, int]]:
    """Row ranges ``[(c0, c1), ...]`` covering the sequence axis."""
    return [
        (c0, min(c0 + chunk_size, seq_len))
        for c0 in range(0, seq_len, chunk_size)
    ]


def uses_chunking(
    x: np.ndarray,
    wg: np.ndarray,
    wd: np.ndarray,
    chunk_size: int | None,
) -> bool:
    """Whether ``(x, chunk_size)`` takes the chunked path.

    ``chunk_size >= S`` degenerates to dense by construction; ``S`` below
    :data:`MIN_GEMM_ROWS` must stay dense because the dense GEMM itself
    runs the small-M kernel whose bits chunking cannot reproduce, and any
    full product below :data:`MIN_FULL_GEMM_OUT` elements must stay dense
    because the dense transposed-view GEMM takes the small-output kernel.
    """
    if (
        chunk_size is None
        or x.ndim != 2
        or chunk_size < 1
        or x.shape[0] < MIN_GEMM_ROWS
        or chunk_size >= x.shape[0]
    ):
        return False
    s = x.shape[0]
    hidden, dim = wg.shape[0], wd.shape[0]
    return (
        s * hidden >= MIN_FULL_GEMM_OUT and s * dim >= MIN_FULL_GEMM_OUT
    )


# --- dense reference (the exact op sequence of the composed autograd path) ----


def swiglu_dense_forward(
    x: np.ndarray, wg: np.ndarray, wu: np.ndarray, wd: np.ndarray
) -> np.ndarray:
    """Dense SwiGLU forward, op-for-op the composed ``repro.nn.ops`` path."""
    g = np.matmul(x, np.swapaxes(wg, 0, 1))
    sig = 1.0 / (1.0 + np.exp(-g))
    act = g * sig
    u = np.matmul(x, np.swapaxes(wu, 0, 1))
    h = act * u
    return np.matmul(h, np.swapaxes(wd, 0, 1))


def swiglu_dense_backward(
    x: np.ndarray,
    wg: np.ndarray,
    wu: np.ndarray,
    wd: np.ndarray,
    dy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dense SwiGLU backward: ``(dx, dwg, dwu, dwd)``.

    Mirrors the composed graph's backward expression by expression
    (``MatMul``/``Mul``/``SiLU`` in :mod:`repro.nn.ops`), so every
    gradient is bitwise what the autograd engine produces.
    """
    g = np.matmul(x, np.swapaxes(wg, 0, 1))
    sig = 1.0 / (1.0 + np.exp(-g))
    act = g * sig
    u = np.matmul(x, np.swapaxes(wu, 0, 1))
    h = act * u
    dh = np.matmul(dy, wd)
    dwd = np.swapaxes(np.matmul(np.swapaxes(h, -1, -2), dy), 0, 1)
    dact = dh * u
    du = dh * act
    dg = dact * (sig * (1.0 + g * (1.0 - sig)))
    dx = np.matmul(dg, wg) + np.matmul(du, wu)
    dwg = np.swapaxes(np.matmul(np.swapaxes(x, -1, -2), dg), 0, 1)
    dwu = np.swapaxes(np.matmul(np.swapaxes(x, -1, -2), du), 0, 1)
    return dx, dwg, dwu, dwd


# --- chunked kernels ----------------------------------------------------------


def transposed_weights(
    wg: np.ndarray, wu: np.ndarray, wd: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contiguous copies of ``(wg^T, wu^T, wd^T)`` for the chunked path.

    Row-chunked GEMMs against a transposed *view* are not bitwise
    row-stable (the small-output kernel); against these copies they are,
    and in the large-output regime the copies produce the same bits as
    the views the dense path uses (see module docstring).
    """
    return (
        np.ascontiguousarray(np.swapaxes(wg, 0, 1)),
        np.ascontiguousarray(np.swapaxes(wu, 0, 1)),
        np.ascontiguousarray(np.swapaxes(wd, 0, 1)),
    )


def forward_chunk(
    x: np.ndarray,
    wg_t: np.ndarray,
    wu_t: np.ndarray,
    wd_t: np.ndarray,
    c0: int,
    c1: int,
    y: np.ndarray,
) -> None:
    """One forward chunk: rows ``[c0, c1)`` of ``y``, written in place.

    ``wg_t``/``wu_t``/``wd_t`` are the contiguous transposed weights from
    :func:`transposed_weights`.  Touches only its own output rows, so
    chunks may run on any thread in any order (the threaded backend fans
    them out).
    """
    xc = x[c0:c1]
    g = _rows_matmul(xc, wg_t)
    sig = 1.0 / (1.0 + np.exp(-g))
    act = g * sig
    u = _rows_matmul(xc, wu_t)
    h = act * u
    y[c0:c1] = _rows_matmul(h, wd_t)


def backward_chunk(
    x: np.ndarray,
    wg: np.ndarray,
    wu: np.ndarray,
    wd: np.ndarray,
    wg_t: np.ndarray,
    wu_t: np.ndarray,
    dy: np.ndarray,
    c0: int,
    c1: int,
    h_full: np.ndarray,
    dg_full: np.ndarray,
    du_full: np.ndarray,
    dx: np.ndarray,
) -> None:
    """One backward chunk: recompute intermediates for rows ``[c0, c1)``
    and fill those rows of ``h``/``dg``/``du``/``dx`` in place.

    The data-gradient GEMMs (``dy @ wd``, ``dg @ wg``, ``du @ wu``)
    multiply by the original C-contiguous weights exactly as the dense
    path does; only the recomputed ``g``/``u`` need the transposed
    copies.  The full ``h``/``dg``/``du`` buffers exist only transiently
    inside :func:`swiglu_mlp_backward` so the weight gradients can be
    formed by the same single GEMMs as the dense path (K-chunked
    accumulation would change their bits); the forward keeps nothing but
    ``x`` alive.
    """
    xc = x[c0:c1]
    dyc = dy[c0:c1]
    g = _rows_matmul(xc, wg_t)
    sig = 1.0 / (1.0 + np.exp(-g))
    act = g * sig
    u = _rows_matmul(xc, wu_t)
    h_full[c0:c1] = act * u
    dh = _rows_matmul(dyc, wd)
    dact = dh * u
    du_c = dh * act
    du_full[c0:c1] = du_c
    dg_c = dact * (sig * (1.0 + g * (1.0 - sig)))
    dg_full[c0:c1] = dg_c
    dx[c0:c1] = _rows_matmul(dg_c, wg) + _rows_matmul(du_c, wu)


def finalize_weight_grads(
    x: np.ndarray,
    dy: np.ndarray,
    h_full: np.ndarray,
    dg_full: np.ndarray,
    du_full: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(dwg, dwu, dwd)`` from the assembled full intermediates — the
    same three GEMMs (and hence the same bits) as the dense path."""
    dwd = np.swapaxes(np.matmul(np.swapaxes(h_full, -1, -2), dy), 0, 1)
    dwg = np.swapaxes(np.matmul(np.swapaxes(x, -1, -2), dg_full), 0, 1)
    dwu = np.swapaxes(np.matmul(np.swapaxes(x, -1, -2), du_full), 0, 1)
    return dwg, dwu, dwd


def swiglu_mlp_forward(
    x: np.ndarray,
    wg: np.ndarray,
    wu: np.ndarray,
    wd: np.ndarray,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Blockwise SwiGLU forward; dense when chunking doesn't apply."""
    if not uses_chunking(x, wg, wd, chunk_size):
        return swiglu_dense_forward(x, wg, wu, wd)
    from repro.obs.mem import transient_scope

    hidden = wg.shape[0]
    wg_t, wu_t, wd_t = transposed_weights(wg, wu, wd)
    y = np.empty((x.shape[0], wd.shape[0]), dtype=np.float64)
    for c0, c1 in chunk_bounds(x.shape[0], chunk_size):
        # g, sig, act, u, h — the five (chunk, hidden) intermediates.
        with transient_scope((c1 - c0) * hidden * 5 * 8,
                             site="mlp.chunked_fwd.chunk"):
            forward_chunk(x, wg_t, wu_t, wd_t, c0, c1, y)
    return y


def swiglu_mlp_backward(
    x: np.ndarray,
    wg: np.ndarray,
    wu: np.ndarray,
    wd: np.ndarray,
    dy: np.ndarray,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Blockwise SwiGLU backward: ``(dx, dwg, dwu, dwd)``."""
    if not uses_chunking(x, wg, wd, chunk_size):
        return swiglu_dense_backward(x, wg, wu, wd, dy)
    from repro.obs.mem import transient_scope

    s, hidden = x.shape[0], wg.shape[0]
    wg_t, wu_t, _ = transposed_weights(wg, wu, wd)
    # Accounted exactly as repro.perf.memory.swiglu_chunked_transient_bytes
    # models it: the three (S, hidden) assembly buffers for the whole
    # call, plus eight (chunk, hidden) intermediates per chunk.
    with transient_scope(3 * s * hidden * 8, site="mlp.chunked_bwd.full"):
        h_full = np.empty((s, hidden), dtype=np.float64)
        dg_full = np.empty((s, hidden), dtype=np.float64)
        du_full = np.empty((s, hidden), dtype=np.float64)
        dx = np.empty_like(x)
        for c0, c1 in chunk_bounds(s, chunk_size):
            with transient_scope((c1 - c0) * hidden * 8 * 8,
                                 site="mlp.chunked_bwd.chunk"):
                backward_chunk(
                    x, wg, wu, wd, wg_t, wu_t, dy, c0, c1,
                    h_full, dg_full, du_full, dx,
                )
        dwg, dwu, dwd = finalize_weight_grads(x, dy, h_full, dg_full, du_full)
    return dx, dwg, dwu, dwd
