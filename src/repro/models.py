"""Model-scale descriptors for the paper's evaluation models.

The experiments use LLaMA-architecture Transformers at two scales:

* **7B** — 32 layers, 32 heads, 4096 hidden, 32K vocab;
* **14B** — 40 layers, 40 heads, 5120 hidden, 120K vocab.

These descriptors drive the analytic FLOPs and memory models; they are
*not* instantiated as numpy weights (the numeric engine uses tiny configs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description sufficient for FLOPs/memory accounting."""

    name: str
    n_layers: int
    n_heads: int
    hidden: int
    vocab: int
    ffn_hidden: int | None = None  # defaults to LLaMA's 8/3 * hidden
    n_kv_heads: int | None = None  # GQA; defaults to MHA

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def kv_ratio(self) -> float:
        """KV width relative to query width (1.0 for MHA)."""
        return self.kv_heads / self.n_heads

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def ffn(self) -> int:
        if self.ffn_hidden is not None:
            return self.ffn_hidden
        # LLaMA SwiGLU sizing: 2/3 * 4h rounded to a multiple of 256.
        raw = int(8 * self.hidden / 3)
        return ((raw + 255) // 256) * 256

    @property
    def n_params(self) -> int:
        """Parameter count: embeddings + per-layer attention/FFN/norms + head."""
        kv_dim = int(self.hidden * self.kv_ratio)
        per_layer = (
            2 * self.hidden * self.hidden      # Wq, Wo
            + 2 * self.hidden * kv_dim         # Wk, Wv (GQA-narrow)
            + 3 * self.hidden * self.ffn       # gate, up, down
            + 2 * self.hidden                  # two RMSNorms
        )
        embeddings = self.vocab * self.hidden
        head = self.vocab * self.hidden
        return self.n_layers * per_layer + embeddings + head + self.hidden

    def flops_per_token(self, seq_len: int, causal: bool = True) -> float:
        """Training FLOPs per token (fwd + bwd) at sequence length ``seq_len``.

        Uses the standard ``6 * params`` for matmul parameters plus the
        attention term ``12 * hidden * seq_len * causal_factor`` per token
        (QK^T and PV, forward 2 matmuls + backward 4, halved for causal).
        """
        kv_dim = int(self.hidden * self.kv_ratio)
        dense_params = self.n_layers * (
            2 * self.hidden * self.hidden + 2 * self.hidden * kv_dim
            + 3 * self.hidden * self.ffn
        ) + self.vocab * self.hidden
        linear = 6.0 * dense_params
        causal_factor = 0.5 if causal else 1.0
        attn = self.n_layers * 12.0 * self.hidden * seq_len * causal_factor
        return linear + attn

    def attention_fraction(self, seq_len: int, causal: bool = True) -> float:
        """Share of training time spent in attention matmuls (Fig. 2)."""
        total = self.flops_per_token(seq_len, causal)
        causal_factor = 0.5 if causal else 1.0
        attn = self.n_layers * 12.0 * self.hidden * seq_len * causal_factor
        return attn / total


LLAMA_7B = ModelSpec(name="7B", n_layers=32, n_heads=32, hidden=4096, vocab=32_000)
LLAMA_14B = ModelSpec(name="14B", n_layers=40, n_heads=40, hidden=5120, vocab=120_000)

#: LLaMA-3-70B-style GQA model (64 query heads sharing 8 KV heads) — used
#: by the GQA extension analyses, not by the paper's own experiments.
LLAMA_70B_GQA = ModelSpec(
    name="70B-gqa", n_layers=80, n_heads=64, hidden=8192, vocab=128_256,
    ffn_hidden=28_672, n_kv_heads=8,
)

#: Vocabulary comparison for Fig. 8 (LLaMA-1/2 32K vs LLaMA-3 128K).
LLAMA2_VOCAB = 32_000
LLAMA3_VOCAB = 128_256

MODEL_SPECS = {"7B": LLAMA_7B, "14B": LLAMA_14B}
