"""Model RNG management: reproducible stochastic layers under recompute.

Dropout inside a gradient-checkpointed layer is a classic trap: the
recomputation pass re-runs the layer, and if it draws a *fresh* mask the
recomputed activations no longer match the ones the forward pass produced
— gradients are silently wrong.  Real frameworks snapshot and restore RNG
state around checkpoints; this module provides the equivalent:

* a process-global model RNG (:func:`set_seed`, :func:`draw_seed`);
* :func:`scoped_rng` — a context manager installing a generator seeded by
  a *captured* seed, which stochastic ops pick up via
  :func:`current_rng`.

A layer draws one seed per forward invocation and runs its body under
``scoped_rng(seed)``; checkpoint recomputation replays the same body under
the same seed, so every dropout mask is identical between the throwaway
forward and the recompute.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

_GLOBAL = np.random.default_rng(0)
_STACK: list[np.random.Generator] = []


def set_seed(seed: int) -> None:
    """Reset the global model RNG (call at the start of a run)."""
    global _GLOBAL
    _GLOBAL = np.random.default_rng(seed)


def draw_seed() -> int:
    """Draw a fresh per-invocation seed from the global stream."""
    return int(_GLOBAL.integers(0, 2**63 - 1))


def get_rng_state() -> dict:
    """JSON-serialisable snapshot of the global model RNG stream.

    Checkpoint-restart support: a training run resumed from a snapshot must
    draw the *same* per-layer dropout seeds it would have drawn had it never
    crashed, so the global stream's bit-generator state travels with the
    train-state checkpoint (see :func:`repro.nn.serialization.save_train_state`).
    """
    return dict(_GLOBAL.bit_generator.state)


def set_rng_state(state: dict) -> None:
    """Restore the global model RNG stream from :func:`get_rng_state`."""
    global _GLOBAL
    gen = np.random.default_rng(0)
    name = type(gen.bit_generator).__name__
    if state.get("bit_generator") != name:
        raise ValueError(
            f"RNG state is for bit generator {state.get('bit_generator')!r}, "
            f"expected {name!r}"
        )
    gen.bit_generator.state = state
    _GLOBAL = gen


@contextlib.contextmanager
def scoped_rng(seed: int | None) -> Iterator[None]:
    """Install a generator seeded with ``seed`` as the current RNG.

    ``None`` is a no-op scope (stochastic ops fall back to the global
    stream — fine outside checkpoints).
    """
    if seed is None:
        yield
        return
    _STACK.append(np.random.default_rng(seed))
    try:
        yield
    finally:
        _STACK.pop()


def current_rng() -> np.random.Generator:
    """The innermost scoped generator, or the global stream."""
    return _STACK[-1] if _STACK else _GLOBAL
