"""Learning-rate schedules and gradient clipping.

Standard LLM-training loop components: linear warmup into cosine decay
(the LLaMA recipe), inverse-sqrt (the original Transformer), constant,
and global-norm gradient clipping.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


class LRSchedule:
    """Base: maps a 0-indexed step to a learning rate."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = base_lr

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        """Set the optimizer's lr for ``step``; returns the value."""
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupCosineLR(LRSchedule):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        super().__init__(base_lr)
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError(
                f"need 0 <= warmup_steps < total_steps, got "
                f"{warmup_steps}, {total_steps}"
            )
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / max(self.warmup_steps, 1)
        progress = (step - self.warmup_steps) / (
            self.total_steps - self.warmup_steps
        )
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class InverseSqrtLR(LRSchedule):
    """``lr = base * min((s+1)^-0.5, (s+1) * warmup^-1.5)`` (Vaswani)."""

    def __init__(self, base_lr: float, warmup_steps: int = 100):
        super().__init__(base_lr)
        if warmup_steps < 1:
            raise ValueError(f"warmup_steps must be >= 1, got {warmup_steps}")
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        s = step + 1
        return self.base_lr * min(s**-0.5, s * self.warmup_steps**-1.5)


def grad_global_norm(params: Sequence[Tensor]) -> float:
    """L2 norm over all parameter gradients (missing grads count as 0)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    return math.sqrt(total)


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Returns the pre-clip norm (the value training logs usually report).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = grad_global_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
