"""Reverse-mode autodiff tensor.

Deliberately minimal: float64 numpy storage, dynamic graph built by
:class:`~repro.nn.function.Function` nodes, topological-order backward with
gradient accumulation.  Exactly the features a transformer training loop
needs — no dtype zoo, no views-with-aliasing, no in-place autograd.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.obs.mem import memory_phase

_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    return _grad_enabled


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph construction (used by recomputation and optimizers)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


class Tensor:
    """A numpy array with an optional autograd tape entry.

    Attributes
    ----------
    data:
        The underlying float64 ``np.ndarray``.
    grad:
        Accumulated gradient (same shape), populated by :meth:`backward`.
    requires_grad:
        Whether this tensor participates in differentiation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            raise TypeError("cannot wrap a Tensor in a Tensor")
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._ctx = None  # (Function instance, input tensors) set by apply
        self.name = name

    # --- basic introspection --------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False, name=self.name)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        label = f" '{self.name}'" if self.name else ""
        return f"Tensor{label}(shape={self.shape}{grad_flag})"

    # --- autograd --------------------------------------------------------------

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalars.  Gradients accumulate into
        ``.grad`` of every reachable ``requires_grad`` leaf; saved
        activations are released from the memory tracker as their nodes
        run.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    f"grad must be provided for non-scalar output {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != tensor shape {self.data.shape}"
            )

        # Topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node._ctx is not None:
                _, inputs = node._ctx
                for inp in inputs:
                    if inp is not None and inp._ctx is not None or (
                        inp is not None and inp.requires_grad
                    ):
                        stack.append((inp, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        with memory_phase("bwd"):
            for node in reversed(topo):
                node_grad = grads.pop(id(node), None)
                if node_grad is None:
                    continue
                if node._ctx is None:
                    if node.requires_grad:
                        node.grad = (
                            node_grad
                            if node.grad is None
                            else node.grad + node_grad
                        )
                    continue
                fn, inputs = node._ctx
                input_grads = fn.backward(node_grad)
                fn.release_saved()
                if not isinstance(input_grads, tuple):
                    input_grads = (input_grads,)
                if len(input_grads) != len(inputs):
                    raise RuntimeError(
                        f"{type(fn).__name__}.backward returned "
                        f"{len(input_grads)} grads for {len(inputs)} inputs"
                    )
                for inp, g in zip(inputs, input_grads):
                    if inp is None or g is None:
                        continue
                    if g.shape != inp.data.shape:
                        raise RuntimeError(
                            f"{type(fn).__name__} produced grad {g.shape} for "
                            f"input {inp.data.shape}"
                        )
                    if inp._ctx is not None or inp.requires_grad:
                        key = id(inp)
                        if key in grads:
                            grads[key] = grads[key] + g
                        else:
                            grads[key] = g
                # Leaves with requires_grad but also intermediate results
                # that require grad get their .grad set when popped above.
                if node.requires_grad and node is not self:
                    pass

    # --- operator sugar (delegates to repro.nn.ops) -----------------------------

    def _ops(self):
        from repro.nn import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        return self._ops().sub(self, _wrap(other))

    def __rsub__(self, other):
        return self._ops().sub(_wrap(other), self)

    def __mul__(self, other):
        return self._ops().mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._ops().div(self, _wrap(other))

    def __neg__(self):
        return self._ops().mul(self, _wrap(-1.0))

    def __matmul__(self, other):
        return self._ops().matmul(self, _wrap(other))

    def __pow__(self, exponent: float):
        return self._ops().pow(self, float(exponent))

    def __getitem__(self, key):
        return self._ops().getitem(self, key)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._ops().reshape(self, shape)

    def swapaxes(self, a: int, b: int):
        return self._ops().swapaxes(self, a, b)

    def sum(self, axis=None, keepdims=False):
        return self._ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._ops().mean(self, axis=axis, keepdims=keepdims)


def _wrap(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))
