"""Transformer modules on the numpy autograd engine.

A small LLaMA-architecture stack (RMSNorm, SwiGLU FFN, multi-head causal
attention, tied token/position embeddings optional) sized for tests and
examples.  The block honours a :class:`~repro.nn.checkpoint.CheckpointPolicy`
and the LM head runs any of the three head implementations of
:mod:`repro.lmhead` as a fused autograd node.

Activations carry no batch axis — one sequence per step, shapes ``(S, D)``
— which is exactly the long-context regime the paper targets (a 1M-token
sequence *is* the batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.lmhead import HEAD_IMPLEMENTATIONS
from repro.masks import CausalMask, MaskPattern
from repro.nn import ops
from repro.nn.attention_fn import flash_attention
from repro.nn.checkpoint import (
    AttentionOutputCache,
    CheckpointPolicy,
    checkpoint,
)
from repro.nn.function import Function
from repro.nn.memory import get_tracker
from repro.nn.mlp_fn import blockwise_mlp
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.obs.mem import memory_scope


class Module:
    """Minimal module base: parameter discovery, grad reset, train/eval."""

    training: bool = True

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """This module and every descendant."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self) -> "Module":
        """Enable training behaviour (dropout active) recursively."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Disable stochastic layers recursively."""
        for m in self.modules():
            m.training = False
        return self

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _init(rng: np.random.Generator, *shape: int, scale: float | None = None) -> np.ndarray:
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    scale = scale if scale is not None else 1.0 / np.sqrt(fan_in)
    return rng.normal(0.0, scale, size=shape)


class Linear(Module):
    """``y = x W^T`` (no bias, LLaMA-style)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.weight = Tensor(
            _init(rng, out_features, in_features), requires_grad=True, name="weight"
        )

    def forward(self, x: Tensor) -> Tensor:
        return ops.matmul(x, ops.swapaxes(self.weight, 0, 1))


class Embedding(Module):
    """Token-id -> vector lookup."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.weight = Tensor(
            _init(rng, num_embeddings, dim, scale=0.02),
            requires_grad=True,
            name="embedding",
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return ops.embedding(self.weight, ids)


class RMSNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-6):
        self.weight = Tensor(np.ones(dim), requires_grad=True, name="rms_weight")
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return ops.rms_norm(x, self.weight, eps=self.eps)


class SwiGLU(Module):
    """LLaMA FFN: ``down(silu(gate(x)) * up(x))``.

    With ``mlp_chunk_size`` set the whole FFN runs as one fused
    :class:`~repro.nn.mlp_fn.BlockwiseMLPFn` node through the active
    kernel backend: only ``x`` is saved for backward and the ``(S,
    hidden)`` intermediates are rematerialised in sequence chunks of that
    many rows (bitwise-identical to the composed path).  ``None`` keeps
    the composed five-node graph.
    """

    def __init__(
        self,
        dim: int,
        hidden: int,
        rng: np.random.Generator,
        mlp_chunk_size: int | None = None,
    ):
        self.gate = Linear(dim, hidden, rng)
        self.up = Linear(dim, hidden, rng)
        self.down = Linear(hidden, dim, rng)
        self.mlp_chunk_size = mlp_chunk_size

    def forward(self, x: Tensor) -> Tensor:
        if self.mlp_chunk_size is not None:
            return blockwise_mlp(
                x, self.gate.weight, self.up.weight, self.down.weight,
                chunk_size=self.mlp_chunk_size,
            )
        return self.down(ops.mul(ops.silu(self.gate(x)), self.up(x)))


class CausalSelfAttention(Module):
    """Multi-head attention over ``(S, D)`` activations.

    The mask defaults to causal but accepts any
    :class:`~repro.masks.MaskPattern` (the sparse-attention integration).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        mask: MaskPattern | None = None,
        block_size: int = 64,
        n_kv_heads: int | None = None,
        rope: bool = False,
        rope_theta: float = 10_000.0,
    ):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {n_heads}")
        if rope and (dim // n_heads) % 2 != 0:
            raise ValueError("RoPE needs an even head dimension")
        self.rope = rope
        self.rope_theta = rope_theta
        self.n_heads = n_heads
        self.n_kv_heads = n_kv_heads if n_kv_heads is not None else n_heads
        if self.n_kv_heads < 1 or n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"{n_heads} heads not divisible by {self.n_kv_heads} KV heads"
            )
        self.head_dim = dim // n_heads
        kv_dim = self.n_kv_heads * self.head_dim
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, kv_dim, rng)
        self.wv = Linear(dim, kv_dim, rng)
        self.wo = Linear(dim, dim, rng)
        self.mask = mask if mask is not None else CausalMask()
        self.block_size = block_size
        self.cache = AttentionOutputCache()
        self.policy: CheckpointPolicy = CheckpointPolicy()

    def _split_heads(self, x: Tensor, s: int, n_heads: int | None = None) -> Tensor:
        h = n_heads if n_heads is not None else self.n_heads
        return ops.swapaxes(ops.reshape(x, (s, h, self.head_dim)), 0, 1)

    def _maybe_rope(self, q: Tensor, k: Tensor, s: int) -> tuple[Tensor, Tensor]:
        if not self.rope:
            return q, k
        from repro.nn.rope import apply_rope

        positions = np.arange(s)
        return (
            apply_rope(q, positions, theta=self.rope_theta),
            apply_rope(k, positions, theta=self.rope_theta),
        )

    def forward(self, x: Tensor) -> Tensor:
        s = x.shape[0]
        q = self._split_heads(self.wq(x), s)
        k = self._split_heads(self.wk(x), s, self.n_kv_heads)
        v = self._split_heads(self.wv(x), s, self.n_kv_heads)
        q, k = self._maybe_rope(q, k, s)
        o = flash_attention(
            q, k, v, mask=self.mask, block_size=self.block_size,
            cache=self.cache, policy=self.policy,
        )
        merged = ops.reshape(ops.swapaxes(o, 0, 1), (s, self.n_heads * self.head_dim))
        return self.wo(merged)


class TransformerBlock(Module):
    """Pre-norm block: ``h = x + attn(norm(x)); y = h + ffn(norm(h))``.

    ``policy`` selects the recomputation strategy; the block checkpoints
    itself (storing only its input) whenever the policy requires it, with
    the attention-output cache implementing the selective++/sequence-level
    whitelists.
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        ffn_hidden: int,
        rng: np.random.Generator,
        mask: MaskPattern | None = None,
        policy: CheckpointPolicy | None = None,
        attn_block_size: int = 64,
        attn_factory=None,
        n_kv_heads: int | None = None,
        rope: bool = False,
        rope_theta: float = 10_000.0,
        dropout_p: float = 0.0,
        mlp_chunk_size: int | None = None,
    ):
        if not 0.0 <= dropout_p < 1.0:
            raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
        self.dropout_p = dropout_p
        self.norm1 = RMSNorm(dim)
        if attn_factory is None:
            self.attn = CausalSelfAttention(
                dim, n_heads, rng, mask=mask, block_size=attn_block_size,
                n_kv_heads=n_kv_heads,
            )
        else:
            self.attn = attn_factory(
                dim, n_heads, rng, mask, attn_block_size, n_kv_heads
            )
        if rope:
            if (dim // n_heads) % 2 != 0:
                raise ValueError("RoPE needs an even head dimension")
            self.attn.rope = True
            self.attn.rope_theta = rope_theta
        self.norm2 = RMSNorm(dim)
        self.ffn = SwiGLU(dim, ffn_hidden, rng, mlp_chunk_size=mlp_chunk_size)
        self.layer_index: int | None = None  # set by TransformerLM
        self.set_policy(policy or CheckpointPolicy())

    def set_policy(self, policy: CheckpointPolicy) -> None:
        self.policy = policy
        self.attn.policy = policy
        if policy.mlp_chunk_size is not None:
            self.ffn.mlp_chunk_size = policy.mlp_chunk_size

    def _body(self, x: Tensor) -> Tensor:
        attn_out = self.attn(self.norm1(x))
        if self.dropout_p > 0:
            attn_out = ops.dropout(attn_out, self.dropout_p,
                                   training=self.training)
        h = ops.add(x, attn_out)
        ffn_out = self.ffn(self.norm2(h))
        if self.dropout_p > 0:
            ffn_out = ops.dropout(ffn_out, self.dropout_p,
                                  training=self.training)
        return ops.add(h, ffn_out)

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn.rng import draw_seed, scoped_rng

        # Capture the layer's stochastic seed ONCE per forward so a
        # checkpoint recompute replays identical dropout masks.
        seed = draw_seed() if (self.dropout_p > 0 and self.training) else None

        def seeded_body(x_: Tensor) -> Tensor:
            # The scope lives in the closure so a checkpoint *replay* in
            # backward attributes its re-registered activations to this
            # layer too, not just the original forward.
            with memory_scope(layer=self.layer_index):
                with scoped_rng(seed):
                    return self._body(x_)

        if self.policy.checkpoints_layer:
            return checkpoint(seeded_body, x)
        return seeded_body(x)


class FusedLMHeadLossFn(Function):
    """Autograd node running one of the :mod:`repro.lmhead` implementations.

    All three implementations already produce ``(loss, dH, dW)``; the node
    saves the gradients and scales them by the upstream gradient.  The
    implementation's *resident* footprint (full logits for naive, Lse for
    tiled, nothing for fused) is registered with the tracker so measured
    peaks reflect the head choice — this is the Fig. 8 / Table 2 effect.
    """

    def forward(self, h, w, targets=None, impl="fused", reduction="mean", **kw):
        fn = HEAD_IMPLEMENTATIONS[impl]
        res = fn(h, w, targets, reduction=reduction, **kw)
        self.save_for_backward(res.dh, res.dw)
        # Registering under no_grad would leak the handle: eval passes
        # never run backward, so nothing would ever release it.
        self._resident = None
        if is_grad_enabled():
            self._resident = get_tracker().register(
                res.stats.peak_resident_bytes, site="head.resident"
            )
        return np.asarray(res.loss)

    def backward(self, grad_out):
        dh, dw = self.saved
        g = float(grad_out)
        return g * dh, g * dw

    def release_saved(self) -> None:
        # Runs right after backward (and on graph drop), covering every
        # path the base class covers — including requires_grad=False
        # outputs released immediately by apply().
        if self._resident is not None:
            get_tracker().release(self._resident)
            self._resident = None
        super().release_saved()


@dataclass
class TransformerConfig:
    """Architecture + training-policy configuration for the test model."""

    vocab_size: int = 256
    dim: int = 32
    n_layers: int = 2
    n_heads: int = 4
    n_kv_heads: int | None = None  # GQA: fewer KV heads than query heads
    position_encoding: str = "learned"  # "learned" | "rope"
    rope_theta: float = 10_000.0
    dropout_p: float = 0.0
    ffn_hidden: int = 64
    max_seq_len: int = 256
    head_impl: str = "fused"
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    mask: MaskPattern | None = None  # defaults to causal
    #: Optional per-layer mask schedule (e.g. alternating sliding-window /
    #: global layers, Gemma-style).  Length must equal ``n_layers``;
    #: overrides ``mask`` when set.
    layer_masks: list | None = None
    attn_block_size: int = 64
    #: Fused blockwise FFN: rematerialise the SwiGLU intermediates in
    #: sequence chunks of this many rows (``None`` = composed dense FFN).
    mlp_chunk_size: int | None = None
    seed: int = 0


class TransformerLM(Module):
    """Tiny LLaMA-style language model for end-to-end training tests.

    ``forward(ids, targets)`` returns the scalar loss Tensor (the LM head
    and loss are always fused into one node — the head implementation
    string picks naive / tiled-recompute / fused cost behaviour while the
    numerics are identical).
    """

    def __init__(self, config: TransformerConfig, attn_factory=None):
        self.config = config
        #: Optional override for the head+loss computation, called as
        #: ``head_fn(h, weight, targets) -> Tensor`` (scalar loss).  The
        #: engine uses this to install distributed (vocab-parallel) heads.
        self.head_fn = None
        if config.layer_masks is not None and len(config.layer_masks) != config.n_layers:
            raise ValueError(
                f"layer_masks has {len(config.layer_masks)} entries for "
                f"{config.n_layers} layers"
            )
        rng = np.random.default_rng(config.seed)
        self.tok_emb = Embedding(config.vocab_size, config.dim, rng)
        self.pos_emb = Embedding(config.max_seq_len, config.dim, rng)

        def mask_for(layer: int):
            if config.layer_masks is not None:
                return config.layer_masks[layer]
            return config.mask

        self.blocks = [
            TransformerBlock(
                config.dim, config.n_heads, config.ffn_hidden, rng,
                mask=mask_for(i), policy=config.checkpoint,
                attn_block_size=config.attn_block_size,
                attn_factory=attn_factory,
                n_kv_heads=config.n_kv_heads,
                rope=(config.position_encoding == "rope"),
                rope_theta=config.rope_theta,
                dropout_p=config.dropout_p,
                mlp_chunk_size=config.mlp_chunk_size,
            )
            for i in range(config.n_layers)
        ]
        for i, block in enumerate(self.blocks):
            block.layer_index = i
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, rng)

    def set_policy(self, policy: CheckpointPolicy) -> None:
        self.config.checkpoint = policy
        for block in self.blocks:
            block.set_policy(policy)

    def hidden_states(self, ids: np.ndarray) -> Tensor:
        s = len(ids)
        if s > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {s} exceeds max_seq_len {self.config.max_seq_len}"
            )
        if self.config.position_encoding == "rope":
            x = self.tok_emb(ids)  # positions enter via RoPE in attention
        else:
            x = ops.add(self.tok_emb(ids), self.pos_emb(np.arange(s)))
        for i, block in enumerate(self.blocks):
            with memory_scope(layer=i):
                x = block(x)
        with memory_scope(layer="final_norm"):
            return self.final_norm(x)

    def forward(self, ids: np.ndarray, targets: np.ndarray) -> Tensor:
        h = self.hidden_states(ids)
        if self.head_fn is not None:
            return self.head_fn(h, self.lm_head.weight, np.asarray(targets))
        return FusedLMHeadLossFn.apply(
            h, self.lm_head.weight, targets=np.asarray(targets),
            impl=self.config.head_impl,
        )

    def logits(self, ids: np.ndarray) -> Tensor:
        """Full logits (inference / tests only — the Fig. 8 memory wall)."""
        return self.lm_head(self.hidden_states(ids))

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Autoregressive decoding (greedy at ``temperature == 0``).

        Re-runs the full forward each step — fine for tests and demos;
        this repository optimises training, not inference.
        """
        from repro.nn.tensor import no_grad

        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if temperature < 0:
            raise ValueError("temperature must be >= 0")
        if rng is None:
            rng = np.random.default_rng(0)
        ids = np.asarray(prompt, dtype=np.int64).copy()
        for _ in range(max_new_tokens):
            if len(ids) >= self.config.max_seq_len:
                break
            with no_grad():
                row = self.logits(ids).data[-1]
            if temperature == 0.0:
                nxt = int(row.argmax())
            else:
                z = row / temperature
                p = np.exp(z - z.max())
                p /= p.sum()
                nxt = int(rng.choice(len(p), p=p))
            ids = np.append(ids, nxt)
        return ids
