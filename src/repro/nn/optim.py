"""Optimizers for the numpy autograd engine (SGD, Adam, AdamW).

State can be "offloaded": with ``offload=True`` the moment buffers are
tagged as host-resident, which the peak-memory model uses to mirror the
paper's ZeRO-Offload setting (Table 5 enables it, Table 4 disables it).
Numerically offloading changes nothing — it is a placement annotation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Bytes of optimizer state (for the memory model)."""
        return 0

    # --- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of everything a resumed run needs to continue bitwise.

        Returns a dict of scalars plus an ``"arrays"`` sub-dict of numpy
        buffers (moment estimates etc.), consumed by
        :func:`repro.nn.serialization.save_train_state`.
        """
        return {"kind": type(self).__name__, "lr": self.lr, "arrays": {}}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (strict)."""
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {kind!r}, not {type(self).__name__!r}"
            )
        self.lr = float(state["lr"])

    def _check_array(self, name: str, arr: np.ndarray, param: Tensor) -> np.ndarray:
        if arr.shape != param.data.shape:
            raise ValueError(
                f"optimizer state {name!r} has shape {arr.shape}, parameter "
                f"has {param.data.shape}"
            )
        return arr.copy()


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + p.grad
                update = self._velocity[i]
            else:
                update = p.grad
            p.data -= self.lr * update

    def state_bytes(self) -> int:
        if self._velocity is None:
            return 0
        return sum(v.nbytes for v in self._velocity)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["momentum"] = self.momentum
        if self._velocity is not None:
            state["arrays"] = {
                f"velocity:{i}": v for i, v in enumerate(self._velocity)
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state.get("momentum", 0.0))
        if self.momentum:
            arrays = state["arrays"]
            self._velocity = [
                self._check_array(f"velocity:{i}", arrays[f"velocity:{i}"], p)
                for i, p in enumerate(self.params)
            ]
        else:
            self._velocity = None


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        offload: bool = False,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.offload = offload
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            self._m[i] = b1 * self._m[i] + (1 - b1) * g
            self._v[i] = b2 * self._v[i] + (1 - b2) * (g * g)
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_bytes(self) -> int:
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(t=self.t, beta1=self.beta1, beta2=self.beta2, eps=self.eps)
        arrays: dict[str, np.ndarray] = {}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            arrays[f"m:{i}"] = m
            arrays[f"v:{i}"] = v
        state["arrays"] = arrays
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.t = int(state["t"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        arrays = state["arrays"]
        self._m = [
            self._check_array(f"m:{i}", arrays[f"m:{i}"], p)
            for i, p in enumerate(self.params)
        ]
        self._v = [
            self._check_array(f"v:{i}", arrays[f"v:{i}"], p)
            for i, p in enumerate(self.params)
        ]


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def __init__(self, params, lr: float = 1e-3, weight_decay: float = 0.01, **kw):
        super().__init__(params, lr=lr, **kw)
        self.weight_decay = weight_decay

    def step(self) -> None:
        for p in self.params:
            if p.grad is not None:
                p.data -= self.lr * self.weight_decay * p.data
        super().step()

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["weight_decay"] = self.weight_decay
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.weight_decay = float(state["weight_decay"])
