"""A compact numpy autograd engine and transformer module zoo.

This is the "PyTorch substrate" of the reproduction: enough reverse-mode
autodiff to train real (small) LLaMA-architecture models end-to-end on the
simulated cluster, with the three places the paper customises exposed as
pluggable pieces:

* attention runs through custom :class:`~repro.nn.function.Function` nodes
  backed by the flash / distributed kernels;
* gradient checkpointing policies (none / full / selective++ /
  sequence-level) control what those nodes save — see
  :mod:`repro.nn.checkpoint`;
* the LM head + loss is a fused function (Algorithm 3) that emits input
  and weight gradients without storing logits.

Activation memory is accounted by :class:`~repro.nn.memory.MemoryTracker`,
so the checkpointing claims (Fig. 7) are *measured*, not asserted.
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn.function import Function
from repro.nn import ops
from repro.nn.modules import (
    Module,
    Linear,
    Embedding,
    RMSNorm,
    SwiGLU,
    CausalSelfAttention,
    TransformerBlock,
    TransformerLM,
    TransformerConfig,
)
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.memory import MemoryTracker, get_tracker, reset_tracker
from repro.nn.checkpoint import CheckpointPolicy
from repro.nn.schedule import (
    ConstantLR,
    InverseSqrtLR,
    WarmupCosineLR,
    clip_grad_norm,
    grad_global_norm,
)
from repro.nn.serialization import (
    CheckpointError,
    load_model,
    load_train_state,
    save_model,
    save_train_state,
    verify_train_state,
)
from repro.nn.rng import get_rng_state, set_rng_state, set_seed
from repro.nn.rope import apply_rope, rope_angles

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Function",
    "ops",
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "SwiGLU",
    "CausalSelfAttention",
    "TransformerBlock",
    "TransformerLM",
    "TransformerConfig",
    "SGD",
    "Adam",
    "AdamW",
    "MemoryTracker",
    "get_tracker",
    "reset_tracker",
    "CheckpointPolicy",
    "ConstantLR",
    "InverseSqrtLR",
    "WarmupCosineLR",
    "clip_grad_norm",
    "grad_global_norm",
    "CheckpointError",
    "load_model",
    "save_model",
    "load_train_state",
    "save_train_state",
    "verify_train_state",
    "get_rng_state",
    "set_rng_state",
    "set_seed",
    "apply_rope",
    "rope_angles",
]
