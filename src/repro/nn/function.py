"""Autograd Function base class.

Subclasses implement ``forward(self, *raw_args, **kwargs)`` operating on
numpy arrays / plain Python values and ``backward(self, grad_out)``
returning one numpy gradient (or ``None``) per *tensor* input, positionally.

``save_for_backward`` registers the saved arrays' bytes with the global
:class:`~repro.nn.memory.MemoryTracker`; the engine releases them as soon
as the node's backward has run, so peak activation memory is measured
faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.nn.memory import get_tracker
from repro.nn.tensor import Tensor, is_grad_enabled


class Function:
    """One differentiable operation in the dynamic graph."""

    def __init__(self):
        self.saved: tuple = ()
        self._mem_handle: int | None = None

    # --- subclass API --------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def save_for_backward(self, *arrays) -> None:
        """Stash arrays needed by backward, accounting their bytes.

        Under ``no_grad`` (e.g. checkpoint recomputation's throwaway pass)
        nothing is registered, so measured peaks reflect only activations
        that actually persist.
        """
        self.saved = arrays
        if is_grad_enabled():
            nbytes = sum(a.nbytes for a in arrays if isinstance(a, np.ndarray))
            self._mem_handle = get_tracker().register(
                nbytes, site=type(self).__name__
            )

    def release_saved(self) -> None:
        if self._mem_handle is not None:
            get_tracker().release(self._mem_handle)
            self._mem_handle = None
        self.saved = ()

    # --- graph construction ----------------------------------------------------

    @classmethod
    def apply(cls, *args, **kwargs) -> Tensor:
        """Run forward and (if grad is enabled) attach the node to the graph.

        Tensor arguments are unwrapped to numpy for ``forward``; the node's
        ``backward`` must return gradients for exactly the tensor arguments,
        in order.
        """
        ctx = cls()
        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        raw = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = ctx.forward(*raw, **kwargs)
        requires = is_grad_enabled() and any(
            t.requires_grad or t._ctx is not None for t in tensor_inputs
        )
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._ctx = (ctx, tensor_inputs)
        else:
            ctx.release_saved()
        return out
