"""Gradient checkpointing with the paper's policy menu (Section 3.2).

Policies
--------
``none``
    No checkpointing: every Function saves its backward state; maximal
    memory, zero recomputation.
``full``
    Classic gradient checkpointing [Chen et al. 2016]: only the layer
    *inputs* persist; the whole layer — including attention — is re-run in
    the backward pass.
``selective_pp``
    Selective checkpointing++ [DISTFLASHATTN / LoongTrain]: like ``full``
    but the attention outputs ``(O, lse)`` are whitelisted and stored, so
    the expensive attention forward is never recomputed.  Costs ``O(N d)``
    extra memory per layer — the Fig. 7 blow-up.
``sequence_level``
    The paper's scheme: store ``(O, lse)`` only for the *latter*
    ``1 - split_fraction`` of the sequence (whose causal recomputation
    would be expensive) and recompute attention only for the cheap front
    segment.  With ``split_fraction = 0.5`` this stores half of
    selective++'s whitelist while re-doing only ~25 % of the attention
    forward FLOPs.

:class:`Checkpoint` is the Function that implements the store-inputs /
re-run-in-backward mechanics; :func:`in_recompute` lets the attention
function know the current forward is a recomputation so it can consult its
output cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.nn.function import Function
from repro.nn.memory import get_tracker
from repro.nn.tensor import Tensor, no_grad
from repro.obs.mem import memory_phase
from repro.obs.tracer import trace_span


class CheckpointMode(enum.Enum):
    NONE = "none"
    FULL = "full"
    SELECTIVE_PP = "selective_pp"
    SEQUENCE_LEVEL = "sequence_level"


@dataclass(frozen=True)
class CheckpointPolicy:
    """Layer recomputation policy.

    ``split_fraction`` only applies to ``sequence_level``: the fraction of
    the sequence (the front) that is recomputed rather than stored.

    ``mlp_chunk_size`` is the FFN rematerialisation hook: when set,
    :meth:`~repro.nn.modules.TransformerBlock.set_policy` switches the
    block's FFN to the fused blockwise kernel with that chunk size, so the
    ``(S, hidden)`` SwiGLU intermediates are recomputed chunk-by-chunk in
    backward instead of being saved (orthogonal to, and composable with,
    the layer-level modes above).
    """

    mode: CheckpointMode = CheckpointMode.NONE
    split_fraction: float = 0.5
    mlp_chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.split_fraction < 1.0:
            if self.mode is CheckpointMode.SEQUENCE_LEVEL:
                raise ValueError(
                    f"split_fraction must be in (0, 1), got {self.split_fraction}"
                )
        if self.mlp_chunk_size is not None and self.mlp_chunk_size < 1:
            raise ValueError(
                f"mlp_chunk_size must be >= 1, got {self.mlp_chunk_size}"
            )

    @classmethod
    def parse(
        cls,
        spec: str,
        split_fraction: float = 0.5,
        mlp_chunk_size: int | None = None,
    ) -> "CheckpointPolicy":
        return cls(
            mode=CheckpointMode(spec),
            split_fraction=split_fraction,
            mlp_chunk_size=mlp_chunk_size,
        )

    @property
    def checkpoints_layer(self) -> bool:
        return self.mode is not CheckpointMode.NONE

    @property
    def caches_attention_output(self) -> bool:
        return self.mode in (
            CheckpointMode.SELECTIVE_PP,
            CheckpointMode.SEQUENCE_LEVEL,
        )

    def cached_fraction(self) -> float:
        """Fraction of the attention output persisted across fwd->bwd."""
        if self.mode is CheckpointMode.SELECTIVE_PP:
            return 1.0
        if self.mode is CheckpointMode.SEQUENCE_LEVEL:
            return 1.0 - self.split_fraction
        return 0.0


_in_recompute: bool = False


def in_recompute() -> bool:
    """True while a :class:`Checkpoint` node is re-running its layer."""
    return _in_recompute


class Checkpoint(Function):
    """Store layer inputs, re-run the layer in backward.

    ``fn`` maps input Tensors to a single output Tensor.  The first pass
    runs under ``no_grad`` so no intermediate state is registered; the
    backward pass replays ``fn`` with gradients enabled (flagged via
    :func:`in_recompute` so attention caches engage) and backpropagates
    through the fresh subgraph.
    """

    def forward(self, *raw_inputs, fn=None):
        if fn is None:
            raise ValueError("Checkpoint requires fn=")
        self.fn = fn
        self.save_for_backward(*raw_inputs)
        with no_grad():
            out = fn(*[Tensor(r) for r in raw_inputs])
        return out.data

    def backward(self, grad_out: np.ndarray):
        global _in_recompute
        inputs = [Tensor(r, requires_grad=True) for r in self.saved]
        prev = _in_recompute
        _in_recompute = True
        try:
            with trace_span("ckpt.replay", phase="ckpt-recompute"):
                with memory_phase("recompute"):
                    out = self.fn(*inputs)
        finally:
            _in_recompute = prev
        out.backward(grad_out)
        return tuple(inp.grad for inp in inputs)


def checkpoint(fn, *inputs: Tensor) -> Tensor:
    """Apply ``fn`` with gradient checkpointing."""
    return Checkpoint.apply(*inputs, fn=fn)


class AttentionOutputCache:
    """Whitelisted attention outputs that survive until backward.

    Holds ``(O, lse)`` (possibly only a sequence suffix) registered with
    the memory tracker so the extra footprint of selective++ /
    sequence-level checkpointing is measured.  Entries are consumed by the
    recompute pass; :meth:`clear` drops anything left (e.g. at step end).
    """

    def __init__(self):
        self._store: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        self._counter = 0

    def put(self, key: int, o: np.ndarray, lse: np.ndarray) -> None:
        handle = get_tracker().register(
            o.nbytes + lse.nbytes, site="attn.cache"
        )
        self._store[key] = (o, lse, handle)

    def get(self, key: int) -> tuple[np.ndarray, np.ndarray] | None:
        entry = self._store.get(key)
        if entry is None:
            return None
        return entry[0], entry[1]

    def pop(self, key: int) -> tuple[np.ndarray, np.ndarray] | None:
        entry = self._store.pop(key, None)
        if entry is None:
            return None
        o, lse, handle = entry
        get_tracker().release(handle)
        return o, lse

    def next_key(self) -> int:
        self._counter += 1
        return self._counter

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        for _, _, handle in self._store.values():
            get_tracker().release(handle)
        self._store.clear()
