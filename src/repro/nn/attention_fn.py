"""Autograd Function for (single-device) flash attention with checkpoint
policy support.

This node is where the checkpointing policies of Section 3.2 act:

* normal forward — compute ``(O, lse)``, save flash-backward state;
* checkpointed first pass (``no_grad``) — additionally stash ``(O, lse)``
  (all of it for selective++, the sequence suffix for sequence-level) in
  the layer's :class:`~repro.nn.checkpoint.AttentionOutputCache`;
* recomputation pass — consume the cache: selective++ skips the attention
  forward entirely, sequence-level recomputes only the front segment's
  rows (cheap under causal masking) and concatenates the stored suffix.

Recomputed attention work is tallied in the memory tracker's
``recompute_flops`` so the compute/memory trade-off of Fig. 7 is measured.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    get_backend,
    planning_enabled,
)
from repro.masks import MaskPattern
from repro.nn.checkpoint import (
    AttentionOutputCache,
    CheckpointMode,
    CheckpointPolicy,
    in_recompute,
)
from repro.nn.function import Function
from repro.nn.memory import get_tracker
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.obs.tracer import trace_span


def _attention_flops(pairs: int, heads: int, head_dim: int) -> float:
    """Matmul FLOPs for ``pairs`` allowed (q, k) pairs: QK^T plus PV."""
    return 4.0 * pairs * heads * head_dim


def _mask_pairs(mask: MaskPattern | None, sq: int, sk: int, q_off: int = 0) -> int:
    if mask is None:
        return sq * sk
    return mask.num_allowed(np.arange(q_off, q_off + sq), np.arange(sk))


class FlashAttentionFn(Function):
    """``o = attention(q, k, v)`` with mask pattern and checkpoint cache.

    Supports grouped-query attention: when ``k``/``v`` carry fewer heads
    than ``q`` (``H_q % H_kv == 0``), each KV head serves a group of query
    heads; KV gradients are summed back over the group.
    """

    def forward(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskPattern | None = None,
        scale: float | None = None,
        block_size: int = 128,
        cache: AttentionOutputCache | None = None,
        policy: CheckpointPolicy | None = None,
    ):
        from repro.attention.gqa import repeat_kv

        self.groups = 1
        if q.ndim == 3 and k.ndim == 3 and q.shape[0] != k.shape[0]:
            if q.shape[0] % k.shape[0] != 0:
                raise ValueError(
                    f"{q.shape[0]} query heads not divisible by "
                    f"{k.shape[0]} KV heads"
                )
            self.groups = q.shape[0] // k.shape[0]
            k = repeat_kv(k, self.groups)
            v = repeat_kv(v, self.groups)
        if scale is None:
            scale = 1.0 / np.sqrt(q.shape[-1])
        s = q.shape[-2]
        heads = q.shape[0] if q.ndim == 3 else 1
        head_dim = q.shape[-1]
        positions = np.arange(s)
        planned = planning_enabled() and mask is not None
        if planned:
            # Plan mode: classify sub-tiles from the pattern and resolve
            # bias per tile — the dense s x s mask never exists.
            dense = dense_bias = None
            bias_cache = BiasTileCache()
            plan = TilePlan.build(
                mask, positions, positions, block_size, block_size,
                bias_cache=bias_cache,
            )
        else:
            dense = mask.dense(s) if mask is not None else None
            dense_bias = (
                mask.bias_block(positions, positions)
                if mask is not None else None
            )
            bias_cache = None
            plan = None
        self.mask_dense = dense
        self.bias_dense = dense_bias
        self.plan = plan
        self.workspace = KernelWorkspace()
        self.scale = scale
        self.block_size = block_size

        policy = policy or CheckpointPolicy()
        cached = cache.pop(0) if (cache is not None and in_recompute()) else None

        if cached is not None and policy.mode is CheckpointMode.SELECTIVE_PP:
            o, lse = cached  # whole output whitelisted: zero recompute
        elif cached is not None and policy.mode is CheckpointMode.SEQUENCE_LEVEL:
            split = int(round(s * policy.split_fraction))
            o_back, lse_back = cached
            if planned:
                front_mask = front_bias = None
                front_plan = TilePlan.build(
                    mask, positions[:split], positions,
                    block_size, block_size, bias_cache=bias_cache,
                )
            else:
                front_plan = None
                front_mask = dense[:split, :] if dense is not None else None
                front_bias = (
                    dense_bias[..., :split, :]
                    if dense_bias is not None else None
                )
            with trace_span("ckpt.recompute-front", phase="ckpt-recompute",
                            split=split, seq=s):
                o_front, lse_front = get_backend().flash_forward(
                    q[..., :split, :], k, v, mask=front_mask, scale=scale,
                    block_q=block_size, block_k=block_size, bias=front_bias,
                    plan=front_plan, workspace=self.workspace,
                )
            get_tracker().add_recompute_flops(
                _attention_flops(_mask_pairs(mask, split, s), heads, head_dim)
            )
            o = np.concatenate([o_front, o_back], axis=-2)
            lse = np.concatenate([lse_front, lse_back], axis=-1)
        else:
            o, lse = get_backend().flash_forward(
                q, k, v, mask=dense, scale=scale,
                block_q=block_size, block_k=block_size, bias=dense_bias,
                plan=plan, workspace=self.workspace,
            )
            if in_recompute():
                get_tracker().add_recompute_flops(
                    _attention_flops(_mask_pairs(mask, s, s), heads, head_dim)
                )

        if (
            cache is not None
            and policy.caches_attention_output
            and not in_recompute()
            and not is_grad_enabled()
        ):
            # First (no-grad) pass of a checkpointed layer: whitelist the
            # outputs the recompute pass will want.
            if policy.mode is CheckpointMode.SELECTIVE_PP:
                cache.put(0, o.copy(), lse.copy())
            else:  # SEQUENCE_LEVEL: store the expensive-to-recompute suffix
                split = int(round(s * policy.split_fraction))
                cache.put(0, o[..., split:, :].copy(), lse[..., split:].copy())

        self.save_for_backward(q, k, v, o, lse)
        return o

    def backward(self, grad_out: np.ndarray):
        from repro.attention.gqa import fold_kv_grad

        q, k, v, o, lse = self.saved
        dq, dk, dv = get_backend().flash_backward(
            q, k, v, o, lse, grad_out,
            mask=self.mask_dense, scale=self.scale,
            block_q=self.block_size, block_k=self.block_size,
            bias=self.bias_dense,
            plan=self.plan, workspace=self.workspace,
        )
        if self.groups > 1:
            dk = fold_kv_grad(dk, self.groups)
            dv = fold_kv_grad(dv, self.groups)
        return dq, dk, dv


def flash_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: MaskPattern | None = None,
    scale: float | None = None,
    block_size: int = 128,
    cache: AttentionOutputCache | None = None,
    policy: CheckpointPolicy | None = None,
) -> Tensor:
    """Differentiable flash attention over ``(H, S, Dh)`` tensors."""
    return FlashAttentionFn.apply(
        q, k, v, mask=mask, scale=scale, block_size=block_size,
        cache=cache, policy=policy,
    )
