"""Model checkpoint save/load (npz).

Parameters are stored by their ``named_parameters`` path, so any module
tree round-trips; a strict load verifies that names and shapes match
exactly (catching architecture drift between save and load).
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module


def save_model(model: Module, path: str) -> int:
    """Write all parameters to ``path`` (npz); returns parameter count."""
    arrays = {name: p.data for name, p in model.named_parameters()}
    np.savez(path, **arrays)
    return sum(a.size for a in arrays.values())


def load_model(model: Module, path: str, strict: bool = True) -> list[str]:
    """Load parameters in place.

    With ``strict`` (default), missing/unexpected/shape-mismatched entries
    raise; otherwise they are skipped and returned.
    """
    with np.load(path) as data:
        stored = {name: data[name] for name in data.files}
    skipped: list[str] = []
    current = dict(model.named_parameters())
    for name, p in current.items():
        if name not in stored:
            if strict:
                raise KeyError(f"checkpoint is missing parameter {name!r}")
            skipped.append(name)
            continue
        if stored[name].shape != p.data.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint "
                    f"{stored[name].shape} vs model {p.data.shape}"
                )
            skipped.append(name)
            continue
        p.data = stored[name].copy()
    unexpected = sorted(set(stored) - set(current))
    if unexpected and strict:
        raise KeyError(f"checkpoint has unexpected parameters: {unexpected}")
    skipped.extend(unexpected)
    return skipped
