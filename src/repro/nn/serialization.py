"""Checkpointing: atomic, checksum-verified model and train-state snapshots.

Two checkpoint kinds share one on-disk discipline:

* **Model checkpoints** (:func:`save_model` / :func:`load_model`) store the
  parameters by their ``named_parameters`` path, so any module tree
  round-trips; a strict load verifies that names and shapes match exactly
  (catching architecture drift between save and load).

* **Train-state snapshots** (:func:`save_train_state` /
  :func:`load_train_state`) additionally capture everything a resumed run
  needs to continue *bitwise*: optimizer moments (via
  ``Optimizer.state_dict``), the step / micro-batch cursors, the trainer's
  history and best-eval watermark, and the :mod:`repro.nn.rng` stream.

Durability discipline (what real large-run checkpointing does):

* every write goes to a temporary file in the destination directory, is
  flushed and ``fsync``-ed, then atomically renamed over the target with
  :func:`os.replace` — a crash mid-save can never truncate the previous
  good checkpoint;
* every file embeds a SHA-256 **manifest checksum** over all entries
  (names, dtypes, shapes, bytes); loads recompute and compare, raising
  :class:`CheckpointError` on any corruption instead of silently training
  from garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterable

import numpy as np

from repro.nn.modules import Module
from repro.nn.optim import Optimizer

#: npz entry holding the SHA-256 manifest digest of all other entries.
CHECKSUM_KEY = "__checksum__"
#: npz entry holding the JSON metadata of a train-state snapshot.
META_KEY = "__meta__"
#: Train-state snapshot format version.
FORMAT_VERSION = 1

_PARAM_PREFIX = "param:"
_OPT_PREFIX = "opt:"


class CheckpointError(RuntimeError):
    """A checkpoint failed integrity or structure verification."""


# --- on-disk discipline ------------------------------------------------------


def checksum_arrays(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 manifest digest over named arrays (order-independent)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(b"\0")
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def atomic_savez(path: str, arrays: dict[str, np.ndarray]) -> None:
    """Write an npz atomically: tmp file in the same dir + fsync + rename."""
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **arrays)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Best-effort directory fsync so the rename itself is durable.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def _load_verified(path: str) -> dict[str, np.ndarray]:
    """Load an npz and verify its manifest checksum when present."""
    with np.load(path) as data:
        stored = {name: data[name] for name in data.files}
    digest = stored.pop(CHECKSUM_KEY, None)
    if digest is not None:
        actual = checksum_arrays(stored)
        if str(digest) != actual:
            raise CheckpointError(
                f"checkpoint {path!r} is corrupt: manifest checksum mismatch "
                f"(stored {str(digest)[:12]}…, recomputed {actual[:12]}…)"
            )
    return stored


# --- model checkpoints -------------------------------------------------------


def save_model(model: Module, path: str) -> int:
    """Atomically write all parameters to ``path`` (npz with a manifest
    checksum); returns parameter count."""
    arrays = {name: p.data for name, p in model.named_parameters()}
    payload = dict(arrays)
    payload[CHECKSUM_KEY] = np.array(checksum_arrays(arrays))
    atomic_savez(path, payload)
    return sum(a.size for a in arrays.values())


def load_model(model: Module, path: str, strict: bool = True) -> list[str]:
    """Load parameters in place, verifying the manifest checksum first.

    With ``strict`` (default), missing/unexpected/shape-mismatched entries
    raise; otherwise they are skipped and returned.  Checkpoints written
    before manifest checksums existed (no ``__checksum__`` entry) load
    without integrity verification.
    """
    stored = _load_verified(path)
    stored.pop(META_KEY, None)
    skipped: list[str] = []
    current = dict(model.named_parameters())
    for name, p in current.items():
        if name not in stored:
            if strict:
                raise KeyError(f"checkpoint is missing parameter {name!r}")
            skipped.append(name)
            continue
        if stored[name].shape != p.data.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint "
                    f"{stored[name].shape} vs model {p.data.shape}"
                )
            skipped.append(name)
            continue
        p.data = stored[name].copy()
    unexpected = sorted(set(stored) - set(current))
    if unexpected and strict:
        raise KeyError(f"checkpoint has unexpected parameters: {unexpected}")
    skipped.extend(unexpected)
    return skipped


# --- train-state snapshots ---------------------------------------------------


def save_train_state(
    path: str,
    model: Module,
    optimizer: Optimizer,
    *,
    step: int,
    micro: int = 0,
    history: Iterable[dict] = (),
    best_eval: float | None = None,
    engine_step: int | None = None,
    rng_state: dict | None = None,
    extra: dict | None = None,
) -> str:
    """Atomically snapshot a full training run; returns the manifest digest.

    Parameters
    ----------
    step:
        Number of completed optimizer steps (the resumed run continues at
        this 0-indexed step).
    micro:
        Micro-batch cursor (grad-accumulation position in the batch cycle).
    history:
        JSON-serialisable per-step records (e.g. ``asdict(TrainRecord)``).
    best_eval, engine_step:
        Trainer best-eval watermark and engine step counter.
    rng_state:
        Snapshot of the model RNG stream; defaults to the live
        :func:`repro.nn.rng.get_rng_state`.
    extra:
        Free-form JSON-serialisable payload (schedule config, run id, …).
    """
    from repro.nn.rng import get_rng_state

    arrays: dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        arrays[_PARAM_PREFIX + name] = p.data
    opt_state = optimizer.state_dict()
    for key, arr in opt_state.pop("arrays").items():
        arrays[_OPT_PREFIX + key] = arr
    meta = {
        "version": FORMAT_VERSION,
        "step": int(step),
        "micro": int(micro),
        "best_eval": best_eval,
        "engine_step": engine_step,
        "history": list(history),
        "rng": rng_state if rng_state is not None else get_rng_state(),
        "optimizer": opt_state,
        "extra": extra or {},
    }
    arrays[META_KEY] = np.array(json.dumps(meta))
    digest = checksum_arrays(arrays)
    payload = dict(arrays)
    payload[CHECKSUM_KEY] = np.array(digest)
    atomic_savez(path, payload)
    return digest


def verify_train_state(path: str) -> dict:
    """Structural + integrity verification of a snapshot, without a model.

    Stricter than :func:`load_train_state`'s tolerant read path: the file
    must parse as an npz, must *contain* a manifest checksum (a snapshot
    written without one is treated as partial, not legacy), the digest
    must match, the :data:`META_KEY` entry must hold valid JSON of the
    current :data:`FORMAT_VERSION`, and every parameter/optimizer entry
    must be covered by the manifest.  Returns the metadata dict.

    Raises :class:`CheckpointError` on any violation — including a file
    truncated by a crash mid-write, which the elastic recovery loop uses
    to fall back to the previous complete snapshot.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            stored = {name: data[name] for name in data.files}
    except CheckpointError:
        raise
    except Exception as exc:  # unreadable / truncated / not an npz
        raise CheckpointError(
            f"snapshot {path!r} is unreadable: {type(exc).__name__}: {exc}"
        ) from exc
    digest = stored.pop(CHECKSUM_KEY, None)
    if digest is None:
        raise CheckpointError(
            f"snapshot {path!r} has no manifest checksum (partial write?)"
        )
    actual = checksum_arrays(stored)
    if str(digest) != actual:
        raise CheckpointError(
            f"snapshot {path!r} is corrupt: manifest checksum mismatch "
            f"(stored {str(digest)[:12]}…, recomputed {actual[:12]}…)"
        )
    meta_arr = stored.pop(META_KEY, None)
    if meta_arr is None:
        raise CheckpointError(
            f"snapshot {path!r} is not a train-state snapshot "
            f"(no {META_KEY} entry)"
        )
    try:
        meta = json.loads(str(meta_arr))
    except (ValueError, TypeError) as exc:
        raise CheckpointError(
            f"snapshot {path!r} has undecodable metadata: {exc}"
        ) from exc
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot {path!r} has unsupported version "
            f"{meta.get('version')!r} (expected {FORMAT_VERSION})"
        )
    return meta


def load_train_state(
    path: str,
    model: Module,
    optimizer: Optimizer,
    *,
    restore_rng: bool = True,
) -> dict:
    """Restore a :func:`save_train_state` snapshot in place; returns meta.

    Verifies the manifest checksum, strictly loads parameters and optimizer
    state, restores the :mod:`repro.nn.rng` stream (unless ``restore_rng``
    is false), and returns the metadata dict (``step``, ``micro``,
    ``history``, ``best_eval``, ``engine_step``, ``extra``).
    """
    stored = _load_verified(path)
    meta_arr = stored.pop(META_KEY, None)
    if meta_arr is None:
        raise CheckpointError(
            f"{path!r} is not a train-state snapshot (no {META_KEY} entry)"
        )
    meta = json.loads(str(meta_arr))
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported train-state version {meta.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )

    params = {
        k[len(_PARAM_PREFIX):]: v
        for k, v in stored.items() if k.startswith(_PARAM_PREFIX)
    }
    current = dict(model.named_parameters())
    if set(params) != set(current):
        missing = sorted(set(current) - set(params))
        unexpected = sorted(set(params) - set(current))
        raise CheckpointError(
            f"parameter set mismatch: missing {missing}, unexpected {unexpected}"
        )
    for name, p in current.items():
        if params[name].shape != p.data.shape:
            raise CheckpointError(
                f"shape mismatch for {name!r}: snapshot {params[name].shape} "
                f"vs model {p.data.shape}"
            )
    for name, p in current.items():
        p.data = params[name].copy()

    opt_state = dict(meta["optimizer"])
    opt_state["arrays"] = {
        k[len(_OPT_PREFIX):]: v
        for k, v in stored.items() if k.startswith(_OPT_PREFIX)
    }
    optimizer.load_state_dict(opt_state)

    if restore_rng and meta.get("rng") is not None:
        from repro.nn.rng import set_rng_state

        set_rng_state(meta["rng"])
    return meta
