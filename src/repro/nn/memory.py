"""Activation-memory accounting for the autograd engine.

Every :class:`~repro.nn.function.Function` registers the bytes it saves for
its backward pass; the bytes are released when that backward runs (or the
graph is dropped).  ``peak_saved_bytes`` therefore measures exactly the
quantity gradient checkpointing trades against recomputation — letting the
tests *measure* that sequence-level selective checkpointing stores about
half of what selective++ stores (Fig. 7) rather than assert it from a
formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryTracker:
    """Tracks currently-saved and peak activation bytes plus recompute work."""

    current_saved_bytes: int = 0
    peak_saved_bytes: int = 0
    recompute_flops: float = 0.0
    _live: dict[int, int] = field(default_factory=dict)
    _next_handle: int = 0

    def register(self, nbytes: int) -> int:
        """Record ``nbytes`` of saved activations; returns a release handle."""
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = nbytes
        self.current_saved_bytes += nbytes
        self.peak_saved_bytes = max(self.peak_saved_bytes, self.current_saved_bytes)
        return handle

    def release(self, handle: int) -> None:
        nbytes = self._live.pop(handle, 0)
        self.current_saved_bytes -= nbytes

    def add_recompute_flops(self, flops: float) -> None:
        self.recompute_flops += flops

    def reset(self) -> None:
        self.current_saved_bytes = 0
        self.peak_saved_bytes = 0
        self.recompute_flops = 0.0
        self._live.clear()


_TRACKER = MemoryTracker()


def get_tracker() -> MemoryTracker:
    """The process-wide activation memory tracker."""
    return _TRACKER


def reset_tracker() -> MemoryTracker:
    """Clear all counters (call between experiments)."""
    _TRACKER.reset()
    return _TRACKER
