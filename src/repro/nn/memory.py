"""Activation-memory accounting for the autograd engine.

Every :class:`~repro.nn.function.Function` registers the bytes it saves for
its backward pass; the bytes are released when that backward runs (or the
graph is dropped).  ``peak_saved_bytes`` therefore measures exactly the
quantity gradient checkpointing trades against recomputation — letting the
tests *measure* that sequence-level selective checkpointing stores about
half of what selective++ stores (Fig. 7) rather than assert it from a
formula.

The three readings are backed by gauges (``memory.current_saved_bytes``,
``memory.peak_saved_bytes``, ``memory.recompute_flops``) in the global
:mod:`repro.obs.metrics` registry, so one registry snapshot covers memory
alongside the tile and comm counters; the attribute API below is
unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry


class MemoryTracker:
    """Tracks currently-saved and peak activation bytes plus recompute work."""

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = MetricsRegistry()
        self._current = registry.gauge("memory.current_saved_bytes")
        self._peak = registry.gauge("memory.peak_saved_bytes")
        self._recompute = registry.gauge("memory.recompute_flops")
        self._live: dict[int, int] = {}
        self._next_handle = 0

    @property
    def current_saved_bytes(self) -> int:
        return int(self._current._value)

    @current_saved_bytes.setter
    def current_saved_bytes(self, value: int) -> None:
        self._current._value = float(value)

    @property
    def peak_saved_bytes(self) -> int:
        return int(self._peak._value)

    @peak_saved_bytes.setter
    def peak_saved_bytes(self, value: int) -> None:
        self._peak._value = float(value)

    @property
    def recompute_flops(self) -> float:
        return self._recompute._value

    @recompute_flops.setter
    def recompute_flops(self, value: float) -> None:
        self._recompute._value = float(value)

    def register(self, nbytes: int) -> int:
        """Record ``nbytes`` of saved activations; returns a release handle."""
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = nbytes
        current = self._current._value + nbytes
        self._current._value = current
        if current > self._peak._value:
            self._peak._value = current
        return handle

    def release(self, handle: int) -> None:
        nbytes = self._live.pop(handle, 0)
        self._current._value -= nbytes

    def add_recompute_flops(self, flops: float) -> None:
        self._recompute._value += flops

    def reset(self) -> None:
        self._current._value = 0.0
        self._peak._value = 0.0
        self._recompute._value = 0.0
        self._live.clear()


_TRACKER = MemoryTracker(registry=get_registry())


def get_tracker() -> MemoryTracker:
    """The process-wide activation memory tracker."""
    return _TRACKER


def reset_tracker() -> MemoryTracker:
    """Clear all counters (call between experiments)."""
    _TRACKER.reset()
    return _TRACKER
