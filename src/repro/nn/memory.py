"""Activation-memory accounting for the autograd engine.

Every :class:`~repro.nn.function.Function` registers the bytes it saves for
its backward pass; the bytes are released when that backward runs (or the
graph is dropped).  ``peak_saved_bytes`` therefore measures exactly the
quantity gradient checkpointing trades against recomputation — letting the
tests *measure* that sequence-level selective checkpointing stores about
half of what selective++ stores (Fig. 7) rather than assert it from a
formula.

The three readings are backed by gauges (``memory.current_saved_bytes``,
``memory.peak_saved_bytes``, ``memory.recompute_flops``) in the global
:mod:`repro.obs.metrics` registry, so one registry snapshot covers memory
alongside the tile and comm counters; the attribute API below is
unchanged.

The tracker is the allocation source for the memory-observability layer:
while a :class:`repro.obs.mem.MemoryTimeline` is installed, every
``register``/``release`` emits a timestamped watermark sample attributed
to the enclosing span and :func:`~repro.obs.mem.memory_scope` (layer,
phase, method), and an installed :class:`~repro.obs.mem.MemoryBudget`
sees every watermark advance.  All mutation happens under the tracker's
lock through the public gauge API, so concurrent graph construction (the
threaded kernel backend's callbacks, multi-rank tests) cannot tear the
watermark.

Release misuse is no longer silent: releasing a handle that is not live
(double release, or a handle the tracker never issued) counts the
``memory.release_errors`` metric, and raises when strict mode is on —
the test suite enables :func:`set_strict_release` globally.  Handles
issued before the last :meth:`MemoryTracker.reset` are exempt (dropping
a stale graph after a reset is legal teardown, not a bug).
"""

from __future__ import annotations

import threading

from repro.obs import mem as obs_mem
from repro.obs.metrics import MetricsRegistry, get_registry

_STRICT_RELEASE = False


def set_strict_release(enabled: bool) -> bool:
    """Make release misuse raise (tests) instead of just counting.

    Returns the previous setting so callers can restore it.
    """
    global _STRICT_RELEASE
    prev = _STRICT_RELEASE
    _STRICT_RELEASE = bool(enabled)
    return prev


def strict_release_enabled() -> bool:
    return _STRICT_RELEASE


class ReleaseError(KeyError):
    """A handle was released twice, or was never issued."""


class MemoryTracker:
    """Tracks currently-saved and peak activation bytes plus recompute work."""

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = MetricsRegistry()
        self._current = registry.gauge("memory.current_saved_bytes")
        self._peak = registry.gauge("memory.peak_saved_bytes")
        self._recompute = registry.gauge("memory.recompute_flops")
        self._release_errors = registry.counter("memory.release_errors")
        self._live: dict[int, tuple[int, str]] = {}
        self._next_handle = 0
        self._reset_floor = 0
        self._lock = threading.RLock()

    @property
    def current_saved_bytes(self) -> int:
        return int(self._current.value())

    @current_saved_bytes.setter
    def current_saved_bytes(self, value: int) -> None:
        with self._lock:
            self._current.set(float(value))

    @property
    def peak_saved_bytes(self) -> int:
        return int(self._peak.value())

    @peak_saved_bytes.setter
    def peak_saved_bytes(self, value: int) -> None:
        with self._lock:
            self._peak.set(float(value))

    @property
    def recompute_flops(self) -> float:
        return self._recompute.value()

    @recompute_flops.setter
    def recompute_flops(self, value: float) -> None:
        with self._lock:
            self._recompute.set(float(value))

    @property
    def live_handles(self) -> int:
        """Number of saved-activation handles not yet released."""
        with self._lock:
            return len(self._live)

    def register(self, nbytes: int, site: str = "") -> int:
        """Record ``nbytes`` of saved activations; returns a release handle.

        ``site`` labels the allocation for timeline attribution (the
        autograd Function class name, ``attn.cache``, ``head.resident``,
        ...); it costs nothing when no timeline is installed.
        """
        nbytes = int(nbytes)
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._live[handle] = (nbytes, site)
            current = int(self._current.value()) + nbytes
            self._current.set(float(current))
            if current > self._peak.value():
                self._peak.set(float(current))
            obs_mem.observe(obs_mem.SAVED, "alloc", nbytes, current, handle, site)
        return handle

    def release(self, handle: int) -> None:
        with self._lock:
            entry = self._live.pop(handle, None)
            if entry is None:
                if handle < self._reset_floor:
                    return  # stale handle from a graph dropped by reset()
                self._release_errors.inc()
                if _STRICT_RELEASE:
                    raise ReleaseError(
                        f"memory handle {handle} released twice or never issued"
                    )
                return
            nbytes, site = entry
            current = int(self._current.value()) - nbytes
            self._current.set(float(current))
            obs_mem.observe(
                obs_mem.SAVED, "free", -nbytes, current, handle, site
            )

    def add_recompute_flops(self, flops: float) -> None:
        with self._lock:
            self._recompute.set(self._recompute.value() + flops)

    def reset(self) -> None:
        with self._lock:
            self._current.set(0.0)
            self._peak.set(0.0)
            self._recompute.set(0.0)
            self._live.clear()
            # Handles below the floor were orphaned by this reset; their
            # eventual release is legal teardown and must stay silent.
            self._reset_floor = self._next_handle
        obs_mem.reset_transients()


_TRACKER = MemoryTracker(registry=get_registry())


def get_tracker() -> MemoryTracker:
    """The process-wide activation memory tracker."""
    return _TRACKER


def reset_tracker() -> MemoryTracker:
    """Clear all counters (call between experiments)."""
    _TRACKER.reset()
    return _TRACKER
