"""Differentiable operations for the numpy autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn.function import Function
from repro.nn.tensor import Tensor, _wrap


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Add(Function):
    def forward(self, a, b):
        self.shapes = (a.shape, b.shape)
        return a + b

    def backward(self, g):
        sa, sb = self.shapes
        return _unbroadcast(g, sa), _unbroadcast(g, sb)


class Sub(Function):
    def forward(self, a, b):
        self.shapes = (a.shape, b.shape)
        return a - b

    def backward(self, g):
        sa, sb = self.shapes
        return _unbroadcast(g, sa), _unbroadcast(-g, sb)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, g):
        a, b = self.saved
        return _unbroadcast(g * b, a.shape), _unbroadcast(g * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, g):
        a, b = self.saved
        return (
            _unbroadcast(g / b, a.shape),
            _unbroadcast(-g * a / (b * b), b.shape),
        )


class MatMul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return np.matmul(a, b)

    def backward(self, g):
        a, b = self.saved
        ga = np.matmul(g, np.swapaxes(b, -1, -2))
        gb = np.matmul(np.swapaxes(a, -1, -2), g)
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)


class Pow(Function):
    def forward(self, a, exponent: float):
        self.exponent = exponent
        self.save_for_backward(a)
        return a**exponent

    def backward(self, g):
        (a,) = self.saved
        return (g * self.exponent * a ** (self.exponent - 1),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, g):
        (out,) = self.saved
        return (g * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, g):
        (a,) = self.saved
        return (g / a,)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, g):
        (out,) = self.saved
        return (g * (1.0 - out * out),)


class SiLU(Function):
    """x * sigmoid(x) — LLaMA's activation."""

    def forward(self, a):
        sig = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(a, sig)
        return a * sig

    def backward(self, g):
        a, sig = self.saved
        return (g * (sig * (1.0 + a * (1.0 - sig))),)


class GELU(Function):
    """Tanh-approximate GELU."""

    _C = np.sqrt(2.0 / np.pi)

    def forward(self, a):
        inner = self._C * (a + 0.044715 * a**3)
        t = np.tanh(inner)
        self.save_for_backward(a, t)
        return 0.5 * a * (1.0 + t)

    def backward(self, g):
        a, t = self.saved
        d_inner = self._C * (1.0 + 3 * 0.044715 * a**2)
        grad = 0.5 * (1.0 + t) + 0.5 * a * (1.0 - t * t) * d_inner
        return (g * grad,)


class Sum(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, g):
        g = np.asarray(g)
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for ax in sorted(a % len(self.in_shape) for a in axes):
                g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, self.in_shape).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        out = a.mean(axis=axis, keepdims=keepdims)
        self.count = a.size / out.size
        return out

    def backward(self, g):
        g = np.asarray(g) / self.count
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for ax in sorted(a % len(self.in_shape) for a in axes):
                g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, self.in_shape).copy(),)


class Reshape(Function):
    def forward(self, a, shape):
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, g):
        return (g.reshape(self.in_shape),)


class Swapaxes(Function):
    def forward(self, a, ax1: int, ax2: int):
        self.axes = (ax1, ax2)
        return np.swapaxes(a, ax1, ax2)

    def backward(self, g):
        return (np.swapaxes(g, *self.axes),)


class GetItem(Function):
    def forward(self, a, key):
        self.in_shape = a.shape
        self.key = key
        return a[key]

    def backward(self, g):
        out = np.zeros(self.in_shape)
        np.add.at(out, self.key, g)
        return (out,)


class Concat(Function):
    def forward(self, *arrays, axis=0):
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, g):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.split(g, splits, axis=self.axis))


class DropoutFn(Function):
    """Inverted dropout: scale survivors by ``1/(1-p)`` at train time."""

    def forward(self, a, p: float = 0.1, rng=None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        if rng is None:
            rng = np.random.default_rng()
        keep = 1.0 - p
        self.mask = (rng.random(a.shape) < keep) / keep
        return a * self.mask

    def backward(self, g):
        return (g * self.mask,)


class EmbeddingLookup(Function):
    """Row gather from an embedding table (integer ids are non-diff)."""

    def forward(self, table, ids):
        self.ids = np.asarray(ids)
        self.table_shape = table.shape
        return table[self.ids]

    def backward(self, g):
        grad = np.zeros(self.table_shape)
        np.add.at(grad, self.ids, g)
        return (grad,)


# --- functional wrappers ------------------------------------------------------


def add(a, b):
    return Add.apply(_wrap(a), _wrap(b))


def sub(a, b):
    return Sub.apply(_wrap(a), _wrap(b))


def mul(a, b):
    return Mul.apply(_wrap(a), _wrap(b))


def div(a, b):
    return Div.apply(_wrap(a), _wrap(b))


def matmul(a, b):
    return MatMul.apply(_wrap(a), _wrap(b))


def pow(a, exponent: float):  # noqa: A001 - mirrors Tensor.__pow__
    return Pow.apply(_wrap(a), exponent)


def exp(a):
    return Exp.apply(_wrap(a))


def log(a):
    return Log.apply(_wrap(a))


def tanh(a):
    return Tanh.apply(_wrap(a))


def silu(a):
    return SiLU.apply(_wrap(a))


def gelu(a):
    return GELU.apply(_wrap(a))


def sum(a, axis=None, keepdims=False):  # noqa: A001 - mirrors Tensor.sum
    return Sum.apply(_wrap(a), axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims=False):
    return Mean.apply(_wrap(a), axis=axis, keepdims=keepdims)


def reshape(a, shape):
    return Reshape.apply(_wrap(a), tuple(shape))


def swapaxes(a, ax1: int, ax2: int):
    return Swapaxes.apply(_wrap(a), ax1, ax2)


def getitem(a, key):
    return GetItem.apply(_wrap(a), key)


def concat(tensors, axis=0):
    return Concat.apply(*[_wrap(t) for t in tensors], axis=axis)


def embedding(table, ids):
    return EmbeddingLookup.apply(_wrap(table), np.asarray(ids))


def dropout(a, p: float = 0.1, training: bool = True, rng=None):
    """Inverted dropout; identity when ``training`` is False or ``p == 0``.

    Without an explicit ``rng`` the mask comes from
    :func:`repro.nn.rng.current_rng`, so dropout inside a checkpointed
    layer replays identically during recomputation.
    """
    if not training or p == 0.0:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        return _wrap(a) if not isinstance(a, Tensor) else a
    if rng is None:
        from repro.nn.rng import current_rng

        rng = current_rng()
    return DropoutFn.apply(_wrap(a), p=p, rng=rng)


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """LLaMA RMSNorm: ``x / sqrt(mean(x^2) + eps) * weight`` (composite)."""
    variance = mean(mul(x, x), axis=-1, keepdims=True)
    inv = pow(add(variance, eps), -0.5)
    return mul(mul(x, inv), weight)
