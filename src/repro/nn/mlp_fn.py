"""Blockwise SwiGLU FFN as a single autograd Function.

The composed :class:`~repro.nn.modules.SwiGLU` path builds five graph
nodes (two projection matmuls, silu, mul, down matmul) and saves every
``(S, hidden)`` intermediate for backward.  :class:`BlockwiseMLPFn` fuses
the whole FFN into one node that saves only ``x`` and the three weights —
the intermediates are rematerialised chunk-by-chunk in backward by the
active kernel backend (:meth:`~repro.kernels.KernelBackend.mlp_backward`),
which is the Blockwise-Parallel-Transformer FFN trick.  Outputs and all
four gradients are bitwise-identical to the composed path (pinned by
``tests/test_blockwise_mlp.py``).

``chunk_size`` is ``mlp_chunk_size`` at the module/config/policy layer;
``None`` still fuses (one node, only ``x`` saved) but computes densely.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_backend
from repro.nn.function import Function
from repro.nn.tensor import Tensor


class BlockwiseMLPFn(Function):
    """``y = silu(x @ Wg^T) * (x @ Wu^T) @ Wd^T`` as one graph node."""

    def forward(
        self,
        x: np.ndarray,
        w_gate: np.ndarray,
        w_up: np.ndarray,
        w_down: np.ndarray,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        self.chunk_size = chunk_size
        self.save_for_backward(x, w_gate, w_up, w_down)
        return get_backend().mlp_forward(
            x, w_gate, w_up, w_down, chunk_size=chunk_size
        )

    def backward(self, grad_out: np.ndarray):
        x, w_gate, w_up, w_down = self.saved
        return get_backend().mlp_backward(
            x, w_gate, w_up, w_down, grad_out, chunk_size=self.chunk_size
        )


def blockwise_mlp(
    x: Tensor,
    w_gate: Tensor,
    w_up: Tensor,
    w_down: Tensor,
    chunk_size: int | None = None,
) -> Tensor:
    """Functional wrapper: fused SwiGLU FFN through the kernel backend."""
    return BlockwiseMLPFn.apply(x, w_gate, w_up, w_down, chunk_size=chunk_size)
