"""Rotary position embeddings (RoPE), the LLaMA position encoding.

Each head dimension pair is rotated by an angle proportional to the
token's *global* position; attention scores then depend only on relative
position (``<R_m q, R_n k> = f(m - n)``), which is why RoPE composes with
sequence sharding for free: shards carry their global positions, queries
and keys are rotated before partitioning, and the distributed ring needs
no changes.

Convention: the "half-split" layout (rotate ``x[..., :d/2]`` against
``x[..., d/2:]``), matching LLaMA's reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.function import Function
from repro.nn.tensor import Tensor


def rope_angles(
    positions: np.ndarray, head_dim: int, theta: float = 10_000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(position, frequency) cos/sin tables, shape ``(S, head_dim/2)``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    inv_freq = theta ** (-np.arange(half) / half)
    ang = np.asarray(positions, dtype=np.float64)[:, None] * inv_freq[None, :]
    return np.cos(ang), np.sin(ang)


def rotate_half_split(
    x: np.ndarray, cos: np.ndarray, sin: np.ndarray, inverse: bool = False
) -> np.ndarray:
    """Apply the (inverse) rotation to ``(..., S, head_dim)`` arrays."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    if inverse:
        sin = -sin
    return np.concatenate([x1 * cos - x2 * sin, x2 * cos + x1 * sin], axis=-1)


class RoPEFn(Function):
    """Differentiable rotation.  Rotations are orthogonal, so the backward
    pass applies the inverse rotation to the incoming gradient."""

    def forward(self, x, positions=None, theta: float = 10_000.0):
        if positions is None:
            positions = np.arange(x.shape[-2])
        cos, sin = rope_angles(positions, x.shape[-1], theta)
        self.tables = (cos, sin)
        return rotate_half_split(x, cos, sin)

    def backward(self, grad_out):
        cos, sin = self.tables
        return (rotate_half_split(grad_out, cos, sin, inverse=True),)


def apply_rope(
    x: Tensor, positions: np.ndarray | None = None, theta: float = 10_000.0
) -> Tensor:
    """Rotate ``(H, S, head_dim)`` queries or keys by their positions."""
    return RoPEFn.apply(x, positions=positions, theta=theta)
