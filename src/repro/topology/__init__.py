"""Cluster topology description: devices, nodes, links, and hardware presets.

The topology layer is the single source of truth for "where ranks live":
which GPUs share a node (NVLink class links) and which pairs of ranks must
cross the inter-node network (InfiniBand class links).  Both the simulated
communicator (:mod:`repro.comm`) and the discrete-event performance model
(:mod:`repro.perf`) consult the same :class:`ClusterTopology` object, so
traffic classification and timing always agree.
"""

from repro.topology.hardware import (
    GPUSpec,
    LinkSpec,
    NodeSpec,
    A800_GPU,
    A100_GPU,
    NVLINK_400,
    IB_HDR_200,
    a800_node,
    a100_node,
)
from repro.topology.cluster import (
    ClusterTopology,
    LinkClass,
    make_cluster,
    shrink_cluster,
)

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "NodeSpec",
    "A800_GPU",
    "A100_GPU",
    "NVLINK_400",
    "IB_HDR_200",
    "a800_node",
    "a100_node",
    "ClusterTopology",
    "LinkClass",
    "make_cluster",
    "shrink_cluster",
]
