"""Cluster topology: rank placement and link classification.

A :class:`ClusterTopology` is a grid of ``num_nodes`` nodes times
``gpus_per_node`` GPUs.  Global ranks are dense, node-major::

    rank = node_index * gpus_per_node + local_index

The two queries everything else relies on are :meth:`link_class` (does a
rank pair cross the node boundary?) and the sub-ring construction helpers
used by topology-aware ring communication.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.topology.hardware import LinkSpec, NodeSpec, a800_node


class LinkClass(enum.Enum):
    """Classification of a rank-pair connection."""

    LOCAL = "local"  # same GPU (no transfer)
    INTRA = "intra"  # same node, NVLink
    INTER = "inter"  # different nodes, InfiniBand


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous multi-node GPU cluster.

    Parameters
    ----------
    num_nodes:
        Number of hosts.
    node:
        Per-host hardware description.  Defaults to the paper's A800 node.
    """

    num_nodes: int
    node: NodeSpec

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.node.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.node.gpus_per_node}"
            )

    # --- basic geometry ---------------------------------------------------

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")

    # --- link queries -------------------------------------------------------

    def link_class(self, src: int, dst: int) -> LinkClass:
        """Classify the connection between two global ranks."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return LinkClass.LOCAL
        if self.node_of(src) == self.node_of(dst):
            return LinkClass.INTRA
        return LinkClass.INTER

    def link_spec(self, cls: LinkClass) -> LinkSpec:
        if cls is LinkClass.INTRA:
            return self.node.intra_link
        if cls is LinkClass.INTER:
            return self.node.inter_link
        raise ValueError(f"no link spec for {cls}")

    def transfer_time(self, nbytes: float, cls: LinkClass) -> float:
        """Point-to-point time ``latency + nbytes / bandwidth`` for one hop."""
        if cls is LinkClass.LOCAL or nbytes == 0:
            return 0.0
        spec = self.link_spec(cls)
        return spec.latency + nbytes / spec.bandwidth

    # --- ring constructions -------------------------------------------------

    def global_ring(self) -> list[int]:
        """The flat ring ``0 -> 1 -> ... -> G-1 -> 0`` used by RingAttention.

        With node-major rank order, every node boundary crossing in this
        ring is an inter-node hop, so a naive global ring is bottlenecked
        by the slowest (inter-node) link on every step.
        """
        return list(range(self.world_size))

    def intra_node_rings(self) -> list[list[int]]:
        """One sub-ring per node covering that node's local ranks."""
        g = self.gpus_per_node
        return [
            list(range(n * g, (n + 1) * g)) for n in range(self.num_nodes)
        ]

    def inter_node_ring(self, local_index: int = 0) -> list[int]:
        """Ring that connects one representative GPU per node.

        Topology-aware communication runs ``gpus_per_node`` of these in
        parallel (``local_index = 0..g-1``), one per NIC, which is how all
        NICs of a node are saturated simultaneously.
        """
        if not 0 <= local_index < self.gpus_per_node:
            raise ValueError(
                f"local_index {local_index} out of range [0, {self.gpus_per_node})"
            )
        g = self.gpus_per_node
        return [n * g + local_index for n in range(self.num_nodes)]

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.num_nodes} node(s) x {self.gpus_per_node} {self.node.gpu.name} "
            f"({self.node.intra_link.name} intra, {self.node.inter_link.name} x"
            f"{self.node.nics_per_node} inter)"
        )


def shrink_cluster(
    topology: ClusterTopology, failed: "list[int] | tuple[int, ...] | set[int]"
) -> ClusterTopology:
    """Rebuild a topology over the survivors after rank failures.

    Elastic recovery densifies the surviving ranks — identities are
    reassigned ``0..G-k-1`` in the old rank order — and repacks them into
    nodes: the new ``gpus_per_node`` is the largest divisor of the survivor
    count that does not exceed the original node width, so every node stays
    full (the invariant :func:`make_cluster` enforces) while the hardware
    description (links, NICs, GPU spec) carries over unchanged.
    """
    dead = set(failed)
    for r in dead:
        topology._check_rank(r)
    survivors = topology.world_size - len(dead)
    if survivors < 1:
        raise ValueError(
            f"cannot shrink {topology.world_size} ranks by {len(dead)}: "
            "no survivors"
        )
    width = topology.gpus_per_node
    per_node = max(d for d in range(1, width + 1) if survivors % d == 0)
    node = topology.node
    if per_node != node.gpus_per_node:
        node = dataclasses.replace(node, gpus_per_node=per_node)
    return ClusterTopology(num_nodes=survivors // per_node, node=node)


def make_cluster(num_gpus: int, gpus_per_node: int = 8, node: NodeSpec | None = None) -> ClusterTopology:
    """Build a cluster of ``num_gpus`` GPUs packed into full nodes.

    ``num_gpus`` smaller than ``gpus_per_node`` yields a single partial node
    (the single-node scalability setting of Table 5).
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    if node is None:
        node = a800_node(gpus_per_node=min(gpus_per_node, num_gpus))
    if num_gpus <= node.gpus_per_node:
        num_nodes = 1
        if num_gpus != node.gpus_per_node:
            node = dataclasses.replace(node, gpus_per_node=num_gpus)
    else:
        if num_gpus % node.gpus_per_node != 0:
            raise ValueError(
                f"num_gpus={num_gpus} is not a multiple of gpus_per_node="
                f"{node.gpus_per_node}"
            )
        num_nodes = num_gpus // node.gpus_per_node
    return ClusterTopology(num_nodes=num_nodes, node=node)
