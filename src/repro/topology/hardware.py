"""Hardware specifications for GPUs, links, and nodes.

All bandwidth figures are stored in **bytes per second** and latencies in
**seconds** so that cost arithmetic never needs unit conversions.  Presets
match the paper's testbed: A800-SXM4-80GB nodes with 400 GB/s NVLink and
8 x 200 Gb/s HDR InfiniBand NICs per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field


GB = 1e9
GIB = 2**30


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"A800-SXM4-80GB"``.
    peak_flops:
        Peak dense matmul throughput in FLOP/s for the training dtype
        (bf16 with fp32 accumulate on Ampere).
    memory_bytes:
        Usable HBM capacity in bytes.  Peak-memory models treat exceeding
        this as an out-of-memory failure.
    memory_bandwidth:
        HBM bandwidth in bytes/s (used by bandwidth-bound cost terms such
        as softmax and elementwise passes).
    """

    name: str
    peak_flops: float
    memory_bytes: float
    memory_bandwidth: float


@dataclass(frozen=True)
class LinkSpec:
    """A communication link class.

    ``bandwidth`` is the per-direction bandwidth available to a single
    ring neighbour transfer in bytes/s; ``latency`` is the fixed per-message
    launch cost in seconds.
    """

    name: str
    bandwidth: float
    latency: float


@dataclass(frozen=True)
class NodeSpec:
    """A host with ``gpus_per_node`` GPUs, an intra-node fabric and NICs.

    Attributes
    ----------
    nics_per_node:
        Number of network interface controllers.  Topology-aware rings can
        drive all NICs concurrently (one per intra-node GPU pair crossing
        the node boundary), which is exactly the effect the paper exploits.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    intra_link: LinkSpec
    inter_link: LinkSpec
    nics_per_node: int = 8
    cpu_cores: int = 128


# --- Presets matching the paper's experimental settings -------------------

#: A800 keeps A100 compute but caps NVLink at 400 GB/s aggregate.
A800_GPU = GPUSpec(
    name="A800-SXM4-80GB",
    peak_flops=312e12,
    memory_bytes=80 * GB,
    memory_bandwidth=2039 * GB / 1.0,
)

A100_GPU = GPUSpec(
    name="A100-SXM4-80GB",
    peak_flops=312e12,
    memory_bytes=80 * GB,
    memory_bandwidth=2039 * GB / 1.0,
)

#: 400 GB/s aggregate NVLink.  A single ring-neighbour NCCL flow sustains
#: ~160 GB/s effective (measured p2p efficiency), which is the number the
#: timing model needs.
NVLINK_400 = LinkSpec(name="NVLink-400GBps", bandwidth=160 * GB, latency=5e-6)

#: HDR InfiniBand NIC: 200 Gb/s = 25 GB/s line rate; a single NCCL p2p
#: flow across nodes lands near half of that in practice.
IB_HDR_200 = LinkSpec(name="IB-HDR-200Gbps", bandwidth=12.5 * GB, latency=12e-6)


def a800_node(gpus_per_node: int = 8, nics_per_node: int = 8) -> NodeSpec:
    """The paper's A800 node: 8 GPUs, 400 GB/s NVLink, 8 HDR NICs."""
    return NodeSpec(
        name="A800-node",
        gpu=A800_GPU,
        gpus_per_node=gpus_per_node,
        intra_link=NVLINK_400,
        inter_link=IB_HDR_200,
        nics_per_node=nics_per_node,
    )


def a100_node(gpus_per_node: int = 8, nics_per_node: int = 8) -> NodeSpec:
    """A100 node used in the attention-only benchmark (Figure 14)."""
    return NodeSpec(
        name="A100-node",
        gpu=A100_GPU,
        gpus_per_node=gpus_per_node,
        intra_link=NVLINK_400,
        inter_link=IB_HDR_200,
        nics_per_node=nics_per_node,
    )
