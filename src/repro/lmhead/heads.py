"""LM head + cross-entropy: naive, tiled-recompute, and fused (Alg. 3).

Semantics shared by all three implementations::

    Logits = H @ W^T                    # (N, v)
    loss   = CE(softmax(Logits), Y)     # mean or sum over tokens
    dH, dW = d loss / d(H, W)

The implementations differ only in *what is materialised when*:

===============  =========================  ==========================
implementation   persists fwd->bwd          extra backward compute
===============  =========================  ==========================
naive            full logits (N*v)          none
tiled            Lse (N)                    recompute logits (+2Nvd)
fused (Alg. 3)   nothing (grads produced    none (backward fused into
                 in the forward pass)       the forward tile loop)
===============  =========================  ==========================

The fused kernel caches the logits tiles of the *current* sequence block
only (``B_s * v`` transient), runs the backward tile loop immediately
after the block's ``Lse`` is final, and emits ``dH``/``dW`` directly —
this is the sequence-level fusion of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.softmax import logsumexp
from repro.obs.tracer import trace_span, traced


@dataclass(frozen=True)
class HeadStats:
    """Cost accounting for one head+loss implementation run.

    ``peak_resident_bytes`` is what must live from forward to backward
    (the Fig. 8 quantity); ``peak_temp_bytes`` is the largest transient
    buffer; ``matmul_flops`` counts multiply-adds x2 in the big GEMMs.
    """

    name: str
    peak_resident_bytes: int
    peak_temp_bytes: int
    matmul_flops: int


@dataclass
class HeadResult:
    """Loss value, input/weight gradients, and cost statistics."""

    loss: float
    dh: np.ndarray
    dw: np.ndarray
    lse: np.ndarray
    stats: HeadStats


def _validate(h: np.ndarray, w: np.ndarray, y: np.ndarray) -> None:
    if h.ndim != 2 or w.ndim != 2:
        raise ValueError(f"H must be (N, d) and W (v, d); got {h.shape}, {w.shape}")
    if h.shape[1] != w.shape[1]:
        raise ValueError(f"hidden dims differ: {h.shape[1]} vs {w.shape[1]}")
    if y.shape != (h.shape[0],):
        raise ValueError(f"targets must be ({h.shape[0]},), got {y.shape}")
    if (y < 0).any() or (y >= w.shape[0]).any():
        raise ValueError("target ids out of vocabulary range")


def _grad_scale(n: int, reduction: str) -> float:
    if reduction == "mean":
        return 1.0 / n
    if reduction == "sum":
        return 1.0
    raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")


@traced("lmhead.naive", "lmhead", impl="naive")
def naive_lm_head_loss(
    h: np.ndarray, w: np.ndarray, y: np.ndarray, reduction: str = "mean"
) -> HeadResult:
    """Reference implementation materialising the full logits matrix."""
    _validate(h, w, y)
    n, d = h.shape
    v = w.shape[0]
    gscale = _grad_scale(n, reduction)

    logits = h @ w.T                      # (N, v) — the Fig. 8 memory wall
    lse = logsumexp(logits, axis=-1)
    token_loss = lse - logits[np.arange(n), y]
    loss = float(token_loss.sum() * gscale)

    p = np.exp(logits - lse[:, None])
    p[np.arange(n), y] -= 1.0
    p *= gscale
    dh = p @ w
    dw = p.T @ h

    stats = HeadStats(
        name="naive",
        peak_resident_bytes=n * v * 8,
        peak_temp_bytes=n * v * 8,
        matmul_flops=3 * 2 * n * v * d,
    )
    return HeadResult(loss=loss, dh=dh, dw=dw, lse=lse, stats=stats)


@traced("lmhead.tiled", "lmhead", impl="tiled-recompute")
def tiled_lm_head_loss(
    h: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    reduction: str = "mean",
    block_seq: int = 128,
    block_vocab: int = 512,
) -> HeadResult:
    """Tiled head with backward-time recomputation (Mini-Sequence style).

    Forward stores only ``Lse``; the backward pass re-forms every logits
    tile, paying one extra ``2Nvd`` matmul — the "unnecessary computation
    overhead" Algorithm 3 removes.
    """
    _validate(h, w, y)
    n, d = h.shape
    v = w.shape[0]
    gscale = _grad_scale(n, reduction)

    # ---- forward: lse only -------------------------------------------------
    lse = np.full(n, -np.inf)
    for s0 in range(0, n, block_seq):
        s1 = min(s0 + block_seq, n)
        for v0 in range(0, v, block_vocab):
            v1 = min(v0 + block_vocab, v)
            tile = h[s0:s1] @ w[v0:v1].T
            lse[s0:s1] = np.logaddexp(lse[s0:s1], logsumexp(tile, axis=-1))
    target_logit = np.einsum("nd,nd->n", h, w[y])
    loss = float((lse - target_logit).sum() * gscale)

    # ---- backward: recompute tiles -----------------------------------------
    dh = np.zeros_like(h)
    dw = np.zeros_like(w)
    for s0 in range(0, n, block_seq):
        s1 = min(s0 + block_seq, n)
        rows = np.arange(s0, s1)
        for v0 in range(0, v, block_vocab):
            v1 = min(v0 + block_vocab, v)
            tile = h[s0:s1] @ w[v0:v1].T  # recomputation
            p = np.exp(tile - lse[s0:s1, None])
            in_tile = (y[rows] >= v0) & (y[rows] < v1)
            p[np.arange(len(rows))[in_tile], y[rows][in_tile] - v0] -= 1.0
            p *= gscale
            dh[s0:s1] += p @ w[v0:v1]
            dw[v0:v1] += p.T @ h[s0:s1]

    stats = HeadStats(
        name="tiled-recompute",
        peak_resident_bytes=n * 8,  # lse only
        peak_temp_bytes=min(block_seq, n) * min(block_vocab, v) * 8,
        matmul_flops=4 * 2 * n * v * d,  # logits twice + dH + dW
    )
    return HeadResult(loss=loss, dh=dh, dw=dw, lse=lse, stats=stats)


@traced("lmhead.fused", "lmhead", impl="fused")
def fused_lm_head_loss(
    h: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    reduction: str = "mean",
    block_seq: int = 128,
    block_vocab: int = 512,
) -> HeadResult:
    """Algorithm 3: sequence-level fusion of LM head and loss.

    One pass over sequence blocks: the vocab tile loop first finalises the
    block's ``Lse`` (caching that block's logits tiles), then immediately
    runs the backward tile loop — no logits are stored across blocks and
    none are recomputed.  Gradients come out of the forward pass, which is
    exactly why this composes with sequence-level checkpointing: the head
    never participates in the later autograd backward sweep.
    """
    _validate(h, w, y)
    n, d = h.shape
    v = w.shape[0]
    gscale = _grad_scale(n, reduction)

    lse = np.full(n, -np.inf)
    dh = np.zeros_like(h)
    dw = np.zeros_like(w)
    loss_acc = 0.0

    n_vtiles = (v + block_vocab - 1) // block_vocab
    for s0 in range(0, n, block_seq):
        s1 = min(s0 + block_seq, n)
        # One span per sequence block (fwd lse + fused bwd tiles together).
        with trace_span("lmhead.block", phase="lmhead",
                        s0=s0, s1=s1, vtiles=n_vtiles):
            rows = np.arange(s0, s1)
            h_blk = h[s0:s1]

            # forward vocab loop: logits tiles for THIS block cached, lse built
            tiles: list[np.ndarray] = []
            for v0 in range(0, v, block_vocab):
                v1 = min(v0 + block_vocab, v)
                tile = h_blk @ w[v0:v1].T
                tiles.append(tile)
                lse[s0:s1] = np.logaddexp(lse[s0:s1], logsumexp(tile, axis=-1))

            target_logit = np.einsum("nd,nd->n", h_blk, w[y[rows]])
            loss_acc += float((lse[s0:s1] - target_logit).sum())

            # fused backward vocab loop (Alg. 3 lines 8-13): reuse cached tiles
            for j, v0 in enumerate(range(0, v, block_vocab)):
                v1 = min(v0 + block_vocab, v)
                p = np.exp(tiles[j] - lse[s0:s1, None])
                in_tile = (y[rows] >= v0) & (y[rows] < v1)
                p[np.arange(len(rows))[in_tile], y[rows][in_tile] - v0] -= 1.0
                p *= gscale
                dh[s0:s1] += p @ w[v0:v1]
                dw[v0:v1] += p.T @ h_blk
            del tiles

    loss = loss_acc * gscale
    stats = HeadStats(
        name="fused",
        peak_resident_bytes=0,  # grads emitted immediately; nothing kept
        peak_temp_bytes=min(block_seq, n) * v * 8,  # one block's logits
        matmul_flops=3 * 2 * n * v * d,  # logits once + dH + dW
    )
    return HeadResult(loss=loss, dh=dh, dw=dw, lse=lse, stats=stats)


HEAD_IMPLEMENTATIONS = {
    "naive": naive_lm_head_loss,
    "tiled-recompute": tiled_lm_head_loss,
    "fused": fused_lm_head_loss,
}
