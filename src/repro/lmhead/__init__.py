"""Language-modeling head + cross-entropy implementations.

Three implementations of ``loss = CE(softmax(H W^T), Y)`` that trade memory
against compute exactly as the systems the paper compares:

* :func:`naive_lm_head_loss` — materialises the full ``N x v`` logits (and
  keeps them for backward): the memory wall of Figure 8.
* :func:`tiled_lm_head_loss` — the Mini-Sequence / Cut-Your-Losses style
  tiling: only ``Lse`` is stored, logits tiles are **recomputed** in the
  backward pass (low memory, extra compute).
* :func:`fused_lm_head_loss` — the paper's Algorithm 3: one tile loop
  computes the loss *and* the gradients, so logits are neither stored nor
  recomputed.

All three produce identical losses and gradients (tests assert to 1e-10);
:class:`HeadStats` records the peak temporary bytes and matmul FLOPs each
performs, which feed the memory model (Fig. 8) and the ablation (Table 2).
"""

from repro.lmhead.heads import (
    HeadResult,
    HeadStats,
    naive_lm_head_loss,
    tiled_lm_head_loss,
    fused_lm_head_loss,
    HEAD_IMPLEMENTATIONS,
)

__all__ = [
    "HeadResult",
    "HeadStats",
    "naive_lm_head_loss",
    "tiled_lm_head_loss",
    "fused_lm_head_loss",
    "HEAD_IMPLEMENTATIONS",
]
