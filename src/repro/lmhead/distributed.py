"""Vocab-parallel fused LM head + loss.

The paper's sequence-level fusion keeps the vocabulary matrix replicated
and shards the *sequence*; at very large vocabularies the weight itself
(``v x d``) and its gradient become worth sharding too.  This module
implements the vocabulary-parallel variant on the simulated cluster:

* rank ``r`` holds the vocab shard ``W_r`` (``v/G x d``) and the full
  hidden block ``H`` (or its sequence shard);
* each rank runs the Algorithm-3 tile loop over *its* vocab shard,
  producing a partial ``Lse_r`` and partial gradients;
* one all-reduce merges the row-wise LSEs (log-sum-exp across shards),
  after which the local probability tiles are rescaled — algebraically
  identical to the single-device fused head;
* ``dH`` partials are summed with a second all-reduce; ``dW_r`` stays
  local (its owner holds the shard).

Communication per rank: two all-reduces of ``N`` and ``N x d`` elements —
independent of ``v``, which is the entire point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import SimCommunicator
from repro.kernels.softmax import logsumexp
from repro.lmhead.heads import HeadResult, HeadStats, _grad_scale
from repro.obs.tracer import traced


def shard_vocab(w: np.ndarray, g: int) -> list[np.ndarray]:
    """Split the vocab weight ``(v, d)`` into ``g`` row shards."""
    v = w.shape[0]
    if v % g != 0:
        raise ValueError(f"vocab size {v} not divisible by {g} ranks")
    step = v // g
    return [w[r * step : (r + 1) * step] for r in range(g)]


@traced("lmhead.vocab-parallel", "lmhead", impl="vocab-parallel-fused")
def vocab_parallel_fused_loss(
    comm: SimCommunicator,
    h: np.ndarray,
    w_shards: Sequence[np.ndarray],
    y: np.ndarray,
    reduction: str = "mean",
    block_seq: int = 128,
    *,
    phase: str = "lmhead",
) -> tuple[float, np.ndarray, list[np.ndarray]]:
    """Fused head + CE with the vocabulary sharded across ranks.

    ``h`` is the full ``(N, d)`` hidden block (replicated view in this
    single-process simulation), ``w_shards[r]`` rank ``r``'s vocab rows.
    Returns ``(loss, dh, dw_shards)`` — numerically identical to
    :func:`repro.lmhead.fused_lm_head_loss` on the concatenated weight.
    """
    g = comm.world_size
    if len(w_shards) != g:
        raise ValueError(f"expected {g} weight shards, got {len(w_shards)}")
    n, d = h.shape
    vs = w_shards[0].shape[0]
    gscale = _grad_scale(n, reduction)

    # --- local pass: per-shard lse and logits tiles (Alg. 3 structure) -----
    local_lse = []
    for r in range(g):
        lse_r = np.full(n, -np.inf)
        for s0 in range(0, n, block_seq):
            s1 = min(s0 + block_seq, n)
            tile = h[s0:s1] @ w_shards[r].T
            lse_r[s0:s1] = np.logaddexp(
                lse_r[s0:s1], logsumexp(tile, axis=-1)
            )
        local_lse.append(lse_r)

    # --- all-reduce the LSEs (log-sum-exp combine via max + sum(exp)) ------
    # Implemented as an all-reduce of exp-shifted values; volume N per rank.
    stacked = np.stack(local_lse)
    m = stacked.max(axis=0)
    shifted = [np.exp(l - m) for l in local_lse]
    summed = comm.all_reduce(shifted, phase=phase, tag="lse-allreduce")
    global_lse = m + np.log(summed[0])

    # --- loss: the target logit lives on exactly one shard -----------------
    shard_of = y // vs
    local_row = y % vs
    target_logit = np.empty(n)
    for r in range(g):
        rows = np.where(shard_of == r)[0]
        if len(rows):
            target_logit[rows] = np.einsum(
                "nd,nd->n", h[rows], w_shards[r][local_row[rows]]
            )
    loss = float((global_lse - target_logit).sum() * gscale)

    # --- fused backward per shard, dH partials all-reduced ------------------
    dh_partials = []
    dw_shards = []
    for r in range(g):
        dh_r = np.zeros_like(h)
        dw_r = np.zeros_like(w_shards[r])
        for s0 in range(0, n, block_seq):
            s1 = min(s0 + block_seq, n)
            rows = np.arange(s0, s1)
            tile = h[s0:s1] @ w_shards[r].T
            p = np.exp(tile - global_lse[s0:s1, None])
            in_shard = shard_of[rows] == r
            p[np.arange(len(rows))[in_shard], local_row[rows][in_shard]] -= 1.0
            p *= gscale
            dh_r[s0:s1] += p @ w_shards[r]
            dw_r += p.T @ h[s0:s1]
        dh_partials.append(dh_r)
        dw_shards.append(dw_r)
    dh = comm.all_reduce(dh_partials, phase=phase, tag="dh-allreduce")[0]
    return loss, dh, dw_shards


def vocab_parallel_head_result(
    comm: SimCommunicator,
    h: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    reduction: str = "mean",
    block_seq: int = 128,
) -> HeadResult:
    """Convenience wrapper matching the single-device head API: shards
    ``w`` internally and reassembles ``dw``."""
    g = comm.world_size
    shards = shard_vocab(w, g)
    loss, dh, dw_shards = vocab_parallel_fused_loss(
        comm, h, shards, y, reduction=reduction, block_seq=block_seq
    )
    dw = np.concatenate(dw_shards, axis=0)
    n, d = h.shape
    v = w.shape[0]
    stats = HeadStats(
        name="vocab-parallel-fused",
        peak_resident_bytes=0,
        peak_temp_bytes=min(block_seq, n) * (v // g) * 8,
        matmul_flops=3 * 2 * n * v * d,  # split across ranks
    )
    lse = np.empty(0)  # recomputable; not returned by the parallel path
    return HeadResult(loss=loss, dh=dh, dw=dw, lse=lse, stats=stats)
