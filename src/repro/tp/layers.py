"""Megatron-style tensor-parallel layers as autograd Functions.

Both fused blocks follow the canonical TP pattern:

* first projection(s) **column-parallel** — weight rows sharded, input
  replicated, activations come out feature-sharded, no communication;
* second projection **row-parallel** — weight columns sharded, partial
  outputs summed with an **all-reduce** (one per sub-block per
  direction; the backward all-reduces the partial input gradients).

All per-rank arithmetic is executed for real (shard products summed via
the logged ``all_reduce``), so numerics match the unsharded layer to
float64 precision and the traffic log carries TP's true volume:
``2 * S * D`` elements all-reduced per sub-block per step.
"""

from __future__ import annotations

import numpy as np

from repro.comm import SimCommunicator
from repro.kernels import (
    KernelWorkspace,
    TilePlan,
    get_backend,
    planning_enabled,
)
from repro.masks import MaskPattern
from repro.nn.function import Function
from repro.nn.tensor import Tensor


def shard_rows(w: np.ndarray, g: int) -> list[np.ndarray]:
    """Split a weight along its output (row) dimension."""
    if w.shape[0] % g != 0:
        raise ValueError(f"rows {w.shape[0]} not divisible by {g} ranks")
    step = w.shape[0] // g
    return [w[r * step : (r + 1) * step] for r in range(g)]


def shard_columns(w: np.ndarray, g: int) -> list[np.ndarray]:
    """Split a weight along its input (column) dimension."""
    if w.shape[1] % g != 0:
        raise ValueError(f"columns {w.shape[1]} not divisible by {g} ranks")
    step = w.shape[1] // g
    return [w[:, r * step : (r + 1) * step] for r in range(g)]


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _dsilu(x: np.ndarray) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-x))
    return sig * (1.0 + x * (1.0 - sig))


class TPMLPFn(Function):
    """Tensor-parallel SwiGLU: column-parallel gate/up, row-parallel down."""

    def forward(self, x, w_gate, w_up, w_down, comm: SimCommunicator = None,
                phase: str = "tp-mlp"):
        if comm is None:
            raise ValueError("tp_mlp requires comm=")
        g = comm.world_size
        self.comm, self.phase, self.g = comm, phase, g
        wg = shard_rows(w_gate, g)
        wu = shard_rows(w_up, g)
        wd = shard_columns(w_down, g)

        gates, ups, hs, partials = [], [], [], []
        for r in range(g):
            g_r = x @ wg[r].T
            u_r = x @ wu[r].T
            h_r = _silu(g_r) * u_r
            gates.append(g_r)
            ups.append(u_r)
            hs.append(h_r)
            partials.append(h_r @ wd[r].T)
        y = comm.all_reduce(partials, phase=phase, tag="mlp-fwd-ar")[0]
        self.save_for_backward(x, *gates, *ups, *hs)
        self.shards = (wg, wu, wd)
        return y

    def backward(self, dy):
        g = self.g
        x = self.saved[0]
        gates = self.saved[1 : 1 + g]
        ups = self.saved[1 + g : 1 + 2 * g]
        hs = self.saved[1 + 2 * g : 1 + 3 * g]
        wg, wu, wd = self.shards

        dx_parts, dwg, dwu, dwd = [], [], [], []
        for r in range(g):
            dh_r = dy @ wd[r]
            dwd.append(dy.T @ hs[r])
            du_r = dh_r * _silu(gates[r])
            dg_r = dh_r * ups[r] * _dsilu(gates[r])
            dx_parts.append(dg_r @ wg[r] + du_r @ wu[r])
            dwg.append(dg_r.T @ x)
            dwu.append(du_r.T @ x)
        dx = self.comm.all_reduce(dx_parts, phase=self.phase,
                                  tag="mlp-bwd-ar")[0]
        return (
            dx,
            np.concatenate(dwg, axis=0),
            np.concatenate(dwu, axis=0),
            np.concatenate(dwd, axis=1),
        )


class TPAttentionFn(Function):
    """Tensor-parallel attention: heads sharded across ranks.

    Column-parallel Wq/Wk/Wv (each rank projects its own head group),
    local flash attention per head group, row-parallel Wo with a forward
    all-reduce.  The sequence stays *full-length on every rank* — TP's
    defining property and its long-context downfall.
    """

    def forward(self, x, wq, wk, wv, wo, comm: SimCommunicator = None,
                n_heads: int = 1, mask: MaskPattern | None = None,
                scale: float | None = None, block_size: int = 128,
                phase: str = "tp-attn"):
        if comm is None:
            raise ValueError("tp_attention requires comm=")
        g = comm.world_size
        if n_heads % g != 0:
            raise ValueError(f"{n_heads} heads not divisible by {g} TP ranks")
        s, d = x.shape
        hd = d // n_heads
        hh = n_heads // g
        if scale is None:
            scale = 1.0 / np.sqrt(hd)
        # TP ranks all see the full sequence, so one plan (built without
        # bias — this path has never forwarded one) serves every head
        # group; with planning off, fall back to the dense mask.
        if mask is not None and planning_enabled():
            dense = None
            plan = TilePlan.build(
                mask, np.arange(s), np.arange(s), block_size, block_size,
                include_bias=False,
            )
        else:
            dense = mask.dense(s) if mask is not None else None
            plan = None
        self.comm, self.phase, self.g = comm, phase, g
        self.geom = (s, d, n_heads, hd, hh, scale, block_size)
        self.mask_dense = dense
        self.plan = plan
        self.workspace = KernelWorkspace()

        wq_s, wk_s, wv_s = shard_rows(wq, g), shard_rows(wk, g), shard_rows(wv, g)
        wo_s = shard_columns(wo, g)
        qs, ks, vs, os_, lses, oflats, partials = [], [], [], [], [], [], []
        for r in range(g):
            q_r = (x @ wq_s[r].T).reshape(s, hh, hd).swapaxes(0, 1)
            k_r = (x @ wk_s[r].T).reshape(s, hh, hd).swapaxes(0, 1)
            v_r = (x @ wv_s[r].T).reshape(s, hh, hd).swapaxes(0, 1)
            o_r, lse_r = get_backend().flash_forward(
                q_r, k_r, v_r, mask=dense, scale=scale,
                block_q=block_size, block_k=block_size,
                plan=plan, workspace=self.workspace,
            )
            o_flat = o_r.swapaxes(0, 1).reshape(s, hh * hd)
            qs.append(q_r); ks.append(k_r); vs.append(v_r)
            os_.append(o_r); lses.append(lse_r); oflats.append(o_flat)
            partials.append(o_flat @ wo_s[r].T)
        y = comm.all_reduce(partials, phase=phase, tag="attn-fwd-ar")[0]
        self.save_for_backward(x, *qs, *ks, *vs, *os_, *lses, *oflats)
        self.shards = (wq_s, wk_s, wv_s, wo_s)
        return y

    def backward(self, dy):
        g = self.g
        s, d, n_heads, hd, hh, scale, block_size = self.geom
        x = self.saved[0]
        grab = lambda i: self.saved[1 + i * g : 1 + (i + 1) * g]
        qs, ks, vs, os_, lses, oflats = (grab(i) for i in range(6))
        wq_s, wk_s, wv_s, wo_s = self.shards

        dx_parts, dwq, dwk, dwv, dwo = [], [], [], [], []
        for r in range(g):
            do_flat = dy @ wo_s[r]
            dwo.append(dy.T @ oflats[r])
            do_r = do_flat.reshape(s, hh, hd).swapaxes(0, 1)
            dq_r, dk_r, dv_r = get_backend().flash_backward(
                qs[r], ks[r], vs[r], os_[r], lses[r], do_r,
                mask=self.mask_dense, scale=scale,
                block_q=block_size, block_k=block_size,
                plan=self.plan, workspace=self.workspace,
            )
            dq_f = dq_r.swapaxes(0, 1).reshape(s, hh * hd)
            dk_f = dk_r.swapaxes(0, 1).reshape(s, hh * hd)
            dv_f = dv_r.swapaxes(0, 1).reshape(s, hh * hd)
            dx_parts.append(dq_f @ wq_s[r] + dk_f @ wk_s[r] + dv_f @ wv_s[r])
            dwq.append(dq_f.T @ x)
            dwk.append(dk_f.T @ x)
            dwv.append(dv_f.T @ x)
        dx = self.comm.all_reduce(dx_parts, phase=self.phase,
                                  tag="attn-bwd-ar")[0]
        return (
            dx,
            np.concatenate(dwq, axis=0),
            np.concatenate(dwk, axis=0),
            np.concatenate(dwv, axis=0),
            np.concatenate(dwo, axis=1),
        )


def tp_mlp(x: Tensor, w_gate: Tensor, w_up: Tensor, w_down: Tensor,
           comm: SimCommunicator) -> Tensor:
    """Differentiable tensor-parallel SwiGLU block."""
    return TPMLPFn.apply(x, w_gate, w_up, w_down, comm=comm)


def tp_attention(x: Tensor, wq: Tensor, wk: Tensor, wv: Tensor, wo: Tensor,
                 comm: SimCommunicator, n_heads: int,
                 mask: MaskPattern | None = None,
                 block_size: int = 128) -> Tensor:
    """Differentiable tensor-parallel attention block."""
    return TPAttentionFn.apply(
        x, wq, wk, wv, wo, comm=comm, n_heads=n_heads, mask=mask,
        block_size=block_size,
    )
