"""Tensor parallelism (Megatron-style), the third parallelism axis.

The paper's introduction lists three ways to distribute long-sequence
training: Context Parallelism (RingAttention et al.), Head Parallelism
(Ulysses), and **Tensor Parallelism** [Shoeybi/Narayanan et al.].  This
package implements the Megatron TP pattern over the simulated cluster —
column-parallel QKV / gate / up projections, row-parallel output / down
projections, one all-reduce per sub-block per direction — with real
per-rank numerics and logged traffic.

Its role in the reproduction is motivational: TP shards *weights*, not
*sequence*, so activations stay full-length on every rank and its
communication volume scales with ``S * h`` per layer.  The analysis in
:func:`tp_scaling_analysis` shows both blowing up long before 1M tokens —
exactly why the paper builds on context parallelism instead.
"""

from repro.tp.layers import (
    shard_columns,
    shard_rows,
    tp_attention,
    tp_mlp,
)
from repro.tp.model import TPSelfAttention, TPSwiGLU, build_tp_model
from repro.tp.analysis import tp_layer_comm_bytes, tp_scaling_analysis

__all__ = [
    "shard_columns",
    "shard_rows",
    "tp_attention",
    "tp_mlp",
    "TPSelfAttention",
    "TPSwiGLU",
    "build_tp_model",
    "tp_layer_comm_bytes",
    "tp_scaling_analysis",
]
