"""Why tensor parallelism alone cannot reach 1M tokens.

TP shards weights; activations stay full-sequence on every rank.  Two
consequences, quantified here for the paper's models:

* per-layer communication is ``4 * S * h`` bytes all-reduced (2 sub-blocks
  x fwd+bwd), growing linearly with sequence length and not amortised by
  any sharding;
* per-rank activation memory grows with the *full* ``S`` — at 1M tokens a
  14B model needs hundreds of GB per GPU for activations alone, no matter
  how many TP ranks are added.

This is the quantitative version of the paper's motivation for building
on context parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models import ModelSpec
from repro.perf.memory import FULL_ACTIVATION_FACTOR, BYTES_BF16, GB
from repro.topology import ClusterTopology, LinkClass


def tp_layer_comm_bytes(seq_len: int, hidden: int,
                        bytes_per_elem: int = BYTES_BF16) -> float:
    """All-reduced bytes per transformer layer per training step.

    Two all-reduces forward (attention out, MLP out) + two backward
    (input grads), each of an ``S x h`` activation.
    """
    return 4.0 * seq_len * hidden * bytes_per_elem


@dataclass(frozen=True)
class TPScalingRow:
    seq_len: int
    comm_gb_per_layer: float
    activation_gb_per_gpu: float
    fits_80gb: bool


def tp_scaling_analysis(
    model: ModelSpec,
    seq_lens: list[int],
    tp_degree: int = 8,
    checkpointing: bool = True,
) -> list[TPScalingRow]:
    """Sweep sequence lengths for pure-TP training of ``model``.

    Activation accounting mirrors :mod:`repro.perf.memory` but without
    sequence sharding: with full gradient checkpointing each layer stores
    its full-``S`` input; the transient working set is one layer's full
    activations (divided by the TP degree only for the sharded FFN/head
    parts — conservatively we shard half the factor).
    """
    rows = []
    for s in seq_lens:
        comm = tp_layer_comm_bytes(s, model.hidden) / GB
        stored_factor = 1.0 if checkpointing else FULL_ACTIVATION_FACTOR
        stored = model.n_layers * stored_factor * s * model.hidden * BYTES_BF16
        transient = (
            FULL_ACTIVATION_FACTOR / 2 * (1 + 1 / tp_degree)
            * s * model.hidden * BYTES_BF16
        )
        act_gb = (stored + transient) / GB
        rows.append(
            TPScalingRow(
                seq_len=s,
                comm_gb_per_layer=comm,
                activation_gb_per_gpu=act_gb,
                fits_80gb=act_gb < 80.0,
            )
        )
    return rows
