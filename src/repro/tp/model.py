"""Tensor-parallel transformer modules and model builder."""

from __future__ import annotations

import numpy as np

from repro.comm import SimCommunicator
from repro.masks import CausalMask, MaskPattern
from repro.nn.modules import (
    CausalSelfAttention,
    Linear,
    SwiGLU,
    TransformerConfig,
    TransformerLM,
)
from repro.nn.tensor import Tensor
from repro.tp.layers import tp_attention, tp_mlp


class TPSelfAttention(CausalSelfAttention):
    """Attention module whose projections and heads run tensor-parallel."""

    def __init__(self, dim, n_heads, rng, comm: SimCommunicator,
                 mask: MaskPattern | None = None, block_size: int = 64):
        super().__init__(dim, n_heads, rng, mask=mask, block_size=block_size)
        if n_heads % comm.world_size != 0:
            raise ValueError(
                f"TP needs heads ({n_heads}) divisible by ranks "
                f"({comm.world_size})"
            )
        self.comm = comm

    def forward(self, x: Tensor) -> Tensor:
        return tp_attention(
            x, self.wq.weight, self.wk.weight, self.wv.weight, self.wo.weight,
            self.comm, self.n_heads, mask=self.mask,
            block_size=self.block_size,
        )


class TPSwiGLU(SwiGLU):
    """SwiGLU whose gate/up are column-parallel and down row-parallel."""

    def __init__(self, dim, hidden, rng, comm: SimCommunicator):
        super().__init__(dim, hidden, rng)
        if hidden % comm.world_size != 0:
            raise ValueError(
                f"TP needs ffn hidden ({hidden}) divisible by ranks "
                f"({comm.world_size})"
            )
        self.comm = comm

    def forward(self, x: Tensor) -> Tensor:
        return tp_mlp(
            x, self.gate.weight, self.up.weight, self.down.weight, self.comm
        )


def build_tp_model(config: TransformerConfig, comm: SimCommunicator) -> TransformerLM:
    """A :class:`TransformerLM` whose blocks run Megatron tensor parallel.

    The LM head and embeddings stay replicated (Megatron would
    vocab-shard them; :mod:`repro.lmhead.distributed` covers that piece
    separately).
    """
    if config.n_kv_heads not in (None, config.n_heads):
        raise ValueError("tensor parallelism here supports MHA only")

    def attn_factory(dim, n_heads, rng, mask, block_size, n_kv_heads=None):
        return TPSelfAttention(dim, n_heads, rng, comm, mask=mask,
                               block_size=block_size)

    model = TransformerLM(config, attn_factory=attn_factory)
    rng = np.random.default_rng(config.seed + 1)
    for block in model.blocks:
        tp_ffn = TPSwiGLU(config.dim, config.ffn_hidden, rng, comm)
        # Adopt the block's existing weights (same Tensor objects) so a TP
        # model with seed k is parameter-identical to the plain model with
        # seed k — the equivalence tests rely on this.
        tp_ffn.gate = block.ffn.gate
        tp_ffn.up = block.ffn.up
        tp_ffn.down = block.ffn.down
        block.ffn = tp_ffn
    return model
