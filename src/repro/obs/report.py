"""Reporting and predicted-vs-observed diffing for real-execution traces.

Two consumers sit on top of the exporters in :mod:`repro.obs.export`:

* :func:`render_report` — a plain-text summary of one observed trace
  (wall time by phase via per-row interval union, comm volume by link
  class and logical phase from the step-metrics JSONL, tile planner
  effectiveness, recompute fraction).

* :func:`diff_traces` — a *structural*, deterministic comparison of an
  observed trace against the DES-predicted schedule for the same config.
  Wall-clock seconds are not comparable (numpy on the host vs the modeled
  A800 cluster), but the ring *structure* is: the schedule builders fix
  how many intra-node and inter-node transitions one attention pass
  performs, and the observed ``ring.transition`` spans must replicate
  that pattern an integer number of times per logical phase.  The check
  flags any phase whose intra/inter split (the overlap structure of
  Fig. 5) deviates from the prediction beyond a tolerance.

:func:`build_predicted_trace` renders the DES timeline for the same
attention passes as a Chrome trace (``pid`` 1, the convention of
:func:`repro.perf.trace.trace_to_chrome_json`) so Perfetto shows the
predicted and observed schedules side by side, and embeds the per-pass
transition counts as metadata for :func:`diff_traces`.
"""

from __future__ import annotations

import json

from repro.obs.export import validate_chrome_trace, validate_metrics_jsonl

#: Logical phases whose ring structure the diff gate understands.
RING_PHASES = ("attn-fwd", "attn-bwd")

#: Observed-trace rows carrying ring transitions, keyed by link kind.
_RING_ROWS = {"intra": "intra-ring", "inter": "inter-ring"}


# --------------------------------------------------------------------------
# trace loading and interval arithmetic
# --------------------------------------------------------------------------

def load_trace(path: str, *, validate: bool = True) -> dict:
    """Read a Chrome trace JSON file, optionally schema-validating it."""
    with open(path) as fh:
        payload = json.load(fh)
    if validate:
        validate_chrome_trace(payload)
    return payload


def _as_payload(payload: dict | str) -> dict:
    """Accept either a parsed trace dict or the exporters' JSON string."""
    if isinstance(payload, str):
        return json.loads(payload)
    return payload


def _x_events(payload: dict | str) -> list[dict]:
    payload = _as_payload(payload)
    return [e for e in payload.get("traceEvents", []) if e.get("ph") == "X"]


def _row_names(payload: dict | str) -> dict[tuple[int, int], str]:
    """``(pid, tid) -> row name`` from the trace's thread_name metadata."""
    rows = {}
    for e in _as_payload(payload).get("traceEvents", []):
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            rows[(e.get("pid"), e["tid"])] = e["args"]["name"]
    return rows


def interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by ``[start, end)`` intervals (overlaps merged)."""
    total = 0.0
    end = float("-inf")
    for s, e in sorted(intervals):
        if e <= end:
            continue
        total += e - max(s, end)
        end = e
    return total


def time_by_phase(payload: dict | str) -> dict[str, float]:
    """Wall microseconds per phase, as the union of that phase's spans.

    Nested spans on one row (e.g. ``comm.*`` inside ``resilient.*``) are
    counted once — this is occupancy, not a sum of durations.  The phase
    is taken from each event's ``args.phase`` when present, falling back
    to its row name, so multi-threaded rows ("comm (t2)") still aggregate
    under their base phase.
    """
    payload = _as_payload(payload)
    rows = _row_names(payload)
    by_phase: dict[str, list[tuple[float, float]]] = {}
    for e in _x_events(payload):
        phase = e.get("args", {}).get("phase") or rows.get(
            (e.get("pid"), e.get("tid")), "?"
        )
        by_phase.setdefault(phase, []).append((e["ts"], e["ts"] + e["dur"]))
    return {ph: interval_union(iv) for ph, iv in by_phase.items()}


#: Span-name prefixes counted as kernel time in the backend breakdown.
KERNEL_SPAN_PREFIXES = ("flash.", "mlp.")


def kernel_time_by_backend(
    payload: dict | str,
) -> dict[str, dict[str, float]]:
    """Wall microseconds of kernel spans, grouped by backend label.

    Every ``flash.*`` / ``mlp.*`` span carries a ``backend`` attribute
    (the kernel registry tags them at emit time); this unions their
    intervals per ``(backend, span name)`` so a mixed-backend run shows
    where each backend spent its time.  Returns ``{backend: {name: us,
    ..., "total": us}}``.
    """
    payload = _as_payload(payload)
    grouped: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for e in _x_events(payload):
        name = e.get("name", "")
        if not name.startswith(KERNEL_SPAN_PREFIXES):
            continue
        backend = e.get("args", {}).get("backend", "?")
        iv = (e["ts"], e["ts"] + e["dur"])
        per = grouped.setdefault(backend, {})
        per.setdefault(name, []).append(iv)
        per.setdefault("total", []).append(iv)
    return {
        backend: {name: interval_union(iv) for name, iv in per.items()}
        for backend, per in grouped.items()
    }


def observed_ring_counts(payload: dict | str) -> dict[str, dict[str, int]]:
    """Count ``ring.transition`` spans per logical phase and link kind.

    Returns ``{logical_phase: {"intra": n, "inter": n}}`` where the
    logical phase is the communicator phase the transition served
    (``attn-fwd`` / ``attn-bwd``) and the link kind comes from the span's
    trace row.
    """
    counts: dict[str, dict[str, int]] = {}
    for e in _x_events(payload):
        if e.get("name") != "ring.transition":
            continue
        args = e.get("args", {})
        logical = args.get("logical", "?")
        row = args.get("phase", "")
        kind = "inter" if row == _RING_ROWS["inter"] else "intra"
        d = counts.setdefault(logical, {"intra": 0, "inter": 0})
        d[kind] += 1
    return counts


def observed_ring_counts_by_direction(
    payload: dict | str,
) -> dict[str, dict[str, dict[str, int]]]:
    """Count ``ring.transition`` spans per logical phase, stream direction,
    and link kind.

    Returns ``{logical: {"fwd": {"intra": n, "inter": n}, "rev": {...}}}``.
    Spans emitted by :meth:`RingSchedule.apply_reverse` carry
    ``direction="rev"``; everything else is the forward stream (which is
    all of a unidirectional trace).
    """
    counts: dict[str, dict[str, dict[str, int]]] = {}
    for e in _x_events(payload):
        if e.get("name") != "ring.transition":
            continue
        args = e.get("args", {})
        logical = args.get("logical", "?")
        direction = args.get("direction", "fwd")
        row = args.get("phase", "")
        kind = "inter" if row == _RING_ROWS["inter"] else "intra"
        d = counts.setdefault(logical, {
            "fwd": {"intra": 0, "inter": 0},
            "rev": {"intra": 0, "inter": 0},
        })
        d[direction][kind] += 1
    return counts


# --------------------------------------------------------------------------
# predicted schedule structure
# --------------------------------------------------------------------------

def schedule_pass_counts(schedule) -> dict[str, int]:
    """Intra/inter transition counts of one full circulation of a
    :class:`~repro.comm.RingSchedule`."""
    from repro.topology import LinkClass

    counts = {"intra": 0, "inter": 0}
    for t in range(len(schedule.transitions)):
        cls = schedule.transition_link_class(t)
        if cls is LinkClass.INTER:
            counts["inter"] += 1
        elif cls is LinkClass.INTRA:
            counts["intra"] += 1
    return counts


def predicted_pass_counts(method_name: str, topology) -> dict[str, int]:
    """Per-pass transition counts the method's own schedule builder fixes.

    All-to-all methods (Ulysses) have no ring schedule and predict zero
    transitions; USP's ring runs through grouped schedules its method
    builds internally, which the structural gate does not model.
    """
    from repro.attention import get_method

    method = get_method(method_name)
    sched_fn = getattr(method, "_schedule", None)
    if sched_fn is None:
        return {"intra": 0, "inter": 0}
    return schedule_pass_counts(sched_fn(topology))


def predicted_bidirectional_pass_counts(
    method_name: str, topology
) -> dict[str, dict[str, dict[str, int]]]:
    """Per-pass transition counts of the bidirectional ring, split by
    logical phase and stream direction.

    The forward pass applies only the first ``T_f = S // 2`` base
    transitions on the forward stream; the backward passes apply all
    ``S - 1`` (the gradient accumulators keep circulating).  The reverse
    stream always runs ``R = (S - 1) // 2`` moves: a seeding exchange
    (priced at :meth:`RingSchedule.reverse_link_class`) followed by
    retraced tail transitions.
    """
    from repro.attention import get_method
    from repro.comm.ring import bidirectional_split
    from repro.topology import LinkClass

    zero = {"intra": 0, "inter": 0}
    method = get_method(method_name)
    sched_fn = getattr(method, "_schedule", None)
    if sched_fn is None:
        return {
            ph: {"fwd": dict(zero), "rev": dict(zero)} for ph in RING_PHASES
        }
    sched = sched_fn(topology)
    t_f, rev = bidirectional_split(sched.num_steps)

    def _count(classes) -> dict[str, int]:
        c = dict(zero)
        for cls in classes:
            if cls is LinkClass.INTER:
                c["inter"] += 1
            elif cls is LinkClass.INTRA:
                c["intra"] += 1
        return c

    fwd_classes = [
        sched.transition_link_class(t) for t in range(len(sched.transitions))
    ]
    rev_classes = [sched.reverse_link_class(s) for s in range(1, rev + 1)]
    return {
        "attn-fwd": {
            "fwd": _count(fwd_classes[:t_f]), "rev": _count(rev_classes),
        },
        "attn-bwd": {
            "fwd": _count(fwd_classes), "rev": _count(rev_classes),
        },
    }


def build_predicted_trace(
    method: str,
    topology,
    workload,
    path: str | None = None,
    *,
    ring_window: int | None = None,
    ring_mode: str = "unidirectional",
) -> dict:
    """DES-predicted Chrome trace for one fwd + one bwd attention pass.

    Renders the same task graphs :func:`attention_pass_time` times onto
    ``pid`` 1 (the DES exporter's process), backward offset to start at
    the forward makespan, and embeds ``metadata.per_pass`` — the
    schedule's intra/inter transition counts — for :func:`diff_traces`.
    Under ``ring_mode="bidirectional"`` the reverse stream gets its own
    ``intra-rev`` / ``inter-rev`` rows and the metadata additionally
    carries ``per_pass_by_phase`` — the per-direction counts the
    bidirectional diff gate checks.  Only the ring-family methods have a
    DES pass graph here (built by
    :func:`repro.perf.criticalpath.attention_pass_sim`).
    """
    from repro.perf.criticalpath import attention_pass_sim

    g = topology.world_size
    bidirectional = ring_mode == "bidirectional"
    sims = [
        (prefix, attention_pass_sim(
            method, topology, workload,
            backward=backward, ring_mode=ring_mode,
            ring_window=ring_window, prefix=prefix,
        ))
        for prefix, backward in (("attn-fwd/", False), ("attn-bwd/", True))
    ]
    events: list[dict] = []
    rows: dict[str, int] = {}
    offset = 0.0
    for _, sim in sims:
        makespan = 0.0
        for task in sim.timeline():
            row = task.resources[0] if task.resources else "free"
            tid = rows.setdefault(row, len(rows) + 1)
            events.append({
                "name": task.name,
                "ph": "X",
                "ts": round((offset + task.start) * 1e6, 3),
                "dur": round(task.duration * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": {"resource": row},
            })
            makespan = max(makespan, task.end)
        offset += makespan
    for row, tid in rows.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": row},
        })
    events.append({
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": "predicted (DES)"},
    })
    metadata = {
        "method": method,
        "world_size": g,
        "gpus_per_node": topology.gpus_per_node,
        "ring_mode": ring_mode,
        "per_pass": predicted_pass_counts(method, topology),
        "modeled_makespan_s": offset,
    }
    if bidirectional:
        metadata["per_pass_by_phase"] = predicted_bidirectional_pass_counts(
            method, topology
        )
    payload = {"traceEvents": events, "metadata": metadata}
    if path is not None:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
    return payload


# --------------------------------------------------------------------------
# report rendering
# --------------------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def summarize_metrics(records: list[dict]) -> dict:
    """Aggregate step-metrics JSONL records into run totals."""
    out = {
        "steps": len(records),
        "comm_elems": 0, "comm_bytes": 0,
        "by_link": {}, "by_phase": {},
        "tiles_computed": 0, "tiles_skipped": 0,
        "recompute_flops": 0.0,
    }
    for rec in records:
        out["comm_elems"] += rec.get("comm_elems", 0)
        out["comm_bytes"] += rec.get("comm_bytes", 0)
        for key in ("by_link", "by_phase"):
            for name, d in rec.get(f"comm_{key}", {}).items():
                tgt = out[key].setdefault(name, {"elems": 0, "bytes": 0})
                tgt["elems"] += d.get("elems", 0)
                tgt["bytes"] += d.get("bytes", 0)
        out["tiles_computed"] += rec.get("tiles_computed", 0)
        out["tiles_skipped"] += rec.get("tiles_skipped", 0)
        out["recompute_flops"] += rec.get("recompute_flops", 0.0)
    return out


def render_report(payload: dict | str, metrics_records: list[dict] | None = None) -> str:
    """Plain-text report over one observed trace (+ optional metrics)."""
    payload = _as_payload(payload)
    lines: list[str] = []
    events = _x_events(payload)
    phases = time_by_phase(payload)
    total = sum(phases.values())
    meta = payload.get("metadata", {})
    header = "observed trace"
    if meta.get("method"):
        header += (
            f" — method={meta['method']}, world={meta.get('world_size', '?')}"
            f" ({meta.get('gpus_per_node', '?')}/node)"
        )
    lines.append(header)
    lines.append(f"  spans: {len(events)}")
    lines.append("")
    lines.append("time by phase (span-union wall time):")
    step_time = phases.get("step", 0.0)
    for phase in sorted(phases, key=phases.get, reverse=True):
        us = phases[phase]
        share = us / step_time if step_time else 0.0
        lines.append(
            f"  {phase:<16} {us / 1e3:10.3f} ms"
            + (f"  ({share:6.1%} of step)" if phase != "step" else "")
        )
    compute = phases.get("compute", 0.0)
    recompute = phases.get("ckpt-recompute", 0.0)
    if compute:
        lines.append("")
        lines.append(
            f"recompute fraction: {recompute / compute:.1%} of kernel "
            "compute time under recompute spans"
        )
    kernel_times = kernel_time_by_backend(payload)
    if kernel_times:
        lines.append("")
        lines.append("kernel time by backend (span-union wall time):")
        for backend in sorted(kernel_times):
            per = kernel_times[backend]
            lines.append(
                f"  {backend:<12} {per['total'] / 1e3:10.3f} ms total"
            )
            for name in sorted(k for k in per if k != "total"):
                lines.append(
                    f"    {name:<12} {per[name] / 1e3:10.3f} ms"
                )
    counts = observed_ring_counts(payload)
    if counts:
        lines.append("")
        lines.append("ring transitions by logical phase:")
        for logical in sorted(counts):
            d = counts[logical]
            lines.append(
                f"  {logical:<10} intra={d['intra']:<4} inter={d['inter']}"
            )
    if metrics_records:
        s = summarize_metrics(metrics_records)
        lines.append("")
        lines.append(
            f"comm volume over {s['steps']} step(s): "
            f"{s['comm_elems']} elems, {_fmt_bytes(s['comm_bytes'])}"
        )
        lines.append("  by link class:")
        for link in sorted(s["by_link"]):
            d = s["by_link"][link]
            lines.append(
                f"    {link:<8} {d['elems']:>12} elems  {_fmt_bytes(d['bytes'])}"
            )
        lines.append("  by logical phase:")
        for phase in sorted(s["by_phase"]):
            d = s["by_phase"][phase]
            lines.append(
                f"    {phase:<10} {d['elems']:>12} elems  {_fmt_bytes(d['bytes'])}"
            )
        tiles = s["tiles_computed"] + s["tiles_skipped"]
        if tiles:
            lines.append(
                f"tiles: {s['tiles_computed']} computed, "
                f"{s['tiles_skipped']} skipped "
                f"({s['tiles_skipped'] / tiles:.1%} skip rate)"
            )
        if s["recompute_flops"]:
            lines.append(f"recompute flops: {s['recompute_flops']:.3e}")
    return "\n".join(lines)


def load_metrics(path: str) -> list[dict]:
    """Read and validate a step-metrics JSONL file."""
    with open(path) as fh:
        text = fh.read()
    return validate_metrics_jsonl(text)


# --------------------------------------------------------------------------
# machine-readable (JSON) summaries
# --------------------------------------------------------------------------

#: keys every ``report --json`` document must carry
REPORT_JSON_KEYS = (
    "schema",
    "metadata",
    "spans",
    "time_by_phase_us",
    "ring_transitions",
)

#: keys every ``diff --json`` document must carry
DIFF_JSON_KEYS = ("schema", "ok", "tolerance", "lines")

REPORT_JSON_SCHEMA = "obs-report/v1"
DIFF_JSON_SCHEMA = "obs-diff/v1"


def report_json(
    payload: dict | str,
    metrics_records: list[dict] | None = None,
    *,
    critical: bool = False,
) -> dict:
    """Machine-readable counterpart of :func:`render_report`.

    With ``critical=True`` the document additionally carries the
    per-step/per-rank attribution, straggler ranking and top-K critical
    spans from :mod:`repro.obs.critical`.
    """
    payload = _as_payload(payload)
    doc = {
        "schema": REPORT_JSON_SCHEMA,
        "metadata": dict(payload.get("metadata", {})),
        "spans": len(_x_events(payload)),
        "time_by_phase_us": time_by_phase(payload),
        "kernel_time_by_backend_us": kernel_time_by_backend(payload),
        "ring_transitions": observed_ring_counts(payload),
        "metrics": summarize_metrics(metrics_records) if metrics_records else None,
    }
    if critical:
        from repro.obs.critical import (
            attribute_steps,
            critical_spans,
            straggler_ranking,
        )

        doc["attribution"] = {
            "steps": attribute_steps(payload),
            "stragglers": straggler_ranking(payload),
            "critical_spans": critical_spans(payload),
        }
    return doc


def validate_report_json(doc: str | dict) -> dict:
    """Schema-check a ``report --json`` document; raise ``ValueError``."""
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise ValueError(f"report JSON is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ValueError("report JSON is not an object")
    missing = [k for k in REPORT_JSON_KEYS if k not in doc]
    if missing:
        raise ValueError(f"report JSON missing keys: {missing}")
    if doc["schema"] != REPORT_JSON_SCHEMA:
        raise ValueError(
            f"report JSON has schema {doc['schema']!r}, "
            f"expected {REPORT_JSON_SCHEMA!r}"
        )
    if not isinstance(doc["spans"], int) or doc["spans"] < 1:
        raise ValueError("report JSON has no spans")
    for key in ("time_by_phase_us", "ring_transitions"):
        if not isinstance(doc[key], dict):
            raise ValueError(f"report JSON {key!r} is not an object")
    return doc


def diff_json(
    ok: bool, lines: list[str], *, tolerance: float
) -> dict:
    """Machine-readable counterpart of :func:`diff_traces` output."""
    return {
        "schema": DIFF_JSON_SCHEMA,
        "ok": bool(ok),
        "tolerance": tolerance,
        "lines": list(lines),
    }


def validate_diff_json(doc: str | dict) -> dict:
    """Schema-check a ``diff --json`` document; raise ``ValueError``."""
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise ValueError(f"diff JSON is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ValueError("diff JSON is not an object")
    missing = [k for k in DIFF_JSON_KEYS if k not in doc]
    if missing:
        raise ValueError(f"diff JSON missing keys: {missing}")
    if doc["schema"] != DIFF_JSON_SCHEMA:
        raise ValueError(
            f"diff JSON has schema {doc['schema']!r}, "
            f"expected {DIFF_JSON_SCHEMA!r}"
        )
    if not isinstance(doc["ok"], bool) or not isinstance(doc["lines"], list):
        raise ValueError("diff JSON ok/lines have wrong types")
    return doc


# --------------------------------------------------------------------------
# observed-vs-predicted diff
# --------------------------------------------------------------------------

def diff_traces(
    observed: dict | str, predicted: dict | str, *, tolerance: float = 0.05
) -> tuple[bool, list[str]]:
    """Structurally compare an observed trace with a DES prediction.

    For each logical ring phase the observed intra (``I``) / inter
    (``E``) transition counts must be an integer multiple of the
    schedule's per-pass counts (``I_p``, ``E_p``) — same multiple for
    both, one per attention pass executed — and the observed inter-link
    share ``E/(I+E)`` must sit within ``tolerance`` of the predicted
    ``E_p/(I_p+E_p)``.  Modeled-vs-observed time shares are reported but
    never gate: numpy wall time on the host says nothing about A800 link
    occupancy.

    Returns ``(ok, report_lines)``.
    """
    observed = _as_payload(observed)
    predicted = _as_payload(predicted)
    meta = predicted.get("metadata", {})
    if meta.get("ring_mode") == "bidirectional":
        return _diff_bidirectional(observed, meta)
    per_pass = meta.get("per_pass")
    if per_pass is None:
        raise ValueError(
            "predicted trace has no metadata.per_pass; build it with "
            "build_predicted_trace (or `python -m repro.obs trace-step`)"
        )
    i_p, e_p = int(per_pass.get("intra", 0)), int(per_pass.get("inter", 0))
    counts = observed_ring_counts(observed)
    lines = [
        f"predicted per-pass transitions: intra={i_p} inter={e_p}"
        + (f"  (method={meta.get('method')})" if meta.get("method") else "")
    ]
    ok = True
    logicals = sorted(set(counts) | set(RING_PHASES)) if (i_p or e_p) else sorted(counts)
    for logical in logicals:
        d = counts.get(logical, {"intra": 0, "inter": 0})
        i_o, e_o = d["intra"], d["inter"]
        if i_p == 0 and e_p == 0:
            good = i_o == 0 and e_o == 0
            verdict = "OK" if good else "MISMATCH (expected no ring transitions)"
            ok &= good
            lines.append(f"  {logical:<10} intra={i_o} inter={e_o}  {verdict}")
            continue
        passes = e_o // e_p if e_p else i_o // i_p if i_p else 0
        structural = i_o == passes * i_p and e_o == passes * e_p and passes >= 1
        pred_frac = e_p / (i_p + e_p)
        obs_frac = e_o / (i_o + e_o) if (i_o + e_o) else 0.0
        within = abs(obs_frac - pred_frac) <= tolerance
        good = structural and within
        ok &= good
        verdict = "OK" if good else (
            "MISMATCH (not an integer number of passes)"
            if not structural
            else f"MISMATCH (inter share off by {abs(obs_frac - pred_frac):.3f})"
        )
        lines.append(
            f"  {logical:<10} intra={i_o:<4} inter={e_o:<3} "
            f"-> {passes} pass(es), inter share {obs_frac:.3f} "
            f"vs predicted {pred_frac:.3f}  {verdict}"
        )
    obs_phases = time_by_phase(observed)
    pred_phases = time_by_phase(predicted)
    ring_obs = {
        k: obs_phases.get(v, 0.0) for k, v in _RING_ROWS.items()
    }
    ring_pred = {
        "intra": pred_phases.get("intra", 0.0),
        "inter": pred_phases.get("inter", 0.0),
    }
    tot_o, tot_p = sum(ring_obs.values()), sum(ring_pred.values())
    if tot_o and tot_p:
        lines.append(
            "link-time shares (report only): observed "
            f"intra={ring_obs['intra'] / tot_o:.1%} "
            f"inter={ring_obs['inter'] / tot_o:.1%} | modeled "
            f"intra={ring_pred['intra'] / tot_p:.1%} "
            f"inter={ring_pred['inter'] / tot_p:.1%}"
        )
    lines.append("schedule diff: " + ("OK" if ok else "MISMATCH"))
    return ok, lines


def _diff_bidirectional(
    observed: dict, meta: dict
) -> tuple[bool, list[str]]:
    """Diff gate for bidirectional predictions: per logical phase, the
    observed (direction, link-kind) transition counts must be the same
    integer multiple of the predicted per-pass cells — one multiple per
    attention pass executed.  The split is exact (set by the schedule and
    ``S // 2``), so no fractional tolerance applies.
    """
    per_pass = meta.get("per_pass_by_phase")
    if per_pass is None:
        raise ValueError(
            "bidirectional predicted trace has no metadata.per_pass_by_phase; "
            "build it with build_predicted_trace(..., ring_mode='bidirectional')"
        )
    counts = observed_ring_counts_by_direction(observed)
    lines = [
        "bidirectional per-pass transitions"
        + (f" (method={meta.get('method')})" if meta.get("method") else "")
        + ":"
    ]
    for logical in sorted(per_pass):
        exp = per_pass[logical]
        lines.append(
            f"  predicted {logical}: "
            f"fwd intra={exp['fwd']['intra']} inter={exp['fwd']['inter']}, "
            f"rev intra={exp['rev']['intra']} inter={exp['rev']['inter']}"
        )
    ok = True
    for logical in sorted(set(counts) | set(per_pass)):
        d = counts.get(logical, {
            "fwd": {"intra": 0, "inter": 0}, "rev": {"intra": 0, "inter": 0},
        })
        exp = per_pass.get(logical)
        obs_total = sum(d[s][k] for s in d for k in d[s])
        if exp is None:
            good = obs_total == 0
            ok &= good
            lines.append(
                f"  {logical:<10} {obs_total} transition(s)  "
                + ("OK" if good else "MISMATCH (no predicted pass)")
            )
            continue
        exp_total = sum(exp[s][k] for s in exp for k in exp[s])
        passes = obs_total // exp_total if exp_total else 0
        good = passes >= 1 and all(
            d[s][k] == passes * exp[s][k] for s in exp for k in exp[s]
        )
        ok &= good
        lines.append(
            f"  {logical:<10} fwd intra={d['fwd']['intra']:<4} "
            f"inter={d['fwd']['inter']:<3} rev intra={d['rev']['intra']:<4} "
            f"inter={d['rev']['inter']:<3} -> {passes} pass(es)  "
            + ("OK" if good else "MISMATCH (cells not an integer number of passes)")
        )
    lines.append("schedule diff: " + ("OK" if ok else "MISMATCH"))
    return ok, lines
