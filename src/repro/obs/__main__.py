"""Command-line entry points for the observability subsystem.

``python -m repro.obs <subcommand>``:

* ``trace-step`` — run a tiny traced training step (2 layers, burst
  attention, sequence-level selective checkpointing, fused LM head by
  default) and write the observed Chrome trace, the step-metrics JSONL,
  and the DES-predicted trace for the same configuration side by side.
* ``report`` — schema-validate an observed trace and print the
  time-by-phase / comm-volume / tile / recompute summary.  Exits
  non-zero on malformed or zero-span traces.
* ``diff`` — structurally compare an observed trace against the
  DES-predicted schedule (see :func:`repro.obs.report.diff_traces`);
  exits non-zero when the ring structure deviates beyond tolerance.
* ``attribute`` — run the critical-path engine
  (:func:`repro.obs.critical.attribute_trace`): per-step per-rank
  compute / exposed-comm / overlapped / idle attribution with a
  conservation check, straggler ranking, and exposed-comm pins against
  the DES-predicted critical path and the ``repro.perf.cost`` closed
  forms.  Exits non-zero when conservation, a pin, or a straggler check
  fails.

``report`` and ``diff`` accept ``--json`` for machine-readable output
(schemas ``obs-report/v1`` / ``obs-diff/v1``).
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_trace_step(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.engine import BurstEngine, EngineConfig
    from repro.engine.trainer import Trainer
    from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
    from repro.nn.modules import TransformerConfig
    from repro.obs.export import spans_to_chrome_json, validate_chrome_trace
    from repro.obs.mem import (
        timeline_json,
        use_memory_timeline,
        validate_memory_timeline,
    )
    from repro.obs.report import build_predicted_trace
    from repro.obs.tracer import use_tracing
    from repro.perf.schedules.attention import AttentionWorkload
    from repro.topology import a800_node, make_cluster

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.json")
    metrics_path = os.path.join(args.out_dir, "metrics.jsonl")
    predicted_path = os.path.join(args.out_dir, "predicted.json")
    timeline_path = os.path.join(args.out_dir, "memory-timeline.json")
    if os.path.exists(metrics_path):
        os.remove(metrics_path)

    topology = make_cluster(
        args.gpus, node=a800_node(gpus_per_node=args.gpus_per_node)
    )
    method_kwargs = (
        {"ring_mode": args.ring_mode}
        if args.ring_mode != "unidirectional"
        else {}
    )
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=args.seq, attn_block_size=32,
        ),
        method=args.method,
        method_kwargs=method_kwargs,
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, topology)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 128, args.seq)
    targets = rng.integers(0, 128, args.seq)
    trainer = Trainer(engine=engine, metrics_path=metrics_path)
    with use_tracing() as tracer:
        with use_memory_timeline() as timeline:
            trainer.fit([(ids, targets)], steps=args.steps)
            mem_events = timeline.events()
    spans = tracer.spans()
    payload = spans_to_chrome_json(
        spans, trace_path,
        memory_events=mem_events,
        metadata={
            "method": args.method,
            "world_size": topology.world_size,
            "gpus_per_node": topology.gpus_per_node,
            "seq_len": args.seq,
            "hidden": 32,
            "n_heads": 4,
            "n_layers": 2,
            "steps": args.steps,
            "ring_mode": args.ring_mode,
        },
    )
    validate_chrome_trace(payload)
    print(f"wrote {trace_path} ({len(spans)} spans)")
    print(f"wrote {metrics_path} ({args.steps} step record(s))")
    tl_payload = timeline_json(
        timeline, timeline_path,
        metadata={"method": args.method, "seq_len": args.seq,
                  "steps": args.steps},
    )
    validate_memory_timeline(tl_payload)
    print(f"wrote {timeline_path} ({len(mem_events)} memory events)")
    try:
        workload = AttentionWorkload(
            seq_len=args.seq, hidden=32, n_heads=4
        )
        build_predicted_trace(
            args.method, topology, workload, predicted_path,
            ring_mode=args.ring_mode,
        )
        print(f"wrote {predicted_path} (DES-predicted schedule)")
    except ValueError as exc:
        print(f"skipped predicted trace: {exc}")
    return 0


def _memdiff_cell(method, policy_mode, ring_mode, seq, chunk=None):
    """Run one traced step and return (observed, predicted, analysis)."""
    import numpy as np

    from repro.engine import BurstEngine, EngineConfig
    from repro.engine.trainer import Trainer
    from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
    from repro.nn.memory import get_tracker
    from repro.nn.modules import TransformerConfig
    from repro.obs.mem import (
        leak_report,
        peak_attribution,
        use_memory_timeline,
    )
    from repro.obs.tracer import use_tracing
    from repro.perf.memory import predict_step_peak_saved_bytes
    from repro.topology import a800_node, make_cluster

    # The quickstart model has 4 heads; Ulysses needs heads % world == 0,
    # so its cells run on a 4-GPU cluster (saved bytes are world-
    # independent: the simulation registers full-sequence tensors).
    world = 4 if method == "ulysses" else 8
    topology = make_cluster(world, node=a800_node(gpus_per_node=4))
    method_kwargs = (
        {"ring_mode": ring_mode}
        if method == "burst" and ring_mode != "unidirectional"
        else {}
    )
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=seq, attn_block_size=32, mlp_chunk_size=chunk,
        ),
        method=method,
        method_kwargs=method_kwargs,
        checkpoint=CheckpointPolicy(CheckpointMode(policy_mode), 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, topology=topology)
    rng = np.random.default_rng(0)
    batch = (rng.integers(0, 128, seq), rng.integers(0, 128, seq))
    with use_tracing() as tracer:
        with use_memory_timeline() as timeline:
            Trainer(engine=engine).fit([batch], steps=1)
            events = timeline.events()
    observed = get_tracker().peak_saved_bytes
    predicted = predict_step_peak_saved_bytes(
        seq_len=seq, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
        vocab=128, checkpoint=policy_mode, split_fraction=0.5,
        head_impl="fused", fused_mlp=(chunk is not None),
        rebuilds_context=(method != "ulysses"),
    )
    return {
        "observed": observed,
        "predicted": predicted,
        "attribution": peak_attribution(events),
        "leaks": leak_report(events),
        "events": events,
        "timeline": timeline,
        "spans": tracer.spans(),
    }


def _site_peak(events, prefix: str) -> int:
    """Max concurrent bytes of timeline allocations whose site starts
    with ``prefix`` (replays the transient series for one subsystem)."""
    current = peak = 0
    for ev in events:
        if not ev.site.startswith(prefix):
            continue
        current += ev.delta
        peak = max(peak, current)
    return peak


def _cmd_memdiff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.mem import (
        MEMDIFF_SCHEMA,
        timeline_json,
        validate_memdiff_json,
        validate_memory_timeline,
    )
    from repro.perf.memory import swiglu_chunked_transient_bytes

    os.makedirs(args.out_dir, exist_ok=True)
    seq = args.seq

    if args.inject:
        return _memdiff_inject(args, seq)

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    methods = ("burst", "megatron-cp", "ulysses")
    failed = False
    cells = []
    first_cell = None
    print(f"{'cell':<34} {'observed':>10} {'predicted':>10}  peak span")
    for method in methods:
        for policy in policies:
            cell = _memdiff_cell(method, policy, args.ring_mode, seq)
            if first_cell is None:
                first_cell = cell
            match = cell["observed"] == cell["predicted"]["peak_saved_bytes"]
            clean = not cell["leaks"]
            failed = failed or not match or not clean
            attr = cell["attribution"]
            span = attr.get("span") or "-"
            owner = attr.get("owner", {})
            where = (
                f"{span} (layer={owner.get('layer')}, "
                f"phase={owner.get('mem_phase')})"
            )
            status = "" if match else "  DRIFT"
            if not clean:
                status += f"  {len(cell['leaks'])} LEAKED"
            label = f"{method}/{policy}"
            print(
                f"{label:<34} {cell['observed']:>10} "
                f"{cell['predicted']['peak_saved_bytes']:>10}  {where}{status}"
            )
            cells.append({
                "method": method,
                "policy": policy,
                "ring_mode": args.ring_mode if method == "burst" else None,
                "observed_peak_bytes": cell["observed"],
                "predicted_peak_bytes": cell["predicted"]["peak_saved_bytes"],
                "match": match,
                "peak_span": attr.get("span"),
                "peak_owner": owner,
                "top": attr.get("top", []),
                "leaks": len(cell["leaks"]),
            })

    # Observed checkpoint-policy curve (Fig. 7, measured not asserted).
    curve = {}
    for policy in ("none", "full", "selective_pp", "sequence_level"):
        cell = _memdiff_cell("burst", policy, args.ring_mode, seq)
        curve[policy] = {
            "observed": cell["observed"],
            "predicted": cell["predicted"]["peak_saved_bytes"],
        }
        failed = failed or (
            cell["observed"] != cell["predicted"]["peak_saved_bytes"]
        )
    print("checkpoint curve (observed bytes): " + ", ".join(
        f"{p}={c['observed']}" for p, c in curve.items()
    ))

    # Chunked-MLP transient working set vs the PR-8 closed form.
    chunk = 32
    tcell = _memdiff_cell("burst", "sequence_level", args.ring_mode, seq,
                          chunk=chunk)
    t_observed = _site_peak(tcell["events"], "mlp.chunked_bwd")
    t_predicted = swiglu_chunked_transient_bytes(seq, 32, 64, chunk)
    t_match = t_observed == t_predicted
    failed = failed or not t_match
    print(
        f"mlp transient (chunk={chunk}): observed={t_observed} "
        f"predicted={t_predicted}{'' if t_match else '  DRIFT'}"
    )

    timeline_path = os.path.join(args.out_dir, "memory-timeline.json")
    payload = timeline_json(
        first_cell["timeline"],
        timeline_path,
        metadata={"method": "burst", "policy": policies[0], "seq_len": seq,
                  "ring_mode": args.ring_mode},
    )
    validate_memory_timeline(payload)
    print(f"wrote {timeline_path} ({len(first_cell['events'])} events)")

    from repro.obs.export import spans_to_chrome_json, validate_chrome_trace

    trace_path = os.path.join(args.out_dir, "memory-trace.json")
    trace_payload = spans_to_chrome_json(
        first_cell["spans"], trace_path,
        metadata={"method": "burst", "seq_len": seq,
                  "ring_mode": args.ring_mode},
        memory_events=first_cell["events"],
    )
    validate_chrome_trace(trace_payload)
    print(f"wrote {trace_path} (spans + memory counter tracks)")

    doc = {
        "schema": MEMDIFF_SCHEMA,
        "cells": cells,
        "curve": curve,
        "transient": {
            "chunk_size": chunk,
            "observed_bytes": t_observed,
            "predicted_bytes": t_predicted,
            "match": t_match,
        },
        "ok": not failed,
    }
    validate_memdiff_json(doc)
    doc_path = os.path.join(args.out_dir, "memdiff.json")
    with open(doc_path, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {doc_path}")
    print("memdiff: " + ("FAIL" if failed else "OK — observed peaks match "
                         "the closed forms byte-for-byte"))
    return 1 if failed else 0


def _memdiff_inject(args: argparse.Namespace, seq: int) -> int:
    """Seeded failure scenarios: must exit non-zero with an oom/v1 bundle."""
    import numpy as np

    from repro.engine import BurstEngine, EngineConfig
    from repro.engine.trainer import Trainer
    from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
    from repro.nn.memory import get_tracker
    from repro.nn.modules import TransformerConfig
    from repro.obs.flightrec import FlightRecorder
    from repro.obs.mem import (
        MemoryBudget,
        MemoryBudgetExceeded,
        dump_oom_postmortem,
        leak_report,
        use_memory_timeline,
        validate_oom_postmortem,
    )
    from repro.obs.tracer import use_tracing
    from repro.topology import a800_node, make_cluster

    topology = make_cluster(8, node=a800_node(gpus_per_node=4))
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=seq, attn_block_size=32,
        ),
        method="burst",
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, topology=topology)
    rng = np.random.default_rng(0)
    batch = (rng.integers(0, 128, seq), rng.integers(0, 128, seq))
    recorder = FlightRecorder(out_dir=args.out_dir, prefix="oom-")
    bundle_path = None
    with recorder, use_tracing():
        with use_memory_timeline() as timeline:
            if args.inject == "budget":
                budget = MemoryBudget(
                    limit_bytes=args.budget_bytes, raise_on_breach=True
                )
                try:
                    Trainer(engine=engine, memory_budget=budget).fit(
                        [batch], steps=1
                    )
                except MemoryBudgetExceeded as exc:
                    print(f"budget breach detected: {exc}")
                    bundle_path = budget.bundle_path
                else:
                    print("error: budget was never breached", file=sys.stderr)
                    return 0  # CI inverts: 0 here means detection failed
            else:  # leak
                trainer = Trainer(engine=engine)
                # Seed the leak *inside* the step so it is attributed:
                # one register with no matching release.
                leaked = {}

                def leak_hook(tr, record):
                    leaked["handle"] = get_tracker().register(
                        4096, site="injected.leak"
                    )

                trainer.on_step_end = leak_hook
                trainer.fit([batch], steps=1)
                leaks = leak_report(timeline.events())
                if not leaks:
                    print("error: seeded leak went undetected", file=sys.stderr)
                    return 0
                print(
                    f"leak detected: {len(leaks)} unreleased handle(s), "
                    f"site={leaks[0]['site']}, {leaks[0]['bytes']} bytes"
                )
                bundle_path = dump_oom_postmortem(
                    reason={
                        "kind": "seeded-leak",
                        "leaked_handles": len(leaks),
                        "watermark_bytes": get_tracker().current_saved_bytes,
                    },
                    timeline=timeline,
                )
    if bundle_path is None:
        print("error: no oom/v1 bundle was written", file=sys.stderr)
        return 0
    with open(bundle_path) as fh:
        validate_oom_postmortem(fh.read())
    print(f"validated oom/v1 bundle: {bundle_path}")
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        load_metrics,
        load_trace,
        render_report,
        report_json,
        validate_report_json,
    )

    try:
        payload = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: invalid trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    records = None
    if args.metrics is not None:
        try:
            records = load_metrics(args.metrics)
        except (OSError, ValueError) as exc:
            print(
                f"error: invalid metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 1
    if args.json:
        doc = report_json(payload, records, critical=args.critical)
        validate_report_json(doc)
        print(json.dumps(doc, indent=2))
        return 0
    print(render_report(payload, records))
    if args.critical:
        from repro.obs.critical import attribute_trace, render_attribution

        print()
        print(render_attribution(attribute_trace(payload)))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        diff_json,
        diff_traces,
        load_trace,
        validate_diff_json,
    )

    try:
        observed = load_trace(args.trace)
        predicted = load_trace(args.predicted, validate=False)
        ok, lines = diff_traces(
            observed, predicted, tolerance=args.tolerance
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        doc = diff_json(ok, lines, tolerance=args.tolerance)
        validate_diff_json(doc)
        print(json.dumps(doc, indent=2))
    else:
        print("\n".join(lines))
    return 0 if ok else 1


def _cmd_attribute(args: argparse.Namespace) -> int:
    import json

    from repro.obs.critical import (
        attribute_trace,
        render_attribution,
        validate_attribution_json,
    )
    from repro.obs.report import load_trace

    try:
        payload = load_trace(args.trace)
        doc = attribute_trace(
            payload, tolerance=args.tolerance, top=args.top
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    validate_attribution_json(doc)
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    print(render_attribution(doc))
    return 0 if doc["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability: trace a step, report on it, diff vs DES",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "trace-step", help="run a tiny traced training step and export"
    )
    p.add_argument("--out-dir", required=True)
    p.add_argument("--method", default="burst")
    p.add_argument("--steps", type=int, default=1)
    p.add_argument("--seq", type=int, default=128)
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument(
        "--ring-mode", default="unidirectional",
        choices=("unidirectional", "bidirectional"),
        help="ring circulation mode for the traced method and prediction",
    )
    p.set_defaults(fn=_cmd_trace_step)

    p = sub.add_parser("report", help="summarize an observed trace")
    p.add_argument("trace")
    p.add_argument("--metrics", default=None)
    p.add_argument(
        "--json", action="store_true",
        help="emit a validated obs-report/v1 JSON document",
    )
    p.add_argument(
        "--critical", action="store_true",
        help="append critical-path attribution (per-step, per-rank)",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "diff", help="compare an observed trace with the DES prediction"
    )
    p.add_argument("trace")
    p.add_argument("--predicted", required=True)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument(
        "--json", action="store_true",
        help="emit a validated obs-diff/v1 JSON document",
    )
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser(
        "attribute",
        help="critical-path attribution: exposed comm vs DES + closed forms",
    )
    p.add_argument("trace")
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the obs-attribution/v1 document to PATH",
    )
    p.add_argument("--top", type=int, default=5,
                   help="critical spans to list")
    p.set_defaults(fn=_cmd_attribute)

    p = sub.add_parser(
        "memdiff",
        help="gate observed peak memory against the closed-form predictions",
    )
    p.add_argument("--out-dir", required=True)
    p.add_argument("--seq", type=int, default=128)
    p.add_argument(
        "--policies", default="sequence_level,full",
        help="comma-separated checkpoint policies gated per method",
    )
    p.add_argument(
        "--ring-mode", default="unidirectional",
        choices=["unidirectional", "bidirectional"],
        help="ring transport for the burst cells",
    )
    p.add_argument(
        "--inject", default=None, choices=["leak", "budget"],
        help="seed a failure; the command must then exit non-zero "
             "with a validated oom/v1 bundle",
    )
    p.add_argument(
        "--budget-bytes", type=int, default=512_000,
        help="MemoryBudget limit for --inject budget",
    )
    p.set_defaults(fn=_cmd_memdiff)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
