"""Command-line entry points for the observability subsystem.

``python -m repro.obs <subcommand>``:

* ``trace-step`` — run a tiny traced training step (2 layers, burst
  attention, sequence-level selective checkpointing, fused LM head by
  default) and write the observed Chrome trace, the step-metrics JSONL,
  and the DES-predicted trace for the same configuration side by side.
* ``report`` — schema-validate an observed trace and print the
  time-by-phase / comm-volume / tile / recompute summary.  Exits
  non-zero on malformed or zero-span traces.
* ``diff`` — structurally compare an observed trace against the
  DES-predicted schedule (see :func:`repro.obs.report.diff_traces`);
  exits non-zero when the ring structure deviates beyond tolerance.
* ``attribute`` — run the critical-path engine
  (:func:`repro.obs.critical.attribute_trace`): per-step per-rank
  compute / exposed-comm / overlapped / idle attribution with a
  conservation check, straggler ranking, and exposed-comm pins against
  the DES-predicted critical path and the ``repro.perf.cost`` closed
  forms.  Exits non-zero when conservation, a pin, or a straggler check
  fails.

``report`` and ``diff`` accept ``--json`` for machine-readable output
(schemas ``obs-report/v1`` / ``obs-diff/v1``).
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_trace_step(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.engine import BurstEngine, EngineConfig
    from repro.engine.trainer import Trainer
    from repro.nn.checkpoint import CheckpointMode, CheckpointPolicy
    from repro.nn.modules import TransformerConfig
    from repro.obs.export import spans_to_chrome_json, validate_chrome_trace
    from repro.obs.report import build_predicted_trace
    from repro.obs.tracer import use_tracing
    from repro.perf.schedules.attention import AttentionWorkload
    from repro.topology import a800_node, make_cluster

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.json")
    metrics_path = os.path.join(args.out_dir, "metrics.jsonl")
    predicted_path = os.path.join(args.out_dir, "predicted.json")
    if os.path.exists(metrics_path):
        os.remove(metrics_path)

    topology = make_cluster(
        args.gpus, node=a800_node(gpus_per_node=args.gpus_per_node)
    )
    method_kwargs = (
        {"ring_mode": args.ring_mode}
        if args.ring_mode != "unidirectional"
        else {}
    )
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=128, dim=32, n_layers=2, n_heads=4, ffn_hidden=64,
            max_seq_len=args.seq, attn_block_size=32,
        ),
        method=args.method,
        method_kwargs=method_kwargs,
        checkpoint=CheckpointPolicy(CheckpointMode.SEQUENCE_LEVEL, 0.5),
        head_impl="fused",
    )
    engine = BurstEngine(config, topology)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 128, args.seq)
    targets = rng.integers(0, 128, args.seq)
    trainer = Trainer(engine=engine, metrics_path=metrics_path)
    with use_tracing() as tracer:
        trainer.fit([(ids, targets)], steps=args.steps)
    spans = tracer.spans()
    payload = spans_to_chrome_json(
        spans, trace_path,
        metadata={
            "method": args.method,
            "world_size": topology.world_size,
            "gpus_per_node": topology.gpus_per_node,
            "seq_len": args.seq,
            "hidden": 32,
            "n_heads": 4,
            "n_layers": 2,
            "steps": args.steps,
            "ring_mode": args.ring_mode,
        },
    )
    validate_chrome_trace(payload)
    print(f"wrote {trace_path} ({len(spans)} spans)")
    print(f"wrote {metrics_path} ({args.steps} step record(s))")
    try:
        workload = AttentionWorkload(
            seq_len=args.seq, hidden=32, n_heads=4
        )
        build_predicted_trace(
            args.method, topology, workload, predicted_path,
            ring_mode=args.ring_mode,
        )
        print(f"wrote {predicted_path} (DES-predicted schedule)")
    except ValueError as exc:
        print(f"skipped predicted trace: {exc}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        load_metrics,
        load_trace,
        render_report,
        report_json,
        validate_report_json,
    )

    try:
        payload = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: invalid trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    records = None
    if args.metrics is not None:
        try:
            records = load_metrics(args.metrics)
        except (OSError, ValueError) as exc:
            print(
                f"error: invalid metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 1
    if args.json:
        doc = report_json(payload, records, critical=args.critical)
        validate_report_json(doc)
        print(json.dumps(doc, indent=2))
        return 0
    print(render_report(payload, records))
    if args.critical:
        from repro.obs.critical import attribute_trace, render_attribution

        print()
        print(render_attribution(attribute_trace(payload)))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        diff_json,
        diff_traces,
        load_trace,
        validate_diff_json,
    )

    try:
        observed = load_trace(args.trace)
        predicted = load_trace(args.predicted, validate=False)
        ok, lines = diff_traces(
            observed, predicted, tolerance=args.tolerance
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        doc = diff_json(ok, lines, tolerance=args.tolerance)
        validate_diff_json(doc)
        print(json.dumps(doc, indent=2))
    else:
        print("\n".join(lines))
    return 0 if ok else 1


def _cmd_attribute(args: argparse.Namespace) -> int:
    import json

    from repro.obs.critical import (
        attribute_trace,
        render_attribution,
        validate_attribution_json,
    )
    from repro.obs.report import load_trace

    try:
        payload = load_trace(args.trace)
        doc = attribute_trace(
            payload, tolerance=args.tolerance, top=args.top
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    validate_attribution_json(doc)
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    print(render_attribution(doc))
    return 0 if doc["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability: trace a step, report on it, diff vs DES",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "trace-step", help="run a tiny traced training step and export"
    )
    p.add_argument("--out-dir", required=True)
    p.add_argument("--method", default="burst")
    p.add_argument("--steps", type=int, default=1)
    p.add_argument("--seq", type=int, default=128)
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument(
        "--ring-mode", default="unidirectional",
        choices=("unidirectional", "bidirectional"),
        help="ring circulation mode for the traced method and prediction",
    )
    p.set_defaults(fn=_cmd_trace_step)

    p = sub.add_parser("report", help="summarize an observed trace")
    p.add_argument("trace")
    p.add_argument("--metrics", default=None)
    p.add_argument(
        "--json", action="store_true",
        help="emit a validated obs-report/v1 JSON document",
    )
    p.add_argument(
        "--critical", action="store_true",
        help="append critical-path attribution (per-step, per-rank)",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "diff", help="compare an observed trace with the DES prediction"
    )
    p.add_argument("trace")
    p.add_argument("--predicted", required=True)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument(
        "--json", action="store_true",
        help="emit a validated obs-diff/v1 JSON document",
    )
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser(
        "attribute",
        help="critical-path attribution: exposed comm vs DES + closed forms",
    )
    p.add_argument("trace")
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the obs-attribution/v1 document to PATH",
    )
    p.add_argument("--top", type=int, default=5,
                   help="critical spans to list")
    p.set_defaults(fn=_cmd_attribute)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
