"""Memory observability: allocation timelines, attribution, budget watchdog.

The time half of the observability layer (tracer → Chrome trace → critical
path) got built first; this module is the memory half.  It turns the
single current/peak gauge pair of :class:`repro.nn.memory.MemoryTracker`
into an *observable* signal:

* **Timeline.**  While a :class:`MemoryTimeline` is installed
  (:func:`use_memory_timeline`), every tracker ``register``/``release``
  and every kernel transient allocation lands here as a timestamped
  :class:`MemEvent` carrying the post-event watermark and an *owner*
  record — the enclosing tracer span, the layer index, the memory phase
  (``fwd``/``bwd``/``recompute``) and the attention method, supplied by
  :func:`memory_scope` context managers instrumented through the model
  and trainer.  Timestamps share the tracer's epoch whenever tracing is
  on, so the exported Chrome counter tracks (``"ph": "C"``) line up under
  the span rows in Perfetto.
* **Two series.**  ``saved`` is the autograd persistent set (what
  checkpointing trades against recomputation); ``transient`` is kernel
  scratch — per-worker :class:`~repro.kernels.tileplan.KernelWorkspace`
  buffers and the chunked SwiGLU backward's working set — so observed
  transients can be pinned against
  :func:`repro.perf.memory.swiglu_chunked_transient_bytes`.
* **Attribution.**  :func:`peak_attribution` sweeps a timeline to name
  the span/layer/phase owning the global peak plus a top-K table of the
  allocations live at that instant; :func:`leak_report` pairs allocation
  lifetimes and lists handles never released (the saved series must
  drain to zero by step end).
* **Budget watchdog.**  :class:`MemoryBudget` watches the combined
  watermark and, on first crossing, dumps an ``oom/v1`` post-mortem
  bundle through the active :class:`~repro.obs.flightrec.FlightRecorder`
  (same machinery, same validation) — the admission-control primitive
  the roadmap's serving engine consumes.

Layering: this module imports only the two bottom-layer obs modules
(:mod:`repro.obs.tracer`, :mod:`repro.obs.metrics`) plus stdlib, so
``repro.nn.memory`` and ``repro.kernels`` can call into it without
cycles; the flight recorder is imported lazily at dump time.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

__all__ = [
    "MEMDIFF_SCHEMA",
    "MEMORY_TIMELINE_SCHEMA",
    "OOM_SCHEMA",
    "MemEvent",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MemoryTimeline",
    "active_budget",
    "active_timeline",
    "current_memory_scope",
    "leak_report",
    "memory_counter_events",
    "memory_phase",
    "memory_scope",
    "observe",
    "peak_attribution",
    "reset_transients",
    "timeline_json",
    "transient_alloc",
    "transient_free",
    "transient_scope",
    "use_memory_budget",
    "use_memory_timeline",
    "validate_memdiff_json",
    "validate_memory_timeline",
    "validate_oom_postmortem",
]

MEMORY_TIMELINE_SCHEMA = "memory-timeline/v1"
OOM_SCHEMA = "oom/v1"
MEMDIFF_SCHEMA = "obs-memdiff/v1"

#: the two watermark series
SAVED = "saved"
TRANSIENT = "transient"

#: keys the ``budget`` block of an ``oom/v1`` bundle must carry
OOM_BUDGET_KEYS = ("limit_bytes", "watermark_bytes", "series")


@dataclass
class MemEvent:
    """One allocation or release, with the post-event watermark.

    ``current`` is the series watermark *after* applying ``delta``, so a
    timeline replays into an exact step function; ``owner`` carries the
    attribution scope active at the call site (span, layer, phase,
    method, step — whatever the instrumented layers pushed).
    """

    ts: float
    series: str          # "saved" | "transient"
    kind: str            # "alloc" | "free"
    delta: int
    current: int
    handle: int
    site: str
    owner: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "series": self.series,
            "kind": self.kind,
            "delta": self.delta,
            "current": self.current,
            "handle": self.handle,
            "site": self.site,
            "owner": dict(self.owner),
        }


class MemoryTimeline:
    """Bounded, thread-safe record of :class:`MemEvent` samples.

    Older events are never dropped silently mid-stream: once ``capacity``
    is reached further events only bump ``truncated`` (the exporter and
    validator surface the count), keeping the retained prefix replayable.
    """

    def __init__(self, capacity: int = 200_000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.truncated = 0
        self._events: list[MemEvent] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    def now(self) -> float:
        """Seconds since the shared epoch (the tracer's when tracing)."""
        tracer = get_tracer()
        epoch = tracer._epoch if tracer.enabled else self._epoch
        return time.perf_counter() - epoch

    def record(self, event: MemEvent) -> None:
        with self._lock:
            if len(self._events) >= self.capacity:
                self.truncated += 1
                return
            self._events.append(event)

    def events(self) -> list[MemEvent]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events = []
            self.truncated = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# --- attribution scopes (thread-local) ----------------------------------------

_SCOPES = threading.local()


def _scope_stack() -> list[dict[str, Any]]:
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = []
        _SCOPES.stack = stack
    return stack


@contextmanager
def memory_scope(**attrs: Any) -> Iterator[None]:
    """Attribute allocations inside the block (layer=, method=, step=, ...).

    Scopes nest and merge innermost-wins; the instrumented layers push
    ``layer`` (block index), ``mem_phase`` (``fwd``/``bwd``/``recompute``),
    ``method`` and ``step``.  Near-free: one list append/pop.
    """
    stack = _scope_stack()
    stack.append(attrs)
    try:
        yield
    finally:
        if stack and stack[-1] is attrs:
            stack.pop()
        else:  # tolerate leaked inner scopes, mirroring the tracer
            while stack:
                top = stack.pop()
                if top is attrs:
                    break


def memory_phase(phase: str):
    """Sugar for ``memory_scope(mem_phase=phase)``."""
    return memory_scope(mem_phase=phase)


def current_memory_scope() -> dict[str, Any]:
    """The merged attribution scope of the calling thread.

    Includes the innermost live tracer span's name under ``"span"`` when
    tracing is enabled, so every sample is pinned to the span that will
    render above it in Perfetto.
    """
    merged: dict[str, Any] = {}
    for scope in _scope_stack():
        merged.update(scope)
    tracer = get_tracer()
    if tracer.enabled:
        stack = tracer._stack()
        if stack:
            live = stack[-1]
            merged["span"] = live.name
            merged.setdefault("phase", live.phase)
    merged.setdefault("mem_phase", "fwd")
    return merged


# --- process-global timeline / budget ----------------------------------------

_LOCK = threading.RLock()
_TIMELINE: MemoryTimeline | None = None
_BUDGET: "MemoryBudget | None" = None
_CURRENT = {SAVED: 0, TRANSIENT: 0}


def active_timeline() -> MemoryTimeline | None:
    return _TIMELINE


def active_budget() -> "MemoryBudget | None":
    return _BUDGET


@contextmanager
def use_memory_timeline(capacity: int = 200_000) -> Iterator[MemoryTimeline]:
    """Install a fresh timeline for the duration of the block."""
    global _TIMELINE
    timeline = MemoryTimeline(capacity=capacity)
    with _LOCK:
        prev = _TIMELINE
        _TIMELINE = timeline
    try:
        yield timeline
    finally:
        with _LOCK:
            _TIMELINE = prev


@contextmanager
def use_memory_budget(budget: "MemoryBudget") -> Iterator["MemoryBudget"]:
    """Install a :class:`MemoryBudget` watchdog for the block."""
    global _BUDGET
    with _LOCK:
        prev = _BUDGET
        _BUDGET = budget
    try:
        yield budget
    finally:
        with _LOCK:
            _BUDGET = prev


def observe(
    series: str,
    kind: str,
    delta: int,
    current: int,
    handle: int,
    site: str = "",
) -> None:
    """Record one watermark sample; called by the tracker and kernels.

    The disabled fast path is two module-global reads — instrumented
    allocation paths pay nothing while no timeline or budget is
    installed.
    """
    timeline = _TIMELINE
    budget = _BUDGET
    if timeline is None and budget is None:
        return
    _CURRENT[series] = current
    owner = current_memory_scope()
    if timeline is not None:
        timeline.record(
            MemEvent(
                ts=timeline.now(),
                series=series,
                kind=kind,
                delta=delta,
                current=current,
                handle=handle,
                site=site,
                owner=owner,
            )
        )
    if budget is not None and kind == "alloc":
        budget.check(
            _CURRENT[SAVED] + _CURRENT[TRANSIENT],
            series=series,
            owner=owner,
            timeline=timeline,
        )


# --- transient working sets ---------------------------------------------------

_TRANSIENT_LOCK = threading.RLock()
_TRANSIENT_LIVE: dict[int, tuple[int, str]] = {}
_TRANSIENT_NEXT = 0


def _transient_gauges():
    registry = get_registry()
    return (
        registry.gauge("memory.transient_bytes"),
        registry.gauge("memory.peak_transient_bytes"),
    )


def transient_alloc(nbytes: int, site: str = "kernel") -> int:
    """Account a kernel scratch allocation; returns a release handle.

    Backed by the ``memory.transient_bytes`` / ``memory.peak_transient_bytes``
    gauges and recorded on the active timeline as the ``transient``
    series.  Thread-safe (worker threads of the threaded backend allocate
    their workspaces concurrently).
    """
    global _TRANSIENT_NEXT
    current_g, peak_g = _transient_gauges()
    with _TRANSIENT_LOCK:
        handle = _TRANSIENT_NEXT
        _TRANSIENT_NEXT += 1
        _TRANSIENT_LIVE[handle] = (int(nbytes), site)
        current = int(current_g.value()) + int(nbytes)
        current_g.set(float(current))
        if current > peak_g.value():
            peak_g.set(float(current))
        observe(TRANSIENT, "alloc", int(nbytes), current, handle, site)
    return handle


def transient_free(handle: int) -> None:
    """Release a :func:`transient_alloc` handle (unknown handles ignored:
    workspaces may outlive a per-step :func:`reset_transients`)."""
    current_g, _ = _transient_gauges()
    with _TRANSIENT_LOCK:
        entry = _TRANSIENT_LIVE.pop(handle, None)
        if entry is None:
            return
        nbytes, site = entry
        current = int(current_g.value()) - nbytes
        current_g.set(float(current))
        observe(TRANSIENT, "free", -nbytes, current, handle, site)


@contextmanager
def transient_scope(nbytes: int, site: str = "kernel") -> Iterator[None]:
    """Account ``nbytes`` of scratch for the duration of the block."""
    handle = transient_alloc(nbytes, site)
    try:
        yield
    finally:
        transient_free(handle)


def reset_transients() -> None:
    """Zero the transient gauges and live set (between steps/experiments)."""
    current_g, peak_g = _transient_gauges()
    with _TRANSIENT_LOCK:
        _TRANSIENT_LIVE.clear()
        current_g.set(0.0)
        peak_g.set(0.0)
        _CURRENT[TRANSIENT] = 0


# --- timeline analysis --------------------------------------------------------


def peak_attribution(
    events: Sequence[MemEvent | dict],
    series: str = SAVED,
    top: int = 5,
) -> dict[str, Any]:
    """Sweep a timeline and attribute the global peak of ``series``.

    Returns the peak watermark, its timestamp, the owning span/scope, and
    a top-K table of the allocations live at the peak grouped by
    ``(site, layer, mem_phase)``.
    """
    evs = [_as_event(e) for e in events if _as_event(e).series == series]
    live: dict[int, MemEvent] = {}
    peak_bytes = 0
    peak_event: MemEvent | None = None
    peak_live: dict[int, MemEvent] = {}
    for ev in evs:
        if ev.kind == "alloc":
            live[ev.handle] = ev
        else:
            live.pop(ev.handle, None)
        if ev.current > peak_bytes:
            peak_bytes = ev.current
            peak_event = ev
            peak_live = dict(live)
    groups: dict[tuple, dict[str, Any]] = {}
    for ev in peak_live.values():
        key = (
            ev.site,
            ev.owner.get("layer"),
            ev.owner.get("mem_phase"),
        )
        g = groups.setdefault(
            key,
            {
                "site": ev.site,
                "layer": ev.owner.get("layer"),
                "mem_phase": ev.owner.get("mem_phase"),
                "bytes": 0,
                "allocations": 0,
            },
        )
        g["bytes"] += ev.delta
        g["allocations"] += 1
    table = sorted(groups.values(), key=lambda g: -g["bytes"])[:top]
    return {
        "series": series,
        "peak_bytes": peak_bytes,
        "ts": peak_event.ts if peak_event is not None else None,
        "span": peak_event.owner.get("span") if peak_event is not None else None,
        "owner": dict(peak_event.owner) if peak_event is not None else {},
        "live_allocations": len(peak_live),
        "top": table,
    }


def leak_report(
    events: Sequence[MemEvent | dict], series: str = SAVED
) -> list[dict[str, Any]]:
    """Allocation-lifetime pairing: handles never released, largest first.

    By the end of a training step the autograd backward must have
    released every saved-activation handle, so a non-empty report on the
    ``saved`` series is a leak (and ``memdiff`` fails on it).
    """
    live: dict[int, MemEvent] = {}
    for e in events:
        ev = _as_event(e)
        if ev.series != series:
            continue
        if ev.kind == "alloc":
            live[ev.handle] = ev
        else:
            live.pop(ev.handle, None)
    return [
        {
            "handle": ev.handle,
            "bytes": ev.delta,
            "site": ev.site,
            "ts": ev.ts,
            "owner": dict(ev.owner),
        }
        for ev in sorted(live.values(), key=lambda e: -e.delta)
    ]


def _as_event(e: MemEvent | dict) -> MemEvent:
    if isinstance(e, MemEvent):
        return e
    return MemEvent(
        ts=e["ts"],
        series=e["series"],
        kind=e["kind"],
        delta=e["delta"],
        current=e["current"],
        handle=e["handle"],
        site=e.get("site", ""),
        owner=dict(e.get("owner", {})),
    )


def memory_counter_events(
    events: Sequence[MemEvent | dict], pid: int = 2
) -> list[dict[str, Any]]:
    """Render a timeline as Chrome-trace counter events (``"ph": "C"``).

    One counter track per series (``memory.saved_bytes`` /
    ``memory.transient_bytes``); Perfetto draws them as area charts under
    the span rows of the same pid.  Samples carry the owning step in
    ``args`` when the scope recorded one, which the strict validator uses
    to pin each sample inside its ``train.step`` span.
    """
    out: list[dict[str, Any]] = []
    for e in events:
        ev = _as_event(e)
        args: dict[str, Any] = {"bytes": ev.current}
        if "step" in ev.owner:
            args["step"] = ev.owner["step"]
        out.append(
            {
                "name": f"memory.{ev.series}_bytes",
                "ph": "C",
                "ts": round(ev.ts * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    return out


def timeline_json(
    timeline: MemoryTimeline,
    path: str | None = None,
    *,
    metadata: dict[str, Any] | None = None,
) -> str:
    """Serialise a timeline as a validated ``memory-timeline/v1`` artifact."""
    doc: dict[str, Any] = {
        "schema": MEMORY_TIMELINE_SCHEMA,
        "capacity": timeline.capacity,
        "truncated": timeline.truncated,
        "events": [ev.as_dict() for ev in timeline.events()],
    }
    if metadata:
        doc["metadata"] = dict(metadata)
    payload = json.dumps(doc, indent=2)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(payload)
    return payload


def validate_memory_timeline(payload: str | dict) -> dict[str, Any]:
    """Strictly validate a ``memory-timeline/v1`` document; raise on damage.

    Checks the schema tag, per-event fields, non-negative watermarks, and
    that each series' watermark replays exactly (``current`` equals the
    running sum of ``delta``) — a truncated or reordered timeline fails.
    """
    if isinstance(payload, str):
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"memory timeline is truncated or corrupt: {exc}")
    else:
        doc = payload
    if not isinstance(doc, dict):
        raise ValueError("memory timeline is not a JSON object")
    if doc.get("schema") != MEMORY_TIMELINE_SCHEMA:
        raise ValueError(
            f"memory timeline has schema {doc.get('schema')!r}, "
            f"expected {MEMORY_TIMELINE_SCHEMA!r}"
        )
    events = doc.get("events")
    if not isinstance(events, list):
        raise ValueError("memory timeline carries no 'events' list")
    running: dict[str, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        for key in ("ts", "series", "kind", "delta", "current", "handle"):
            if key not in ev:
                raise ValueError(f"event #{i} missing {key!r}")
        if ev["series"] not in (SAVED, TRANSIENT):
            raise ValueError(f"event #{i} has unknown series {ev['series']!r}")
        if ev["kind"] not in ("alloc", "free"):
            raise ValueError(f"event #{i} has unknown kind {ev['kind']!r}")
        if ev["current"] < 0:
            raise ValueError(
                f"event #{i}: negative watermark {ev['current']} "
                f"on series {ev['series']!r}"
            )
        expect = running.get(ev["series"], 0) + ev["delta"]
        if expect != ev["current"]:
            raise ValueError(
                f"event #{i}: series {ev['series']!r} watermark "
                f"{ev['current']} does not replay (expected {expect}) — "
                "timeline truncated or reordered"
            )
        running[ev["series"]] = ev["current"]
    if doc.get("truncated", 0) and not events:
        raise ValueError("memory timeline dropped every event")
    return doc


# --- budget watchdog ----------------------------------------------------------


class MemoryBudgetExceeded(RuntimeError):
    """Raised by a :class:`MemoryBudget` with ``raise_on_breach=True``."""


class MemoryBudget:
    """Watchdog over the combined (saved + transient) watermark.

    On the first crossing of ``limit_bytes`` it records the breach,
    increments ``memory.budget_breaches``, dumps an ``oom/v1`` bundle
    through the active flight recorder (if one is installed), invokes
    ``on_breach`` and — when ``raise_on_breach`` — raises
    :class:`MemoryBudgetExceeded`.  Subsequent allocations are not
    re-reported (one bundle per breach episode); :meth:`reset` re-arms.
    """

    def __init__(
        self,
        limit_bytes: int,
        *,
        raise_on_breach: bool = False,
        on_breach=None,
    ):
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be > 0, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.raise_on_breach = raise_on_breach
        self.on_breach = on_breach
        self.breached = False
        self.watermark_bytes = 0
        self.bundle_path: str | None = None

    def reset(self) -> None:
        self.breached = False
        self.watermark_bytes = 0
        self.bundle_path = None

    def check(
        self,
        total_bytes: int,
        *,
        series: str = SAVED,
        owner: dict[str, Any] | None = None,
        timeline: MemoryTimeline | None = None,
    ) -> None:
        if total_bytes > self.watermark_bytes:
            self.watermark_bytes = int(total_bytes)
        if self.breached or total_bytes <= self.limit_bytes:
            return
        self.breached = True
        get_registry().counter("memory.budget_breaches").inc()
        reason = {
            "kind": "memory-budget-breach",
            "limit_bytes": self.limit_bytes,
            "watermark_bytes": int(total_bytes),
            "series": series,
            "owner": dict(owner or {}),
        }
        self.bundle_path = dump_oom_postmortem(
            reason=reason, budget=self, timeline=timeline
        )
        if self.on_breach is not None:
            self.on_breach(self)
        if self.raise_on_breach:
            raise MemoryBudgetExceeded(
                f"memory budget breached: {total_bytes} B > "
                f"{self.limit_bytes} B (bundle: {self.bundle_path})"
            )


def dump_oom_postmortem(
    *,
    reason: dict[str, Any],
    budget: MemoryBudget | None = None,
    timeline: MemoryTimeline | None = None,
    path: str | None = None,
) -> str | None:
    """Dump an ``oom/v1`` bundle through the active flight recorder.

    Reuses the ``postmortem/v1`` machinery wholesale (span ring buffer,
    metrics snapshot, critical path) with the schema tag swapped and a
    ``budget`` block plus the timeline's peak attribution and leak report
    attached.  Returns the bundle path, or ``None`` when no recorder is
    installed (the default — zero cost on the hot path).
    """
    from repro.obs.flightrec import get_active_recorder

    rec = get_active_recorder()
    if rec is None:
        return None
    events = timeline.events() if timeline is not None else []
    extra: dict[str, Any] = {
        "budget": {
            "limit_bytes": budget.limit_bytes if budget else None,
            "watermark_bytes": (
                budget.watermark_bytes
                if budget
                else reason.get("watermark_bytes")
            ),
            "series": reason.get("series", SAVED),
        },
        "peak_attribution": peak_attribution(events) if events else None,
        "leaks": leak_report(events) if events else [],
    }
    return rec.dump(path, reason=reason, schema=OOM_SCHEMA, extra=extra)


#: keys every ``obs-memdiff/v1`` cell must carry
MEMDIFF_CELL_KEYS = (
    "method",
    "policy",
    "observed_peak_bytes",
    "predicted_peak_bytes",
    "match",
    "peak_span",
    "leaks",
)


def validate_memdiff_json(doc: dict) -> dict:
    """Validate an ``obs-memdiff/v1`` document; raise ``ValueError``."""
    if not isinstance(doc, dict):
        raise ValueError("memdiff document is not a JSON object")
    if doc.get("schema") != MEMDIFF_SCHEMA:
        raise ValueError(
            f"memdiff document has schema {doc.get('schema')!r}, "
            f"expected {MEMDIFF_SCHEMA!r}"
        )
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("memdiff document carries no cells")
    for i, cell in enumerate(cells):
        missing = [k for k in MEMDIFF_CELL_KEYS if k not in cell]
        if missing:
            raise ValueError(f"memdiff cell #{i} missing keys: {missing}")
        if cell["match"] and (
            cell["observed_peak_bytes"] != cell["predicted_peak_bytes"]
        ):
            raise ValueError(
                f"memdiff cell #{i} claims match but "
                f"{cell['observed_peak_bytes']} != "
                f"{cell['predicted_peak_bytes']}"
            )
    for key in ("curve", "transient", "ok"):
        if key not in doc:
            raise ValueError(f"memdiff document missing {key!r}")
    return doc


def validate_oom_postmortem(payload: str | dict) -> dict[str, Any]:
    """Validate an ``oom/v1`` bundle (superset of ``postmortem/v1``)."""
    from repro.obs.flightrec import validate_postmortem

    doc = validate_postmortem(payload, schema=OOM_SCHEMA)
    budget = doc.get("budget")
    if not isinstance(budget, dict):
        raise ValueError("oom bundle missing its 'budget' block")
    missing = [k for k in OOM_BUDGET_KEYS if k not in budget]
    if missing:
        raise ValueError(f"oom bundle budget block missing keys: {missing}")
    if budget["limit_bytes"] is not None and (
        budget["watermark_bytes"] is None
        or budget["watermark_bytes"] <= budget["limit_bytes"]
    ):
        raise ValueError(
            "oom bundle watermark does not exceed its budget — not a breach"
        )
    if "leaks" not in doc:
        raise ValueError("oom bundle missing its 'leaks' list")
    return doc
