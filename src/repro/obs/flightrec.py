"""Flight recorder: a bounded span buffer dumped as a post-mortem bundle.

A chaos run that dies mid-step loses exactly the evidence that explains
the death if tracing only materialises at clean shutdown.  The
:class:`FlightRecorder` therefore installs itself as a tracer *sink*
(:meth:`repro.obs.tracer.Tracer.add_sink`): every finished span lands in
a bounded ring buffer the instant it closes, surviving tracer restarts,
and :meth:`FlightRecorder.dump` can serialise the recent past at any
moment — most usefully from inside a failure handler.

The dump is a **post-mortem bundle** (``postmortem/v1``): the buffered
spans rendered as a Chrome trace (with flow arrows, loadable in Perfetto
like any other trace), a metrics-registry snapshot, the failure
detector's lease state, and the top critical spans
(:func:`repro.obs.critical.critical_spans`) — for a lease-declared death
that table leads with the ``failure.detect`` span naming the dead rank.

Failure paths call :func:`notify_failure`, which dumps through the
innermost installed recorder (a process-global stack, mirroring how the
tracer itself is process-global) and returns the bundle path — or
``None`` when no recorder is installed, keeping the hot path free of
any file I/O by default.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any

from repro.obs.export import spans_to_chrome_json, validate_chrome_trace
from repro.obs.tracer import Span, get_tracer

__all__ = [
    "POSTMORTEM_SCHEMA",
    "FlightRecorder",
    "get_active_recorder",
    "notify_failure",
    "validate_postmortem",
]

POSTMORTEM_SCHEMA = "postmortem/v1"

#: keys every post-mortem bundle must carry
POSTMORTEM_KEYS = (
    "schema",
    "reason",
    "trace",
    "metrics",
    "lease",
    "critical_path",
    "n_spans",
    "capacity",
)

#: innermost-last stack of installed recorders
_ACTIVE: list["FlightRecorder"] = []


class FlightRecorder:
    """Bounded ring buffer of recent spans with post-mortem dumping.

    Parameters
    ----------
    capacity:
        Maximum spans retained; older spans fall off the front.
    out_dir:
        Directory :meth:`dump` writes bundles into when no explicit path
        is given (created on first dump).
    prefix:
        Filename prefix for auto-named bundles, e.g. a chaos cell id.

    Use as a context manager (or call :meth:`install` / :meth:`uninstall`)
    around the traced region; the recorder keeps capturing across
    ``use_tracing()`` restarts because sinks survive tracer ``start()``.
    """

    def __init__(
        self,
        capacity: int = 512,
        out_dir: str | None = None,
        prefix: str = "",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.out_dir = out_dir
        self.prefix = prefix
        self._buf: deque[Span] = deque(maxlen=capacity)
        self.dumps: list[str] = []

    # -- sink protocol -------------------------------------------------------

    def __call__(self, span: Span) -> None:
        self._buf.append(span)

    def install(self) -> "FlightRecorder":
        get_tracer().add_sink(self)
        _ACTIVE.append(self)
        return self

    def uninstall(self) -> None:
        get_tracer().remove_sink(self)
        while self in _ACTIVE:
            _ACTIVE.remove(self)

    def __enter__(self) -> "FlightRecorder":
        return self.install()

    def __exit__(self, *exc: object) -> bool:
        self.uninstall()
        return False

    # -- access --------------------------------------------------------------

    def spans(self) -> list[Span]:
        """The buffered spans, oldest first."""
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()

    # -- dumping -------------------------------------------------------------

    def dump(
        self,
        path: str | None = None,
        *,
        reason: dict[str, Any],
        detector: Any = None,
        schema: str = POSTMORTEM_SCHEMA,
        extra: dict[str, Any] | None = None,
    ) -> str:
        """Write a ``postmortem/v1`` bundle; returns its path.

        ``reason`` describes why the dump happened (must carry at least a
        ``kind``); ``detector`` is an optional
        :class:`~repro.comm.failure.FailureDetector` whose lease state is
        embedded.  Derived bundle flavours (``oom/v1``) pass their own
        ``schema`` tag plus ``extra`` top-level blocks; everything else —
        ring buffer, metrics snapshot, critical path, validation — is
        shared machinery.
        """
        from repro.obs.critical import critical_spans
        from repro.obs.metrics import get_registry

        spans = self.spans()
        trace = (
            json.loads(spans_to_chrome_json(spans))
            if spans else {"traceEvents": []}
        )
        bundle = {
            "schema": schema,
            "reason": dict(reason),
            "trace": trace,
            "metrics": get_registry().snapshot(),
            "lease": _lease_state(detector),
            "critical_path": critical_spans(trace),
            "n_spans": len(spans),
            "capacity": self.capacity,
        }
        if extra:
            for key, value in extra.items():
                if key in bundle:
                    raise ValueError(
                        f"extra block {key!r} would shadow a bundle key"
                    )
                bundle[key] = value
        if path is None:
            out_dir = self.out_dir or "."
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(
                out_dir, f"{self.prefix}postmortem-{len(self.dumps):03d}.json"
            )
        with open(path, "w") as fh:
            json.dump(bundle, fh, indent=2, default=str)
        self.dumps.append(path)
        return path


def _lease_state(detector: Any) -> dict[str, Any] | None:
    """Serialise a failure detector's lease protocol state, if any."""
    if detector is None:
        return None
    lease = getattr(detector, "lease", None)
    clock = getattr(detector, "clock", None)
    return {
        "sim_time_s": getattr(clock, "now", None),
        "step": getattr(detector, "step", None),
        "call_index": getattr(detector, "call_index", None),
        "extensions": dict(getattr(detector, "extensions", {}) or {}),
        "tolerated": [
            list(t) for t in getattr(detector, "tolerated", []) or []
        ],
        "config": {
            "op_deadline_s": getattr(lease, "op_deadline_s", None),
            "escalation_factor": getattr(lease, "escalation_factor", None),
            "max_extensions": getattr(lease, "max_extensions", None),
            "crash_notice_s": getattr(lease, "crash_notice_s", None),
        },
    }


def get_active_recorder() -> FlightRecorder | None:
    """The innermost installed recorder, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def notify_failure(
    reason: dict[str, Any], detector: Any = None
) -> str | None:
    """Dump a post-mortem through the active recorder, if one is installed.

    Called by ``CommFailure`` / ``RankFailure`` raise sites right before
    they raise; returns the bundle path or ``None`` (no recorder — the
    default, costing one list check).
    """
    rec = get_active_recorder()
    if rec is None:
        return None
    return rec.dump(reason=reason, detector=detector)


def validate_postmortem(
    payload: str | dict, schema: str = POSTMORTEM_SCHEMA
) -> dict[str, Any]:
    """Strictly validate a post-mortem bundle; raise ``ValueError``.

    Accepts the bundle JSON text or the parsed dict.  Checks the schema
    tag (``schema`` selects the expected flavour — ``oom/v1`` bundles are
    validated through :func:`repro.obs.mem.validate_oom_postmortem`,
    which calls back here), required keys, a structured ``reason`` (must
    name a ``kind``), span-count consistency, and — when spans were
    captured — runs the full Chrome-trace validation over the embedded
    trace.
    """
    if isinstance(payload, str):
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"post-mortem bundle is truncated or corrupt: {exc}")
    else:
        doc = payload
    if not isinstance(doc, dict):
        raise ValueError("post-mortem bundle is not a JSON object")
    missing = [k for k in POSTMORTEM_KEYS if k not in doc]
    if missing:
        raise ValueError(f"post-mortem bundle missing keys: {missing}")
    if doc["schema"] != schema:
        raise ValueError(
            f"post-mortem bundle has schema {doc['schema']!r}, "
            f"expected {schema!r}"
        )
    reason = doc["reason"]
    if not isinstance(reason, dict) or not reason.get("kind"):
        raise ValueError("post-mortem reason must be an object with a 'kind'")
    trace = doc["trace"]
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ValueError("post-mortem trace is not a Chrome-trace document")
    n_x = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    if n_x != doc["n_spans"]:
        raise ValueError(
            f"post-mortem records n_spans={doc['n_spans']} but the trace "
            f"carries {n_x} duration events"
        )
    if doc["n_spans"] > 0:
        validate_chrome_trace(trace)
    if not isinstance(doc["critical_path"], list):
        raise ValueError("post-mortem critical_path is not a list")
    return doc
