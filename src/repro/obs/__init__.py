"""Unified observability: span tracing, metrics, and trace exporters.

The perf model (:mod:`repro.perf`) can *predict* a timeline; this package
records the *observed* one from real executed runs and provides the plumbing
to compare the two:

* :mod:`repro.obs.tracer` — a zero-dependency span tracer.
  :func:`trace_span` is a context manager instrumented through the hot
  paths (communicator ops, flash kernels, ring transitions, checkpoint
  recompute, fused LM-head tiles, trainer steps).  Tracing is **off by
  default**; the disabled fast path is a single flag check returning a
  shared no-op, so instrumentation costs nothing when not recording.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms with labels.  The ad-hoc tallies that used to live
  in ``repro.kernels.tileplan``, ``repro.nn.memory`` and
  ``repro.resilience`` are backed by (or mirrored into) the global
  registry, giving one ``snapshot()`` / ``reset()`` API over all of them.
* :mod:`repro.obs.export` — exporters: Chrome trace JSON in the *same
  schema* as the DES exporter (:func:`repro.perf.trace.trace_to_chrome_json`)
  so Perfetto shows predicted and observed timelines side by side, and
  per-step JSONL metrics lines from the :class:`~repro.engine.Trainer`.
* ``python -m repro.obs`` — CLI: ``trace-step`` records a tiny traced
  training step, ``report`` summarises a trace, ``diff`` checks the
  observed trace against the DES-predicted schedule.
"""

from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    get_tracer,
    trace_span,
    traced,
    tracing_enabled,
    use_tracing,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.export import (
    spans_to_chrome_json,
    validate_chrome_trace,
    validate_metrics_jsonl,
    write_step_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "spans_to_chrome_json",
    "trace_span",
    "traced",
    "tracing_enabled",
    "use_tracing",
    "validate_chrome_trace",
    "validate_metrics_jsonl",
    "write_step_metrics",
]
