"""Unified observability: span tracing, metrics, and trace exporters.

The perf model (:mod:`repro.perf`) can *predict* a timeline; this package
records the *observed* one from real executed runs and provides the plumbing
to compare the two:

* :mod:`repro.obs.tracer` — a zero-dependency span tracer.
  :func:`trace_span` is a context manager instrumented through the hot
  paths (communicator ops, flash kernels, ring transitions, checkpoint
  recompute, fused LM-head tiles, trainer steps).  Tracing is **off by
  default**; the disabled fast path is a single flag check returning a
  shared no-op, so instrumentation costs nothing when not recording.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms with labels.  The ad-hoc tallies that used to live
  in ``repro.kernels.tileplan``, ``repro.nn.memory`` and
  ``repro.resilience`` are backed by (or mirrored into) the global
  registry, giving one ``snapshot()`` / ``reset()`` API over all of them.
* :mod:`repro.obs.export` — exporters: Chrome trace JSON in the *same
  schema* as the DES exporter (:func:`repro.perf.trace.trace_to_chrome_json`)
  so Perfetto shows predicted and observed timelines side by side, and
  per-step JSONL metrics lines from the :class:`~repro.engine.Trainer`.
* :mod:`repro.obs.flow` — producer→consumer flow events derived from
  communicator spans, exported as Chrome-trace ``s``/``f`` pairs so
  Perfetto draws the cross-rank causal arrows.
* :mod:`repro.obs.critical` — the critical-path engine: per-step
  per-rank attribution (compute / exposed comm / overlapped / idle with
  a conservation check), straggler ranking, and exposed-comm pins
  against the DES-predicted critical path and closed-form comm costs.
* :mod:`repro.obs.flightrec` — a flight recorder (bounded span ring
  buffer installed as a tracer sink) that failure handlers dump as a
  validated ``postmortem/v1`` bundle.
* :mod:`repro.obs.mem` — the memory half: allocation timelines fed by
  every tracker register/release and kernel transient, per-span peak
  attribution and leak reports, Chrome counter tracks, and the
  :class:`MemoryBudget` watchdog that dumps ``oom/v1`` bundles.
* ``python -m repro.obs`` — CLI: ``trace-step`` records a tiny traced
  training step, ``report`` summarises a trace (``--critical`` appends
  attribution, ``--json`` for machines), ``diff`` checks the observed
  trace against the DES-predicted schedule, ``attribute`` runs the
  critical-path engine and exits non-zero on a broken pin or straggler,
  ``memdiff`` gates observed peak memory against the closed-form
  predictions of :mod:`repro.perf.memory`.
"""

from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    get_tracer,
    trace_span,
    traced,
    tracing_enabled,
    use_tracing,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.export import (
    spans_to_chrome_json,
    validate_chrome_trace,
    validate_metrics_jsonl,
    write_step_metrics,
)
from repro.obs.flow import (
    FlowEdge,
    derive_flows,
    flow_key,
    validate_flow_events,
)
from repro.obs.report import (
    diff_json,
    diff_traces,
    load_trace,
    report_json,
    validate_diff_json,
    validate_report_json,
)
from repro.obs.critical import (
    attribute_steps,
    attribute_trace,
    check_conservation,
    critical_spans,
    render_attribution,
    straggler_ranking,
    validate_attribution_json,
)
from repro.obs.flightrec import (
    FlightRecorder,
    get_active_recorder,
    notify_failure,
    validate_postmortem,
)
from repro.obs.mem import (
    MemEvent,
    MemoryBudget,
    MemoryBudgetExceeded,
    MemoryTimeline,
    dump_oom_postmortem,
    leak_report,
    memory_counter_events,
    memory_phase,
    memory_scope,
    peak_attribution,
    timeline_json,
    transient_alloc,
    transient_free,
    transient_scope,
    use_memory_budget,
    use_memory_timeline,
    validate_memdiff_json,
    validate_memory_timeline,
    validate_oom_postmortem,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "FlowEdge",
    "Gauge",
    "Histogram",
    "MemEvent",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MemoryTimeline",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "attribute_steps",
    "attribute_trace",
    "check_conservation",
    "critical_spans",
    "derive_flows",
    "diff_json",
    "diff_traces",
    "dump_oom_postmortem",
    "flow_key",
    "get_active_recorder",
    "get_registry",
    "get_tracer",
    "leak_report",
    "load_trace",
    "memory_counter_events",
    "memory_phase",
    "memory_scope",
    "notify_failure",
    "peak_attribution",
    "render_attribution",
    "report_json",
    "spans_to_chrome_json",
    "straggler_ranking",
    "timeline_json",
    "trace_span",
    "traced",
    "tracing_enabled",
    "transient_alloc",
    "transient_free",
    "transient_scope",
    "use_memory_budget",
    "use_memory_timeline",
    "use_tracing",
    "validate_attribution_json",
    "validate_chrome_trace",
    "validate_diff_json",
    "validate_flow_events",
    "validate_memdiff_json",
    "validate_memory_timeline",
    "validate_metrics_jsonl",
    "validate_oom_postmortem",
    "validate_postmortem",
    "validate_report_json",
    "write_step_metrics",
]
