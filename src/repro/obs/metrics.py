"""A minimal metrics registry: counters, gauges, histograms, one snapshot.

Before this module existed the repo had three disconnected tallies —
``repro.kernels.tileplan.counters`` (tile planning), the
``repro.nn.memory`` tracker (activation bytes / recompute FLOPs) and
``repro.resilience``'s ``FaultMonitor`` (delivery faults) — each with its
own reset/readout idiom.  All of them are now backed by (or mirrored
into) the process-global registry returned by :func:`get_registry`, so
one ``snapshot()`` captures the whole picture and one ``reset()`` starts
a clean measurement window.

Hot-path discipline: metric objects expose their unlabeled value as a
plain ``_value`` float attribute, so instrumented inner loops (sub-tile
classification, autograd save hooks) pay one attribute add — no dict
lookups, no label tuple construction — unless they actually use labels.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


def _label_key(labels: dict[str, Any]) -> str:
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class Counter:
    """Monotonically increasing tally (resettable), optionally labeled."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_labeled")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._labeled: dict[str, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if labels:
            key = _label_key(labels)
            self._labeled[key] = self._labeled.get(key, 0.0) + amount
        else:
            self._value += amount

    def value(self, **labels: Any) -> float:
        if labels:
            return self._labeled.get(_label_key(labels), 0.0)
        return self._value

    def reset(self) -> None:
        self._value = 0.0
        self._labeled.clear()

    def snapshot(self) -> float | int | dict[str, float]:
        val = int(self._value) if self._value == int(self._value) else self._value
        if not self._labeled:
            return val
        out: dict[str, Any] = {"": val} if self._value else {}
        for key, v in sorted(self._labeled.items()):
            out[key] = int(v) if v == int(v) else v
        return out


class Gauge(Counter):
    """A value that can go up and down (e.g. live activation bytes)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: Any) -> None:
        if labels:
            self._labeled[_label_key(labels)] = value
        else:
            self._value = value

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


#: Samples retained per label set for percentile estimation; once full,
#: further observations update only the streaming stats (deterministic —
#: no reservoir randomness).
HISTOGRAM_SAMPLE_CAP = 2048

#: Percentiles reported in histogram snapshots.
HISTOGRAM_PERCENTILES = (50, 95, 99)


def _nearest_rank(sorted_samples: list[float], p: float) -> float:
    """Nearest-rank percentile (exact for pinned test inputs)."""
    n = len(sorted_samples)
    return sorted_samples[max(0, math.ceil(p / 100.0 * n) - 1)]


class Histogram:
    """Streaming summary stats per label set, with bounded percentiles.

    ``count``/``total``/``min``/``max`` are exact over every observation;
    ``p50``/``p95``/``p99`` are nearest-rank percentiles over the first
    :data:`HISTOGRAM_SAMPLE_CAP` observations per label set.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "_stats", "_samples")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._stats: dict[str, dict[str, float]] = {}
        self._samples: dict[str, list[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        s = self._stats.get(key)
        if s is None:
            self._stats[key] = {
                "count": 1, "total": float(value),
                "min": float(value), "max": float(value),
            }
            self._samples[key] = [float(value)]
        else:
            s["count"] += 1
            s["total"] += value
            if value < s["min"]:
                s["min"] = value
            if value > s["max"]:
                s["max"] = value
            samples = self._samples[key]
            if len(samples) < HISTOGRAM_SAMPLE_CAP:
                samples.append(float(value))

    def _with_percentiles(self, key: str) -> dict[str, float]:
        out = dict(self._stats.get(key, {}))
        samples = self._samples.get(key)
        if samples:
            ordered = sorted(samples)
            for p in HISTOGRAM_PERCENTILES:
                out[f"p{p}"] = _nearest_rank(ordered, p)
        return out

    def stats(self, **labels: Any) -> dict[str, float]:
        return self._with_percentiles(_label_key(labels))

    def reset(self) -> None:
        self._stats.clear()
        self._samples.clear()

    def snapshot(self) -> dict[str, Any]:
        if set(self._stats) <= {""}:
            return self._with_percentiles("")
        return {k: self._with_percentiles(k) for k in sorted(self._stats)}


class MetricsRegistry:
    """Named metrics with get-or-create semantics and one snapshot/reset.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return the
    existing metric when the name is already registered (the kind must
    match).  ``register_collector`` attaches a callable whose return
    value is merged into :meth:`snapshot` under its name — used to pull
    in state that lives elsewhere (e.g. a ``FaultMonitor``'s summary).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], Any]] = {}

    def _get_or_create(self, cls, name: str, help: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def register_collector(self, name: str, fn: Callable[[], Any]) -> None:
        with self._lock:
            self._collectors[name] = fn

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time readout of every metric (and collector) by name."""
        with self._lock:
            metrics = dict(self._metrics)
            collectors = dict(self._collectors)
        out: dict[str, Any] = {
            name: m.snapshot() for name, m in sorted(metrics.items())
        }
        for name, fn in sorted(collectors.items()):
            out[name] = fn()
        return out

    def reset(self) -> None:
        """Zero every metric (collectors are read-only and untouched)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry backing the built-in instrumentation."""
    return _REGISTRY
