"""Thread-local span tracer with a near-free disabled fast path.

Design constraints, in order:

1. **Disabled cost ~ zero.**  Instrumentation sits inside kernel and
   communicator hot loops that the perf bench gates (``BENCH_kernels.json``
   tolerances), so :func:`trace_span` must bail out before allocating
   anything: one module-global flag check, then return a shared no-op
   context manager.
2. **Nesting per thread.**  Spans form a stack per thread; each finished
   span records its ``depth`` and a stable ``tid`` so the Chrome-trace
   exporter can place properly nested slices on per-thread tracks.
3. **No dependencies.**  Pure stdlib (``time``, ``threading``); importable
   from the lowest layers (``repro.kernels``, ``repro.comm``) without
   cycles — this module imports nothing from ``repro``.

Usage::

    from repro.obs import trace_span, use_tracing

    with use_tracing() as tracer:
        with trace_span("flash.fwd", phase="compute", sq=256) as sp:
            ...
            sp["tiles"] = 42          # attach attrs at exit time
    spans = tracer.spans()
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "trace_span",
    "traced",
    "tracing_enabled",
    "use_tracing",
]


@dataclass
class Span:
    """One finished span: a named interval on a thread's timeline.

    ``ts`` and ``dur`` are seconds relative to the tracer's epoch (the
    moment tracing was enabled), so traces from one run share a time base.
    """

    name: str
    phase: str
    ts: float
    dur: float
    tid: int
    depth: int
    rank: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager for one span while it is open.

    Supports ``sp["key"] = value`` so call sites can attach attributes
    computed during the span's body (bytes moved, tiles skipped, ...).
    """

    __slots__ = ("_tracer", "name", "phase", "rank", "attrs", "_t0", "_depth")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        phase: str,
        rank: int | None,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.phase = phase
        self.rank = rank
        self.attrs = attrs

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        # Pop back to (and including) this span even if inner spans leaked.
        while stack:
            top = stack.pop()
            if top is self:
                break
        epoch = tracer._epoch
        tracer._record(
            Span(
                name=self.name,
                phase=self.phase,
                ts=self._t0 - epoch,
                dur=t1 - self._t0,
                tid=threading.get_ident(),
                depth=self._depth,
                rank=self.rank,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects :class:`Span` records from all threads while enabled.

    ``enabled`` is a plain attribute read on every :func:`trace_span`
    call; everything else only runs while tracing is on.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._epoch = 0.0
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._tls = threading.local()
        #: extra per-span consumers (e.g. a flight recorder's ring buffer);
        #: survive start()/stop() cycles so a recorder installed before a
        #: traced run keeps seeing spans across restarts.
        self._sinks: list = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Clear prior spans and begin recording; resets the epoch."""
        with self._lock:
            self._spans = []
        self._epoch = time.perf_counter()
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans = []

    # -- recording ----------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        for sink in self._sinks:
            sink(span)

    # -- sinks --------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a callable invoked with every finished :class:`Span`."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks = self._sinks + [sink]

    def remove_sink(self, sink) -> None:
        with self._lock:
            self._sinks = [s for s in self._sinks if s is not sink]

    # -- access -------------------------------------------------------------

    def spans(self) -> list[Span]:
        """All finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def spans_by_phase(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = {}
        for sp in self.spans():
            out.setdefault(sp.phase, []).append(sp)
        return out


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by :func:`trace_span`."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def trace_span(name: str, *, phase: str = "", rank: int | None = None, **attrs: Any):
    """Open a span; returns :data:`NOOP_SPAN` while tracing is disabled.

    The returned object is a context manager; inside the ``with`` body it
    supports ``sp["key"] = value`` for attrs known only at exit time.
    Compare against :data:`NOOP_SPAN` (or use truthiness) to skip
    attr computation on the disabled path.
    """
    if not _TRACER.enabled:
        return NOOP_SPAN
    return _LiveSpan(_TRACER, name, phase, rank, attrs)


def traced(name: str, phase: str = "", **static_attrs: Any) -> Callable:
    """Decorator wrapping a whole function call in one span.

    Zero overhead beyond a flag check when tracing is off; used for
    pass-level instrumentation (attention passes, LM-head losses) where
    the span covers the entire call.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with _LiveSpan(_TRACER, name, phase, None, dict(static_attrs)):
                return fn(*args, **kwargs)

        return wrapper

    return deco


@contextmanager
def use_tracing() -> Iterator[Tracer]:
    """Enable the global tracer for the duration of the block.

    Clears previously recorded spans on entry, disables (but keeps the
    recorded spans readable) on exit.
    """
    _TRACER.start()
    try:
        yield _TRACER
    finally:
        _TRACER.stop()
