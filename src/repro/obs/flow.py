"""Producer→consumer flow edges over communicator spans.

Every traced communicator op (:func:`repro.comm.communicator._traced_op`)
stamps its ``comm.<op>`` span with a causal key — the logical phase, the
message tag, and the ``channel`` (``fwd`` for the base ring direction,
``rev`` for the counter-rotating stream) — plus a process-wide ``call``
index.  Consecutive ops sharing a key move the *same* circulating payload
(a KV bundle hopping around the ring, an activation crossing pipeline
stages), so chaining them yields the per-step causal DAG the critical-path
engine (:mod:`repro.obs.critical`) walks.

:func:`derive_flows` builds those edges from finished :class:`Span`
records; the Chrome-trace exporter renders each edge as an ``s``/``f``
event pair (Perfetto draws them as arrows between the producing and the
consuming slice); :func:`validate_flow_events` enforces the pairing
contract — every flow id appears exactly once as ``s`` and once as ``f``,
and never travels backwards in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.tracer import Span

__all__ = [
    "FlowEdge",
    "derive_flows",
    "flow_chrome_events",
    "flow_key",
    "validate_flow_events",
]


def flow_key(logical: str, tag: str, channel: str) -> str:
    """Causal chain key: ops sharing it move one circulating payload."""
    return f"{logical}|{tag}|{channel}"


@dataclass(frozen=True)
class FlowEdge:
    """One producer→consumer dependency between two communicator spans.

    ``src`` / ``dst`` index into the span sequence :func:`derive_flows`
    was given; ``id`` is unique within one derivation and becomes the
    Chrome-trace flow id.
    """

    id: int
    key: str
    src: int
    dst: int


def _is_flow_span(sp: Span) -> bool:
    return sp.name.startswith("comm.") and "call" in sp.attrs


def derive_flows(spans: Sequence[Span]) -> list[FlowEdge]:
    """Chain communicator spans sharing a flow key into causal edges.

    Spans are visited in issue order (the communicator's ``call``
    attribute, which breaks wall-clock ties); each span consumes the
    payload its key's previous span produced.
    """
    order = sorted(
        (i for i, sp in enumerate(spans) if _is_flow_span(sp)),
        key=lambda i: (spans[i].attrs["call"], spans[i].ts),
    )
    edges: list[FlowEdge] = []
    last_by_key: dict[str, int] = {}
    for i in order:
        attrs = spans[i].attrs
        key = flow_key(
            str(attrs.get("logical", "")),
            str(attrs.get("tag", "")),
            str(attrs.get("channel", "fwd")),
        )
        prev = last_by_key.get(key)
        if prev is not None:
            edges.append(FlowEdge(id=len(edges) + 1, key=key, src=prev, dst=i))
        last_by_key[key] = i
    return edges


def flow_chrome_events(
    edges: Sequence[FlowEdge],
    placements: Sequence[tuple[int, float, float]],
    pid: int,
) -> list[dict[str, Any]]:
    """Render edges as Chrome-trace ``s``/``f`` event pairs.

    ``placements[i]`` is ``(tid, ts_us, dur_us)`` of span ``i`` as the
    exporter emitted it.  The ``s`` event sits at the producing slice's
    end, the ``f`` event (``bp: "e"``) at the consuming slice's start —
    the convention Perfetto renders as an arrow between the two slices.
    """
    events: list[dict[str, Any]] = []
    for edge in edges:
        src_tid, src_ts, src_dur = placements[edge.src]
        dst_tid, dst_ts, _ = placements[edge.dst]
        events.append({
            "name": "dep", "cat": edge.key, "ph": "s", "id": edge.id,
            "ts": round(src_ts + src_dur, 3), "pid": pid, "tid": src_tid,
        })
        events.append({
            "name": "dep", "cat": edge.key, "ph": "f", "bp": "e",
            "id": edge.id, "ts": round(max(dst_ts, src_ts + src_dur), 3),
            "pid": pid, "tid": dst_tid,
        })
    return events


def validate_flow_events(
    events: Sequence[dict[str, Any]],
) -> dict[int | str, tuple[dict, dict]]:
    """Check ``s``/``f`` pairing; raise ``ValueError`` on damage.

    Every flow id must appear exactly once as a start (``s``) and once as
    a finish (``f``), both events must carry ``name``/``id``/``ts``/
    ``pid``/``tid``, and the finish may not precede its start (flows point
    forward in time).  Returns ``{id: (s_event, f_event)}``.
    """
    eps = 0.002  # us; absorbs the exporter's 3-decimal rounding
    starts: dict[Any, dict] = {}
    finishes: dict[Any, dict] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("s", "f"):
            continue
        for field in ("name", "id", "ts", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"flow event #{i} ({ph!r}) missing {field!r}")
        bucket = starts if ph == "s" else finishes
        if ev["id"] in bucket:
            raise ValueError(f"flow id {ev['id']!r} has duplicate {ph!r} events")
        bucket[ev["id"]] = ev
    dangling = sorted(set(starts) ^ set(finishes), key=repr)
    if dangling:
        raise ValueError(f"dangling flow ids (unpaired s/f): {dangling}")
    pairs: dict[Any, tuple[dict, dict]] = {}
    for fid, s_ev in starts.items():
        f_ev = finishes[fid]
        if f_ev["ts"] < s_ev["ts"] - eps:
            raise ValueError(
                f"flow id {fid!r} travels backwards in time: "
                f"f at {f_ev['ts']} before s at {s_ev['ts']}"
            )
        pairs[fid] = (s_ev, f_ev)
    return pairs
