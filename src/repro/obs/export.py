"""Exporters: observed Chrome traces and per-step JSONL metrics.

The Chrome-trace exporter emits the *same event schema* as the DES
exporter (:func:`repro.perf.trace.trace_to_chrome_json`): duration events
``{"name", "ph": "X", "ts", "dur", "pid", "tid", "args"}`` with
timestamps in microseconds, plus ``ph: "M"`` ``thread_name`` metadata
naming each row.  Predicted traces use ``pid=1``; observed traces use
``pid=2`` — load both into Perfetto and the two timelines appear as
separate processes, row for row.

Rows are keyed by span *phase* (``compute``, ``intra-ring``,
``inter-ring``, ``ckpt-recompute``, ``lmhead``, ``comm``, ``attn``,
``step``), one track per (phase, source thread) so nesting stays valid
per track even for multithreaded runs.

The JSONL metrics writer appends one JSON object per training step; the
schema is validated by :func:`validate_metrics_jsonl` and exercised by
the trainer (``Trainer(metrics_path=...)``).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.flow import derive_flows, flow_chrome_events, validate_flow_events
from repro.obs.tracer import Span

__all__ = [
    "OBSERVED_PID",
    "PREDICTED_PID",
    "spans_to_chrome_json",
    "validate_chrome_trace",
    "validate_metrics_jsonl",
    "write_step_metrics",
]

PREDICTED_PID = 1   # pid used by repro.perf.trace.trace_to_chrome_json
OBSERVED_PID = 2

#: keys every per-step JSONL metrics record must carry
STEP_METRIC_KEYS = (
    "step",
    "comm_elems",
    "comm_bytes",
    "comm_by_phase",
    "comm_by_link",
)


def spans_to_chrome_json(
    spans: Sequence[Span],
    path: str | None = None,
    *,
    metadata: dict[str, Any] | None = None,
    pid: int = OBSERVED_PID,
    process_name: str = "observed",
    memory_events: Sequence[Any] | None = None,
) -> str:
    """Serialise finished spans as a Chrome trace JSON string.

    ``metadata`` (run config: method, world size, sequence length, ...)
    is embedded at the top level of the payload where Perfetto ignores it
    but ``python -m repro.obs diff`` reads it back.  Communicator spans
    carrying flow-key attributes are additionally chained into ``s``/``f``
    flow-event pairs (:mod:`repro.obs.flow`) so Perfetto draws the
    producer→consumer arrows of the causal DAG.

    ``memory_events`` (a :class:`repro.obs.mem.MemoryTimeline`'s events)
    adds counter tracks (``"ph": "C"``, one per watermark series) that
    Perfetto renders directly under the span rows of the same process.
    """
    events: list[dict[str, Any]] = []
    # One track per (phase, source thread); the first thread seen for a
    # phase owns the plain phase name, later threads get a suffix.
    rows: dict[tuple[str, int], tuple[int, str]] = {}
    threads_per_phase: dict[str, int] = {}
    ordered = sorted(spans, key=lambda s: (s.ts, -s.dur))
    placements: list[tuple[int, float, float]] = []
    for sp in ordered:
        phase = sp.phase or "misc"
        key = (phase, sp.tid)
        if key not in rows:
            n = threads_per_phase.get(phase, 0)
            threads_per_phase[phase] = n + 1
            name = phase if n == 0 else f"{phase} (t{n})"
            rows[key] = (len(rows) + 1, name)
        tid, _ = rows[key]
        args: dict[str, Any] = {"phase": phase, "depth": sp.depth}
        if sp.rank is not None:
            args["rank"] = sp.rank
        args.update(sp.attrs)
        ts_us = round(sp.ts * 1e6, 3)   # chrome traces use us
        dur_us = round(sp.dur * 1e6, 3)
        placements.append((tid, ts_us, dur_us))
        events.append(
            {
                "name": sp.name,
                "ph": "X",
                "ts": ts_us,
                "dur": dur_us,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    events.extend(
        flow_chrome_events(derive_flows(ordered), placements, pid)
    )
    if memory_events:
        from repro.obs.mem import memory_counter_events

        events.extend(memory_counter_events(memory_events, pid=pid))
    for (_phase, _thread), (tid, name) in rows.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": name}}
        )
    events.append(
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": process_name}}
    )
    doc: dict[str, Any] = {"traceEvents": events}
    if metadata:
        doc["metadata"] = dict(metadata)
    payload = json.dumps(doc, indent=2)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(payload)
    return payload


def validate_chrome_trace(payload: str | dict) -> dict[str, Any]:
    """Strictly validate a Chrome trace document; raise ``ValueError``.

    Checks the contract both exporters promise: a ``traceEvents`` list
    whose ``"X"`` events each carry ``name``/``ph``/``ts``/``dur``/
    ``pid``/``tid``, with spans properly nested (contained or disjoint)
    per ``(pid, tid)`` track, and at least one duration event.  Flow
    events (``"s"``/``"f"``) must pair up per
    :func:`repro.obs.flow.validate_flow_events`.  Counter events
    (``"C"``, the memory watermark tracks) must carry a non-empty
    ``args`` dict of non-negative numeric samples, and any sample
    stamped with a step must fall inside that step's ``train.step``
    span on the same process.  Returns the parsed document on success.
    """
    doc = json.loads(payload) if isinstance(payload, str) else payload
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace is not a {'traceEvents': [...]} document")
    duration_events: dict[tuple[int, int], list[dict]] = {}
    flow_events: list[dict] = []
    counter_events: list[tuple[int, dict]] = []
    step_spans: dict[tuple[int, Any], list[tuple[float, float]]] = {}
    n_x = 0
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"event #{i} has no 'ph' field: {ev!r}")
        if ev["ph"] == "M":
            continue
        if ev["ph"] in ("s", "f"):
            flow_events.append(ev)
            continue
        if ev["ph"] == "C":
            for field in ("name", "ts", "pid", "tid", "args"):
                if field not in ev:
                    raise ValueError(
                        f"event #{i} ({ev.get('name')!r}) missing {field!r}"
                    )
            args = ev["args"]
            if not isinstance(args, dict) or not any(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(
                    f"event #{i} ({ev['name']!r}): counter event needs a "
                    "dict of numeric args"
                )
            for key, value in args.items():
                if isinstance(value, (int, float)) and value < 0:
                    raise ValueError(
                        f"event #{i} ({ev['name']!r}): negative counter "
                        f"sample {key}={value}"
                    )
            counter_events.append((i, ev))
            continue
        if ev["ph"] != "X":
            raise ValueError(f"event #{i}: unsupported phase {ev['ph']!r}")
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event #{i} ({ev.get('name')!r}) missing {field!r}")
        if ev["dur"] < 0:
            raise ValueError(f"event #{i} ({ev['name']!r}) has negative dur")
        n_x += 1
        duration_events.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        if ev["name"] == "train.step" and "step" in ev.get("args", {}):
            step_spans.setdefault(
                (ev["pid"], ev["args"]["step"]), []
            ).append((ev["ts"], ev["ts"] + ev["dur"]))
    if n_x == 0:
        raise ValueError("trace contains zero duration events")
    validate_flow_events(flow_events)
    eps_c = 0.002  # us; same rounding slack as the nesting check
    for i, ev in counter_events:
        step = ev["args"].get("step")
        if step is None:
            continue
        spans = step_spans.get((ev["pid"], step))
        if not spans:
            continue  # counter-only exports carry no step spans
        if not any(lo - eps_c <= ev["ts"] <= hi + eps_c for lo, hi in spans):
            raise ValueError(
                f"event #{i} ({ev['name']!r}): counter sample at ts="
                f"{ev['ts']} falls outside its step-{step} span"
            )
    eps = 0.002  # us; absorbs the exporters' 3-decimal rounding
    for (pid, tid), evs in duration_events.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[float, float]] = []
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][1] - eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                raise ValueError(
                    f"track pid={pid} tid={tid}: event {ev['name']!r} "
                    f"[{start}, {end}] overlaps but is not nested within "
                    f"enclosing span ending at {stack[-1][1]}"
                )
            stack.append((start, end))
    return doc


def write_step_metrics(path: str, record: dict[str, Any]) -> None:
    """Append one per-step metrics record as a JSON line."""
    missing = [k for k in STEP_METRIC_KEYS if k not in record]
    if missing:
        raise ValueError(f"step metrics record missing keys: {missing}")
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")


def validate_metrics_jsonl(lines: str | Iterable[str]) -> list[dict[str, Any]]:
    """Parse + schema-check JSONL metrics; raise ``ValueError`` on damage.

    Accepts a path-like string (contents of the file) split on newlines
    or any iterable of lines.  Every non-empty line must be a JSON object
    carrying the :data:`STEP_METRIC_KEYS`.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    records: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"metrics line {i + 1} is not valid JSON: {exc}")
        if not isinstance(rec, dict):
            raise ValueError(f"metrics line {i + 1} is not a JSON object")
        missing = [k for k in STEP_METRIC_KEYS if k not in rec]
        if missing:
            raise ValueError(f"metrics line {i + 1} missing keys: {missing}")
        records.append(rec)
    if not records:
        raise ValueError("metrics file contains no records")
    return records
